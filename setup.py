"""Shim for environments without the `wheel` package (offline dev).

`pip install -e .` needs wheel for PEP 660 editable builds; this shim
lets `python setup.py develop` provide the same editable install.
"""

from setuptools import setup

setup()
