#!/usr/bin/env python3
"""Section 5 walkthrough: attacks, misbehaving ledgers, censorship.

Demonstrates every adversarial scenario the paper discusses and the
corresponding defence:

* naive attacks are self-defeating;
* the sophisticated re-claim attack beats automation but loses appeals;
* lying ledgers are caught by honesty probes and bleed market share;
* coerced revocation fails against nonprofit archive ledgers.

    python examples/attack_and_appeal.py
"""

import numpy as np

from repro.attacks.attackers import NaiveAttacker, SophisticatedAttacker
from repro.attacks.censorship import ArchiveLedger, attempt_coerced_revocation
from repro.attacks.malicious_ledger import LyingLedger
from repro.attacks.reputation import LedgerMarket
from repro.core import IrsDeployment
from repro.core.identifiers import PhotoIdentifier
from repro.core.owner import OwnerToolkit
from repro.core.validation import ValidationPolicy, Validator
from repro.ledger.appeals import AppealsProcess
from repro.ledger.ledger import Ledger
from repro.ledger.probes import HonestyProber


def naive_attacks(irs, labeled):
    print("=== Naive attacks (self-defeating) ===")
    validator = Validator.for_registry(
        irs.registry, policy=ValidationPolicy.upload(),
        watermark_codec=irs.watermark_codec,
    )
    attacker = NaiveAttacker(np.random.default_rng(1))

    stripped = attacker.strip_metadata_only(labeled)
    print(f"  strip metadata only      -> "
          f"{validator.validate(stripped.photo).decision.value}")

    forged = attacker.forge_metadata(
        labeled, PhotoIdentifier(ledger_id=irs.ledger.ledger_id, serial=9999)
    )
    print(f"  forge metadata           -> "
          f"{validator.validate(forged.photo).decision.value}")

    mangled = attacker.strip_and_mangle(labeled)
    print(f"  destroy watermark        -> "
          f"{validator.validate(mangled.photo).decision.value} "
          f"(PSNR {mangled.photo.psnr_against(labeled):.1f} dB — the copy is trash)")


def sophisticated_attack(irs, photo, receipt, labeled):
    print("\n=== Sophisticated attack: re-claim the copy ===")
    attacker = SophisticatedAttacker(
        irs.ledger, rng=np.random.default_rng(2),
        watermark_codec=irs.watermark_codec,
    )
    attack = attacker.reclaim_copy(labeled)
    validator = Validator.for_registry(
        irs.registry, policy=ValidationPolicy.upload(),
        watermark_codec=irs.watermark_codec,
    )
    print(f"  attacker's claim: {attack.identifier}")
    print(f"  upload validation of the copy: "
          f"{validator.validate(attack.photo).decision.value} "
          "(automation cannot tell)")

    process = AppealsProcess(irs.ledger, [irs.timestamp_authority])
    appeal = irs.owner_toolkit.prepare_appeal(
        receipt, photo, process, attack.identifier, attack.photo
    )
    decision = process.adjudicate(appeal)
    print(f"  appeal: {decision.verdict.value} — {decision.reason}")
    print(f"  copy validation now: "
          f"{validator.validate(attack.photo).decision.value}")

    print("  …and the attacker appealing against the original:")
    counter = AppealsProcess(irs.ledger, [irs.timestamp_authority])
    attacker_toolkit = attacker._toolkit
    counter_appeal = attacker_toolkit.prepare_appeal(
        attack.receipt, attack.claimed_photo, counter, receipt.identifier, photo
    )
    counter_decision = counter.adjudicate(counter_appeal)
    print(f"  counter-appeal: {counter_decision.verdict.value} — "
          f"{counter_decision.reason}")


def lying_ledger_market():
    print("\n=== Malicious ledgers vs probes + reputation ===")
    from repro.crypto.timestamp import TimestampAuthority

    tsa = TimestampAuthority()
    honest = Ledger("honest-ledger", tsa)
    liar = LyingLedger(
        "lying-ledger", tsa, lie_probability=0.3,
        lie_rng=np.random.default_rng(3),
    )
    probers = {
        "honest-ledger": HonestyProber(honest, np.random.default_rng(4)),
        "lying-ledger": HonestyProber(liar, np.random.default_rng(5)),
    }
    for prober in probers.values():
        prober.plant_canaries(12)
    market = LedgerMarket(["honest-ledger", "lying-ledger"])
    for month in range(8):
        reports = {name: p.run_round() for name, p in probers.items()}
        shares = market.round(reports)
        caught = len(reports["lying-ledger"].violations)
        print(f"  month {month}: liar caught {caught:2d}x, market share "
              f"honest={shares['honest-ledger']:.2f} "
              f"liar={shares['lying-ledger']:.2f}")
    print(f"  lies told in total: {liar.lies_told} — every one signed, "
          "every detection portable evidence.")


def censorship():
    print("\n=== Censorship pressure vs archive ledgers ===")
    from repro.crypto.timestamp import TimestampAuthority
    from repro.media.image import generate_photo

    tsa = TimestampAuthority()
    commercial = Ledger("commercial", tsa)
    archive = ArchiveLedger("rights-archive", tsa)
    toolkit = OwnerToolkit(rng=np.random.default_rng(6))
    evidence = generate_photo(seed=99)

    for ledger in (commercial, archive):
        receipt = toolkit.claim(evidence, ledger)
        attempt = attempt_coerced_revocation(toolkit, receipt, ledger)
        print(f"  coerced revocation on {ledger.ledger_id!r}: "
              f"{attempt.outcome.value}")
        print(f"    {attempt.detail}")


def main() -> None:
    irs = IrsDeployment.create(seed=55)
    photo = irs.new_photo()
    receipt, labeled = irs.owner_toolkit.claim_and_label(photo, irs.ledger)
    irs.owner_toolkit.revoke(receipt, irs.ledger)

    naive_attacks(irs, labeled)
    sophisticated_attack(irs, photo, receipt, labeled)
    lying_ledger_market()
    censorship()


if __name__ == "__main__":
    main()
