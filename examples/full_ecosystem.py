#!/usr/bin/env python3
"""The whole IRS world in one simulation.

Four simulated weeks of a mid-bootstrap ecosystem, all moving parts at
once:

* owners keep claiming photos (some revoked-by-default) and a few
  revoke previously shared ones;
* browsers with IRS extensions view photos through a caching,
  Bloom-filtered proxy;
* one IRS-supporting aggregator takes uploads, rechecks hourly, and
  serves with freshness proofs; one legacy aggregator does none of it;
* ledgers republish filters hourly; the proxy pulls deltas;
* an honesty prober audits the ledger weekly; the browser's site
  indicator rates both aggregators;
* a sophisticated attacker strikes mid-run and is defeated on appeal.

    python examples/full_ecosystem.py
"""

import numpy as np

from repro.aggregator.aggregator import AggregatorConfig, ContentAggregator
from repro.aggregator.hashdb import RobustHashDatabase
from repro.aggregator.recheck import PeriodicRechecker
from repro.aggregator.uploads import UploadPipeline
from repro.attacks.attackers import SophisticatedAttacker
from repro.browser.extension import IrsBrowserExtension
from repro.browser.indicator import SiteIndicator
from repro.core import IrsDeployment
from repro.core.owner import OwnerToolkit
from repro.filters.sizing import bloom_bits_for_fpr, bloom_optimal_hashes
from repro.ledger.appeals import AppealsProcess
from repro.ledger.export import FilterExporter
from repro.ledger.probes import HonestyProber
from repro.netsim.simulator import Simulator
from repro.proxy.cache import TtlLruCache
from repro.proxy.filterset import ProxyFilterSet
from repro.proxy.proxy import IrsProxy
from repro.workload.population import populate_ledger
from repro.workload.zipf import ZipfSampler

HOUR = 3600.0
DAY = 24 * HOUR
WEEKS = 4


def main() -> None:
    rng = np.random.default_rng(2026)
    irs = IrsDeployment.create(seed=2026)
    sim = Simulator()
    clock = sim.clock().now

    print("Seeding the world…")
    population = populate_ledger(irs.ledger, 8000, 0.55, rng)
    print(f"  {population.size} claims, {population.num_revoked} revoked")

    nbits = bloom_bits_for_fpr(population.num_revoked + 2000, 0.02)
    k = bloom_optimal_hashes(nbits, population.num_revoked + 2000)
    exporter = FilterExporter(irs.ledger, nbits=nbits, num_hashes=k)
    exporter.publish(now=0.0)
    filterset = ProxyFilterSet()
    filterset.subscribe(exporter)
    filterset.refresh()

    proxy = IrsProxy(
        "community-proxy",
        irs.registry,
        filterset=filterset,
        cache=TtlLruCache(100_000, ttl=HOUR, clock=clock),
        clock=clock,
    )
    extension = IrsBrowserExtension(status_source=proxy.status)
    indicator = SiteIndicator()

    irs_site = ContentAggregator(
        "photowall", irs.registry,
        config=AggregatorConfig(recheck_interval=HOUR), clock=clock,
    )
    legacy_site = ContentAggregator(
        "oldgram", irs.registry, config=AggregatorConfig.legacy(), clock=clock
    )
    pipeline = UploadPipeline(
        irs_site,
        watermark_codec=irs.watermark_codec,
        custodial_ledger=irs.ledger,
        custodial_toolkit=OwnerToolkit(
            rng=np.random.default_rng(7), watermark_codec=irs.watermark_codec
        ),
        hash_database=RobustHashDatabase(),
    )
    legacy_pipeline = UploadPipeline(legacy_site, watermark_codec=irs.watermark_codec)
    PeriodicRechecker(irs_site).schedule_on(sim, until=WEEKS * 7 * DAY)

    prober = HonestyProber(irs.ledger, np.random.default_rng(9))
    prober.plant_canaries(6)

    # Views land almost entirely on unrevoked photos (the section 4.4
    # assumption); a small leak models revoked content still circulating.
    REVOKED_VIEW_FRACTION = 0.02
    samplers = {}

    def rebuild_samplers():
        viewable = np.nonzero(~population.revoked_mask)[0]
        revoked = np.nonzero(population.revoked_mask)[0]
        samplers["viewable"] = (viewable, ZipfSampler(viewable.size, 1.0, rng))
        samplers["revoked"] = (revoked, ZipfSampler(max(revoked.size, 1), 1.0, rng))

    def draw_view_index() -> int:
        kind = (
            "revoked"
            if rng.uniform() < REVOKED_VIEW_FRACTION and population.num_revoked
            else "viewable"
        )
        indices, sampler = samplers[kind]
        return int(indices[sampler.sample_one() % indices.size])

    rebuild_samplers()
    chronicle: list[str] = []
    state = {"filter_bytes": 0, "blocked": 0, "views": 0}

    # -- recurring processes --------------------------------------------------

    def hourly_filter_cycle():
        exporter.publish(now=sim.now)
        state["filter_bytes"] += proxy.refresh_filters()
        if sim.now + HOUR <= WEEKS * 7 * DAY:
            sim.schedule(HOUR, hourly_filter_cycle)

    def hourly_browsing():
        for _ in range(120):  # views this hour
            index = draw_view_index()
            decision = extension.check_identifier(population.identifiers[index])
            state["views"] += 1
            if not decision.display:
                state["blocked"] += 1
                indicator.observe_revoked_served("oldgram")  # legacy serves it anyway
            else:
                indicator.observe_labeled_photo("photowall")
        if sim.now + HOUR <= WEEKS * 7 * DAY:
            sim.schedule(HOUR, hourly_browsing)

    def daily_claim_churn():
        fresh = populate_ledger(irs.ledger, 60, 0.5, rng)
        population.identifiers.extend(fresh.identifiers)
        population.revoked_mask = np.concatenate(
            [population.revoked_mask, fresh.revoked_mask]
        )
        rebuild_samplers()
        if sim.now + DAY <= WEEKS * 7 * DAY:
            sim.schedule(DAY, daily_claim_churn)

    def weekly_probe():
        report = prober.run_round()
        chronicle.append(
            f"day {sim.now / DAY:5.1f}: probe round — "
            f"{'clean' if report.clean else f'{len(report.violations)} violations'}"
        )
        if sim.now + 7 * DAY <= WEEKS * 7 * DAY:
            sim.schedule(7 * DAY, weekly_probe)

    sim.schedule(HOUR, hourly_filter_cycle)
    sim.schedule(0.5 * HOUR, hourly_browsing)
    sim.schedule(DAY, daily_claim_churn)
    sim.schedule(7 * DAY, weekly_probe)

    # -- scripted events --------------------------------------------------------

    owner_photo = irs.new_photo()
    owner_receipt, owner_labeled = irs.owner_toolkit.claim_and_label(
        owner_photo, irs.ledger
    )

    def day2_uploads():
        outcome = pipeline.upload("vacation", owner_labeled)
        legacy_pipeline.upload("vacation-copy", owner_labeled)
        chronicle.append(
            f"day {sim.now / DAY:5.1f}: owner shares 'vacation' — "
            f"photowall: {outcome.decision.value}, oldgram: accepted (no checks)"
        )

    def day9_revoke():
        irs.owner_toolkit.revoke(owner_receipt, irs.ledger)
        chronicle.append(f"day {sim.now / DAY:5.1f}: owner revokes 'vacation'")

    def day10_check_takedown():
        photowall = irs_site.serve("vacation").served
        oldgram = legacy_site.serve("vacation-copy").served
        if not photowall:
            indicator.observe_labeled_photo("photowall")
        if oldgram:
            indicator.observe_revoked_served("oldgram")
        chronicle.append(
            f"day {sim.now / DAY:5.1f}: 'vacation' served? "
            f"photowall={photowall}, oldgram={oldgram}"
        )

    attack_state = {}

    def day14_attack():
        attacker = SophisticatedAttacker(
            irs.ledger, rng=np.random.default_rng(13),
            watermark_codec=irs.watermark_codec,
        )
        attack = attacker.reclaim_copy(owner_labeled)
        outcome = pipeline.upload("stolen", attack.photo)
        attack_state["attack"] = attack
        chronicle.append(
            f"day {sim.now / DAY:5.1f}: attacker re-claims the revoked photo "
            f"as {attack.identifier} — upload {outcome.decision.value}"
        )

    def day16_appeal():
        attack = attack_state["attack"]
        process = AppealsProcess(irs.ledger, [irs.timestamp_authority])
        appeal = irs.owner_toolkit.prepare_appeal(
            owner_receipt, owner_photo, process, attack.identifier, attack.photo
        )
        decision = process.adjudicate(appeal)
        chronicle.append(
            f"day {sim.now / DAY:5.1f}: appeal {decision.verdict.value} "
            f"(robust distance {decision.robust_distance:.3f})"
        )

    def day17_verify_takedown():
        served = irs_site.serve("stolen").served
        chronicle.append(
            f"day {sim.now / DAY:5.1f}: stolen copy still served? {served}"
        )

    sim.schedule(2 * DAY, day2_uploads)
    sim.schedule(9 * DAY, day9_revoke)
    sim.schedule(10 * DAY, day10_check_takedown)
    sim.schedule(14 * DAY, day14_attack)
    sim.schedule(16 * DAY, day16_appeal)
    sim.schedule(17 * DAY + HOUR, day17_verify_takedown)

    print(f"\nRunning {WEEKS} simulated weeks…")
    sim.run(until=WEEKS * 7 * DAY)

    print("\nChronicle:")
    for line in chronicle:
        print(f"  {line}")

    print("\nFour-week totals:")
    stats = proxy.stats
    print(f"  views checked:          {state['views']:,}")
    print(f"  revoked views blocked:  {state['blocked']:,}")
    print(f"  ledger queries:         {stats.ledger_queries:,} "
          f"({stats.load_reduction_factor:.0f}x reduction)")
    print(f"  filter update traffic:  {state['filter_bytes']:,} bytes")
    print(f"  photowall inventory:    {irs_site.counts()}")
    print(f"  site ratings:           photowall={indicator.rating('photowall').value}, "
          f"oldgram={indicator.rating('oldgram').value}")


if __name__ == "__main__":
    main()
