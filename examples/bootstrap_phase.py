#!/usr/bin/env python3
"""The bootstrap phase (paper section 4), end to end.

Stands up three commercial ledgers holding a claimed-photo population,
an anonymizing proxy with a TTL cache and the OR of all ledger Bloom
filters, and a population of browsers running the IRS extension.  A
Zipf browsing trace then drives the stack, and the script reports the
quantities section 4 argues about: ledger load reduction, what ledgers
can observe about viewers, and filter update traffic.

    python examples/bootstrap_phase.py
"""

import numpy as np

from repro.browser.extension import IrsBrowserExtension
from repro.core import IrsDeployment
from repro.ledger.export import FilterExporter
from repro.metrics.reporting import Table
from repro.netsim.simulator import ManualClock
from repro.proxy.anonymity import ObservationLog, anonymity_report
from repro.proxy.cache import TtlLruCache
from repro.proxy.filterset import ProxyFilterSet
from repro.proxy.proxy import IrsProxy
from repro.workload.population import populate_ledger
from repro.workload.traces import BrowsingTraceGenerator

NUM_LEDGERS = 3
PHOTOS_PER_LEDGER = 5_000
REVOKED_FRACTION = 0.6  # most photos auto-registered-and-revoked (sec 4.4)
NUM_USERS = 40
VIEWS_PER_USER = 150


def main() -> None:
    rng = np.random.default_rng(42)
    irs = IrsDeployment.create(seed=42, num_ledgers=NUM_LEDGERS)

    print("Populating ledgers…")
    populations = [
        populate_ledger(ledger, PHOTOS_PER_LEDGER, REVOKED_FRACTION, rng)
        for ledger in irs.ledgers
    ]
    for ledger, population in zip(irs.ledgers, populations):
        print(f"  {ledger.ledger_id}: {population.size} claims, "
              f"{population.num_revoked} revoked")

    print("\nPublishing Bloom filters (one per ledger) and merging at the proxy…")
    filterset = ProxyFilterSet()
    for ledger in irs.ledgers:
        exporter = FilterExporter(ledger, nbits=1 << 17, num_hashes=5)
        exporter.publish()
        filterset.subscribe(exporter)
    first_transfer = filterset.refresh()
    print(f"  initial filter download: {first_transfer:,} bytes")

    clock = ManualClock()
    observations = ObservationLog()
    proxy = IrsProxy(
        "irs-proxy",
        irs.registry,
        filterset=filterset,
        cache=TtlLruCache(100_000, ttl=3600, clock=clock.now),
        clock=clock.now,
        observation_log=observations,
    )

    print(f"\nDriving {NUM_USERS} IRS browsers through the proxy…")
    population = populations[0]
    generator = BrowsingTraceGenerator(
        population,
        num_users=NUM_USERS,
        rng=rng,
        revoked_view_fraction=0.01,  # a little revoked content still circulates
    )
    extensions = {
        f"user-{u}": IrsBrowserExtension(status_source=proxy.status)
        for u in range(NUM_USERS)
    }
    blocked = 0
    for event in generator.generate(views_per_user=VIEWS_PER_USER):
        clock.advance(0.05)
        identifier = population.identifiers[event.photo_index]
        if not extensions[event.user].check_identifier(identifier).display:
            blocked += 1

    stats = proxy.stats
    table = Table(
        headers=["metric", "value"],
        title="Bootstrap pipeline (section 4.4 mechanics)",
    )
    table.add("browser checks issued", stats.queries)
    table.add("filter short-circuits", stats.filter_short_circuits)
    table.add("proxy cache hits", stats.cache_hits)
    table.add("queries reaching ledgers", stats.ledger_queries)
    table.add("ledger load reduction", f"{stats.load_reduction_factor:.1f}x")
    table.add("revoked views blocked", blocked)
    table.print()

    print("\nHourly filter update (delta-encoded)…")
    populate_ledger(irs.ledgers[0], 100, 0.8, rng)  # an hour of churn
    for sub in filterset._subscriptions.values():
        sub.exporter.publish()
    update_bytes = filterset.refresh()
    print(f"  update transfer: {update_bytes:,} bytes "
          f"(vs {first_transfer:,} full)")

    users = list(extensions)
    report = anonymity_report(
        observations,
        requester_populations={"irs-proxy": users},
        viewer_checks={u: VIEWS_PER_USER for u in users},
    )
    print("\nWhat ledger operators observed (section 4.2 privacy):")
    print(f"  {report}")
    print("  -> every ledger-visible request is attributed to the proxy, "
          "never to a viewer.")


if __name__ == "__main__":
    main()
