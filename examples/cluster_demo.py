#!/usr/bin/env python3
"""The sharded ledger cluster, end to end.

Stands up a 4-shard, 3-way-replicated cluster on the in-process
transport and drives a full photo lifecycle through the batching
frontend: claim -> label -> validate -> revoke -> validate, then kills
a replica to show quorum reads, challenge failover and read repair
keeping the revocation state correct throughout.

    python examples/cluster_demo.py
"""

import numpy as np

from repro.cluster import (
    ClusterConfig,
    ClusterDirectory,
    ClusterFrontend,
    ClusterShard,
    FailureDetector,
    HashRing,
    LocalShardTransport,
)
from repro.core.validation import ValidationPolicy, Validator
from repro.crypto.signatures import KeyPair
from repro.crypto.timestamp import TimestampAuthority
from repro.media.image import generate_photo
from repro.netsim.simulator import ManualClock


def main() -> None:
    print("=== 1. Stand up the cluster ===")
    rng = np.random.default_rng(2022)
    clock = ManualClock()
    tsa = TimestampAuthority(
        keypair=KeyPair.generate(bits=512, rng=rng), clock=clock.now
    )
    shard_ids = [f"shard-{i}" for i in range(4)]
    shards = {
        shard_id: ClusterShard(
            shard_id,
            "cluster",
            tsa,
            keypair=KeyPair.generate(bits=512, rng=rng),
            clock=clock.now,
        )
        for shard_id in shard_ids
    }
    ring = HashRing(shard_ids)
    transport = LocalShardTransport(shards)
    detector = FailureDetector(clock.now, failure_threshold=2, probation=5.0)
    directory = ClusterDirectory(list(shards.values()))
    frontend = ClusterFrontend(
        "cluster",
        ring,
        transport,
        tsa,
        detector=detector,
        config=ClusterConfig(replication_factor=3),
        clock=clock.now,
    )
    print(f"  {len(shards)} shards, replication factor 3, one frontend")

    print("\n=== 2. Claim a photo through the frontend ===")
    owner = KeyPair.generate(bits=512, rng=rng)
    photo = generate_photo(seed=7, height=96, width=96)
    content_hash = photo.content_hash()
    identifier = frontend.claim(
        content_hash, owner.sign(content_hash.encode("utf-8")), owner.public
    )
    replicas = frontend.replicas_for(identifier)
    print(f"  identifier: {identifier} (serial derived from content)")
    print(f"  replicas:   {', '.join(replicas)}")

    print("\n=== 3. Label and validate against the cluster ===")
    photo.metadata.irs_identifier = identifier.to_string()
    validator = Validator(
        status_source=frontend.status_proof,
        policy=ValidationPolicy.viewing(),
    )
    result = validator.validate(photo)
    print(f"  decision: {result.decision.value} ({result.detail})")
    assert result.allowed

    print("\n=== 4. Revoke; a quorum of replicas flips ===")
    verdict = frontend.revoke(identifier, owner)
    print(f"  verdict: {verdict}")
    result = validator.validate(photo)
    print(f"  decision: {result.decision.value}")
    assert not result.allowed

    print("\n=== 5. Kill a replica; answers stay correct ===")
    victim = replicas[0]
    transport.kill(victim)
    answer = frontend.status(identifier)
    print(f"  {victim} down -> revoked={answer.revoked} "
          f"(answered by {answer.answered_by}, epoch {answer.epoch})")
    assert answer.revoked
    print(f"  proof verifies against the directory: "
          f"{directory.verify(answer.proof)}")

    print("\n=== 6. Unrevoke while the replica is still down ===")
    verdict = frontend.unrevoke(identifier, owner)
    print(f"  verdict: {verdict} "
          f"(challenge failed over {frontend.stats.failovers} time(s))")
    result = validator.validate(photo)
    print(f"  decision: {result.decision.value}")
    assert result.allowed

    print("\n=== 7. Revive; the next quorum read repairs it ===")
    transport.revive(victim)
    stale_epoch = shards[victim].ledger.store.get(identifier.serial).revocation_epoch
    frontend.status(identifier)
    healed_epoch = shards[victim].ledger.store.get(identifier.serial).revocation_epoch
    print(f"  {victim} epoch: {stale_epoch} -> {healed_epoch} "
          f"({frontend.stats.read_repairs} read repair(s))")
    assert healed_epoch > stale_epoch

    print(f"\nfrontend stats: {frontend.stats}")
    print("cluster lifecycle complete.")


if __name__ == "__main__":
    main()
