#!/usr/bin/env python3
"""TET adoption dynamics (paper sections 1, 4, 6).

Runs the four canned ecosystem scenarios and prints adoption
trajectories: does the bootstrap phase change incumbent incentives, and
at what registered-photo scale does the ecosystem tip?  The paper
predicts tipping "anywhere close to 100 billion photos" for plausible
parameters — and no transformation at all without a first mover.

    python examples/adoption_dynamics.py
"""

from repro.ecosystem import (
    baseline_scenario,
    engagement_incumbents_scenario,
    no_first_mover_scenario,
    strong_liability_scenario,
)
from repro.metrics.reporting import Table

MONTHS = 240


def sparkline(values, width=48) -> str:
    """Cheap terminal sparkline for a 0..1 series."""
    marks = " .:-=+*#%@"
    step = max(1, len(values) // width)
    points = values[::step][:width]
    return "".join(marks[min(int(v * (len(marks) - 1)), len(marks) - 1)] for v in points)


def main() -> None:
    scenarios = [
        baseline_scenario(),
        no_first_mover_scenario(),
        strong_liability_scenario(),
        engagement_incumbents_scenario(),
    ]
    table = Table(
        headers=[
            "scenario",
            "tip month",
            "photos at tip",
            "final user adoption",
            "final aggregator share",
        ],
        title="TET scenarios (240 months)",
    )
    traces = {}
    for scenario in scenarios:
        model = scenario.build(seed=2022)
        trace = model.run(MONTHS)
        traces[scenario.name] = trace
        tip = trace.tipping_month(0.5)
        photos = trace.photos_at_tipping(0.5)
        final = trace.final()
        table.add(
            scenario.name,
            tip if tip is not None else "never",
            f"{photos:.2e}" if photos is not None else "—",
            f"{final.user_adoption:.2f}",
            f"{final.aggregator_share_adopted:.2f}",
        )
    table.print()

    print("\nAggregator adoption over time (market-share weighted):")
    for name, trace in traces.items():
        print(f"  {name:24s} |{sparkline(trace.aggregator_share())}|")

    print("\nUser adoption over time:")
    for name, trace in traces.items():
        print(f"  {name:24s} |{sparkline(trace.user_adoption())}|")

    baseline = traces["baseline"]
    print(
        "\nReading: the baseline tips at "
        f"{baseline.photos_at_tipping(0.5):.2e} registered photos — the "
        "paper's 'close to 100 billion' threshold — while the "
        "no-first-mover counterfactual never moves: the bootstrap *is* "
        "the transformation mechanism."
    )


if __name__ == "__main__":
    main()
