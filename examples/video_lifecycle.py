#!/usr/bin/env python3
"""Video revocation: the section-2 generalization, end to end.

A personal video is claimed and labeled (identifier watermarked into
every frame), shared, clipped and recompressed by resharers, and then
revoked — showing that the label survives clipping and that appeals
recognize clipped copies.

    python examples/video_lifecycle.py
"""

import numpy as np

from repro.core import IrsDeployment
from repro.core.video_owner import VideoOwnerToolkit, judge_video_appeal
from repro.media.jpeg import jpeg_roundtrip
from repro.media.video import Video, generate_video


def main() -> None:
    irs = IrsDeployment.create(seed=12)
    toolkit = VideoOwnerToolkit(rng=np.random.default_rng(12))

    print("=== Recording and claiming a personal video ===")
    video = generate_video(seed=12, num_frames=10, height=128, width=128)
    receipt, labeled = toolkit.claim_and_label(video, irs.ledger)
    print(f"  {video.num_frames} frames, {video.duration:.2f}s")
    print(f"  claimed as {receipt.identifier}")
    print(f"  every frame watermarked; metadata: "
          f"{labeled.metadata.irs_identifier}")

    print("\n=== A resharer clips and recompresses it ===")
    clip = labeled.clip(3, 9)
    clip.metadata = clip.metadata.stripped(preserve_irs=False)  # metadata gone
    recompressed = Video(
        frames=[jpeg_roundtrip(f, 60) for f in clip.frames], fps=clip.fps
    )
    print(f"  clip: frames 3-9, metadata stripped, JPEG q=60 per frame")
    identifier = toolkit.identify(recompressed, registry=irs.registry)
    print(f"  identifier recovered from frame watermarks: {identifier}")
    assert identifier == receipt.identifier

    print("\n=== The owner revokes ===")
    toolkit.revoke(receipt, irs.ledger)
    proof = irs.ledger.status(receipt.identifier)
    print(f"  ledger status: revoked={proof.revoked}")
    print("  any IRS browser/aggregator that identifies the clip now "
          "refuses to show it")

    print("\n=== Appeals: is the clip derived from the original? ===")
    judgement = judge_video_appeal(video, recompressed)
    print(f"  frame-coverage: {judgement.coverage:.2f} "
          f"(threshold {judgement.threshold}) -> derived={judgement.derived}")
    unrelated = generate_video(seed=99, num_frames=6, height=128, width=128)
    judgement = judge_video_appeal(video, unrelated)
    print(f"  unrelated footage coverage: {judgement.coverage:.2f} "
          f"-> derived={judgement.derived}")


if __name__ == "__main__":
    main()
