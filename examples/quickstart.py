#!/usr/bin/env python3
"""Quickstart: the four IRS operations in one sitting.

Runs a complete owner lifecycle against an in-process deployment:
claim -> label -> validate -> revoke -> validate -> unrevoke, plus what
happens when metadata is stripped along the way.

    python examples/quickstart.py
"""

from repro.core import IrsDeployment
from repro.core.validation import ValidationPolicy, Validator


def main() -> None:
    # One call stands up a timestamp authority, a commercial ledger, a
    # registry, an owner toolkit and a validator, all seeded.
    irs = IrsDeployment.create(seed=2022)

    print("=== 1. The camera takes a photo ===")
    photo = irs.new_photo(height=128, width=128)
    print(f"photo: {photo.height}x{photo.width}, hash {photo.content_hash()[:16]}…")

    print("\n=== 2. Claiming: enter it into a ledger ===")
    receipt = irs.owner_toolkit.claim(photo, irs.ledger)
    print(f"identifier: {receipt.identifier}")
    print(f"per-photo key: {receipt.keypair.fingerprint}")
    print(f"authenticated timestamp: t={receipt.timestamp.time}, "
          f"serial={receipt.timestamp.serial}")

    print("\n=== 3. Labeling: metadata + robust watermark ===")
    labeled = irs.owner_toolkit.label(photo, receipt)
    print(f"metadata field: {labeled.metadata.irs_identifier}")
    print(f"watermark PSNR vs original: {labeled.psnr_against(photo):.1f} dB "
          "(imperceptible)")

    print("\n=== 4. Validating before display ===")
    result = irs.validator.validate(labeled)
    print(f"decision: {result.decision.value}  ({result.detail})")
    assert result.allowed

    print("\n=== 5. The owner changes their mind: revoke ===")
    irs.owner_toolkit.revoke(receipt, irs.ledger)
    result = irs.validator.validate(labeled)
    print(f"decision: {result.decision.value}  ({result.detail})")
    assert not result.allowed

    print("\n=== 6. Labels survive metadata stripping ===")
    stripped = labeled.copy()
    stripped.metadata = stripped.metadata.stripped(preserve_irs=False)
    result = irs.validator.validate(stripped)
    print(f"metadata gone, watermark found -> decision: {result.decision.value}")
    print(f"  (label state: {result.label.state.value})")

    print("\n=== 7. Unrevoke: the owner shares it again ===")
    irs.owner_toolkit.unrevoke(receipt, irs.ledger)
    viewing = Validator.for_registry(
        irs.registry,
        policy=ValidationPolicy.viewing(),
        watermark_codec=irs.watermark_codec,
    )
    result = viewing.validate(labeled)
    print(f"viewing-posture decision: {result.decision.value}")
    assert result.allowed

    print("\nDone: claim, label, validate, revoke, unrevoke all exercised.")


if __name__ == "__main__":
    main()
