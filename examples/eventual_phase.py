#!/usr/bin/env python3
"""The eventual solution (paper section 3.2): aggregators participate.

Walks both use cases from section 2 plus the section 5 attack:

1. a photo intended to stay private leaks — upload blocked everywhere;
2. a freely shared photo is later revoked — taken down at the next
   periodic recheck on every aggregator;
3. a sophisticated attacker re-claims a copy — the appeals process
   permanently revokes it and the recheck sweep removes it.

    python examples/eventual_phase.py
"""

import numpy as np

from repro.aggregator.aggregator import AggregatorConfig, ContentAggregator
from repro.aggregator.hashdb import RobustHashDatabase
from repro.aggregator.recheck import PeriodicRechecker
from repro.aggregator.uploads import UploadPipeline
from repro.attacks.attackers import SophisticatedAttacker
from repro.core import IrsDeployment
from repro.core.owner import OwnerToolkit
from repro.ledger.appeals import AppealsProcess
from repro.netsim.simulator import Simulator


def build_site(name, irs, ledger, seed, clock):
    aggregator = ContentAggregator(
        name, irs.registry, config=AggregatorConfig(recheck_interval=3600.0),
        clock=clock,
    )
    pipeline = UploadPipeline(
        aggregator,
        watermark_codec=irs.watermark_codec,
        custodial_ledger=ledger,
        custodial_toolkit=OwnerToolkit(
            rng=np.random.default_rng(seed), watermark_codec=irs.watermark_codec
        ),
        hash_database=RobustHashDatabase(),
    )
    return aggregator, pipeline


def main() -> None:
    irs = IrsDeployment.create(seed=7, num_ledgers=2)
    sim = Simulator()
    clock = sim.clock().now
    photowall, photowall_up = build_site("photowall", irs, irs.ledgers[0], 1, clock)
    sharesphere, sharesphere_up = build_site(
        "sharesphere", irs, irs.ledgers[1], 2, clock
    )

    print("=== Use case 1: accidental publication of a private photo ===")
    private = irs.new_photo()
    # Register-revoked-by-default (section 4.4 usage pattern).
    private_receipt = irs.owner_toolkit.claim(
        private, irs.ledger, initially_revoked=True
    )
    leaked = irs.owner_toolkit.label(private, private_receipt)
    for name, pipeline in [("photowall", photowall_up), ("sharesphere", sharesphere_up)]:
        outcome = pipeline.upload("leaked-selfie", leaked)
        print(f"  upload to {name}: {outcome.decision.value} — {outcome.detail}")

    print("\n=== Use case 2: shared freely, revoked later ===")
    vacation = irs.new_photo()
    receipt, labeled = irs.owner_toolkit.claim_and_label(vacation, irs.ledger)
    for name, pipeline in [("photowall", photowall_up), ("sharesphere", sharesphere_up)]:
        outcome = pipeline.upload("vacation", labeled)
        print(f"  upload to {name}: {outcome.decision.value}")
    for aggregator in (photowall, sharesphere):
        PeriodicRechecker(aggregator).schedule_on(sim, until=8 * 3600.0)

    sim.run(until=1800.0)
    print("  … 30 minutes later the owner revokes the photo …")
    irs.owner_toolkit.revoke(receipt, irs.ledger)
    sim.run(until=2 * 3600.0)
    for aggregator in (photowall, sharesphere):
        serve = aggregator.serve("vacation")
        print(f"  {aggregator.name} now serves it: {serve.served} ({serve.reason})")

    print("\n=== Section 5: the sophisticated attacker ===")
    attacker = SophisticatedAttacker(
        irs.ledgers[1], rng=np.random.default_rng(13),
        watermark_codec=irs.watermark_codec,
    )
    attack = attacker.reclaim_copy(labeled)
    print(f"  attacker re-claimed the copy as {attack.identifier}")
    outcome = sharesphere_up.upload("stolen-copy", attack.photo)
    print(f"  upload to sharesphere: {outcome.decision.value} "
          "(indistinguishable from a valid claim!)")

    print("  … the owner notices and appeals to the copy's ledger …")
    process = AppealsProcess(irs.ledgers[1], [irs.timestamp_authority])
    appeal = irs.owner_toolkit.prepare_appeal(
        receipt, vacation, process, attack.identifier, attack.photo
    )
    decision = process.adjudicate(appeal)
    print(f"  appeal verdict: {decision.verdict.value} — {decision.reason}")
    print(f"  robust-hash distance original↔copy: {decision.robust_distance:.3f}")

    sim.run(until=4 * 3600.0)
    serve = sharesphere.serve("stolen-copy")
    print(f"  sharesphere serves the stolen copy: {serve.served} ({serve.reason})")

    print("\nAggregator inventories:")
    for aggregator in (photowall, sharesphere):
        print(f"  {aggregator.name}: {aggregator.counts()}")


if __name__ == "__main__":
    main()
