#!/usr/bin/env python3
"""Docs health checks: intra-repo links + metric-name drift.

Run from anywhere inside the repository:

    python tools/check_docs.py

Two checks, both exact:

1. **Links** — every relative markdown link in the repo's ``*.md``
   files must resolve to a file (or directory) that exists. External
   links (``http(s)://``, ``mailto:``) and pure ``#fragment`` links
   are skipped; a ``path#fragment`` link is checked for the path part.
2. **Metric drift** — the union of metric names documented in
   ``docs/observability.md`` must equal the union of names emitted in
   ``src/`` (``obs.counter("...")`` / ``gauge`` / ``histogram`` call
   sites). Either direction of drift fails: an undocumented metric is
   invisible to operators, a documented-but-gone metric is a lie.

Exit status 0 on success, 1 with a per-problem report otherwise.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Markdown files checked for links (globs relative to the repo root).
DOC_GLOBS = ("*.md", "docs/*.md", "benchmarks/*.md", "examples/*.md")

#: ``[text](target)`` — good enough for the plain links these docs use.
#: Image embeds (``![alt](...)``) are skipped: the auto-extracted paper
#: dumps reference figures that were never vendored.
LINK_RE = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")

#: An emission site: ``.counter("name"`` etc. on an obs/registry object.
EMIT_RE = re.compile(r"\.(?:counter|gauge|histogram)\(\s*\"([a-z_]+)\"")

#: A documented metric: a backticked name in a table row, e.g.
#: ``| `frontend_queries_total` | counter | ...`` (labels stripped).
DOC_METRIC_RE = re.compile(r"^\|\s*`([a-z_]+)(?:\{[^}]*\})?`\s*\|")


def _doc_files() -> list[Path]:
    files: list[Path] = []
    for glob in DOC_GLOBS:
        files.extend(sorted(REPO.glob(glob)))
    return files


def check_links() -> list[str]:
    problems: list[str] = []
    for doc in _doc_files():
        text = doc.read_text(encoding="utf-8")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:  # pure fragment
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(REPO)}: broken link -> {target}"
                )
    return problems


def emitted_metrics() -> set[str]:
    names: set[str] = set()
    for source in sorted((REPO / "src").rglob("*.py")):
        if source.parent.name == "obs":
            continue  # the layer itself, not an instrumentation site
        for match in EMIT_RE.finditer(source.read_text(encoding="utf-8")):
            names.add(match.group(1))
    return names


def documented_metrics() -> set[str]:
    doc = REPO / "docs" / "observability.md"
    names: set[str] = set()
    for line in doc.read_text(encoding="utf-8").splitlines():
        match = DOC_METRIC_RE.match(line.strip())
        if match:
            names.add(match.group(1))
    return names


def check_metric_drift() -> list[str]:
    emitted = emitted_metrics()
    documented = documented_metrics()
    problems = [
        f"docs/observability.md: emitted in src/ but not documented: {name}"
        for name in sorted(emitted - documented)
    ]
    problems.extend(
        f"docs/observability.md: documented but not emitted in src/: {name}"
        for name in sorted(documented - emitted)
    )
    if not emitted:
        problems.append("found no metric emission sites in src/ (regex rot?)")
    return problems


def main() -> int:
    problems = check_links() + check_metric_drift()
    for problem in problems:
        print(f"FAIL {problem}")
    docs = len(_doc_files())
    if problems:
        print(f"docs check: {len(problems)} problem(s) across {docs} files")
        return 1
    print(
        f"docs check: OK — {docs} markdown files, "
        f"{len(documented_metrics())} metrics in sync"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
