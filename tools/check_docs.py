#!/usr/bin/env python3
"""Docs health checks: intra-repo links + metric-name drift.

Run from anywhere inside the repository:

    python tools/check_docs.py

Six checks, all exact:

1. **Links** — every relative markdown link in the repo's ``*.md``
   files must resolve to a file (or directory) that exists. External
   links (``http(s)://``, ``mailto:``) and pure ``#fragment`` links
   are skipped; a ``path#fragment`` link is checked for the path part.
2. **Metric drift** — the union of metric names documented in
   ``docs/observability.md`` must equal the union of names emitted in
   ``src/`` (``obs.counter("...")`` / ``gauge`` / ``histogram`` call
   sites). Either direction of drift fails: an undocumented metric is
   invisible to operators, a documented-but-gone metric is a lie.
3. **Lint-rule drift** — the union of rule ids documented in
   ``docs/lint.md`` must equal the union of ``@rule("...")``
   registrations under ``src/repro/analysis/``. Either direction
   fails: an undocumented rule fails CI with no reference to point at,
   a documented-but-gone rule promises a check nobody runs.
4. **Perf-case drift** — the case ids tabled in ``docs/perf.md`` must
   equal the case names in the committed ``BENCH_hotpaths.json``.
   Either direction fails: an undocumented case gates CI with no
   reference, a documented-but-gone case promises a measurement
   nobody takes.
5. **Route drift** — the ``METHOD /path`` pairs in ``docs/api.md``'s
   endpoint table must equal the ``Route("METHOD", "/path", ...)``
   registry in ``src/repro/service/routes.py``. Either direction
   fails: a served-but-undocumented endpoint is an API nobody can
   call responsibly, a documented-but-unrouted one is a 404 promised
   as a feature.
6. **Layer drift** — the layer table in ``docs/architecture.md`` must
   equal the committed contract in ``tools/layers.toml``: same layers,
   same order (order *is* rank), same kinds, same module prefixes.
   Either direction fails: the rendered contract is what reviewers
   read, the TOML is what the lint gate enforces, and they must be
   the same document.

Exit status 0 on success, 1 with a per-problem report otherwise.
"""

from __future__ import annotations

import json
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Markdown files checked for links (globs relative to the repo root).
DOC_GLOBS = ("*.md", "docs/*.md", "benchmarks/*.md", "examples/*.md")

#: ``[text](target)`` — good enough for the plain links these docs use.
#: Image embeds (``![alt](...)``) are skipped: the auto-extracted paper
#: dumps reference figures that were never vendored.
LINK_RE = re.compile(r"(?<!!)\[[^\]]*\]\(([^)\s]+)\)")

#: An emission site: ``.counter("name"`` etc. on an obs/registry object.
EMIT_RE = re.compile(r"\.(?:counter|gauge|histogram)\(\s*\"([a-z_]+)\"")

#: A documented metric: a backticked name in a table row, e.g.
#: ``| `frontend_queries_total` | counter | ...`` (labels stripped).
DOC_METRIC_RE = re.compile(r"^\|\s*`([a-z_]+)(?:\{[^}]*\})?`\s*\|")

#: A lint-rule registration: ``@rule(<first-arg>,`` or
#: ``@program_rule(<first-arg>,`` in the analysis package (matched
#: textually, so this script needs no PYTHONPATH).  The first argument
#: is either a string literal or a module constant (``RULE_ID``,
#: ``PARSE_ERROR``, ``CYCLE_RULE_ID``) resolved via RULE_CONST_RE.
RULE_REG_RE = re.compile(
    r"@(?:program_)?rule\(\s*(\"[a-z][a-z0-9-]*\"|[A-Z_]+)\s*,"
)

#: A rule-id constant: ``RULE_ID = "no-wall-clock"`` and friends.
RULE_CONST_RE = re.compile(r"^([A-Z_]+)\s*=\s*\"([a-z][a-z0-9-]*)\"", re.M)

#: A documented lint rule: the backticked id opening a table row in
#: ``docs/lint.md``, e.g. ``| `no-wall-clock` | ... |``.
DOC_RULE_RE = re.compile(r"^\|\s*`([a-z][a-z0-9-]*)`\s*\|")

#: A documented perf case: the backticked id opening a table row in
#: ``docs/perf.md``, e.g. ``| `bloom_batch_membership` | ... |``.
DOC_CASE_RE = re.compile(r"^\|\s*`([a-z][a-z0-9_]*)`\s*\|")

#: A served route: ``Route("GET", "/bloom", ...)`` in the registry
#: (matched textually, so this script needs no PYTHONPATH).
ROUTE_REG_RE = re.compile(r"Route\(\s*\"([A-Z]+)\",\s*\"(/[^\"]*)\"")

#: A documented endpoint: a table row opening with the backticked
#: method then the backticked path, e.g. ``| `GET` | `/bloom` | ...``.
DOC_ROUTE_RE = re.compile(r"^\|\s*`([A-Z]+)`\s*\|\s*`(/[^`]*)`\s*\|")

#: A contract block in ``tools/layers.toml``: the ``[[layer]]`` /
#: ``[[side]]`` / ``[[entry]]`` header, its ``name``, and its
#: ``modules`` array (matched textually, so this script needs no
#: tomllib — the lint gate itself validates the TOML properly).
CONTRACT_BLOCK_RE = re.compile(
    r"\[\[(layer|side|entry)\]\]\s*\n"
    r"name\s*=\s*\"([a-z][a-z0-9_-]*)\"\s*\n"
    r"modules\s*=\s*\[([^\]]*)\]"
)

#: A quoted module prefix inside a contract ``modules`` array.
CONTRACT_MODULE_RE = re.compile(r"\"([A-Za-z_][A-Za-z0-9_.]*)\"")

#: A documented layer: a table row in ``docs/architecture.md``'s layer
#: table, e.g. ``| 0 | `base` | layer | `repro.crypto`, `repro.filters` |``
#: (side/entry rows use ``–`` in the rank column).
DOC_LAYER_RE = re.compile(
    r"^\|\s*(?:[0-9]+|–)\s*\|\s*`([a-z][a-z0-9_-]*)`\s*"
    r"\|\s*(layer|side|entry)\s*\|\s*(.*?)\s*\|$"
)


def _doc_files() -> list[Path]:
    files: list[Path] = []
    for glob in DOC_GLOBS:
        files.extend(sorted(REPO.glob(glob)))
    return files


def check_links() -> list[str]:
    problems: list[str] = []
    for doc in _doc_files():
        text = doc.read_text(encoding="utf-8")
        for match in LINK_RE.finditer(text):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path = target.split("#", 1)[0]
            if not path:  # pure fragment
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                problems.append(
                    f"{doc.relative_to(REPO)}: broken link -> {target}"
                )
    return problems


def emitted_metrics() -> set[str]:
    names: set[str] = set()
    for source in sorted((REPO / "src").rglob("*.py")):
        if source.parent.name == "obs":
            continue  # the layer itself, not an instrumentation site
        for match in EMIT_RE.finditer(source.read_text(encoding="utf-8")):
            names.add(match.group(1))
    return names


def documented_metrics() -> set[str]:
    doc = REPO / "docs" / "observability.md"
    names: set[str] = set()
    for line in doc.read_text(encoding="utf-8").splitlines():
        match = DOC_METRIC_RE.match(line.strip())
        if match:
            names.add(match.group(1))
    return names


def check_metric_drift() -> list[str]:
    emitted = emitted_metrics()
    documented = documented_metrics()
    problems = [
        f"docs/observability.md: emitted in src/ but not documented: {name}"
        for name in sorted(emitted - documented)
    ]
    problems.extend(
        f"docs/observability.md: documented but not emitted in src/: {name}"
        for name in sorted(documented - emitted)
    )
    if not emitted:
        problems.append("found no metric emission sites in src/ (regex rot?)")
    return problems


def registered_rules() -> set[str]:
    sources = {
        source: source.read_text(encoding="utf-8")
        for source in sorted(
            (REPO / "src" / "repro" / "analysis").rglob("*.py")
        )
    }
    # Constants are resolved per file first (each rule module has its
    # own RULE_ID), then across the package (registry constants used in
    # other modules).
    global_consts: dict[str, str] = {}
    local_consts: dict[Path, dict[str, str]] = {}
    for source, text in sources.items():
        local = dict(RULE_CONST_RE.findall(text))
        local_consts[source] = local
        global_consts.update(local)
    names: set[str] = set()
    for source, text in sources.items():
        for match in RULE_REG_RE.finditer(text):
            arg = match.group(1)
            if arg.startswith('"'):
                names.add(arg.strip('"'))
            else:
                resolved = local_consts[source].get(arg) or global_consts.get(arg)
                if resolved is not None:
                    names.add(resolved)
    return names


def documented_rules() -> set[str]:
    doc = REPO / "docs" / "lint.md"
    names: set[str] = set()
    for line in doc.read_text(encoding="utf-8").splitlines():
        match = DOC_RULE_RE.match(line.strip())
        if match:
            names.add(match.group(1))
    return names


def check_rule_drift() -> list[str]:
    registered = registered_rules()
    documented = documented_rules()
    problems = [
        f"docs/lint.md: registered in repro.analysis but not documented: {name}"
        for name in sorted(registered - documented)
    ]
    problems.extend(
        f"docs/lint.md: documented but not registered in repro.analysis: {name}"
        for name in sorted(documented - registered)
    )
    if not registered:
        problems.append(
            "found no @rule registrations in src/repro/analysis (regex rot?)"
        )
    return problems


def benched_cases() -> set[str]:
    report = REPO / "BENCH_hotpaths.json"
    if not report.exists():
        return set()
    data = json.loads(report.read_text(encoding="utf-8"))
    return set(data.get("cases", {}))


def documented_cases() -> set[str]:
    doc = REPO / "docs" / "perf.md"
    names: set[str] = set()
    for line in doc.read_text(encoding="utf-8").splitlines():
        match = DOC_CASE_RE.match(line.strip())
        if match:
            names.add(match.group(1))
    return names


def check_perf_case_drift() -> list[str]:
    benched = benched_cases()
    documented = documented_cases()
    problems = [
        f"docs/perf.md: in BENCH_hotpaths.json but not documented: {name}"
        for name in sorted(benched - documented)
    ]
    problems.extend(
        f"docs/perf.md: documented but absent from BENCH_hotpaths.json: {name}"
        for name in sorted(documented - benched)
    )
    if not benched:
        problems.append(
            "BENCH_hotpaths.json missing or empty "
            "(run `python -m repro perf` and commit the report)"
        )
    return problems


def served_routes() -> set[tuple[str, str]]:
    registry = REPO / "src" / "repro" / "service" / "routes.py"
    if not registry.exists():
        return set()
    return set(ROUTE_REG_RE.findall(registry.read_text(encoding="utf-8")))


def documented_routes() -> set[tuple[str, str]]:
    doc = REPO / "docs" / "api.md"
    if not doc.exists():
        return set()
    routes: set[tuple[str, str]] = set()
    for line in doc.read_text(encoding="utf-8").splitlines():
        match = DOC_ROUTE_RE.match(line.strip())
        if match:
            routes.add((match.group(1), match.group(2)))
    return routes


def check_route_drift() -> list[str]:
    served = served_routes()
    documented = documented_routes()
    problems = [
        f"docs/api.md: served by repro.service but not documented: "
        f"{method} {path}"
        for method, path in sorted(served - documented)
    ]
    problems.extend(
        f"docs/api.md: documented but not in the route registry: "
        f"{method} {path}"
        for method, path in sorted(documented - served)
    )
    if not served:
        problems.append(
            "found no Route(...) registrations in "
            "src/repro/service/routes.py (regex rot?)"
        )
    return problems


def contract_layers() -> list[tuple[str, str, tuple[str, ...]]]:
    """``(kind, name, prefixes)`` per block, in file (= rank) order."""
    contract = REPO / "tools" / "layers.toml"
    if not contract.exists():
        return []
    text = contract.read_text(encoding="utf-8")
    return [
        (
            kind,
            name,
            tuple(CONTRACT_MODULE_RE.findall(modules)),
        )
        for kind, name, modules in CONTRACT_BLOCK_RE.findall(text)
    ]


def documented_layers() -> list[tuple[str, str, tuple[str, ...]]]:
    doc = REPO / "docs" / "architecture.md"
    if not doc.exists():
        return []
    rows: list[tuple[str, str, tuple[str, ...]]] = []
    for line in doc.read_text(encoding="utf-8").splitlines():
        match = DOC_LAYER_RE.match(line.strip())
        if match:
            name, kind, cell = match.groups()
            prefixes = tuple(
                re.findall(r"`([A-Za-z_][A-Za-z0-9_.]*)`", cell)
            )
            rows.append((kind, name, prefixes))
    return rows


def check_layer_drift() -> list[str]:
    contract = contract_layers()
    documented = documented_layers()
    problems: list[str] = []
    if not contract:
        return ["found no [[layer]] blocks in tools/layers.toml (regex rot?)"]
    if not documented:
        return [
            "docs/architecture.md: no layer-contract table rows "
            "(expected one per tools/layers.toml block)"
        ]
    # Order matters: position in layers.toml is the rank the lint gate
    # enforces, so the rendered table must list blocks in the same order.
    for index, (want, got) in enumerate(zip(contract, documented)):
        if want != got:
            problems.append(
                f"docs/architecture.md: layer table row {index} is "
                f"{got!r} but tools/layers.toml says {want!r}"
            )
    for kind, name, _ in contract[len(documented):]:
        problems.append(
            f"docs/architecture.md: [[{kind}]] {name!r} from "
            "tools/layers.toml is missing from the layer table"
        )
    for kind, name, _ in documented[len(contract):]:
        problems.append(
            f"docs/architecture.md: layer table row [[{kind}]] {name!r} "
            "has no matching block in tools/layers.toml"
        )
    return problems


def main() -> int:
    problems = (
        check_links()
        + check_metric_drift()
        + check_rule_drift()
        + check_perf_case_drift()
        + check_route_drift()
        + check_layer_drift()
    )
    for problem in problems:
        print(f"FAIL {problem}")
    docs = len(_doc_files())
    if problems:
        print(f"docs check: {len(problems)} problem(s) across {docs} files")
        return 1
    print(
        f"docs check: OK — {docs} markdown files, "
        f"{len(documented_metrics())} metrics, "
        f"{len(documented_rules())} lint rules, "
        f"{len(documented_cases())} perf cases, "
        f"{len(documented_routes())} API routes and "
        f"{len(documented_layers())} contract layers in sync"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
