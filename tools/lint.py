#!/usr/bin/env python3
"""CI entry point for the repro determinism & contract linter.

Equivalent to ``PYTHONPATH=src python -m repro lint``, but runnable
from the repository root without setting PYTHONPATH — it inserts
``src/`` itself.  The linter is dependency-free (stdlib ``ast`` only),
so like ``tools/check_docs.py`` this needs no pip install.

Usage (the CI gate):

    python tools/lint.py --strict

Advisory sweep over non-gated trees:

    python tools/lint.py --paths benchmarks examples
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.analysis.cli import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
