"""Exporters: canonical JSONL, Prometheus text, human tables."""

import json

import pytest

from repro.obs import (
    MetricsRegistry,
    Tracer,
    metrics_tables,
    prometheus_text,
    slowest_spans_table,
    span_to_dict,
    spans_to_jsonl,
    stage_breakdown,
)


def _clocked_tracer():
    state = {"t": 0.0}
    tracer = Tracer(lambda: state["t"])
    return tracer, state


class TestSpanJsonl:
    def test_empty_stream_is_empty_string(self):
        assert spans_to_jsonl([]) == ""

    def test_one_line_per_span_with_trailing_newline(self):
        tracer, state = _clocked_tracer()
        root = tracer.start("root", serial=3)
        state["t"] = 0.25
        root.event("retry", attempt=1)
        state["t"] = 1.0
        root.end(ok=True)
        text = spans_to_jsonl(tracer.finished)
        assert text.endswith("\n")
        lines = text.splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record == {
            "trace": 1,
            "span": 1,
            "parent": None,
            "name": "root",
            "start": 0.0,
            "end": 1.0,
            "duration": 1.0,
            "status": "ok",
            "tags": {"ok": True, "serial": 3},
            "events": [{"at": 0.25, "name": "retry", "attrs": {"attempt": 1}}],
        }
        # Canonical form: sorted keys, compact separators.
        assert lines[0] == json.dumps(
            record, sort_keys=True, separators=(",", ":")
        )


class TestPrometheusText:
    def test_counters_gauges_histograms(self):
        registry = MetricsRegistry()
        registry.counter("requests_total", shard="a").inc(3)
        registry.gauge("breakers_open").set(1)
        h = registry.histogram("latency_seconds", buckets=(0.1, 0.5))
        h.observe(0.05)
        h.observe(0.2)
        h.observe(2.0)
        text = prometheus_text(registry)
        lines = text.splitlines()
        assert "# TYPE requests_total counter" in lines
        assert 'requests_total{shard="a"} 3' in lines
        assert "# TYPE breakers_open gauge" in lines
        assert "breakers_open 1" in lines
        assert "# TYPE latency_seconds histogram" in lines
        # Cumulative le buckets, +Inf last, then _sum/_count.
        assert 'latency_seconds_bucket{le="0.1"} 1' in lines
        assert 'latency_seconds_bucket{le="0.5"} 2' in lines
        assert 'latency_seconds_bucket{le="+Inf"} 3' in lines
        assert "latency_seconds_sum 2.25" in lines
        assert "latency_seconds_count 3" in lines
        assert text.endswith("\n")

    def test_empty_registry_exports_nothing(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestHumanTables:
    def _spans(self):
        tracer, state = _clocked_tracer()
        for i, dur in enumerate((0.010, 0.030, 0.020)):
            state["t"] = float(i)
            span = tracer.start("frontend.status", serial=i)
            state["t"] = float(i) + dur
            span.end()
        state["t"] = 10.0
        shard = tracer.start("shard.status_batch")
        state["t"] = 10.5
        shard.end()
        return tracer.finished

    def test_stage_breakdown_aggregates_by_name(self):
        table = stage_breakdown(self._spans())
        rows = {row[0]: row for row in table.rows}
        assert rows["frontend.status"][1] == 3
        assert rows["frontend.status"][2] == "20.000"  # p50 ms
        assert rows["shard.status_batch"][1] == 1
        assert table.render()  # renders without crashing

    def test_slowest_spans_ranked_by_duration(self):
        table = slowest_spans_table(self._spans(), limit=2)
        assert len(table.rows) == 2
        assert table.rows[0][1] == "shard.status_batch"
        assert table.rows[1][1] == "frontend.status"
        assert table.rows[1][4] == "serial=1"  # the 30ms one

    def test_metrics_tables_split_scalars_and_histograms(self):
        registry = MetricsRegistry()
        registry.counter("a_total").inc()
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        tables = metrics_tables(registry)
        assert [t.title for t in tables] == ["counters and gauges", "histograms"]
        assert metrics_tables(MetricsRegistry()) == []


class TestSpanToDict:
    def test_unfinished_span_refuses_export(self):
        tracer = Tracer()
        open_span = tracer.start("pending")
        with pytest.raises(ValueError):
            span_to_dict(open_span)
