"""Span lifecycle: ids, parenting, stack discipline under exceptions."""

import pytest

from repro.obs import Tracer


class FakeClock:
    """A settable clock so tests control every timestamp."""

    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestManualSpans:
    def test_sequential_ids_and_fresh_traces(self):
        tracer = Tracer()
        a = tracer.start("a")
        b = tracer.start("b")
        assert (a.span_id, b.span_id) == (1, 2)
        # Parentless spans each mint a new trace.
        assert (a.trace_id, b.trace_id) == (1, 2)
        assert a.parent_id is None

    def test_explicit_parent_joins_the_trace(self):
        tracer = Tracer()
        root = tracer.start("root")
        child = tracer.start("child", parent=root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id

    def test_timestamps_come_from_the_clock(self):
        clock = FakeClock(10.0)
        tracer = Tracer(clock)
        span = tracer.start("op")
        clock.advance(0.5)
        span.event("retry", attempt=1)
        clock.advance(0.5)
        span.end(ok=True)
        assert span.started_at == 10.0
        assert span.ended_at == 11.0
        assert span.duration == pytest.approx(1.0)
        assert span.events == [(10.5, "retry", {"attempt": 1})]
        assert span.tags["ok"] is True

    def test_end_is_idempotent(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        span = tracer.start("op")
        span.end()
        first = span.ended_at
        clock.advance(1.0)
        span.end(late=True)
        assert span.ended_at == first
        assert "late" not in span.tags
        assert len(tracer) == 1

    def test_duration_requires_end(self):
        span = Tracer().start("op")
        with pytest.raises(ValueError):
            _ = span.duration

    def test_open_span_accounting(self):
        tracer = Tracer()
        span = tracer.start("op")
        assert tracer.open_spans == 1
        span.end()
        assert tracer.open_spans == 0
        assert tracer.by_name("op") == [span]


class TestContextManagerSpans:
    def test_nested_with_blocks_parent_automatically(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None
        assert inner.parent_id == outer.span_id
        assert inner.trace_id == outer.trace_id
        # Completion order: inner closes first.
        assert [s.name for s in tracer.finished] == ["inner", "outer"]

    def test_manual_span_inside_with_block_joins_the_stack_top(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            manual = tracer.start("manual")
        assert manual.parent_id == outer.span_id

    def test_exception_tags_error_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError, match="boom"):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise RuntimeError("boom")
        inner, outer = tracer.by_name("inner")[0], tracer.by_name("outer")[0]
        for span in (inner, outer):
            assert span.finished
            assert span.status == "error"
            assert span.tags["error"] == "RuntimeError: boom"
        # The active-span stack unwound completely.
        assert tracer.current() is None
        assert tracer.open_spans == 0

    def test_nested_exception_parenting_survives(self):
        """Children created before the raise keep correct parents."""
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("a") as a:
                with tracer.span("b") as b:
                    tracer.start("leaf").end()
                    raise ValueError("x")
        leaf = tracer.by_name("leaf")[0]
        assert leaf.parent_id == b.span_id
        assert leaf.trace_id == a.trace_id
        assert leaf.status == "ok"  # finished before the raise

    def test_success_path_leaves_status_ok(self):
        tracer = Tracer()
        with tracer.span("op") as span:
            span.set_tag(serial=7)
        assert span.status == "ok"
        assert span.tags == {"serial": 7}
