"""The determinism rule, end to end, plus span/history cross-validation.

Two runs of the same seeded traced workload must export byte-identical
JSON-lines and identical Prometheus text — every timestamp is
simulation time, every id sequential, every random draw seeded.  A
changed trace therefore *is* a changed behaviour, which is what lets
the chaos checker treat span/history disagreement as a violation.
"""

from repro.chaos.checker import ConsistencyChecker
from repro.chaos.history import HistoryRecorder
from repro.obs import Tracer
from repro.obs.demo import run_traced_workload


def _small_run(seed):
    return run_traced_workload(
        num_shards=3, seed=seed, queries=80, revocations=4
    )


class TestByteIdenticalRuns:
    def test_same_seed_same_bytes(self):
        one, two = _small_run(seed=7), _small_run(seed=7)
        jsonl_one = one.obs.export_spans_jsonl()
        assert jsonl_one == two.obs.export_spans_jsonl()
        assert jsonl_one  # the run actually traced something
        assert one.obs.export_prometheus() == two.obs.export_prometheus()
        assert one.history.signature() == two.history.signature()

    def test_different_seed_different_trace(self):
        assert (
            _small_run(seed=7).obs.export_spans_jsonl()
            != _small_run(seed=8).obs.export_spans_jsonl()
        )

    def test_traced_run_cross_validates(self):
        report = _small_run(seed=7).check
        assert report.ok, report.violations
        assert report.spans_checked == 80

    def test_chaotic_run_still_cross_validates(self):
        """Killing a replica mid-run must not desynchronise the trace."""
        run = run_traced_workload(
            num_shards=3, seed=11, queries=80, revocations=4, kill_shard=True
        )
        assert run.check.ok, run.check.violations
        assert run.answered == run.queries  # degraded reads keep answering


class TestCheckSpans:
    """Synthetic histories/traces, to pin the mismatch detection."""

    def _pair(self):
        state = {"t": 0.0}
        recorder = HistoryRecorder(lambda: state["t"])
        tracer = Tracer(lambda: state["t"])
        for serial, source in ((3, "shard"), (9, "filter")):
            op_id = recorder.begin("status", serial)
            span = tracer.start("frontend.status", serial=serial)
            state["t"] += 0.01
            recorder.complete(
                op_id, ok=True, revoked=False, source=source, degraded=False
            )
            span.end(source=source, revoked=False, degraded=False, ok=True)
            state["t"] += 0.01
        return recorder, tracer

    def _check(self, recorder, spans):
        checker = ConsistencyChecker(placement=lambda serial: ["shard-0"])
        return checker.check_spans(recorder, spans)

    def test_agreeing_channels_pass(self):
        recorder, tracer = self._pair()
        report = self._check(recorder, tracer.finished)
        assert report.ok
        assert report.spans_checked == 2

    def test_missing_span_is_a_violation(self):
        recorder, tracer = self._pair()
        report = self._check(recorder, tracer.finished[:1])
        assert not report.ok
        assert report.violations[0].invariant == "span_history_mismatch"
        assert "2 status ops" in report.violations[0].detail

    def test_disagreeing_source_is_a_violation(self):
        recorder, tracer = self._pair()
        spans = tracer.finished
        spans[1].tags["source"] = "degraded"  # the lie
        report = self._check(recorder, spans)
        assert not report.ok
        [violation] = report.violations
        assert violation.invariant == "span_history_mismatch"
        assert violation.serial == 9
        assert "source" in violation.detail

    def test_non_status_ops_are_ignored(self):
        recorder, tracer = self._pair()
        recorder.begin("revoke", 3)  # no matching span, and that's fine
        report = self._check(recorder, tracer.finished)
        assert report.ok
