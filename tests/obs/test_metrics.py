"""Metric primitives: counters, gauges, fixed-bucket histograms."""

import pytest

from repro.obs import DEFAULT_LATENCY_BUCKETS, Histogram, MetricsRegistry


class TestCounter:
    def test_increments(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_negative_rejected(self):
        counter = MetricsRegistry().counter("requests_total")
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_labelled_series_are_distinct(self):
        registry = MetricsRegistry()
        registry.counter("hits", shard="a").inc()
        registry.counter("hits", shard="b").inc(2)
        assert registry.value("hits", shard="a") == 1
        assert registry.value("hits", shard="b") == 2
        assert registry.total("hits") == 3

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x", a=1) is registry.counter("x", a=1)

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        one = registry.counter("x", a=1, b=2)
        two = registry.counter("x", b=2, a=1)
        assert one is two


class TestGauge:
    def test_set_inc_dec(self):
        gauge = MetricsRegistry().gauge("queue_depth")
        gauge.set(4)
        gauge.inc()
        gauge.dec(2)
        assert gauge.value == 3


class TestHistogramBuckets:
    def test_boundary_lands_in_its_bucket(self):
        # Cumulative-le semantics: an observation equal to a bound
        # belongs to that bound's bucket, not the next one.
        h = Histogram("lat", buckets=(1.0, 2.0, 5.0))
        h.observe(1.0)
        assert h.counts == [1, 0, 0, 0]
        h.observe(1.0000001)
        assert h.counts == [1, 1, 0, 0]
        h.observe(5.0)
        assert h.counts == [1, 1, 1, 0]

    def test_overflow_goes_to_inf_slot(self):
        h = Histogram("lat", buckets=(1.0,))
        h.observe(99.0)
        assert h.counts == [0, 1]
        assert h.cumulative() == [0, 1]

    def test_cumulative_is_monotone_and_totals(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        for v in (0.5, 0.5, 1.5, 9.0):
            h.observe(v)
        assert h.cumulative() == [2, 3, 4]
        assert h.count == 4
        assert h.total == pytest.approx(11.5)
        assert h.mean == pytest.approx(11.5 / 4)

    def test_percentile_reports_bucket_upper_bound(self):
        h = Histogram("lat", buckets=(1.0, 2.0, 5.0))
        for v in (0.1, 0.2, 0.3, 4.0):
            h.observe(v)
        assert h.percentile(50) == 1.0
        assert h.percentile(99) == 5.0

    def test_percentile_overflow_reports_last_finite_bound(self):
        h = Histogram("lat", buckets=(1.0, 2.0))
        h.observe(100.0)
        assert h.percentile(50) == 2.0

    def test_percentile_empty_and_bounds(self):
        h = Histogram("lat", buckets=(1.0,))
        assert h.percentile(50) == 0.0
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_buckets_must_increase(self):
        with pytest.raises(ValueError):
            Histogram("lat", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("lat", buckets=())

    def test_default_buckets(self):
        h = MetricsRegistry().histogram("lat")
        assert h.buckets == DEFAULT_LATENCY_BUCKETS


class TestRegistryIdentity:
    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError):
            registry.gauge("x")

    def test_histogram_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("lat", buckets=(1.0, 3.0))
        # Same buckets are fine (get-or-create).
        registry.histogram("lat", buckets=(1.0, 2.0))

    def test_all_metrics_sorted_by_name_then_labels(self):
        registry = MetricsRegistry()
        registry.counter("b")
        registry.counter("a", z=2)
        registry.counter("a", z=1)
        names = [(m.name, m.labels) for m in registry.all_metrics()]
        assert names == sorted(names)

    def test_value_defaults_to_zero(self):
        assert MetricsRegistry().value("never_touched") == 0.0
