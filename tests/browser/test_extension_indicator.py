"""Tests for the IRS browser extension and site marking."""

import numpy as np
import pytest

from repro.browser.extension import IrsBrowserExtension
from repro.browser.indicator import SiteIndicator, SiteRating, SiteReputation
from repro.core import IrsDeployment
from repro.proxy.cache import TtlLruCache


@pytest.fixture()
def env():
    irs = IrsDeployment.create(seed=23)
    photo = irs.new_photo()
    receipt, labeled = irs.owner_toolkit.claim_and_label(photo, irs.ledger)
    return irs, photo, receipt, labeled


def _extension(irs, cache=None, **kwargs):
    return IrsBrowserExtension(
        status_source=irs.registry.status,
        cache=cache,
        watermark_codec=irs.watermark_codec,
        registry=irs.registry,
        **kwargs,
    )


class TestDisplayDecisions:
    def test_unlabeled_displays(self, env):
        irs, photo, *_ = env
        extension = _extension(irs)
        decision = extension.on_image(photo)
        assert decision.display
        assert extension.stats.unlabeled == 1

    def test_labeled_unrevoked_displays(self, env):
        irs, _, _, labeled = env
        extension = _extension(irs)
        assert extension.on_image(labeled).display
        assert extension.stats.checks_sent == 1

    def test_revoked_blocked(self, env):
        irs, _, receipt, labeled = env
        irs.owner_toolkit.revoke(receipt, irs.ledger)
        extension = _extension(irs)
        decision = extension.on_image(labeled)
        assert not decision.display
        assert extension.stats.blocked == 1

    def test_cache_prevents_repeat_checks(self, env):
        irs, _, _, labeled = env
        cache = TtlLruCache(100, ttl=600, clock=lambda: 0.0)
        extension = _extension(irs, cache=cache)
        for _ in range(5):
            assert extension.on_image(labeled).display
        assert extension.stats.checks_sent == 1
        assert extension.stats.cache_hits == 4

    def test_watermark_checking_catches_stripped_labels(self, env):
        irs, _, receipt, labeled = env
        irs.owner_toolkit.revoke(receipt, irs.ledger)
        stripped = labeled.copy()
        stripped.metadata = stripped.metadata.stripped(preserve_irs=False)
        fast = _extension(irs, check_watermarks=False)
        assert fast.on_image(stripped).display  # metadata gone: invisible
        thorough = _extension(irs, check_watermarks=True)
        assert not thorough.on_image(stripped).display  # watermark found

    def test_check_identifier_fast_path(self, env):
        irs, _, receipt, _ = env
        extension = _extension(irs)
        assert extension.check_identifier(receipt.identifier).display

    def test_local_filter_short_circuits(self, env):
        from repro.ledger.export import FilterExporter
        from repro.proxy.filterset import ProxyFilterSet

        irs, _, receipt, labeled = env
        exporter = FilterExporter(irs.ledger, nbits=1 << 14, num_hashes=5)
        exporter.publish()
        filterset = ProxyFilterSet()
        filterset.subscribe(exporter)
        filterset.refresh()
        extension = _extension(irs, local_filter=filterset)
        # Not revoked -> not in filter -> short circuit, no check sent.
        assert extension.on_image(labeled).display
        assert extension.stats.filter_short_circuits == 1
        assert extension.stats.checks_sent == 0


class TestSiteIndicator:
    def test_unknown_until_enough_observations(self):
        indicator = SiteIndicator(min_observations=5)
        indicator.observe_labeled_photo("site-a")
        assert indicator.rating("site-a") is SiteRating.UNKNOWN

    def test_clean_site_rated_supporting(self):
        indicator = SiteIndicator(min_observations=5)
        for _ in range(10):
            indicator.observe_labeled_photo("site-a")
        assert indicator.rating("site-a") is SiteRating.SUPPORTS_IRS

    def test_stripping_site_rated_partial_then_no_support(self):
        indicator = SiteIndicator(min_observations=5)
        for _ in range(9):
            indicator.observe_labeled_photo("site-b")
        indicator.observe_stripped_label("site-b")
        assert indicator.rating("site-b") is SiteRating.PARTIAL
        for _ in range(12):
            indicator.observe_stripped_label("site-b")
        assert indicator.rating("site-b") is SiteRating.NO_SUPPORT

    def test_serving_revoked_is_no_support(self):
        indicator = SiteIndicator(min_observations=5)
        for _ in range(20):
            indicator.observe_labeled_photo("site-c")
        indicator.observe_revoked_served("site-c")
        assert indicator.rating("site-c") is SiteRating.NO_SUPPORT

    def test_validation(self):
        with pytest.raises(ValueError):
            SiteIndicator(min_observations=0)


class TestSiteReputation:
    def test_consensus_majority(self):
        reputation = SiteReputation()
        for _ in range(3):
            reputation.report("site-x", SiteRating.SUPPORTS_IRS)
        reputation.report("site-x", SiteRating.NO_SUPPORT)
        assert reputation.consensus("site-x") is SiteRating.SUPPORTS_IRS

    def test_unknown_reports_ignored(self):
        reputation = SiteReputation()
        reputation.report("site-y", SiteRating.UNKNOWN)
        assert reputation.consensus("site-y") is SiteRating.UNKNOWN
        assert reputation.sites_rated() == 0

    def test_ranking_penalty(self):
        reputation = SiteReputation()
        reputation.report("bad-site", SiteRating.NO_SUPPORT)
        reputation.report("good-site", SiteRating.SUPPORTS_IRS)
        assert reputation.search_ranking_penalty("bad-site") < 1.0
        assert reputation.search_ranking_penalty("good-site") == 1.0
        assert reputation.search_ranking_penalty("unrated") == 1.0

    def test_tie_break_is_deterministic(self):
        reputation = SiteReputation()
        reputation.report("split-site", SiteRating.SUPPORTS_IRS)
        reputation.report("split-site", SiteRating.NO_SUPPORT)
        first = reputation.consensus("split-site")
        assert first is reputation.consensus("split-site")
        assert first in (SiteRating.SUPPORTS_IRS, SiteRating.NO_SUPPORT)

    def test_sites_rated_counts_distinct(self):
        reputation = SiteReputation()
        reputation.report("a", SiteRating.PARTIAL)
        reputation.report("a", SiteRating.PARTIAL)
        reputation.report("b", SiteRating.SUPPORTS_IRS)
        assert reputation.sites_rated() == 2
