"""Tests for the scroll-session model (section 4.3's scrolling claim)."""

import numpy as np
import pytest

from repro.browser.scrolling import ScrollFeed, ScrollSession
from repro.netsim.latency import ConstantLatency, LogNormalLatency, dns_like_latency


@pytest.fixture()
def feed(rng):
    return ScrollFeed.generate(rng, num_images=150)


def _session(check_latency=None, speed=800.0, **kwargs):
    return ScrollSession(
        rtt=LogNormalLatency(median=0.03, sigma=0.3, cap=0.2),
        check_latency=check_latency,
        scroll_speed_px_s=speed,
        **kwargs,
    )


class TestFeed:
    def test_generate_shape(self, rng):
        feed = ScrollFeed.generate(rng, num_images=30, labeled_fraction=0.5)
        assert feed.num_images == 30
        assert 0 < sum(feed.labeled) < 30

    def test_row_layout(self, feed):
        assert feed.row_of(0) == 0
        assert feed.row_of(3) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ScrollFeed(image_sizes=[1000], labeled=[True, False])
        with pytest.raises(ValueError):
            ScrollFeed(image_sizes=[1000], labeled=[True], images_per_row=0)


class TestScrolling:
    def test_no_checks_baseline_mostly_ready(self, feed, rng):
        session = _session()
        result = session.run(feed, rng)
        # Prefetch keeps steady-state scrolling jank-free; only the very
        # first screenful can miss.
        assert result.jank_rate < 0.1
        assert result.checks_issued == 0

    def test_dns_like_checks_add_no_jank(self, feed):
        """The prototype claim: scrolling with sub-100ms checks feels
        identical."""
        session = _session(check_latency=dns_like_latency())
        with_checks, without = session.compare(feed, seed=4)
        assert with_checks.checks_issued == feed.num_images
        assert with_checks.jank_rate <= without.jank_rate + 0.01

    def test_identical_network_draws_in_compare(self, feed):
        session = _session(check_latency=ConstantLatency(0.0001))
        with_checks, without = session.compare(feed, seed=5)
        # With near-zero check latency the two runs are identical.
        assert np.allclose(with_checks.ready_times, without.ready_times, atol=1e-3)

    def test_extreme_check_latency_causes_jank(self, feed):
        slow = _session(check_latency=ConstantLatency(5.0))
        fast = _session(check_latency=ConstantLatency(0.05))
        jank_slow = slow.run(feed, np.random.default_rng(6)).jank_rate
        jank_fast = fast.run(feed, np.random.default_rng(6)).jank_rate
        assert jank_slow > jank_fast

    def test_faster_scrolling_is_harder(self, feed):
        check = ConstantLatency(0.3)
        slow_scroll = _session(check_latency=check, speed=400.0)
        fast_scroll = _session(check_latency=check, speed=4000.0)
        jank_slow = slow_scroll.run(feed, np.random.default_rng(7))
        jank_fast = fast_scroll.run(feed, np.random.default_rng(7))
        assert jank_fast.mean_jank_ms >= jank_slow.mean_jank_ms

    def test_prefetch_margin_hides_checks(self, feed):
        check = ConstantLatency(0.3)
        no_margin = ScrollSession(
            rtt=ConstantLatency(0.03),
            check_latency=check,
            prefetch_margin_px=0.0,
        )
        big_margin = ScrollSession(
            rtt=ConstantLatency(0.03),
            check_latency=check,
            prefetch_margin_px=3000.0,
        )
        jank_none = no_margin.run(feed, np.random.default_rng(8)).jank_rate
        jank_big = big_margin.run(feed, np.random.default_rng(8)).jank_rate
        assert jank_big <= jank_none

    def test_unlabeled_images_skip_checks(self, rng):
        feed = ScrollFeed.generate(rng, num_images=60, labeled_fraction=0.0)
        session = _session(check_latency=ConstantLatency(0.1))
        result = session.run(feed, np.random.default_rng(9))
        assert result.checks_issued == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            ScrollSession(rtt=ConstantLatency(0.01), scroll_speed_px_s=0)
        with pytest.raises(ValueError):
            ScrollSession(rtt=ConstantLatency(0.01), connections=0)
