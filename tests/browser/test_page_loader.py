"""Tests for the page model and the critical-rendering-path loader —
the machinery behind the section 4.3 latency claims."""

import numpy as np
import pytest

from repro.browser.loader import CheckMode, PageLoadModel
from repro.browser.page import AuxResource, ImageResource, Page
from repro.netsim.latency import ConstantLatency
from repro.workload.pages import page_sweep, pinterest_like_page, simple_article_page
from repro.core.identifiers import PhotoIdentifier


def _labeled_page(num_images=10, size=50_000):
    images = [
        ImageResource(
            name=f"i{i}",
            size_bytes=size,
            identifier=PhotoIdentifier(ledger_id="l", serial=i + 1),
        )
        for i in range(num_images)
    ]
    return Page(name="p", html_bytes=20_000, aux=[], images=images)


class TestPageModel:
    def test_counts(self):
        page = _labeled_page(5)
        assert page.num_images == 5
        assert page.num_labeled_images == 5
        assert page.total_bytes == 20_000 + 5 * 50_000

    def test_metadata_prefix_clamped(self):
        image = ImageResource(name="x", size_bytes=500, metadata_prefix_bytes=2048)
        assert image.metadata_prefix_bytes == 500

    def test_validation(self):
        with pytest.raises(ValueError):
            ImageResource(name="x", size_bytes=0)
        with pytest.raises(ValueError):
            AuxResource(name="x", size_bytes=100, kind="font")
        with pytest.raises(ValueError):
            Page(name="p", html_bytes=0)

    def test_generators(self, rng):
        page = pinterest_like_page(rng, num_images=30)
        assert page.num_images == 30
        assert page.num_labeled_images == 30  # default: all labeled
        article = simple_article_page(rng, num_images=6, labeled_fraction=0.0)
        assert article.num_labeled_images == 0
        sweep = page_sweep(rng, [10, 20])
        assert [p.num_images for p in sweep] == [10, 20]


class TestLoaderBaseline:
    def test_no_checks_no_check_delay(self, rng):
        model = PageLoadModel(rtt=ConstantLatency(0.02), mode=CheckMode.OFF)
        result = model.load(_labeled_page(), rng)
        assert result.checks_issued == 0
        assert result.total_check_delay == 0.0

    def test_page_complete_after_fcp(self, rng):
        model = PageLoadModel(rtt=ConstantLatency(0.02), mode=CheckMode.OFF)
        result = model.load(_labeled_page(), rng)
        assert result.page_complete >= result.first_contentful_paint

    def test_more_images_take_longer(self, rng):
        model = PageLoadModel(rtt=ConstantLatency(0.02), connections=2)
        small = model.load(_labeled_page(4), np.random.default_rng(1))
        large = model.load(_labeled_page(40), np.random.default_rng(1))
        assert large.page_complete > small.page_complete

    def test_connection_pool_parallelism(self, rng):
        serial = PageLoadModel(rtt=ConstantLatency(0.02), connections=1)
        parallel = PageLoadModel(rtt=ConstantLatency(0.02), connections=6)
        page = _labeled_page(12)
        t_serial = serial.load(page, np.random.default_rng(2)).page_complete
        t_parallel = parallel.load(page, np.random.default_rng(2)).page_complete
        assert t_parallel < t_serial

    def test_config_validation(self):
        with pytest.raises(ValueError):
            PageLoadModel(rtt=ConstantLatency(0.02), bandwidth_bps=0)
        with pytest.raises(ValueError):
            PageLoadModel(rtt=ConstantLatency(0.02), connections=0)
        with pytest.raises(ValueError):
            PageLoadModel(rtt=ConstantLatency(0.02), mode=CheckMode.PIPELINED)


class TestBlockingChecks:
    def test_blocking_adds_full_latency(self, rng):
        check = 0.1
        model = PageLoadModel(
            rtt=ConstantLatency(0.02),
            check_latency=ConstantLatency(check),
            mode=CheckMode.BLOCKING,
        )
        result = model.load(_labeled_page(6), rng)
        assert result.checks_issued == 6
        for timing in result.images:
            assert timing.check_delay == pytest.approx(check)

    def test_unlabeled_images_not_checked(self, rng):
        page = Page(
            name="p",
            html_bytes=10_000,
            images=[ImageResource(name="plain", size_bytes=40_000)],
        )
        model = PageLoadModel(
            rtt=ConstantLatency(0.02),
            check_latency=ConstantLatency(0.1),
            mode=CheckMode.BLOCKING,
        )
        result = model.load(page, rng)
        assert result.checks_issued == 0


class TestPipelinedChecks:
    """The paper's key mechanism: checks overlap the remaining download."""

    def test_fast_checks_add_zero_delay(self, rng):
        """Check completes before download: zero render delay (the
        pinterest claim)."""
        model = PageLoadModel(
            rtt=ConstantLatency(0.03),
            bandwidth_bps=10e6,  # 100KB image ~ 80 ms transfer
            check_latency=ConstantLatency(0.05),
            mode=CheckMode.PIPELINED,
        )
        page = _labeled_page(8, size=100_000)
        result = model.load(page, rng)
        assert result.total_check_delay == 0.0

    def test_slow_checks_add_only_excess(self, rng):
        """Check longer than the remaining download: only the excess
        delays rendering."""
        model = PageLoadModel(
            rtt=ConstantLatency(0.0),
            bandwidth_bps=8e6,  # 1 MB/s
            check_latency=ConstantLatency(0.5),
            mode=CheckMode.PIPELINED,
        )
        page = _labeled_page(1, size=102_048)  # 2048B prefix + 100KB body
        result = model.load(page, rng)
        # Remaining download after metadata = 100_000B at 1MB/s = 0.1s.
        assert result.images[0].check_delay == pytest.approx(0.4, abs=1e-6)

    def test_pipelined_never_slower_than_blocking(self, rng):
        page = _labeled_page(10)
        common = dict(
            rtt=ConstantLatency(0.02),
            check_latency=ConstantLatency(0.2),
        )
        pipelined = PageLoadModel(mode=CheckMode.PIPELINED, **common).load(
            page, np.random.default_rng(3)
        )
        blocking = PageLoadModel(mode=CheckMode.BLOCKING, **common).load(
            page, np.random.default_rng(3)
        )
        assert pipelined.page_complete <= blocking.page_complete

    def test_compare_against_baseline_isolates_checks(self):
        model = PageLoadModel(
            rtt=ConstantLatency(0.02),
            check_latency=ConstantLatency(0.01),
            mode=CheckMode.PIPELINED,
        )
        page = _labeled_page(10)
        with_checks, baseline, added = model.compare_against_baseline(page, 7)
        assert added >= 0.0
        assert with_checks.page_complete - baseline.page_complete == pytest.approx(
            added
        )
        # Identical network draws: image download_done must match.
        for a, b in zip(with_checks.images, baseline.images):
            assert a.download_done == pytest.approx(b.download_done)
