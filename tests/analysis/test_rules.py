"""Per-rule behavior against known-good and known-bad fixtures.

Each ``bad_*`` fixture carries deliberate violations at pinned lines;
each ``good_*`` fixture uses the sanctioned idioms the rule must
accept.  Assertions are on ``(line, rule)`` pairs so message rewording
doesn't churn the tests, while a moved or dropped detection does.
"""


def _locations(result):
    return sorted((f.line, f.rule) for f in result.findings)


class TestNoWallClock:
    def test_bad_fixture_findings(self, lint_fixture):
        result = lint_fixture("bad_wallclock.py", select=["no-wall-clock"])
        assert _locations(result) == [
            (8, "no-wall-clock"),  # from time import perf_counter
            (13, "no-wall-clock"),  # time.time()
            (16, "no-wall-clock"),  # time.monotonic as a default arg
            (25, "no-wall-clock"),  # datetime.datetime.now()
        ]

    def test_injected_clock_idioms_are_clean(self, lint_fixture):
        result = lint_fixture("good_wallclock.py")
        assert result.findings == []

    def test_docstring_mention_does_not_trip(self, lint_fixture):
        # good_wallclock.py's docstring names time.monotonic in prose;
        # the rule is AST-based and must not anchor to string content.
        result = lint_fixture("good_wallclock.py", select=["no-wall-clock"])
        assert result.findings == []


class TestNoUnseededRandom:
    def test_bad_fixture_findings(self, lint_fixture):
        result = lint_fixture("bad_random.py", select=["no-unseeded-random"])
        assert _locations(result) == [
            (5, "no-unseeded-random"),  # from random import shuffle
            (9, "no-unseeded-random"),  # random.random()
            (13, "no-unseeded-random"),  # np.random.default_rng()
            (17, "no-unseeded-random"),  # np.random.rand(...)
            (21, "no-unseeded-random"),  # random.Random()
        ]

    def test_seeded_idioms_are_clean(self, lint_fixture):
        result = lint_fixture("good_random.py")
        assert result.findings == []


class TestNoIterationOrderHazard:
    def test_bad_fixture_findings(self, lint_fixture):
        result = lint_fixture(
            "bad_ordering.py", select=["no-iteration-order-hazard"]
        )
        assert _locations(result) == [
            (7, "no-iteration-order-hazard"),  # for over a set
            (14, "no-iteration-order-hazard"),  # listcomp over a set
            (19, "no-iteration-order-hazard"),  # str.join over a set
            (23, "no-iteration-order-hazard"),  # list(set_literal)
        ]

    def test_sorted_and_aggregate_consumption_is_clean(self, lint_fixture):
        result = lint_fixture("good_ordering.py")
        assert result.findings == []


class TestObsPurity:
    def test_bad_fixture_findings(self, lint_fixture):
        result = lint_fixture("bad_obs.py", select=["obs-purity"])
        assert _locations(result) == [
            (9, "obs-purity"),  # unguarded call on self.obs
            (13, "obs-purity"),  # obs value in a comparison
            (19, "obs-purity"),  # obs value returned
        ]

    def test_guard_idioms_are_clean(self, lint_fixture):
        result = lint_fixture("good_obs.py")
        assert result.findings == []


class TestDeadlineDiscipline:
    def test_bad_fixture_findings(self, lint_fixture):
        result = lint_fixture(
            "cluster/bad_deadlines.py", select=["deadline-discipline"]
        )
        assert _locations(result) == [
            (6, "deadline-discipline"),  # .invoke(...) without timeout=
            (10, "deadline-discipline"),  # .call(...) without timeout=
        ]

    def test_timeout_forms_are_clean(self, lint_fixture):
        # timeout=, explicit timeout=None, **kwargs, deadline= all pass.
        result = lint_fixture("cluster/good_deadlines.py")
        assert result.findings == []

    def test_rule_only_applies_inside_rpc_dirs(self, lint_fixture, config):
        # The same calls outside an rpc_dirs segment are not RPC surface.
        from repro.analysis.engine import lint_paths, with_overrides
        from tests.analysis.conftest import FIXTURES

        narrowed = with_overrides(config, rpc_dirs=("nonexistent",))
        result = lint_paths(
            [FIXTURES / "cluster" / "bad_deadlines.py"],
            config=narrowed,
            select=["deadline-discipline"],
        )
        assert result.findings == []


class TestNoSilentExcept:
    def test_bad_fixture_findings(self, lint_fixture):
        result = lint_fixture("bad_excepts.py", select=["no-silent-except"])
        assert _locations(result) == [
            (7, "no-silent-except"),  # bare except: pass
            (14, "no-silent-except"),  # except Exception: pass
            (21, "no-silent-except"),  # except Exception: ... (empty)
        ]

    def test_narrow_or_handled_excepts_are_clean(self, lint_fixture):
        result = lint_fixture("good_excepts.py")
        assert result.findings == []


class TestFindingShape:
    def test_columns_and_paths_are_repo_relative(self, lint_fixture):
        result = lint_fixture("bad_wallclock.py")
        for finding in result.findings:
            assert finding.path == "tests/analysis/fixtures/bad_wallclock.py"
            assert finding.col >= 0
        rendered = result.findings[0].render()
        assert rendered.startswith(
            "tests/analysis/fixtures/bad_wallclock.py:8:0: no-wall-clock:"
        )
