"""Seeded-violation self-tests for the three whole-program passes.

Each pass must trip on its fixture with *exact* deterministic
findings — locations, rule ids, and messages are part of the report
contract, so these assert the full tuple, not just "something fired".
"""

from pathlib import Path

import pytest

from repro.analysis.engine import LintConfig, lint_paths, with_overrides
from repro.analysis.program.contract import (
    ContractError,
    parse_contract,
    _parse_mini_toml,
)
from repro.analysis.report import findings_to_jsonl

from tests.analysis.conftest import FIXTURES, REPO_ROOT

MINIPROG = FIXTURES / "miniprog"
BAD_ASYNC = FIXTURES / "bad_async"
ENVPROG = FIXTURES / "envprog"


def _rows(result):
    return [
        (f.path, f.line, f.rule) for f in result.findings
    ]


class TestLayering:
    def _run(self, select):
        return lint_paths(
            [MINIPROG / "src"], config=LintConfig(root=MINIPROG), select=select
        )

    def test_seeded_cycle_is_found(self):
        result = self._run(["import-cycle"])
        assert _rows(result) == [("src/pkg/alpha/a.py", 3, "import-cycle")]
        assert (
            "pkg.alpha.a -> pkg.alpha.b -> pkg.alpha.a"
            in result.findings[0].message
        )

    def test_contract_violations_exact(self):
        result = self._run(["layer-contract"])
        assert _rows(result) == [
            ("src/pkg/alpha/a.py", 4, "layer-contract"),
            ("src/pkg/stray.py", 1, "layer-contract"),
            ("tools/layers.toml", 1, "layer-contract"),
        ]
        upward, stray, ghost = result.findings
        assert "imports must point downward" in upward.message
        assert "pkg.stray matches no layer prefix" in stray.message
        assert "prefix pkg.ghost matches no module" in ghost.message

    def test_full_program_report_is_byte_deterministic(self):
        first = findings_to_jsonl(
            lint_paths(
                [MINIPROG / "src"],
                config=LintConfig(root=MINIPROG),
                program=True,
            ).findings
        )
        second = findings_to_jsonl(
            lint_paths(
                [MINIPROG / "src"],
                config=LintConfig(root=MINIPROG),
                program=True,
            ).findings
        )
        assert first == second
        assert first.count("\n") == 4  # cycle + three contract findings

    def test_missing_contract_is_a_contract_error(self, tmp_path):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "mod.py").write_text("X = 1\n", encoding="utf-8")
        with pytest.raises(ContractError):
            lint_paths(
                [tmp_path / "src"],
                config=LintConfig(root=tmp_path),
                program=True,
            )


class TestAsyncSafety:
    @pytest.fixture
    def result(self):
        config = with_overrides(
            LintConfig(root=BAD_ASYNC), routes_module="src/svc/routes.py"
        )
        return lint_paths(
            [BAD_ASYNC / "src"],
            config=config,
            select=[
                "blocking-in-async",
                "unawaited-coroutine",
                "handler-deadline",
            ],
        )

    def test_seeded_violations_exact(self, result):
        assert _rows(result) == [
            ("src/svc/app.py", 12, "handler-deadline"),
            ("src/svc/app.py", 13, "blocking-in-async"),
            ("src/svc/app.py", 14, "blocking-in-async"),
            ("src/svc/app.py", 15, "unawaited-coroutine"),
            ("src/svc/app.py", 16, "unawaited-coroutine"),
            ("src/svc/app.py", 33, "unawaited-coroutine"),
            ("src/svc/consumer.py", 7, "unawaited-coroutine"),
        ]

    def test_time_sleep_in_async_def_is_named(self, result):
        blocking = [
            f for f in result.findings if f.rule == "blocking-in-async"
        ]
        assert "time.sleep(...) inside async def 'handle_slow'" in (
            blocking[0].message
        )

    def test_sync_helper_and_awaited_calls_are_exempt(self, result):
        lines = {f.line for f in result.findings if f.path == "src/svc/app.py"}
        assert 37 not in lines  # time.sleep in a sync method
        assert 23 not in lines  # handle_good threads its deadline
        # writer.close() on an unknown object is never guessed at.
        assert all(
            "close" not in f.message for f in result.findings
        )

    def test_handler_without_award_is_exempt(self, result):
        assert all(
            "handle_fast" not in f.message for f in result.findings
        )


class TestEnvelopes:
    @pytest.fixture
    def result(self):
        config = with_overrides(
            LintConfig(root=ENVPROG),
            envelope_registry="src/svc/errors.py",
            envelope_roots=("src/svc",),
        )
        return lint_paths(
            [ENVPROG / "src"], config=config, select=["error-envelope"]
        )

    def test_seeded_violations_exact(self, result):
        assert _rows(result) == [
            ("src/svc/app.py", 7, "error-envelope"),
            ("src/svc/app.py", 11, "error-envelope"),
            ("src/svc/errors.py", 5, "error-envelope"),
        ]
        unregistered, assigned, dead = result.findings
        assert "'nope'" in unregistered.message
        assert "'also-nope'" in assigned.message
        assert "'ghost' is never constructed" in dead.message

    def test_live_kind_not_reported(self, result):
        assert all("'ok'" not in f.message for f in result.findings)

    def test_registry_rot_is_reported(self, tmp_path):
        # ERROR_STATUS built dynamically: the pass must fail loudly
        # rather than silently approving everything.
        root = tmp_path
        (root / "src").mkdir()
        (root / "src" / "errors.py").write_text(
            "ERROR_STATUS = dict(ok=200)\n", encoding="utf-8"
        )
        config = with_overrides(
            LintConfig(root=root),
            envelope_registry="src/errors.py",
            envelope_roots=("src",),
        )
        result = lint_paths(
            [root / "src"], config=config, select=["error-envelope"]
        )
        assert _rows(result) == [("src/errors.py", 1, "error-envelope")]
        assert "literal dict not found" in result.findings[0].message


class TestContractParsing:
    def test_committed_contract_parses_and_matches_minitoml(self):
        # The fallback parser and tomllib must agree on the real file.
        text = (REPO_ROOT / "tools" / "layers.toml").read_text(
            encoding="utf-8"
        )
        tomllib = pytest.importorskip("tomllib")
        assert _parse_mini_toml(text, "tools/layers.toml") == tomllib.loads(
            text
        )

    def test_fixture_contract_matches_minitoml(self):
        text = (MINIPROG / "tools" / "layers.toml").read_text(
            encoding="utf-8"
        )
        tomllib = pytest.importorskip("tomllib")
        assert _parse_mini_toml(text, "x") == tomllib.loads(text)

    def test_longest_prefix_wins(self):
        contract = parse_contract(
            'version = 1\n'
            '[[layer]]\nname = "low"\nmodules = ["repro.core.errors"]\n'
            '[[layer]]\nname = "high"\nmodules = ["repro.core"]\n',
            "x",
        )
        assert contract.assignment("repro.core.errors").name == "low"
        assert contract.assignment("repro.core.models").name == "high"
        assert contract.assignment("other") is None

    @pytest.mark.parametrize(
        "text,fragment",
        [
            ("version = 2\n", "version"),
            ("version = 1\n", "at least one"),
            (
                'version = 1\n[[layer]]\nname = "a"\nmodules = []\n',
                "non-empty",
            ),
            (
                'version = 1\n[[layer]]\nname = "a"\nmodules = ["x"]\n'
                '[[layer]]\nname = "b"\nmodules = ["x"]\n',
                "assigned twice",
            ),
            (
                'version = 1\n[[layer]]\nname = "a"\nmodules = ["x"]\n'
                '[[layer]]\nname = "a"\nmodules = ["y"]\n',
                "duplicate layer name",
            ),
            (
                'version = 1\n[[layer]]\nname = "a"\nmodules = ["not a module!"]\n',
                "bad module prefix",
            ),
        ],
    )
    def test_invalid_contracts_raise(self, text, fragment):
        with pytest.raises(ContractError, match=fragment):
            parse_contract(text, "x")

    def test_minitoml_rejects_unsupported_lines(self):
        with pytest.raises(ContractError):
            _parse_mini_toml("[table]\nkey = 1\n", "x")
        with pytest.raises(ContractError):
            _parse_mini_toml('key = [ "unterminated"\n', "x")

    def test_multiline_arrays_and_comments(self):
        data = _parse_mini_toml(
            "# header comment\n"
            "version = 1  # trailing\n"
            "[[layer]]\n"
            'name = "base"\n'
            "modules = [\n"
            '    "repro.a",  # one\n'
            '    "repro.b",\n'
            "]\n",
            "x",
        )
        assert data == {
            "version": 1,
            "layer": [{"name": "base", "modules": ["repro.a", "repro.b"]}],
        }


class TestRepositoryTree:
    def test_committed_tree_is_clean_under_program_analysis(self):
        # The headline acceptance criterion: every finding the new
        # passes raise across src/repro was fixed, not baselined.
        result = lint_paths(
            [REPO_ROOT / "src" / "repro"],
            config=LintConfig(root=REPO_ROOT),
            program=True,
        )
        assert result.findings == []
        assert result.graph is not None
        assert len(result.graph.modules) > 100
