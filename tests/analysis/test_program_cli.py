"""CLI behavior of --program: exit codes, formats, the graph artifact."""

import json

from repro.analysis.cli import main
from repro.analysis.registry import program_rule_ids

from tests.analysis.conftest import FIXTURES, REPO_ROOT

MINIPROG = FIXTURES / "miniprog"

PROGRAM_RULE_IDS = {
    "blocking-in-async",
    "unawaited-coroutine",
    "handler-deadline",
    "error-envelope",
    "import-cycle",
    "layer-contract",
}


def _miniprog(*extra):
    return ["--root", str(MINIPROG), "--paths", "src", "--program", *extra]


class TestExitCodes:
    def test_repository_head_is_clean_under_program_gate(self, capsys):
        # The committed tree passes `lint --program --strict` — the
        # CI gate this PR adds.
        code = main(
            [
                "--root",
                str(REPO_ROOT),
                "--program",
                "--strict",
                "--format",
                "jsonl",
            ]
        )
        assert code == 0
        assert capsys.readouterr().out == ""

    def test_findings_exit_one(self, capsys):
        assert main(_miniprog("--strict")) == 1
        out = capsys.readouterr().out
        assert "import-cycle" in out
        assert "layer-contract" in out

    def test_non_strict_is_advisory(self, capsys):
        assert main(_miniprog()) == 0
        assert "import-cycle" in capsys.readouterr().out

    def test_missing_contract_exits_two(self, tmp_path, capsys):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "mod.py").write_text("X = 1\n", encoding="utf-8")
        code = main(
            ["--root", str(tmp_path), "--paths", "src", "--program", "--strict"]
        )
        assert code == 2
        assert "layer contract" in capsys.readouterr().err

    def test_invalid_contract_exits_two(self, tmp_path, capsys):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "mod.py").write_text("X = 1\n", encoding="utf-8")
        (tmp_path / "tools").mkdir()
        (tmp_path / "tools" / "layers.toml").write_text(
            "version = 99\n", encoding="utf-8"
        )
        code = main(
            ["--root", str(tmp_path), "--paths", "src", "--program", "--strict"]
        )
        assert code == 2
        assert "version" in capsys.readouterr().err

    def test_unknown_rule_id_exits_two(self, capsys):
        code = main(_miniprog("--select", "no-such-rule"))
        assert code == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_selecting_a_program_rule_implies_the_pass(self, capsys):
        # `--select import-cycle` without --program still runs it.
        code = main(
            [
                "--root",
                str(MINIPROG),
                "--paths",
                "src",
                "--select",
                "import-cycle",
                "--strict",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "import-cycle" in out
        assert "layer-contract" not in out


class TestFormats:
    def test_jsonl_parity(self, capsys):
        assert main(_miniprog("--format", "jsonl")) == 0
        rows = [
            json.loads(line)
            for line in capsys.readouterr().out.splitlines()
        ]
        assert {row["rule"] for row in rows} >= {
            "import-cycle",
            "layer-contract",
        }
        assert all(
            set(row) == {"path", "line", "col", "rule", "message"}
            for row in rows
        )

    def test_table_parity(self, capsys):
        assert main(_miniprog("--format", "table")) == 0
        out = capsys.readouterr().out
        assert "import-cycle" in out
        assert "src/pkg/alpha/a.py" in out

    def test_jsonl_is_byte_identical_across_runs(self, capsys):
        assert main(_miniprog("--format", "jsonl")) == 0
        first = capsys.readouterr().out
        assert main(_miniprog("--format", "jsonl")) == 0
        assert capsys.readouterr().out == first

    def test_list_rules_includes_program_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in PROGRAM_RULE_IDS:
            assert rule_id in out

    def test_registry_matches_expected_ids(self):
        assert set(program_rule_ids()) == PROGRAM_RULE_IDS


class TestGraphArtifact:
    def test_write_then_reuse_is_identical(self, tmp_path, capsys):
        artifact = tmp_path / "graph.json"
        assert (
            main(_miniprog("--write-graph", str(artifact), "--format", "jsonl"))
            == 0
        )
        first_out = capsys.readouterr().out
        first_bytes = artifact.read_text(encoding="utf-8")
        # Second run consumes the artifact (hashes still match) and
        # must produce the same findings and the same artifact bytes.
        assert (
            main(
                _miniprog(
                    "--graph",
                    str(artifact),
                    "--write-graph",
                    str(artifact),
                    "--format",
                    "jsonl",
                )
            )
            == 0
        )
        assert capsys.readouterr().out == first_out
        assert artifact.read_text(encoding="utf-8") == first_bytes

    def test_stale_artifact_is_rebuilt(self, tmp_path, capsys):
        artifact = tmp_path / "graph.json"
        data = {"version": 1, "modules": {}, "edges": []}
        artifact.write_text(json.dumps(data), encoding="utf-8")
        # Empty module set can't match the fixture: silently rebuilt.
        assert main(_miniprog("--graph", str(artifact), "--strict")) == 1
        assert "import-cycle" in capsys.readouterr().out

    def test_corrupt_artifact_is_ignored_with_a_note(self, tmp_path, capsys):
        artifact = tmp_path / "graph.json"
        artifact.write_text("not json", encoding="utf-8")
        assert main(_miniprog("--graph", str(artifact), "--strict")) == 1
        captured = capsys.readouterr()
        assert "ignoring graph artifact" in captured.err
        assert "import-cycle" in captured.out

    def test_write_graph_requires_program(self, tmp_path, capsys):
        artifact = tmp_path / "graph.json"
        code = main(
            [
                "--root",
                str(MINIPROG),
                "--paths",
                "src",
                "--write-graph",
                str(artifact),
            ]
        )
        assert code == 2
        assert "requires --program" in capsys.readouterr().err
        assert not artifact.exists()
