"""Shared fixtures for the lint test suite."""

from pathlib import Path

import pytest

from repro.analysis.engine import LintConfig, lint_paths, repo_root

FIXTURES = Path(__file__).parent / "fixtures"
REPO_ROOT = repo_root(Path(__file__).parent)


@pytest.fixture
def config():
    return LintConfig(root=REPO_ROOT)


@pytest.fixture
def lint_fixture(config):
    """Lint one fixture file by name; returns the LintResult."""

    def _lint(name, select=None, **kwargs):
        return lint_paths(
            [FIXTURES / name], config=config, select=select, **kwargs
        )

    return _lint
