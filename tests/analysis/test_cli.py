"""CLI behavior: the strict gate, config overlay, and entry points."""

import subprocess
import sys

import pytest

from repro.analysis.cli import DEFAULT_BASELINE, DEFAULT_PATHS, main
from repro.analysis.engine import LintConfig

from tests.analysis.conftest import REPO_ROOT

RULE_IDS = {
    "no-wall-clock",
    "no-unseeded-random",
    "no-iteration-order-hazard",
    "obs-purity",
    "deadline-discipline",
    "no-silent-except",
    "parse-error",
    "invalid-suppression",
}


def _violating_tree(tmp_path):
    """A tiny repo tree with one wall-clock and one RNG violation."""
    pkg = tmp_path / "src"
    pkg.mkdir()
    (pkg / "mod.py").write_text(
        "import random\n"
        "import time\n"
        "\n"
        "def f():\n"
        "    return time.time() + random.random()\n",
        encoding="utf-8",
    )
    return pkg


class TestStrictGate:
    def test_repository_head_is_clean(self, capsys):
        # The committed tree must pass its own gate with an empty
        # baseline — the headline acceptance criterion.
        code = main(
            ["--root", str(REPO_ROOT), "--strict", "--format", "jsonl"]
        )
        assert code == 0
        assert capsys.readouterr().out == ""

    def test_injected_violations_fail_and_are_named(self, tmp_path, capsys):
        _violating_tree(tmp_path)
        code = main(
            ["--root", str(tmp_path), "--paths", "src", "--strict"]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "src/mod.py" in out
        assert "no-wall-clock" in out
        assert "no-unseeded-random" in out
        assert ":5:" in out  # both violations sit on line 5

    def test_non_strict_run_is_advisory(self, tmp_path, capsys):
        _violating_tree(tmp_path)
        code = main(["--root", str(tmp_path), "--paths", "src"])
        assert code == 0
        assert "no-wall-clock" in capsys.readouterr().out

    def test_proxy_cache_docstring_regression(self, capsys):
        # proxy/cache.py discusses time.monotonic in prose; the
        # AST-based rule must not flag documentation.
        cache = REPO_ROOT / "src" / "repro" / "proxy" / "cache.py"
        assert "time.monotonic" in cache.read_text(encoding="utf-8")
        code = main(
            [
                "--root",
                str(REPO_ROOT),
                "--paths",
                "src/repro/proxy/cache.py",
                "--select",
                "no-wall-clock",
                "--strict",
            ]
        )
        assert code == 0


class TestBaselineFlow:
    def test_write_then_gate_then_disable(self, tmp_path, capsys):
        _violating_tree(tmp_path)
        baseline = tmp_path / "bl.json"
        assert (
            main(
                [
                    "--root",
                    str(tmp_path),
                    "--paths",
                    "src",
                    "--write-baseline",
                    "--baseline",
                    str(baseline),
                ]
            )
            == 0
        )
        assert baseline.exists()
        # Grandfathered: the gate passes with the baseline applied...
        assert (
            main(
                [
                    "--root",
                    str(tmp_path),
                    "--paths",
                    "src",
                    "--strict",
                    "--baseline",
                    str(baseline),
                ]
            )
            == 0
        )
        # ...and fails when the baseline is explicitly disabled.
        assert (
            main(
                [
                    "--root",
                    str(tmp_path),
                    "--paths",
                    "src",
                    "--strict",
                    "--baseline",
                    "",
                ]
            )
            == 1
        )
        capsys.readouterr()

    def test_write_baseline_without_path_errors(self, tmp_path, capsys):
        _violating_tree(tmp_path)
        code = main(
            [
                "--root",
                str(tmp_path),
                "--paths",
                "src",
                "--write-baseline",
                "--baseline",
                "",
            ]
        )
        assert code == 2
        assert "baseline path" in capsys.readouterr().err


class TestConfig:
    def test_list_rules_covers_the_registry(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_IDS:
            assert rule_id in out

    def test_pyproject_section_matches_code_defaults(self):
        # On 3.10 (no tomllib) the code defaults stand alone; this test
        # pins the two sources together wherever TOML is readable.
        tomllib = pytest.importorskip("tomllib")
        with (REPO_ROOT / "pyproject.toml").open("rb") as handle:
            section = tomllib.load(handle)["tool"]["repro_lint"]
        defaults = LintConfig()
        assert section["paths"] == list(DEFAULT_PATHS)
        assert section["baseline"] == DEFAULT_BASELINE
        assert tuple(section["allow_wall_clock"]) == defaults.allow_wall_clock
        assert tuple(section["rpc_dirs"]) == defaults.rpc_dirs
        assert tuple(section["rpc_methods"]) == defaults.rpc_methods
        assert (
            tuple(section["obs_exempt_segments"])
            == defaults.obs_exempt_segments
        )
        assert section["contract_path"] == defaults.contract_path
        assert section["envelope_registry"] == defaults.envelope_registry
        assert tuple(section["envelope_roots"]) == defaults.envelope_roots
        assert section["routes_module"] == defaults.routes_module


class TestEntryPoints:
    @staticmethod
    def _env():
        import os

        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        return env

    def test_module_entry_point(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--list-rules"],
            cwd=REPO_ROOT,
            env=self._env(),
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "no-wall-clock" in proc.stdout

    def test_tools_script_entry_point(self):
        proc = subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / "lint.py"), "--list-rules"],
            cwd=REPO_ROOT,
            env=self._env(),
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert proc.returncode == 0
        assert "no-wall-clock" in proc.stdout
