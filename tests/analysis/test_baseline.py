"""Baseline round-trip, line-insensitive matching, multiset budget."""

import json

import pytest

from repro.analysis.baseline import Baseline, load_baseline, write_baseline
from repro.analysis.engine import LintConfig, lint_paths
from repro.analysis.findings import Finding


def _finding(path="pkg/mod.py", line=10, col=4, rule="no-wall-clock",
             message="wall-clock access time.time"):
    return Finding(path=path, line=line, col=col, rule=rule, message=message)


class TestRoundTrip:
    def test_write_then_load_preserves_entries(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [_finding(line=3), _finding(path="pkg/other.py", line=9)]
        write_baseline(path, findings)
        loaded = load_baseline(path)
        assert len(loaded) == 2
        assert [e.path for e in loaded.entries] == [
            "pkg/mod.py",
            "pkg/other.py",
        ]

    def test_written_file_is_stable_bytes(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        findings = [_finding(), _finding(path="pkg/other.py")]
        write_baseline(first, findings)
        write_baseline(second, list(reversed(findings)))
        assert first.read_bytes() == second.read_bytes()
        assert first.read_text(encoding="utf-8").endswith("\n")

    def test_missing_file_is_empty_baseline(self, tmp_path):
        loaded = load_baseline(tmp_path / "nope.json")
        assert len(loaded) == 0

    def test_unsupported_version_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 99, "findings": []}))
        with pytest.raises(ValueError, match="version"):
            load_baseline(path)

    def test_committed_baseline_is_empty(self):
        from tests.analysis.conftest import REPO_ROOT

        committed = load_baseline(REPO_ROOT / "tools" / "lint_baseline.json")
        assert len(committed) == 0


class TestSplit:
    def test_matching_ignores_line_numbers(self):
        baseline = Baseline([_finding(line=10)])
        new, baselined = baseline.split([_finding(line=99)])
        assert new == []
        assert [f.line for f in baselined] == [99]

    def test_message_and_rule_must_match(self):
        baseline = Baseline([_finding()])
        new, baselined = baseline.split([_finding(rule="no-unseeded-random")])
        assert baselined == []
        assert len(new) == 1

    def test_each_entry_absorbs_at_most_one_finding(self):
        # Two identical findings against a one-entry baseline: the
        # second is new debt and must fail the gate.
        baseline = Baseline([_finding(line=10)])
        new, baselined = baseline.split(
            [_finding(line=10), _finding(line=20)]
        )
        assert len(baselined) == 1
        assert len(new) == 1

    def test_fixing_one_of_two_shrinks_the_debt(self):
        baseline = Baseline([_finding(line=10), _finding(line=20)])
        new, baselined = baseline.split([_finding(line=15)])
        assert new == []
        assert len(baselined) == 1


class TestEngineIntegration:
    def test_baseline_moves_findings_out_of_the_gate(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import time\nnow = time.time()\n", encoding="utf-8")
        config = LintConfig(root=tmp_path)
        first = lint_paths([target], config=config)
        assert first.findings and not first.clean

        baseline_path = tmp_path / "baseline.json"
        write_baseline(baseline_path, first.findings)
        second = lint_paths(
            [target], config=config, baseline_path=baseline_path
        )
        assert second.clean
        assert len(second.baselined) == len(first.findings)

    def test_new_finding_alongside_baselined_still_fails(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("import time\nnow = time.time()\n", encoding="utf-8")
        config = LintConfig(root=tmp_path)
        baseline_path = tmp_path / "baseline.json"
        write_baseline(
            baseline_path, lint_paths([target], config=config).findings
        )
        target.write_text(
            "import time\n"
            "now = time.time()\n"
            "later = time.monotonic()\n",
            encoding="utf-8",
        )
        result = lint_paths(
            [target], config=config, baseline_path=baseline_path
        )
        assert len(result.baselined) == 1
        assert len(result.findings) == 1
        assert "time.monotonic" in result.findings[0].message
