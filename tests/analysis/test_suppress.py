"""Suppression parsing and engine-level suppression semantics."""

import textwrap

from repro.analysis.engine import LintConfig, lint_paths
from repro.analysis.suppress import Suppression, parse_suppressions

from tests.analysis.conftest import REPO_ROOT


def _parse(source):
    return parse_suppressions(textwrap.dedent(source).splitlines())


class TestParseSuppressions:
    def test_well_formed_directive(self):
        by_line, problems = _parse(
            """\
            x = 1
            y = f()  # repro-lint: allow[no-wall-clock] measured on purpose
            """
        )
        assert problems == []
        assert by_line == {
            2: Suppression(
                line=2, rule="no-wall-clock", reason="measured on purpose"
            )
        }

    def test_missing_reason_is_a_problem(self):
        by_line, problems = _parse(
            "y = f()  # repro-lint: allow[no-wall-clock]\n"
        )
        assert by_line == {}
        assert len(problems) == 1
        line, message = problems[0]
        assert line == 1
        assert "no reason" in message

    def test_malformed_rule_id_is_a_problem(self):
        by_line, problems = _parse(
            "y = f()  # repro-lint: allow[Not A Rule] because\n"
        )
        assert by_line == {}
        assert problems[0][0] == 1
        assert "invalid rule id" in problems[0][1]

    def test_unparseable_attempt_is_a_problem(self):
        # Typoed syntax must not be silently skipped.
        by_line, problems = _parse(
            "y = f()  # repro-lint allow(no-wall-clock) oops\n"
        )
        assert by_line == {}
        assert problems[0][0] == 1
        assert "unparseable" in problems[0][1]

    def test_plain_comments_are_ignored(self):
        by_line, problems = _parse(
            """\
            # an ordinary comment about linting in general
            x = 1  # not a directive
            """
        )
        assert by_line == {}
        assert problems == []

    def test_covers_same_line_and_line_above_only(self):
        suppression = Suppression(line=10, rule="no-wall-clock", reason="r")
        assert suppression.covers(10)
        assert suppression.covers(11)
        assert not suppression.covers(9)
        assert not suppression.covers(12)


class TestEngineSuppression:
    def test_bad_suppressed_fixture_partition(self, lint_fixture):
        result = lint_fixture("bad_suppressed.py")
        # Covered: same-line (7) and line-above (11 covering 12).
        suppressed = sorted(
            (finding.line, suppression.line)
            for finding, suppression in result.suppressed
        )
        assert suppressed == [(7, 7), (12, 11)]
        # Everything else stays a finding, including the malformed
        # directives themselves (invalid-suppression at col 0).
        assert sorted((f.line, f.col, f.rule) for f in result.findings) == [
            (18, 11, "no-wall-clock"),  # directive two lines up: no cover
            (22, 11, "no-wall-clock"),  # directive names the wrong rule
            (26, 0, "invalid-suppression"),  # reason-less directive
            (26, 11, "no-wall-clock"),  # ... which therefore doesn't cover
            (30, 0, "invalid-suppression"),  # unknown rule id
            (30, 11, "no-wall-clock"),  # ... which therefore doesn't cover
        ]

    def test_unknown_rule_message_names_the_id(self, lint_fixture):
        result = lint_fixture("bad_suppressed.py")
        messages = [
            f.message for f in result.findings if f.rule == "invalid-suppression"
        ]
        assert any("'no-such-rule'" in message for message in messages)

    def test_invalid_suppression_cannot_be_suppressed(self, tmp_path):
        target = tmp_path / "meta.py"
        target.write_text(
            "# repro-lint: allow[invalid-suppression] trying to self-silence\n"
            "x = 1\n",
            encoding="utf-8",
        )
        result = lint_paths([target], config=LintConfig(root=tmp_path))
        assert [(f.rule, f.line) for f in result.findings] == [
            ("invalid-suppression", 1)
        ]
        assert "cannot be suppressed" in result.findings[0].message
        assert result.suppressed == []

    def test_parse_error_cannot_be_suppressed(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text(
            "# repro-lint: allow[parse-error] wishful thinking\n"
            "def broken(:\n",
            encoding="utf-8",
        )
        result = lint_paths([target], config=LintConfig(root=tmp_path))
        rules = {f.rule for f in result.findings}
        # The file never parses, so only parse-error is reported and no
        # suppression (parseable or not) can absorb it.
        assert rules == {"parse-error"}
        assert result.suppressed == []

    def test_suppression_in_repo_tree_paths(self, lint_fixture):
        # Suppressed findings still carry repo-relative paths for the
        # verbose report.
        result = lint_fixture("bad_suppressed.py")
        for finding, _ in result.suppressed:
            assert finding.path == "tests/analysis/fixtures/bad_suppressed.py"
            assert finding.path.startswith("tests/")
        assert REPO_ROOT.joinpath(result.suppressed[0][0].path).exists()
