"""The JSONL report is a regression artifact: same tree, same bytes."""

import json
import shutil

from repro.analysis.engine import LintConfig, lint_paths
from repro.analysis.report import (
    findings_to_jsonl,
    render_summary,
    render_table,
)

from tests.analysis.conftest import FIXTURES


def _fixture_files():
    return sorted(FIXTURES.rglob("*.py"))


class TestJsonlDeterminism:
    def test_repeated_runs_are_byte_identical(self, config):
        first = findings_to_jsonl(
            lint_paths([FIXTURES], config=config).findings
        )
        second = findings_to_jsonl(
            lint_paths([FIXTURES], config=config).findings
        )
        assert first == second
        assert first  # the bad_* fixtures guarantee a non-empty report

    def test_input_order_does_not_change_bytes(self, config):
        forward = lint_paths(_fixture_files(), config=config)
        backward = lint_paths(
            list(reversed(_fixture_files())), config=config
        )
        assert findings_to_jsonl(forward.findings) == findings_to_jsonl(
            backward.findings
        )

    def test_lines_are_canonical_json(self, config):
        text = findings_to_jsonl(lint_paths([FIXTURES], config=config).findings)
        assert text.endswith("\n")
        for line in text.splitlines():
            record = json.loads(line)
            assert set(record) == {"path", "line", "col", "rule", "message"}
            # canonical form: sorted keys, no whitespace padding.
            assert line == json.dumps(
                record, sort_keys=True, separators=(",", ":")
            )

    def test_rows_are_sorted_by_location(self, config):
        text = findings_to_jsonl(lint_paths([FIXTURES], config=config).findings)
        rows = [json.loads(line) for line in text.splitlines()]
        keys = [
            (r["path"], r["line"], r["col"], r["rule"], r["message"])
            for r in rows
        ]
        assert keys == sorted(keys)

    def test_empty_result_is_empty_string(self):
        assert findings_to_jsonl([]) == ""


class TestTableReport:
    def test_summary_counts(self, config):
        result = lint_paths([FIXTURES / "bad_suppressed.py"], config=config)
        summary = render_summary(result)
        assert "checked 1 files" in summary
        assert "6 findings" in summary
        assert "2 suppressed" in summary

    def test_verbose_table_includes_suppressed(self, config):
        result = lint_paths([FIXTURES / "bad_suppressed.py"], config=config)
        quiet = render_table(result, verbose=False)
        verbose = render_table(result, verbose=True)
        assert "no-wall-clock" in quiet
        assert len(verbose) > len(quiet)


class TestParseErrors:
    def test_unparseable_file_is_a_finding_not_a_crash(self, tmp_path):
        # The fixture ships with a non-.py suffix so neither pytest nor
        # the repo-wide lint walk trips over it; the engine sees it only
        # once installed as real module source.
        target = tmp_path / "parse_error.py"
        shutil.copy(FIXTURES / "parse_error.py.fixture", target)
        result = lint_paths([target], config=LintConfig(root=tmp_path))
        assert result.files_checked == 1
        assert [f.rule for f in result.findings] == ["parse-error"]
        finding = result.findings[0]
        assert finding.path == "parse_error.py"
        assert finding.line >= 1
        assert "does not parse" in finding.message

    def test_parse_error_report_is_deterministic(self, tmp_path):
        target = tmp_path / "parse_error.py"
        shutil.copy(FIXTURES / "parse_error.py.fixture", target)
        config = LintConfig(root=tmp_path)
        first = findings_to_jsonl(lint_paths([target], config=config).findings)
        second = findings_to_jsonl(lint_paths([target], config=config).findings)
        assert first == second
