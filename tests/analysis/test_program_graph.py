"""Import-graph construction: naming, resolution, flags, determinism."""

from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.program.graph import (
    build_graph,
    load_graph,
    module_name_for_rel,
)
from repro.analysis.source import parse_module

_TREE = {
    "src/pkg/__init__.py": "from pkg import util\n",
    "src/pkg/util.py": "VALUE = 1\n",
    "src/pkg/core.py": (
        "from typing import TYPE_CHECKING\n"
        "import pkg.util\n"
        "if TYPE_CHECKING:\n"
        "    from pkg import shapes\n"
        "def late():\n"
        "    from pkg import util\n"
        "    return util.VALUE\n"
    ),
    "src/pkg/shapes.py": "import pkg.core\n",
    "src/pkg/relative.py": "from . import util\n",
}


def _parse_tree(tmp_path, tree=None):
    modules = {}
    for rel, text in (tree or _TREE).items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        modules[rel] = parse_module(path, rel)
    return modules


class TestNaming:
    @pytest.mark.parametrize(
        "rel,expected",
        [
            ("src/repro/cluster/ring.py", "repro.cluster.ring"),
            ("src/repro/__init__.py", "repro"),
            ("src/repro/core/__init__.py", "repro.core"),
            ("tools/lint.py", "tools.lint"),
        ],
    )
    def test_module_name_for_rel(self, rel, expected):
        assert module_name_for_rel(rel) == expected


class TestResolution:
    def test_from_import_prefers_the_submodule(self, tmp_path):
        # `from pkg import util` must read as pkg.* -> pkg.util, not as
        # a dependency on the package __init__ (which would fabricate a
        # cycle out of every re-export).
        graph = build_graph(_parse_tree(tmp_path))
        pairs = {(e.src, e.dst) for e in graph.edges}
        assert ("pkg", "pkg.util") in pairs
        assert ("pkg.core", "pkg.util") in pairs
        assert ("pkg.core", "pkg") not in pairs

    def test_relative_import_resolves(self, tmp_path):
        graph = build_graph(_parse_tree(tmp_path))
        assert ("pkg.relative", "pkg.util") in {
            (e.src, e.dst) for e in graph.edges
        }

    def test_lazy_and_typing_flags(self, tmp_path):
        graph = build_graph(_parse_tree(tmp_path))
        by_pair = {(e.src, e.dst, e.lazy, e.typing_only) for e in graph.edges}
        # core imports util twice: top-level and inside late().
        assert ("pkg.core", "pkg.util", False, False) in by_pair
        assert ("pkg.core", "pkg.util", True, False) in by_pair
        # the TYPE_CHECKING import carries no runtime coupling.
        assert ("pkg.core", "pkg.shapes", False, True) in by_pair
        assert not any(
            e.typing_only for e in graph.import_time_edges()
        ) and not any(e.lazy for e in graph.import_time_edges())

    def test_external_imports_are_ignored(self, tmp_path):
        graph = build_graph(
            _parse_tree(
                tmp_path,
                {"src/pkg/one.py": "import os\nfrom json import loads\n"},
            )
        )
        assert graph.edges == []


class TestDeterminism:
    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_order_independent(self, data, tmp_path_factory):
        # The serialized graph must not depend on the order modules
        # arrive in — dict insertion order is an implementation detail
        # of the caller, never of the artifact.
        tmp_path = tmp_path_factory.mktemp("graph")
        modules = _parse_tree(tmp_path)
        rels = data.draw(st.permutations(sorted(modules)))
        shuffled = {rel: modules[rel] for rel in rels}
        assert build_graph(shuffled).to_json() == build_graph(modules).to_json()

    def test_artifact_round_trips(self, tmp_path):
        graph = build_graph(_parse_tree(tmp_path))
        loaded = load_graph(graph.to_json())
        assert loaded.to_json() == graph.to_json()
        assert loaded.edges == graph.edges
        assert loaded.modules == graph.modules

    def test_artifact_version_rejected(self):
        with pytest.raises(ValueError):
            load_graph('{"version": 99, "modules": {}, "edges": []}\n')

    def test_matches_detects_content_change(self, tmp_path):
        modules = _parse_tree(tmp_path)
        graph = build_graph(modules)
        assert graph.matches(modules)
        rel = "src/pkg/util.py"
        path = tmp_path / rel
        path.write_text("VALUE = 2\n", encoding="utf-8")
        modules[rel] = parse_module(path, rel)
        assert not graph.matches(modules)
        del modules[rel]
        assert not graph.matches(modules)
