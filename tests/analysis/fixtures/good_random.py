"""Fixture: seeded randomness idioms that must pass."""

import random
import numpy as np


def seeded_rng(seed: int):
    return np.random.default_rng(seed)


def seeded_literal():
    return np.random.default_rng(0)


def seeded_stdlib(seed: int):
    return random.Random(seed)


def injected(rng: np.random.Generator):
    return rng.integers(0, 10)
