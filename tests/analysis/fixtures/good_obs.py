"""Fixture: the three guard idioms obs-purity must accept."""


class Frontend:
    def __init__(self, obs=None):
        self.obs = obs

    def block_guard(self):
        if self.obs is not None:
            self.obs.counter("queries_total").inc()
            span = self.obs.start("frontend.status")
            span.end(ok=True)

    def short_circuit(self):
        self.obs and self.obs.counter("queries_total").inc()

    def early_return(self, obs):
        if obs is None:
            return None
        obs.gauge("inflight").set(1)
        # One obs value feeding another obs call, as a visible chain.
        obs.histogram("latency_seconds").observe(obs.now())
        return None
