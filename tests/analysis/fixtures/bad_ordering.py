"""Fixture: set-iteration order baked into ordered output."""


def loop_appends(names):
    seen = set(names)
    out = []
    for name in seen:  # line 7: order reaches an append
        out.append(name)
    return out


def comprehension(names):
    seen = set(names)
    return [name for name in seen]  # line 14: ordered list from a set


def joined(names):
    seen = set(names)
    return ",".join(seen)  # line 19: order reaches the string


def listed():
    return list({"a", "b", "c"})  # line 23: conversion keeps order
