"""Fixture: exception handling the rule must accept."""


class ShardDown(Exception):
    pass


def narrow_silent(handler):
    # A narrow type documents exactly what is ignored.
    try:
        handler()
    except ShardDown:
        pass


def broad_handled(handler, errors):
    # Broad, but the failure becomes data.
    try:
        handler()
    except Exception as exc:
        errors.append(str(exc))
