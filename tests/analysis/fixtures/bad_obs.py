"""Fixture: obs-purity violations — unguarded and value-leaking."""


class Frontend:
    def __init__(self, obs=None):
        self.obs = obs

    def unguarded(self):
        self.obs.counter("queries_total").inc()  # line 9

    def leaks_into_logic(self):
        if self.obs is not None:
            if self.obs.now() > 1.0:  # line 13: value gates control flow
                return "late"
        return "early"

    def leaks_into_return(self):
        if self.obs is not None:
            return self.obs.now()  # line 19: value escapes via return
        return 0.0
