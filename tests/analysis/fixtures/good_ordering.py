"""Fixture: order-insensitive set consumption that must pass."""


def sorted_first(names):
    seen = set(names)
    return [name.upper() for name in sorted(seen)]


def aggregates(values):
    seen = set(values)
    return sum(seen), len(seen), min(seen), max(seen)


def membership_loop(names, allowed):
    seen = set(names)
    return all(name in allowed for name in seen)


def dict_order(mapping):
    # dicts are insertion-ordered; iterating one is deterministic.
    return [key for key in mapping]
