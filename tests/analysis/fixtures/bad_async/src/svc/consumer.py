"""Cross-module unawaited coroutine: resolved via the program context."""

from svc.app import fetch


async def drive():
    fetch("k")  # seeded: unawaited-coroutine (cross-module async def)
    writer = Stream()
    writer.close()  # attribute call on an unknown object: never guessed at
    return await fetch("k")


class Stream:
    def close(self):
        return None
