"""Fixture route registry: names the handlers the deadline pass audits."""

from collections import namedtuple

Route = namedtuple("Route", "method path handler summary")

ROUTES = (
    Route("GET", "/slow", "handle_slow", "awaits without a deadline"),
    Route("GET", "/fast", "handle_fast", "no awaits, exempt"),
    Route("GET", "/good", "handle_good", "threads the deadline"),
)
