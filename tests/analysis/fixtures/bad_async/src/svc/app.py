"""Seeded async-safety violations, one per detection shape."""

import asyncio
import time


async def fetch(key):
    await asyncio.sleep(0)
    return key


async def handle_slow(request):
    time.sleep(0.1)  # seeded: blocking-in-async
    data = open("cache.json").read()  # seeded: blocking-in-async (sync open)
    fetch(request)  # seeded: unawaited-coroutine (local async def)
    asyncio.sleep(0.5)  # seeded: unawaited-coroutine (asyncio factory)
    return await fetch(data)  # handler awaits, never mentions a deadline


async def handle_fast(request):
    return {"status": "ok"}  # no await: exempt from handler-deadline


async def handle_good(request, deadline=None):
    return await asyncio.wait_for(fetch(request), timeout=deadline)


class Worker:
    async def step(self):
        return 1

    async def run(self):
        self.step()  # seeded: unawaited-coroutine (self.<async method>)
        await self.step()

    def sync_helper(self):
        time.sleep(0.1)  # nearest function is sync: not flagged here
