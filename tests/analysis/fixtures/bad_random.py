"""Fixture: unseeded randomness in every shape the rule covers."""

import random
import numpy as np
from random import shuffle


def module_stream():
    return random.random()  # line 9: process-global stream


def unseeded_ctor():
    return np.random.default_rng()  # line 13: entropy-seeded


def legacy_numpy():
    return np.random.rand(3)  # line 17: legacy global generator


def unseeded_stdlib():
    return random.Random()  # line 21: no seed argument


def imported_name(items):
    shuffle(items)  # flagged at the import, line 5
    return items
