"""Fixture: suppression mechanics — valid, covering, and malformed."""

import time


def same_line():
    return time.time()  # repro-lint: allow[no-wall-clock] fixture exercises same-line coverage


def line_above():
    # repro-lint: allow[no-wall-clock] fixture exercises line-above coverage
    return time.time()


def not_covered():
    # repro-lint: allow[no-wall-clock] two lines above the finding: does not cover

    return time.time()  # line 18: still a finding


def wrong_rule():
    return time.time()  # repro-lint: allow[no-silent-except] rule mismatch: does not cover


def missing_reason():
    return time.time()  # repro-lint: allow[no-wall-clock]


def unknown_rule():
    return time.time()  # repro-lint: allow[no-such-rule] reason given but rule unknown
