"""Fixture: injected-clock idioms that must not trip no-wall-clock.

Users pass clock= (e.g. the simulator clock or time.monotonic) — that
sentence lives in prose, where the AST cannot see it.
"""


class Cache:
    def __init__(self, clock):
        self._clock = clock  # injected; the sim clock in every run

    def now(self):
        return self._clock()
