"""Fixture: silent exception swallowing."""


def bare(handler):
    try:
        handler()
    except:  # line 7: catches KeyboardInterrupt too
        pass


def broad_silent(handler):
    try:
        handler()
    except Exception:  # line 14: broad and silent
        pass


def broad_ellipsis(handler):
    try:
        handler()
    except BaseException:  # line 21: broad and silent
        ...
