"""Seeded envelope-flow violations: an unregistered kind, three ways."""

from svc.errors import ApiError, error_envelope


def reject(reason):
    raise ApiError("nope", reason)  # seeded: unregistered kind (constructor)


def classify(answer):
    kind = "also-nope"  # seeded: unregistered kind (assignment)
    if answer:
        kind, detail = "ok", answer  # registered: keeps "ok" live
        return error_envelope(kind, detail)
    return error_envelope(kind, None)
