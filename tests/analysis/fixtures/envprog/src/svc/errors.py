"""Fixture envelope registry: one live kind, one dead kind (seeded)."""

ERROR_STATUS = {
    "ok": 200,
    "ghost": 500,  # seeded: registered but never constructed
}


class ApiError(Exception):
    def __init__(self, kind, detail):
        super().__init__(detail)
        self.kind = kind


def error_envelope(kind, detail):
    return {"error": {"kind": kind, "detail": detail}}
