"""Top layer module; imported from below (a seeded violation)."""

VALUE = 1
