"""The other half of the seeded cycle."""

import pkg.alpha.a  # noqa: F401  - cycle b -> a
