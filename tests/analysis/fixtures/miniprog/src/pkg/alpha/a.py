"""Seeded violations: one half of a cycle, plus an upward import."""

from pkg.alpha import b  # noqa: F401  - cycle a -> b
import pkg.beta.top  # noqa: F401  - upward edge low -> high
