"""Matches no layer prefix in the fixture contract (seeded)."""

STRAY = True
