"""Fixture: every style of wall-clock leak the rule must catch.

A docstring that merely *mentions* time.monotonic must NOT be flagged
(the proxy cache docstring regression).
"""

import time
from time import perf_counter
import datetime


def stamp():
    return time.time()  # line 13: direct call


def default_arg(clock=time.monotonic):  # line 16: reference, not a call
    return clock()


def imported():
    return perf_counter()  # flagged at the import, line 8


def dated():
    return datetime.datetime.now()  # line 24
