"""Fixture: budgeted RPC sites the rule must accept."""


def threaded(transport, shard_id, payload, on_reply, deadline):
    transport.invoke(shard_id, "status", payload, on_reply, timeout=deadline)


def explicit_default(transport, shard_id, payload, on_reply):
    transport.invoke(shard_id, "status", payload, on_reply, timeout=None)


def splatted(transport, shard_id, payload, on_reply, **kwargs):
    transport.invoke(shard_id, "status", payload, on_reply, **kwargs)


def deadline_keyword(endpoint, payload, on_reply, budget):
    endpoint.call("status", payload, on_reply, deadline=budget)


def not_an_rpc(pool):
    # .invoke on a name outside rpc_methods scope still matches the
    # attribute, but ordinary method names do not.
    return pool.submit("status")
