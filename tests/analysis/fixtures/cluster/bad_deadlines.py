"""Fixture: RPC sites missing a budget (lives under a cluster/ segment)."""


def fan_out(transport, shard_ids, payload, on_reply):
    for shard_id in shard_ids:
        transport.invoke(shard_id, "status", payload, on_reply)  # line 6


def single(endpoint, payload, on_reply):
    endpoint.call("status", payload, on_reply)  # line 10
