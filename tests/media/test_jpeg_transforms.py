"""Tests for the DCT codec and the transform library."""

import numpy as np
import pytest

from repro.media.image import generate_photo
from repro.media.jpeg import JpegCodec, jpeg_roundtrip
from repro.media.transforms import (
    add_noise,
    adjust_brightness,
    adjust_contrast,
    crop,
    crop_fraction,
    flip_horizontal,
    overlay_caption,
    resize,
    tint,
)


class TestJpegCodec:
    def test_high_quality_near_lossless(self, base_photo):
        out = jpeg_roundtrip(base_photo, quality=95)
        assert out.psnr_against(base_photo) > 33.0

    def test_quality_ordering(self, base_photo):
        q90 = jpeg_roundtrip(base_photo, 90).psnr_against(base_photo)
        q50 = jpeg_roundtrip(base_photo, 50).psnr_against(base_photo)
        q10 = jpeg_roundtrip(base_photo, 10).psnr_against(base_photo)
        assert q90 > q50 > q10

    def test_shape_preserved_non_multiple_of_8(self):
        photo = generate_photo(seed=3, height=70, width=93)
        out = jpeg_roundtrip(photo, 75)
        assert out.shape == (70, 93)

    def test_metadata_preserved_by_default(self, base_photo):
        tagged = base_photo.copy()
        tagged.metadata.set("irs:identifier", "irs1:l:1")
        out = jpeg_roundtrip(tagged, 75)
        assert out.metadata.irs_identifier == "irs1:l:1"

    def test_metadata_strip_option(self, base_photo):
        tagged = base_photo.copy()
        tagged.metadata.set("irs:identifier", "irs1:l:1")
        out = jpeg_roundtrip(tagged, 75, preserve_metadata=False)
        assert len(out.metadata) == 0

    def test_invalid_quality(self):
        with pytest.raises(ValueError):
            JpegCodec(quality=0)
        with pytest.raises(ValueError):
            JpegCodec(quality=101)

    def test_size_estimate_monotone_in_quality(self, base_photo):
        small = JpegCodec(10).compressed_size_estimate(base_photo)
        large = JpegCodec(90).compressed_size_estimate(base_photo)
        assert large > small > 0

    def test_idempotent_ish(self, base_photo):
        """Recompressing an already-compressed photo changes little."""
        once = jpeg_roundtrip(base_photo, 60)
        twice = jpeg_roundtrip(once, 60)
        assert twice.psnr_against(once) > 34.0

    def test_chroma_subsampling_degrades_colour_not_luma(self, base_photo):
        full = JpegCodec(75).roundtrip(base_photo)
        subsampled = JpegCodec(75, chroma_subsampling=True).roundtrip(base_photo)
        # Subsampling costs overall fidelity...
        assert subsampled.psnr_against(base_photo) <= full.psnr_against(
            base_photo
        )
        # ...but luminance is nearly untouched.
        luma_err_full = float(
            np.abs(full.luminance() - base_photo.luminance()).mean()
        )
        luma_err_sub = float(
            np.abs(subsampled.luminance() - base_photo.luminance()).mean()
        )
        assert luma_err_sub < luma_err_full * 1.6

    def test_watermark_survives_chroma_subsampling(self, base_photo):
        """The watermark lives in luma, so 4:2:0 cannot kill it."""
        from repro.media.watermark import WatermarkCodec

        wm_codec = WatermarkCodec(payload_len=12)
        marked = wm_codec.embed(base_photo, bytes(range(12)))
        degraded = JpegCodec(60, chroma_subsampling=True).roundtrip(marked)
        result = wm_codec.extract(degraded, search_offsets=False)
        assert result.payload == bytes(range(12))

    def test_subsampling_odd_dimensions(self):
        photo = generate_photo(seed=8, height=65, width=67)
        out = JpegCodec(75, chroma_subsampling=True).roundtrip(photo)
        assert out.shape == (65, 67)


class TestTransforms:
    def test_crop_bounds(self, base_photo):
        out = crop(base_photo, 10, 20, 50, 60)
        assert out.shape == (50, 60)
        assert np.array_equal(out.pixels, base_photo.pixels[10:60, 20:80])

    def test_crop_validation(self, base_photo):
        with pytest.raises(ValueError):
            crop(base_photo, 100, 100, 50, 50)
        with pytest.raises(ValueError):
            crop(base_photo, -1, 0, 10, 10)

    def test_crop_fraction_centered(self, base_photo):
        out = crop_fraction(base_photo, 0.5)
        assert out.shape == (64, 64)

    def test_resize_shape_exact(self, base_photo):
        for h, w in [(100, 100), (37, 91), (200, 150)]:
            assert resize(base_photo, h, w).shape == (h, w)

    def test_tint_channel_scaling(self, base_photo):
        out = tint(base_photo, (0.5, 1.0, 1.0))
        ratio = out.pixels[..., 0].mean() / base_photo.pixels[..., 0].mean()
        assert ratio == pytest.approx(0.5, abs=0.05)
        assert np.allclose(out.pixels[..., 1], base_photo.pixels[..., 1])

    def test_brightness_shift(self, base_photo):
        out = adjust_brightness(base_photo, 0.1)
        assert out.pixels.mean() > base_photo.pixels.mean()

    def test_contrast_extremes(self, base_photo):
        flat = adjust_contrast(base_photo, 0.0)
        assert np.allclose(flat.pixels, 0.5)

    def test_noise_seeded(self, base_photo):
        a = add_noise(base_photo, 0.05, np.random.default_rng(1))
        b = add_noise(base_photo, 0.05, np.random.default_rng(1))
        assert np.array_equal(a.pixels, b.pixels)

    def test_flip_involution(self, base_photo):
        assert np.array_equal(
            flip_horizontal(flip_horizontal(base_photo)).pixels, base_photo.pixels
        )

    def test_caption_band_painted(self, base_photo):
        out = overlay_caption(base_photo, band_fraction=0.2, colour=(1, 1, 1))
        band = out.pixels[-25:, :, :]
        assert np.allclose(band, 1.0)

    def test_metadata_carried_by_default(self, base_photo):
        tagged = base_photo.copy()
        tagged.metadata.set("irs:identifier", "irs1:l:9")
        for transform in (
            lambda p: crop(p, 0, 0, 64, 64),
            lambda p: resize(p, 64, 64),
            lambda p: tint(p, (1.1, 1.0, 0.9)),
            flip_horizontal,
        ):
            assert transform(tagged).metadata.irs_identifier == "irs1:l:9"

    def test_metadata_strip_option(self, base_photo):
        tagged = base_photo.copy()
        tagged.metadata.set("irs:identifier", "irs1:l:9")
        out = crop(tagged, 0, 0, 64, 64, preserve_metadata=False)
        assert len(out.metadata) == 0

    def test_parameter_validation(self, base_photo):
        with pytest.raises(ValueError):
            tint(base_photo, (-1.0, 1.0, 1.0))
        with pytest.raises(ValueError):
            adjust_brightness(base_photo, 2.0)
        with pytest.raises(ValueError):
            adjust_contrast(base_photo, -0.5)
        with pytest.raises(ValueError):
            add_noise(base_photo, -0.1)
        with pytest.raises(ValueError):
            overlay_caption(base_photo, band_fraction=1.5)
        with pytest.raises(ValueError):
            resize(base_photo, 0, 10)
        with pytest.raises(ValueError):
            crop_fraction(base_photo, 0.0)
