"""Tests for video labeling — the section-2 generalization."""

import numpy as np
import pytest

from repro.media.image import Photo
from repro.media.jpeg import jpeg_roundtrip
from repro.media.transforms import overlay_caption, tint
from repro.media.video import (
    Video,
    VideoWatermarkCodec,
    generate_video,
    video_match_coverage,
)
from repro.media.watermark import WatermarkError

PAYLOAD = bytes(range(12))


@pytest.fixture(scope="module")
def video():
    return generate_video(seed=5, num_frames=8, height=128, width=128)


@pytest.fixture(scope="module")
def vcodec():
    return VideoWatermarkCodec()


@pytest.fixture(scope="module")
def marked(video, vcodec):
    return vcodec.embed(video, PAYLOAD)


class TestVideoModel:
    def test_generation(self, video):
        assert video.num_frames == 8
        assert video.duration == pytest.approx(8 / 24.0)

    def test_frames_cohere_but_differ(self, video):
        from repro.media.perceptual import hash_distance

        d = hash_distance(video.frames[0], video.frames[1])
        assert d < 0.25  # consecutive frames are perceptually close
        assert not np.array_equal(video.frames[0].pixels, video.frames[1].pixels)

    def test_content_hash_sensitive_to_any_frame(self, video):
        altered = video.copy()
        pixels = altered.frames[3].pixels.copy()
        pixels[0, 0, 0] = 1.0 - pixels[0, 0, 0]
        altered.frames[3] = Photo(pixels=pixels)
        assert altered.content_hash() != video.content_hash()

    def test_clip(self, video):
        clipped = video.clip(2, 6)
        assert clipped.num_frames == 4
        assert np.array_equal(clipped.frames[0].pixels, video.frames[2].pixels)
        with pytest.raises(ValueError):
            video.clip(5, 3)

    def test_validation(self):
        with pytest.raises(ValueError):
            Video(frames=[])
        frame = Photo(pixels=np.zeros((16, 16, 3)))
        other = Photo(pixels=np.zeros((8, 8, 3)))
        with pytest.raises(ValueError):
            Video(frames=[frame, other])
        with pytest.raises(ValueError):
            Video(frames=[frame], fps=0)


class TestVideoWatermark:
    def test_roundtrip(self, vcodec, marked):
        assert vcodec.extract(marked, search_offsets=False) == PAYLOAD

    def test_unmarked_raises(self, vcodec, video):
        with pytest.raises(WatermarkError):
            vcodec.extract(video, search_offsets=False)

    def test_survives_clipping(self, vcodec, marked):
        clipped = marked.clip(3, 7)
        assert vcodec.extract(clipped, search_offsets=False) == PAYLOAD

    def test_survives_per_frame_compression(self, vcodec, marked):
        compressed = Video(
            frames=[jpeg_roundtrip(f, 60) for f in marked.frames],
            metadata=marked.metadata.copy(),
            fps=marked.fps,
        )
        assert vcodec.extract(compressed, search_offsets=False) == PAYLOAD

    def test_majority_survives_damaged_frames(self, vcodec, marked):
        """Burned-in captions on a minority of frames don't matter."""
        frames = list(marked.frames)
        rng = np.random.default_rng(2)
        for i in (1, 4):
            frames[i] = Photo(
                pixels=np.clip(
                    frames[i].pixels + rng.standard_normal(frames[i].pixels.shape) * 0.2,
                    0, 1,
                )
            )
        damaged = Video(frames=frames, fps=marked.fps)
        assert vcodec.extract(damaged, search_offsets=False) == PAYLOAD

    def test_min_agreeing_frames(self, vcodec, marked):
        clipped = marked.clip(0, 2)
        with pytest.raises(WatermarkError):
            vcodec.extract(clipped, min_agreeing_frames=5, search_offsets=False)

    def test_has_watermark(self, vcodec, marked, video):
        assert vcodec.has_watermark(marked, search_offsets=False)
        assert not vcodec.has_watermark(video, search_offsets=False)


class TestVideoMatching:
    def test_self_coverage_full(self, video):
        assert video_match_coverage(video, video) == 1.0

    def test_clipped_copy_high_coverage(self, video):
        clipped = video.clip(2, 7)
        tinted = Video(
            frames=[tint(f, (1.08, 1.0, 0.94)) for f in clipped.frames],
            fps=clipped.fps,
        )
        assert video_match_coverage(video, tinted) >= 0.8

    def test_unrelated_video_low_coverage(self, video):
        other = generate_video(seed=99, num_frames=6, height=128, width=128)
        assert video_match_coverage(video, other) <= 0.2

    def test_captioned_copy_still_covered(self, video):
        captioned = Video(
            frames=[overlay_caption(f) for f in video.frames], fps=video.fps
        )
        assert video_match_coverage(video, captioned) >= 0.7
