"""Tests for the QIM watermark codec — Goal #5's robustness envelope."""

import numpy as np
import pytest

from repro.media.image import generate_photo
from repro.media.jpeg import jpeg_roundtrip
from repro.media.transforms import (
    add_noise,
    adjust_brightness,
    adjust_contrast,
    crop,
    flip_horizontal,
    overlay_caption,
    resize,
    tint,
)
from repro.media.watermark import WatermarkCodec, WatermarkError

PAYLOAD = bytes(range(12))


@pytest.fixture(scope="module")
def marked_photo(codec, large_photo):
    return codec.embed(large_photo, PAYLOAD)


class TestEmbedding:
    def test_imperceptible(self, codec, large_photo, marked_photo):
        assert marked_photo.psnr_against(large_photo) > 34.0

    def test_metadata_preserved(self, codec, large_photo):
        tagged = large_photo.copy()
        tagged.metadata.set("exif:make", "Cam")
        marked = codec.embed(tagged, PAYLOAD)
        assert marked.metadata.get("exif:make") == "Cam"

    def test_wrong_payload_length_rejected(self, codec, large_photo):
        with pytest.raises(WatermarkError):
            codec.embed(large_photo, b"short")

    def test_too_small_photo_rejected(self, codec):
        tiny = generate_photo(seed=1, height=16, width=16)
        with pytest.raises(WatermarkError):
            codec.embed(tiny, PAYLOAD)

    def test_capacity_math(self, codec):
        # 256x256 -> 32x32 blocks * 4 coeffs = 4096 slots >= 112 bits.
        assert codec.capacity_bits(256, 256) == 4096
        assert codec.min_photo_blocks() == 28

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            WatermarkCodec(payload_len=0)
        with pytest.raises(ValueError):
            WatermarkCodec(delta=-1.0)
        with pytest.raises(ValueError):
            WatermarkCodec(positions=[(0, 0)])
        with pytest.raises(ValueError):
            WatermarkCodec(positions=[(9, 1)])

    def test_tile_must_carry_payload(self):
        # 4x7 tile x 2 positions = 56 slots < 112 payload bits.
        with pytest.raises(ValueError, match="tile carries"):
            WatermarkCodec(payload_len=12, positions=((1, 2), (2, 1)))
        # An 8x7 tile fits exactly.
        WatermarkCodec(
            payload_len=12, positions=((1, 2), (2, 1)), tile_rows=8, tile_cols=7
        )


class TestCleanExtraction:
    def test_roundtrip(self, codec, marked_photo):
        result = codec.extract(marked_photo, search_offsets=False)
        assert result.payload == PAYLOAD
        assert result.pixel_offset == (0, 0)
        assert result.mean_confidence > 0.9

    def test_has_watermark_helper(self, codec, marked_photo, large_photo):
        assert codec.has_watermark(marked_photo, search_offsets=False)
        assert not codec.has_watermark(large_photo, search_offsets=False)

    def test_unmarked_photo_raises(self, codec, large_photo):
        with pytest.raises(WatermarkError):
            codec.extract(large_photo)

    def test_distinct_payloads_distinct(self, codec, large_photo):
        other = codec.embed(large_photo, bytes(range(12, 24)))
        assert codec.extract(other, search_offsets=False).payload == bytes(
            range(12, 24)
        )

    def test_min_confidence_accepts_clean_decode(self, codec, marked_photo):
        result = codec.extract(
            marked_photo, search_offsets=False, min_confidence=0.9
        )
        assert result.payload == PAYLOAD

    def test_min_confidence_never_resurrects_destroyed_marks(
        self, codec, marked_photo
    ):
        destroyed = resize(marked_photo, 230, 230)
        for threshold in (0.0, 0.5):
            with pytest.raises(WatermarkError):
                codec.extract(
                    destroyed, search_offsets=False, min_confidence=threshold
                )

    def test_reembedding_overwrites(self, codec, large_photo):
        """Section 5: the sophisticated attacker's re-labeling erases
        the old watermark."""
        first = codec.embed(large_photo, PAYLOAD)
        second = codec.embed(first, bytes(range(100, 112)))
        assert codec.extract(second, search_offsets=False).payload == bytes(
            range(100, 112)
        )


class TestRobustness:
    """Goal #5: compression, cropping, tinting must survive."""

    def test_jpeg_quality_sweep(self, codec, marked_photo):
        for quality in (90, 75, 60, 50):
            degraded = jpeg_roundtrip(marked_photo, quality)
            result = codec.extract(degraded, search_offsets=False)
            assert result.payload == PAYLOAD, f"failed at quality {quality}"

    def test_tint(self, codec, marked_photo):
        for gains in ((1.1, 1.0, 0.9), (0.9, 1.05, 1.1)):
            tinted = tint(marked_photo, gains)
            assert codec.extract(tinted, search_offsets=False).payload == PAYLOAD

    def test_brightness(self, codec, marked_photo):
        bright = adjust_brightness(marked_photo, 0.08)
        assert codec.extract(bright, search_offsets=False).payload == PAYLOAD

    def test_contrast(self, codec, marked_photo):
        adjusted = adjust_contrast(marked_photo, 1.1)
        assert codec.extract(adjusted, search_offsets=False).payload == PAYLOAD

    def test_mild_noise(self, codec, marked_photo):
        noisy = add_noise(marked_photo, 0.01, np.random.default_rng(4))
        assert codec.extract(noisy, search_offsets=False).payload == PAYLOAD

    def test_crop_with_resync(self, codec, marked_photo):
        cropped = crop(marked_photo, 13, 21, 200, 216)
        result = codec.extract(cropped)
        assert result.payload == PAYLOAD
        assert result.pixel_offset != (0, 0) or result.tile_phase != (0, 0)

    def test_block_aligned_crop(self, codec, marked_photo):
        cropped = crop(marked_photo, 16, 24, 192, 192)
        assert codec.extract(cropped).payload == PAYLOAD

    def test_caption_overlay(self, codec, marked_photo):
        captioned = overlay_caption(marked_photo)
        assert codec.extract(captioned, search_offsets=False).payload == PAYLOAD

    def test_flip_with_option(self, codec, marked_photo):
        flipped = flip_horizontal(marked_photo)
        result = codec.extract(flipped, try_flip=True)
        assert result.payload == PAYLOAD

    def test_combined_jpeg_and_tint(self, codec, marked_photo):
        abused = jpeg_roundtrip(tint(marked_photo, (1.08, 1.0, 0.92)), 65)
        assert codec.extract(abused, search_offsets=False).payload == PAYLOAD


class TestDestruction:
    """Nongoal #3: some transforms legitimately destroy the watermark
    (and the label system falls back to metadata / appeals)."""

    def test_resize_destroys(self, codec, marked_photo):
        resized = resize(marked_photo, 230, 230)
        with pytest.raises(WatermarkError):
            codec.extract(resized)

    def test_heavy_noise_destroys(self, codec, marked_photo):
        destroyed = add_noise(marked_photo, 0.15, np.random.default_rng(5))
        with pytest.raises(WatermarkError):
            codec.extract(destroyed, search_offsets=False)

    def test_flip_without_option_fails(self, codec, marked_photo):
        flipped = flip_horizontal(marked_photo)
        with pytest.raises(WatermarkError):
            codec.extract(flipped, try_flip=False)
