"""Tests for the watermark payload coding layer."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.media import ecc


class TestCrc16:
    def test_known_vector(self):
        # CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        assert ecc.crc16(b"123456789") == 0x29B1

    def test_empty_input(self):
        assert ecc.crc16(b"") == 0xFFFF  # just the init value

    def test_attach_and_strip(self):
        protected = ecc.attach_crc(b"payload")
        assert len(protected) == len(b"payload") + 2
        assert ecc.check_and_strip_crc(protected) == b"payload"

    def test_corruption_detected(self):
        protected = bytearray(ecc.attach_crc(b"payload"))
        protected[0] ^= 0x01
        with pytest.raises(ecc.PayloadError):
            ecc.check_and_strip_crc(bytes(protected))

    def test_crc_corruption_detected(self):
        protected = bytearray(ecc.attach_crc(b"payload"))
        protected[-1] ^= 0x80
        with pytest.raises(ecc.PayloadError):
            ecc.check_and_strip_crc(bytes(protected))

    def test_too_short_rejected(self):
        with pytest.raises(ecc.PayloadError):
            ecc.check_and_strip_crc(b"ab")


class TestBitPacking:
    def test_roundtrip(self):
        data = bytes(range(16))
        assert ecc.bits_to_bytes(ecc.bytes_to_bits(data)) == data

    def test_msb_first(self):
        bits = ecc.bytes_to_bits(b"\x80")
        assert bits[0] == 1 and bits[1:].sum() == 0

    def test_empty(self):
        assert ecc.bytes_to_bits(b"").size == 0

    def test_non_multiple_of_8_rejected(self):
        with pytest.raises(ValueError):
            ecc.bits_to_bytes(np.ones(7, dtype=np.uint8))


class TestRepetitionMajority:
    def test_clean_decode(self):
        bits = np.array([1, 0, 1, 1], dtype=np.uint8)
        received = ecc.repeat_bits(bits, 5).astype(float)
        decoded, confidence = ecc.majority_vote(received, 4, 5)
        assert np.array_equal(decoded, bits)
        assert (confidence == 1.0).all()

    def test_sparse_errors_corrected(self):
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, size=32).astype(np.uint8)
        received = ecc.repeat_bits(bits, 15).astype(float)
        # Flip 10% of copies: with 15 votes per bit, a per-bit majority
        # flip needs >= 8 errors (p ~ 3e-6), so decoding is reliable.
        flips = rng.uniform(size=received.size) < 0.10
        received[flips] = 1.0 - received[flips]
        decoded, _ = ecc.majority_vote(received, 32, 15)
        assert np.array_equal(decoded, bits)

    def test_truncated_stream_still_decodes(self):
        bits = np.array([1, 0, 1, 0, 1], dtype=np.uint8)
        received = ecc.repeat_bits(bits, 4).astype(float)[:12]  # lose 8 copies
        decoded, _ = ecc.majority_vote(received, 5, 4)
        assert np.array_equal(decoded, bits)

    def test_insufficient_coverage_raises(self):
        with pytest.raises(ecc.PayloadError):
            ecc.majority_vote(np.ones(3), payload_bits=5, copies=1)

    def test_confidence_reflects_disagreement(self):
        # Bit 0: copies vote 1,1,0 -> confidence 1/3; bit 1: unanimous.
        received = np.array([1, 1, 1, 1, 0, 1], dtype=float)
        decoded, confidence = ecc.majority_vote(received, 2, 3)
        assert decoded.tolist() == [1, 1]
        assert confidence[0] < confidence[1]

    def test_invalid_copies(self):
        with pytest.raises(ValueError):
            ecc.repeat_bits(np.ones(4, dtype=np.uint8), 0)


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=1, max_size=20))
def test_property_crc_roundtrip(payload):
    """Property: attach then strip recovers any payload."""
    assert ecc.check_and_strip_crc(ecc.attach_crc(payload)) == payload


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=1, max_size=12), st.integers(min_value=3, max_value=9))
def test_property_majority_corrects_minority_flips(payload, copies):
    """Property: fewer than half the copies flipped per bit always decodes."""
    bits = ecc.bytes_to_bits(payload)
    received = ecc.repeat_bits(bits, copies).astype(float)
    # Flip a strict minority of copies of bit 0 only.
    flips = (copies - 1) // 2
    for c in range(flips):
        idx = c * bits.size  # bit 0's c-th copy
        received[idx] = 1.0 - received[idx]
    decoded, _ = ecc.majority_vote(received, bits.size, copies)
    assert np.array_equal(decoded, bits)
