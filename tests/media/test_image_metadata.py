"""Tests for Photo, the synthetic generator, and metadata."""

import numpy as np
import pytest

from repro.media.image import Photo, PhotoGenerator, generate_photo
from repro.media.metadata import (
    IRS_IDENTIFIER_FIELD,
    MetadataContainer,
    STANDARD_FIELDS,
)


class TestPhoto:
    def test_pixels_clipped_to_unit_range(self):
        raw = np.full((8, 8, 3), 2.0)
        photo = Photo(pixels=raw)
        assert photo.pixels.max() <= 1.0

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Photo(pixels=np.zeros((8, 8)))
        with pytest.raises(ValueError):
            Photo(pixels=np.zeros((8, 8, 4)))

    def test_dimensions(self, base_photo):
        assert base_photo.shape == (128, 128)
        assert base_photo.height == 128 and base_photo.width == 128

    def test_luminance_range(self, base_photo):
        luma = base_photo.luminance()
        assert luma.min() >= 0.0 and luma.max() <= 255.0
        assert luma.shape == (128, 128)

    def test_content_hash_stable(self, base_photo):
        assert base_photo.content_hash() == base_photo.content_hash()

    def test_content_hash_changes_with_pixels(self, base_photo):
        altered = base_photo.copy()
        altered.pixels[0, 0, 0] = 1.0 - altered.pixels[0, 0, 0]
        assert altered.content_hash() != base_photo.content_hash()

    def test_content_hash_ignores_metadata(self, base_photo):
        tagged = base_photo.copy()
        tagged.metadata.set("exif:make", "TestCam")
        assert tagged.content_hash() == base_photo.content_hash()

    def test_copy_without_metadata(self, base_photo):
        tagged = base_photo.copy()
        tagged.metadata.set("exif:make", "TestCam")
        bare = tagged.copy(with_metadata=False)
        assert len(bare.metadata) == 0

    def test_psnr_identical_is_infinite(self, base_photo):
        assert base_photo.psnr_against(base_photo) == float("inf")

    def test_psnr_shape_mismatch(self, base_photo):
        other = generate_photo(seed=1, height=64, width=64)
        with pytest.raises(ValueError):
            base_photo.psnr_against(other)


class TestGenerator:
    def test_seeded_reproducibility(self):
        a = generate_photo(seed=5)
        b = generate_photo(seed=5)
        assert np.array_equal(a.pixels, b.pixels)

    def test_different_seeds_differ(self):
        a = generate_photo(seed=5)
        b = generate_photo(seed=6)
        assert not np.array_equal(a.pixels, b.pixels)

    def test_custom_size(self):
        photo = generate_photo(seed=1, height=96, width=160)
        assert photo.shape == (96, 160)

    def test_has_spectral_energy(self):
        """Generated photos must have mid/high-frequency content (else
        watermark experiments would be trivially easy)."""
        photo = generate_photo(seed=2, height=128, width=128)
        luma = photo.luminance()
        grad = np.abs(np.diff(luma, axis=0)).mean()
        assert grad > 0.5  # real texture, not a flat card

    def test_generator_stream_advances(self):
        gen = PhotoGenerator(np.random.default_rng(3))
        a, b = gen.generate(), gen.generate()
        assert not np.array_equal(a.pixels, b.pixels)


class TestMetadata:
    def test_set_get(self):
        md = MetadataContainer()
        md.set("exif:make", "Cam")
        assert md.get("exif:make") == "Cam"
        assert "exif:make" in md

    def test_type_validation(self):
        md = MetadataContainer()
        with pytest.raises(TypeError):
            md.set("k", 5)  # type: ignore[arg-type]

    def test_irs_identifier_property(self):
        md = MetadataContainer()
        assert not md.has_irs_label()
        md.irs_identifier = "irs1:ledger-0:5"
        assert md.has_irs_label()
        assert md.irs_identifier == "irs1:ledger-0:5"
        assert md.get(IRS_IDENTIFIER_FIELD) == "irs1:ledger-0:5"

    def test_strip_everything(self):
        md = MetadataContainer()
        for f in STANDARD_FIELDS:
            md.set(f, "v")
        md.irs_identifier = "irs1:l:1"
        stripped = md.stripped(preserve_irs=False)
        assert len(stripped) == 0

    def test_strip_preserving_irs(self):
        md = MetadataContainer()
        md.set("exif:gps-latitude", "37.77")
        md.irs_identifier = "irs1:l:1"
        stripped = md.stripped(preserve_irs=True)
        assert stripped.irs_identifier == "irs1:l:1"
        assert stripped.get("exif:gps-latitude") is None

    def test_copy_independent(self):
        md = MetadataContainer({"a": "1"})
        clone = md.copy()
        clone.set("b", "2")
        assert "b" not in md

    def test_equality(self):
        assert MetadataContainer({"a": "1"}) == MetadataContainer({"a": "1"})
        assert MetadataContainer({"a": "1"}) != MetadataContainer({"a": "2"})

    def test_iteration_sorted(self):
        md = MetadataContainer({"b": "2", "a": "1"})
        assert list(md) == ["a", "b"]
        assert md.items() == [("a", "1"), ("b", "2")]

    def test_remove_absent_is_noop(self):
        md = MetadataContainer()
        md.remove("missing")  # no raise
