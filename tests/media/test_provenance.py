"""Tests for C2PA-style provenance manifests."""

import numpy as np
import pytest

from repro.crypto.signatures import KeyPair
from repro.media.image import generate_photo
from repro.media.provenance import (
    ASSERTION_CAPTURE,
    ASSERTION_EDIT,
    ASSERTION_IRS_CLAIM,
    ProvenanceError,
    ProvenanceManifest,
)
from repro.media.transforms import crop


@pytest.fixture(scope="module")
def camera_key():
    return KeyPair.generate(bits=512, rng=np.random.default_rng(201))


@pytest.fixture(scope="module")
def editor_key():
    return KeyPair.generate(bits=512, rng=np.random.default_rng(202))


@pytest.fixture()
def photo():
    return generate_photo(seed=30, height=96, width=96)


class TestChainConstruction:
    def test_capture_starts_chain(self, photo, camera_key):
        manifest = ProvenanceManifest.capture(photo, "TestCam X1", camera_key)
        assert len(manifest) == 1
        assert manifest.assertions[0].kind == ASSERTION_CAPTURE
        assert manifest.origin_actor() == "TestCam X1"
        manifest.verify_chain()

    def test_edit_extends_chain(self, photo, camera_key, editor_key):
        manifest = ProvenanceManifest.capture(photo, "Cam", camera_key)
        edited = crop(photo, 0, 0, 64, 64)
        manifest.record_edit(edited, "PhotoEditor", "crop to 64x64", editor_key)
        assert len(manifest) == 2
        assert manifest.assertions[1].kind == ASSERTION_EDIT
        manifest.verify_chain()
        assert manifest.matches_photo(edited)
        assert not manifest.matches_photo(photo)

    def test_irs_claim_recorded(self, photo, camera_key):
        manifest = ProvenanceManifest.capture(photo, "Cam", camera_key)
        owner_key = KeyPair.generate(bits=512, rng=np.random.default_rng(203))
        manifest.record_irs_claim(photo, "irs1:ledger-0:7", owner_key)
        assert manifest.irs_identifier() == "irs1:ledger-0:7"
        manifest.verify_chain()

    def test_no_claim_returns_none(self, photo, camera_key):
        manifest = ProvenanceManifest.capture(photo, "Cam", camera_key)
        assert manifest.irs_identifier() is None

    def test_edit_before_capture_rejected(self, photo, editor_key):
        manifest = ProvenanceManifest()
        with pytest.raises(ProvenanceError):
            manifest.record_edit(photo, "Editor", "edit", editor_key)
        with pytest.raises(ProvenanceError):
            manifest.record_irs_claim(photo, "irs1:l:1", editor_key)


class TestChainVerification:
    def _chain(self, photo, camera_key, editor_key):
        manifest = ProvenanceManifest.capture(photo, "Cam", camera_key)
        edited = crop(photo, 0, 0, 64, 64)
        manifest.record_edit(edited, "Editor", "crop", editor_key)
        return manifest, edited

    def test_empty_manifest_fails(self):
        with pytest.raises(ProvenanceError):
            ProvenanceManifest().verify_chain()

    def test_tampered_detail_detected(self, photo, camera_key, editor_key):
        from dataclasses import replace

        manifest, _ = self._chain(photo, camera_key, editor_key)
        manifest.assertions[1] = replace(
            manifest.assertions[1], detail="innocent edit"
        )
        with pytest.raises(ProvenanceError, match="signature"):
            manifest.verify_chain()

    def test_reordered_chain_detected(self, photo, camera_key, editor_key):
        manifest, edited = self._chain(photo, camera_key, editor_key)
        manifest.record_edit(photo, "Editor", "revert", editor_key)
        manifest.assertions[1], manifest.assertions[2] = (
            manifest.assertions[2],
            manifest.assertions[1],
        )
        with pytest.raises(ProvenanceError):
            manifest.verify_chain()

    def test_dropped_link_detected(self, photo, camera_key, editor_key):
        manifest, edited = self._chain(photo, camera_key, editor_key)
        manifest.record_edit(photo, "Editor", "revert", editor_key)
        del manifest.assertions[1]
        with pytest.raises(ProvenanceError, match="chain"):
            manifest.verify_chain()

    def test_chain_not_starting_with_capture(self, photo, camera_key, editor_key):
        manifest, _ = self._chain(photo, camera_key, editor_key)
        del manifest.assertions[0]
        with pytest.raises(ProvenanceError):
            manifest.verify_chain()

    def test_irs_claim_latest_wins(self, photo, camera_key):
        manifest = ProvenanceManifest.capture(photo, "Cam", camera_key)
        key = KeyPair.generate(bits=512, rng=np.random.default_rng(204))
        manifest.record_irs_claim(photo, "irs1:l:1", key)
        manifest.record_irs_claim(photo, "irs1:l:2", key)
        assert manifest.irs_identifier() == "irs1:l:2"
