"""Tests for the PhotoDNA-style robust hash — calibrating the
match/no-match envelope the appeals process relies on."""

import numpy as np
import pytest

from repro.media.image import generate_photo
from repro.media.jpeg import jpeg_roundtrip
from repro.media.perceptual import (
    DEFAULT_MATCH_THRESHOLD,
    RobustHash,
    hash_distance,
    robust_hash,
)
from repro.media.transforms import (
    add_noise,
    adjust_brightness,
    adjust_contrast,
    crop_fraction,
    overlay_caption,
    resize,
    tint,
)


@pytest.fixture(scope="module")
def photo():
    return generate_photo(seed=20, height=192, width=192)


class TestBasics:
    def test_self_distance_zero(self, photo):
        assert hash_distance(photo, photo) == 0.0

    def test_signature_length(self, photo):
        assert len(robust_hash(photo).bits) == 64  # 512 bits

    def test_invalid_signature_length(self):
        with pytest.raises(ValueError):
            RobustHash(bits=b"short")

    def test_deterministic(self, photo):
        assert robust_hash(photo).bits == robust_hash(photo).bits

    def test_distance_symmetric(self, photo):
        other = generate_photo(seed=21, height=192, width=192)
        assert hash_distance(photo, other) == hash_distance(other, photo)

    def test_flat_image_hashable(self):
        from repro.media.image import Photo

        flat = Photo(pixels=np.full((64, 64, 3), 0.5))
        robust_hash(flat)  # no crash on zero-variance input


class TestInvariance:
    """Benign edits must stay within the match threshold."""

    @pytest.mark.parametrize("quality", [90, 70, 50, 30])
    def test_compression(self, photo, quality):
        degraded = jpeg_roundtrip(photo, quality)
        assert robust_hash(photo).matches(robust_hash(degraded))

    def test_tint(self, photo):
        tinted = tint(photo, (1.2, 1.0, 0.8))
        assert hash_distance(photo, tinted) < DEFAULT_MATCH_THRESHOLD / 2

    def test_brightness_contrast(self, photo):
        edited = adjust_contrast(adjust_brightness(photo, 0.1), 1.2)
        assert robust_hash(photo).matches(robust_hash(edited))

    @pytest.mark.parametrize("size", [256, 128, 64])
    def test_resize(self, photo, size):
        scaled = resize(photo, size, size)
        assert robust_hash(photo).matches(robust_hash(scaled))

    def test_noise(self, photo):
        noisy = add_noise(photo, 0.02, np.random.default_rng(6))
        assert robust_hash(photo).matches(robust_hash(noisy))

    def test_combined_edits(self, photo):
        abused = jpeg_roundtrip(resize(tint(photo, (1.1, 1.0, 0.95)), 150, 150), 60)
        assert robust_hash(photo).matches(robust_hash(abused))


class TestDiscrimination:
    """Different photos must land far from the threshold."""

    def test_independent_photos_far(self):
        distances = []
        for i in range(6):
            a = generate_photo(seed=100 + i, height=128, width=128)
            b = generate_photo(seed=200 + i, height=128, width=128)
            distances.append(hash_distance(a, b))
        # Every pair must clear the threshold; typical pairs are ~0.4-0.5.
        assert min(distances) > DEFAULT_MATCH_THRESHOLD
        assert float(np.mean(distances)) > DEFAULT_MATCH_THRESHOLD + 0.1

    def test_no_match_across_seeds(self, photo):
        other = generate_photo(seed=99, height=192, width=192)
        assert not robust_hash(photo).matches(robust_hash(other))


class TestMetricProperties:
    """The normalized Hamming distance is a true metric — appeals and
    hash-DB thresholds rely on that."""

    def _hashes(self, n=4):
        return [
            robust_hash(generate_photo(seed=300 + i, height=96, width=96))
            for i in range(n)
        ]

    def test_symmetry(self):
        a, b, *_ = self._hashes()
        assert a.distance(b) == b.distance(a)

    def test_identity(self):
        a, *_ = self._hashes()
        assert a.distance(a) == 0.0

    def test_range(self):
        hashes = self._hashes()
        for x in hashes:
            for y in hashes:
                assert 0.0 <= x.distance(y) <= 1.0

    def test_triangle_inequality(self):
        hashes = self._hashes(4)
        for x in hashes:
            for y in hashes:
                for z in hashes:
                    assert x.distance(z) <= x.distance(y) + y.distance(z) + 1e-12

    def test_hashable_and_equal_by_bits(self):
        a, *_ = self._hashes()
        clone = RobustHash(bits=a.bits)
        assert hash(a) == hash(clone)
        assert a.distance(clone) == 0.0


class TestEdgeOfEnvelope:
    def test_severe_crop_raises_distance(self, photo):
        cropped = crop_fraction(photo, 0.5)
        assert hash_distance(photo, cropped) > hash_distance(
            photo, jpeg_roundtrip(photo, 50)
        )

    def test_caption_increases_distance_modestly(self, photo):
        captioned = overlay_caption(photo)
        d = hash_distance(photo, captioned)
        assert 0.0 < d < 0.35  # detectable change, usually still matchable
