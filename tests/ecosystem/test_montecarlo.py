"""Tests for the Monte Carlo tipping analysis."""

import numpy as np
import pytest

from repro.ecosystem.incentives import IncentiveWeights
from repro.ecosystem.montecarlo import (
    MonteCarloResult,
    perturb_weights,
    run_monte_carlo,
)
from repro.ecosystem.scenarios import baseline_scenario, no_first_mover_scenario


class TestPerturbation:
    def test_weights_change_but_stay_positive(self):
        rng = np.random.default_rng(1)
        base = IncentiveWeights()
        perturbed = perturb_weights(base, rng)
        assert perturbed.brand_value != base.brand_value
        assert perturbed.brand_value > 0
        assert perturbed.liability_reference_photos > 0

    def test_zero_spread_is_identity(self):
        rng = np.random.default_rng(2)
        base = IncentiveWeights()
        perturbed = perturb_weights(base, rng, spread=0.0)
        assert perturbed.brand_value == pytest.approx(base.brand_value)

    def test_seeded_reproducibility(self):
        base = IncentiveWeights()
        a = perturb_weights(base, np.random.default_rng(3))
        b = perturb_weights(base, np.random.default_rng(3))
        assert a.liability_weight == b.liability_weight


class TestMonteCarlo:
    def test_baseline_usually_tips(self):
        result = run_monte_carlo(baseline_scenario(), runs=30, months=240, seed=4)
        assert result.tipping_probability > 0.8
        assert result.mean_final_share > 0.8

    def test_threshold_band_covers_paper_figure(self):
        """Across weight uncertainty, the tipping photo-population band
        straddles the paper's ~100 B."""
        result = run_monte_carlo(baseline_scenario(), runs=30, months=240, seed=5)
        low, median, high = result.photo_threshold_quantiles()
        assert low < 1e11 < high or (low <= 1e11 * 3 and high >= 1e11 / 3)
        assert median > 0

    def test_no_first_mover_never_tips(self):
        result = run_monte_carlo(
            no_first_mover_scenario(), runs=10, months=120, seed=6
        )
        assert result.tipping_probability == 0.0
        assert result.mean_final_share == 0.0

    def test_quantiles_on_empty_tips_are_nan(self):
        result = MonteCarloResult(runs=2)
        result.tipping_months = [None, None]
        result.photos_at_tipping = [None, None]
        assert all(np.isnan(q) for q in result.tipping_month_quantiles())

    def test_scenario_weights_restored(self):
        scenario = baseline_scenario()
        before = scenario.weights
        run_monte_carlo(scenario, runs=3, months=60, seed=7)
        assert scenario.weights is before

    def test_validation(self):
        with pytest.raises(ValueError):
            run_monte_carlo(runs=0)
