"""Tests for the TET adoption model — the paper's core argument."""

import numpy as np
import pytest

from repro.ecosystem.actors import AggregatorActor, BrowserVendor, UserPopulation
from repro.ecosystem.adoption import AdoptionModel
from repro.ecosystem.incentives import (
    IncentiveWeights,
    adoption_utility,
    holdout_utility,
)
from repro.ecosystem.scenarios import (
    baseline_scenario,
    engagement_incumbents_scenario,
    no_first_mover_scenario,
    strong_liability_scenario,
)


class TestActors:
    def test_validation(self):
        with pytest.raises(ValueError):
            BrowserVendor(name="x", market_share=1.5, privacy_brand=0.5)
        with pytest.raises(ValueError):
            AggregatorActor(
                name="x", market_share=0.5, privacy_brand=2.0, engagement_focus=0.5
            )
        with pytest.raises(ValueError):
            UserPopulation(size=0)


class TestIncentives:
    def test_adoption_utility_grows_with_user_adoption(self):
        aggregator = AggregatorActor(
            name="a", market_share=0.3, privacy_brand=0.8, engagement_focus=0.3
        )
        weights = IncentiveWeights()
        low = adoption_utility(aggregator, 0.01, weights)
        high = adoption_utility(aggregator, 0.5, weights)
        assert high > low

    def test_holdout_utility_worsens_with_photo_population(self):
        aggregator = AggregatorActor(
            name="a", market_share=0.3, privacy_brand=0.2, engagement_focus=0.8
        )
        weights = IncentiveWeights()
        early = holdout_utility(aggregator, 0.1, 1e9, 0.0, weights)
        late = holdout_utility(aggregator, 0.1, 200e9, 0.0, weights)
        assert late < early

    def test_competitive_pressure_term(self):
        aggregator = AggregatorActor(
            name="a", market_share=0.3, privacy_brand=0.2, engagement_focus=0.8
        )
        weights = IncentiveWeights()
        alone = holdout_utility(aggregator, 0.3, 1e9, 0.0, weights)
        crowded = holdout_utility(aggregator, 0.3, 1e9, 0.7, weights)
        assert crowded < alone

    def test_liability_saturates(self):
        aggregator = AggregatorActor(
            name="a", market_share=0.3, privacy_brand=0.2, engagement_focus=0.8
        )
        weights = IncentiveWeights()
        at_ref = holdout_utility(aggregator, 0.0, 100e9, 0.0, weights)
        at_10x = holdout_utility(aggregator, 0.0, 1000e9, 0.0, weights)
        # Bounded below by the full liability weight.
        assert at_10x >= -weights.liability_weight
        assert at_10x < at_ref


class TestAdoptionDynamics:
    def test_baseline_reaches_full_adoption(self):
        trace = baseline_scenario().build(seed=1).run(240)
        assert trace.final().aggregator_share_adopted == pytest.approx(1.0)

    def test_baseline_tipping_near_100b_photos(self):
        """The paper: incentives 'kick in' near 100 B registered photos."""
        trace = baseline_scenario().build(seed=1).run(240)
        photos = trace.photos_at_tipping(0.5)
        assert photos is not None
        assert 10e9 <= photos <= 1000e9  # order-of-magnitude agreement

    def test_no_first_mover_never_tips(self):
        """The TET counterfactual: no bootstrap, no transformation."""
        trace = no_first_mover_scenario().build(seed=1).run(240)
        final = trace.final()
        assert final.user_adoption == 0.0
        assert final.photo_population == 0.0
        assert final.aggregator_share_adopted == 0.0
        assert trace.tipping_month() is None

    def test_strong_liability_tips_earlier(self):
        base = baseline_scenario().build(seed=1).run(240)
        strong = strong_liability_scenario().build(seed=1).run(240)
        assert strong.tipping_month() <= base.tipping_month()
        assert strong.photos_at_tipping() < base.photos_at_tipping()

    def test_engagement_incumbents_tip_later(self):
        base = baseline_scenario().build(seed=1).run(240)
        hard = engagement_incumbents_scenario().build(seed=1).run(240)
        assert hard.tipping_month() >= base.tipping_month()

    def test_privacy_branded_aggregators_adopt_first(self):
        model = baseline_scenario().build(seed=1)
        model.run(240)
        by_adoption = sorted(
            model.aggregators, key=lambda a: a.adopted_at if a.adopted_at else 1e9
        )
        # privategram (privacy_brand 0.8) before viralgrid (0.1).
        names = [a.name for a in by_adoption]
        assert names.index("privategram") < names.index("viralgrid")

    def test_follower_vendors_ship_after_first_aggregator(self):
        model = baseline_scenario().build(seed=1)
        trace = model.run(240)
        laggard = next(v for v in model.vendors if v.name == "adstream")
        assert laggard.adopted
        assert laggard.adopted_at > 0
        total_share = sum(v.market_share for v in model.vendors)
        assert trace.final().vendor_share_adopted == pytest.approx(total_share)

    def test_user_adoption_monotone_nondecreasing(self):
        trace = baseline_scenario().build(seed=2).run(120)
        adoption = trace.user_adoption()
        assert (np.diff(adoption) >= -1e-12).all()

    def test_photo_population_monotone(self):
        trace = baseline_scenario().build(seed=2).run(120)
        photos = trace.photo_population()
        assert (np.diff(photos) >= 0).all()

    def test_deterministic_given_seed(self):
        t1 = baseline_scenario().build(seed=3).run(60)
        t2 = baseline_scenario().build(seed=3).run(60)
        assert np.array_equal(t1.aggregator_share(), t2.aggregator_share())

    def test_hysteresis_prevents_instant_flips(self):
        model = baseline_scenario().build(seed=1)
        model.step()
        assert all(not a.adopted for a in model.aggregators)

    def test_validation(self):
        users = UserPopulation()
        vendor = BrowserVendor(name="v", market_share=0.1, privacy_brand=0.9)
        aggregator = AggregatorActor(
            name="a", market_share=1.0, privacy_brand=0.5, engagement_focus=0.5
        )
        with pytest.raises(ValueError):
            AdoptionModel(vendors=[], aggregators=[aggregator], users=users)
        with pytest.raises(ValueError):
            AdoptionModel(vendors=[vendor], aggregators=[], users=users)
        model = AdoptionModel(vendors=[vendor], aggregators=[aggregator], users=users)
        with pytest.raises(ValueError):
            model.run(0)

    def test_trace_empty_final_raises(self):
        from repro.ecosystem.adoption import AdoptionTrace

        with pytest.raises(ValueError):
            AdoptionTrace().final()
