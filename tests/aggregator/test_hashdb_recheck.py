"""Tests for the robust-hash database and periodic rechecking."""

import numpy as np
import pytest

from repro.aggregator.aggregator import ContentAggregator
from repro.aggregator.hashdb import RobustHashDatabase
from repro.aggregator.recheck import PeriodicRechecker
from repro.core import IrsDeployment
from repro.core.identifiers import PhotoIdentifier
from repro.media.image import generate_photo
from repro.media.jpeg import jpeg_roundtrip
from repro.media.metadata import IRS_FRESHNESS_FIELD
from repro.media.perceptual import robust_hash
from repro.netsim.simulator import Simulator


def _identifier(serial: int) -> PhotoIdentifier:
    return PhotoIdentifier(ledger_id="l", serial=serial)


class TestRobustHashDatabase:
    def test_add_and_find_exact(self):
        db = RobustHashDatabase()
        photo = generate_photo(seed=1)
        db.add_photo(_identifier(1), photo)
        match = db.find_match(photo)
        assert match is not None
        assert match.identifier == _identifier(1)
        assert match.distance == 0.0

    def test_finds_compressed_derivative(self):
        db = RobustHashDatabase()
        photo = generate_photo(seed=2)
        db.add_photo(_identifier(1), photo)
        degraded = jpeg_roundtrip(photo, 50)
        assert db.find_match(degraded) is not None

    def test_unrelated_photo_no_match(self):
        db = RobustHashDatabase()
        db.add_photo(_identifier(1), generate_photo(seed=3))
        assert db.find_match(generate_photo(seed=4)) is None

    def test_nearest_regardless_of_threshold(self):
        db = RobustHashDatabase()
        db.add_photo(_identifier(1), generate_photo(seed=5))
        nearest = db.nearest(generate_photo(seed=6))
        assert nearest is not None
        assert nearest.distance > 0.25

    def test_empty_db(self):
        db = RobustHashDatabase()
        assert db.nearest(generate_photo(seed=7)) is None
        assert db.find_match(generate_photo(seed=7)) is None

    def test_multiple_matches_sorted(self):
        db = RobustHashDatabase()
        photo = generate_photo(seed=8)
        db.add_photo(_identifier(1), photo)
        db.add_photo(_identifier(2), jpeg_roundtrip(photo, 40))
        matches = db.matches(photo)
        assert len(matches) == 2
        assert matches[0].distance <= matches[1].distance

    def test_remove(self):
        db = RobustHashDatabase()
        photo = generate_photo(seed=9)
        other = generate_photo(seed=10)
        db.add_photo(_identifier(1), photo)
        db.add_photo(_identifier(2), other)
        db.remove(_identifier(1))
        assert len(db) == 1
        assert db.find_match(photo) is None
        assert db.find_match(other) is not None

    def test_remove_absent_noop(self):
        db = RobustHashDatabase()
        db.remove(_identifier(99))  # no raise

    def test_multiple_entries_per_identifier(self):
        """Derivatives share their source's identifier: one claim, many
        signatures."""
        db = RobustHashDatabase()
        photo = generate_photo(seed=11)
        from repro.media.transforms import overlay_caption

        db.add(_identifier(1), robust_hash(photo))
        db.add(_identifier(1), robust_hash(overlay_caption(photo)))
        assert len(db) == 2
        assert db.entries_for(_identifier(1)) == 2
        db.remove(_identifier(1))  # takes both down together
        assert len(db) == 0


@pytest.fixture()
def hosted_env():
    irs = IrsDeployment.create(seed=61)
    aggregator = ContentAggregator("site", irs.registry)
    receipts = []
    for i in range(4):
        photo = irs.new_photo()
        receipt, labeled = irs.owner_toolkit.claim_and_label(photo, irs.ledger)
        proof = irs.registry.status(receipt.identifier)
        aggregator.host(f"pic{i}", labeled, receipt.identifier, proof=proof)
        receipts.append(receipt)
    return irs, aggregator, receipts


class TestPeriodicRecheck:
    def test_sweep_takes_down_revoked(self, hosted_env):
        irs, aggregator, receipts = hosted_env
        irs.owner_toolkit.revoke(receipts[1], irs.ledger)
        irs.owner_toolkit.revoke(receipts[3], irs.ledger)
        rechecker = PeriodicRechecker(aggregator)
        report = rechecker.run_sweep()
        assert report.swept == 4
        assert sorted(report.takedowns) == ["pic1", "pic3"]
        assert not aggregator.serve("pic1").served
        assert aggregator.serve("pic0").served

    def test_unrevoke_does_not_restore(self, hosted_env):
        """Takedowns persist even if the owner later unrevokes — the
        owner can re-upload; silent resurrection would be surprising."""
        irs, aggregator, receipts = hosted_env
        irs.owner_toolkit.revoke(receipts[0], irs.ledger)
        PeriodicRechecker(aggregator).run_sweep()
        irs.owner_toolkit.unrevoke(receipts[0], irs.ledger)
        assert not aggregator.serve("pic0").served

    def test_sweep_refreshes_proofs(self, hosted_env):
        irs, aggregator, _ = hosted_env
        rechecker = PeriodicRechecker(aggregator)
        rechecker.run_sweep()
        for hosted in aggregator.live_photos():
            assert hosted.last_proof is not None
            assert hosted.last_proof.verify(irs.ledger.public_key)

    def test_served_photo_carries_freshness_proof(self, hosted_env):
        _, aggregator, _ = hosted_env
        PeriodicRechecker(aggregator).run_sweep()
        result = aggregator.serve("pic0")
        assert result.served
        assert result.photo.metadata.get(IRS_FRESHNESS_FIELD) is not None

    def test_scheduled_sweeps_in_simulator(self, hosted_env):
        irs, aggregator, receipts = hosted_env
        sim = Simulator()
        rechecker = PeriodicRechecker(aggregator)
        rechecker.schedule_on(sim, interval=3600.0, until=4 * 3600.0)
        # Revoke between the first and second sweep.
        sim.run(until=3700.0)
        irs.owner_toolkit.revoke(receipts[2], irs.ledger)
        sim.run()
        assert len(rechecker.reports) == 4
        assert rechecker.total_takedowns == 1
        assert not aggregator.serve("pic2").served

    def test_revocation_latency_bounded_by_interval(self, hosted_env):
        """Nongoal #4 quantified: content comes down within one recheck
        interval of revocation."""
        irs, aggregator, receipts = hosted_env
        sim = Simulator()
        rechecker = PeriodicRechecker(aggregator)
        rechecker.schedule_on(sim, interval=100.0, until=1000.0)
        sim.run(until=250.0)
        irs.owner_toolkit.revoke(receipts[0], irs.ledger)
        revoke_time = sim.now
        sim.run(until=1000.0)
        takedown_report = next(r for r in rechecker.reports if r.takedowns)
        assert takedown_report.completed_at - revoke_time <= 100.0

    def test_invalid_interval(self, hosted_env):
        _, aggregator, _ = hosted_env
        with pytest.raises(ValueError):
            PeriodicRechecker(aggregator).schedule_on(Simulator(), interval=0.0)
