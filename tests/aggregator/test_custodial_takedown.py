"""Tests for the custodial takedown flow — why aggregators claim
unlabeled uploads at all (section 3.2)."""

import numpy as np
import pytest

from repro.aggregator.aggregator import ContentAggregator
from repro.aggregator.recheck import PeriodicRechecker
from repro.aggregator.uploads import UploadDecision, UploadPipeline
from repro.core import IrsDeployment
from repro.core.owner import OwnerToolkit


@pytest.fixture()
def world():
    """Two aggregators; site A claims custodially, site B hosts a copy."""
    irs = IrsDeployment.create(seed=200)
    pipelines = []
    aggregators = []
    for i, name in enumerate(["site-a", "site-b"]):
        aggregator = ContentAggregator(name, irs.registry)
        pipeline = UploadPipeline(
            aggregator,
            watermark_codec=irs.watermark_codec,
            custodial_ledger=irs.ledger,
            custodial_toolkit=OwnerToolkit(
                rng=np.random.default_rng(200 + i),
                watermark_codec=irs.watermark_codec,
            ),
        )
        aggregators.append(aggregator)
        pipelines.append(pipeline)
    return irs, aggregators, pipelines


class TestCustodialTakedown:
    def test_receipt_retained(self, world):
        irs, _, pipelines = world
        outcome = pipelines[0].upload("anon", irs.new_photo())
        assert outcome.decision is UploadDecision.ACCEPTED_CUSTODIAL
        assert "anon" in pipelines[0].custodial_receipts

    def test_takedown_revokes_and_removes(self, world):
        irs, aggregators, pipelines = world
        outcome = pipelines[0].upload("anon", irs.new_photo())
        pipelines[0].revoke_custodial("anon")
        assert not aggregators[0].serve("anon").served
        assert irs.ledger.status(outcome.identifier).revoked

    def test_takedown_propagates_to_other_sites(self, world):
        """The custodially claimed (and labeled) photo was reshared to
        site B; revoking the custodial claim takes it down there too at
        the next recheck."""
        irs, aggregators, pipelines = world
        outcome = pipelines[0].upload("anon", irs.new_photo())
        # The hosted (now labeled) photo circulates to site B.
        hosted = aggregators[0].hosted("anon")
        reshare = pipelines[1].upload("repost", hosted.photo)
        assert reshare.decision is UploadDecision.ACCEPTED
        assert reshare.identifier == outcome.identifier  # same claim

        pipelines[0].revoke_custodial("anon")
        PeriodicRechecker(aggregators[1]).run_sweep()
        assert not aggregators[1].serve("repost").served

    def test_unknown_name_rejected(self, world):
        _, _, pipelines = world
        with pytest.raises(KeyError):
            pipelines[0].revoke_custodial("ghost")

    def test_labeled_uploads_hold_no_custodial_receipt(self, world):
        irs, _, pipelines = world
        photo = irs.new_photo()
        _, labeled = irs.owner_toolkit.claim_and_label(photo, irs.ledger)
        pipelines[0].upload("owned", labeled)
        assert "owned" not in pipelines[0].custodial_receipts
