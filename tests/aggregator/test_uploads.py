"""Tests for the aggregator upload pipeline — section 3.2's rules."""

import numpy as np
import pytest

from repro.aggregator.aggregator import AggregatorConfig, ContentAggregator
from repro.aggregator.hashdb import RobustHashDatabase
from repro.aggregator.uploads import UploadDecision, UploadPipeline
from repro.core import IrsDeployment
from repro.core.identifiers import PhotoIdentifier
from repro.core.owner import OwnerToolkit
from repro.media.metadata import IRS_IDENTIFIER_FIELD
from repro.media.transforms import tint


@pytest.fixture()
def env():
    irs = IrsDeployment.create(seed=51)
    aggregator = ContentAggregator("photosite", irs.registry)
    custodial_toolkit = OwnerToolkit(
        rng=np.random.default_rng(99), watermark_codec=irs.watermark_codec
    )
    pipeline = UploadPipeline(
        aggregator,
        watermark_codec=irs.watermark_codec,
        custodial_ledger=irs.ledger,
        custodial_toolkit=custodial_toolkit,
        hash_database=RobustHashDatabase(),
    )
    return irs, aggregator, pipeline


@pytest.fixture()
def labeled_photo(env):
    irs, *_ = env
    photo = irs.new_photo()
    receipt, labeled = irs.owner_toolkit.claim_and_label(photo, irs.ledger)
    return photo, receipt, labeled


class TestLabeledUploads:
    def test_clean_upload_accepted(self, env, labeled_photo):
        irs, aggregator, pipeline = env
        _, receipt, labeled = labeled_photo
        outcome = pipeline.upload("pic1", labeled)
        assert outcome.decision is UploadDecision.ACCEPTED
        assert outcome.hosted is not None
        assert outcome.identifier == receipt.identifier
        assert aggregator.hosted("pic1") is not None

    def test_revoked_upload_denied(self, env, labeled_photo):
        irs, _, pipeline = env
        _, receipt, labeled = labeled_photo
        irs.owner_toolkit.revoke(receipt, irs.ledger)
        outcome = pipeline.upload("pic1", labeled)
        assert outcome.decision is UploadDecision.DENIED_REVOKED

    def test_conflicting_label_denied(self, env, labeled_photo):
        irs, _, pipeline = env
        *_, labeled = labeled_photo
        forged = labeled.copy()
        forged.metadata.set(
            IRS_IDENTIFIER_FIELD,
            PhotoIdentifier(ledger_id="ledger-0", serial=4242).to_string(),
        )
        outcome = pipeline.upload("pic1", forged)
        assert outcome.decision is UploadDecision.DENIED_LABEL_CONFLICT

    def test_partial_label_denied(self, env, labeled_photo):
        _, _, pipeline = env
        *_, labeled = labeled_photo
        stripped = labeled.copy()
        stripped.metadata = stripped.metadata.stripped(preserve_irs=False)
        outcome = pipeline.upload("pic1", stripped)
        assert outcome.decision is UploadDecision.DENIED_LABEL_PARTIAL

    def test_hosted_photo_keeps_irs_metadata_only(self, env, labeled_photo):
        _, aggregator, pipeline = env
        *_, labeled = labeled_photo
        labeled = labeled.copy()
        labeled.metadata.set("exif:gps-latitude", "37.7")
        pipeline.upload("pic1", labeled)
        hosted = aggregator.hosted("pic1")
        assert hosted.photo.metadata.irs_identifier is not None
        assert hosted.photo.metadata.get("exif:gps-latitude") is None


class TestUnlabeledUploads:
    def test_custodial_claim(self, env):
        irs, aggregator, pipeline = env
        outcome = pipeline.upload("anon", irs.new_photo())
        assert outcome.decision is UploadDecision.ACCEPTED_CUSTODIAL
        record = irs.ledger.record(outcome.identifier)
        assert record.custodial
        hosted = aggregator.hosted("anon")
        # The hosted copy is now labeled.
        assert hosted.photo.metadata.irs_identifier == outcome.identifier.to_string()

    def test_rejection_policy(self, env):
        irs, *_ = env
        aggregator = ContentAggregator(
            "strict-site",
            irs.registry,
            config=AggregatorConfig(custodial_claims=False),
        )
        pipeline = UploadPipeline(aggregator, watermark_codec=irs.watermark_codec)
        outcome = pipeline.upload("anon", irs.new_photo())
        assert outcome.decision is UploadDecision.DENIED_UNLABELED

    def test_derivative_detected_by_hashdb(self, env, labeled_photo):
        irs, _, pipeline = env
        _, receipt, labeled = labeled_photo
        pipeline.upload("original", labeled)
        # Strip a tinted derivative of everything and re-upload.
        derivative = tint(labeled, (1.1, 1.0, 0.9), preserve_metadata=False)
        # Destroy the watermark too (resize), so only the hash DB can catch it.
        from repro.media.transforms import resize

        derivative = resize(derivative, 100, 100)
        outcome = pipeline.upload("sneaky", derivative)
        assert outcome.decision is UploadDecision.DENIED_DERIVATIVE
        assert outcome.identifier == receipt.identifier

    def test_custodial_requires_wiring(self, env):
        irs, *_ = env
        aggregator = ContentAggregator("site", irs.registry)
        with pytest.raises(ValueError):
            UploadPipeline(aggregator, watermark_codec=irs.watermark_codec)


class TestLegacyAggregator:
    def test_accepts_everything_strips_everything(self, env, labeled_photo):
        irs, *_ = env
        *_, labeled = labeled_photo
        legacy = ContentAggregator(
            "oldsite", irs.registry, config=AggregatorConfig.legacy()
        )
        pipeline = UploadPipeline(legacy, watermark_codec=irs.watermark_codec)
        outcome = pipeline.upload("pic", labeled)
        assert outcome.decision is UploadDecision.ACCEPTED
        hosted = legacy.hosted("pic")
        assert len(hosted.photo.metadata) == 0  # all metadata stripped

    def test_legacy_serves_revoked_content(self, env, labeled_photo):
        """The bootstrap-phase counterfactual: non-IRS sites keep
        serving revoked photos (which is what extension marking and
        liability pressure then punish)."""
        irs, *_ = env
        _, receipt, labeled = labeled_photo
        legacy = ContentAggregator(
            "oldsite", irs.registry, config=AggregatorConfig.legacy()
        )
        pipeline = UploadPipeline(legacy, watermark_codec=irs.watermark_codec)
        pipeline.upload("pic", labeled)
        irs.owner_toolkit.revoke(receipt, irs.ledger)
        assert legacy.serve("pic").served
