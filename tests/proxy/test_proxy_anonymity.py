"""Tests for the IRS proxy and the privacy measurement machinery."""

import numpy as np
import pytest

from repro.core import IrsDeployment
from repro.ledger.export import FilterExporter
from repro.netsim.simulator import ManualClock
from repro.proxy.anonymity import ObservationLog, anonymity_report
from repro.proxy.cache import TtlLruCache
from repro.proxy.filterset import ProxyFilterSet
from repro.proxy.proxy import IrsProxy
from repro.workload.population import populate_ledger


@pytest.fixture()
def env(rng):
    irs = IrsDeployment.create(seed=41)
    population = populate_ledger(irs.ledger, 500, 0.3, rng)
    exporter = FilterExporter(irs.ledger, nbits=1 << 14, num_hashes=5)
    exporter.publish()
    filterset = ProxyFilterSet()
    filterset.subscribe(exporter)
    filterset.refresh()
    return irs, population, filterset


class TestProxyAnswers:
    def test_filter_short_circuit_for_unrevoked(self, env):
        irs, population, filterset = env
        proxy = IrsProxy("p", irs.registry, filterset=filterset)
        unrevoked = [
            identifier
            for i, identifier in enumerate(population.identifiers)
            if not population.revoked_mask[i]
        ]
        # Find one that misses the filter (almost all do).
        answers = [proxy.status(identifier) for identifier in unrevoked[:50]]
        filter_answers = [a for a in answers if a.source == "filter"]
        assert len(filter_answers) > 40
        assert all(not a.revoked for a in filter_answers)

    def test_revoked_always_reaches_ledger(self, env):
        irs, population, filterset = env
        proxy = IrsProxy("p", irs.registry, filterset=filterset)
        revoked = [
            identifier
            for i, identifier in enumerate(population.identifiers)
            if population.revoked_mask[i]
        ]
        for identifier in revoked[:20]:
            answer = proxy.status(identifier)
            assert answer.revoked
            assert answer.source == "ledger"
            assert answer.proof is not None

    def test_cache_replays_ledger_answers(self, env):
        irs, population, filterset = env
        clock = ManualClock()
        proxy = IrsProxy(
            "p",
            irs.registry,
            filterset=filterset,
            cache=TtlLruCache(1000, ttl=600, clock=clock.now),
            clock=clock.now,
        )
        revoked_id = population.identifiers[
            int(np.nonzero(population.revoked_mask)[0][0])
        ]
        first = proxy.status(revoked_id)
        second = proxy.status(revoked_id)
        assert first.source == "ledger"
        assert second.source == "cache"
        assert proxy.stats.ledger_queries == 1

    def test_cache_ttl_bounds_staleness(self, env):
        """After the TTL, a revocation becomes visible (Nongoal #4:
        bounded, not instantaneous)."""
        irs, population, filterset = env
        clock = ManualClock()
        proxy = IrsProxy(
            "p",
            irs.registry,
            cache=TtlLruCache(1000, ttl=60, clock=clock.now),
            clock=clock.now,
        )
        # An unrevoked photo, no filter (forces cache/ledger path).
        idx = int(np.nonzero(~population.revoked_mask)[0][0])
        identifier = population.identifiers[idx]
        assert not proxy.status(identifier).revoked
        # Owner revokes; cached answer persists until TTL.
        record = irs.ledger.record(identifier)
        from repro.ledger.records import RevocationState

        record.state = RevocationState.REVOKED
        assert not proxy.status(identifier).revoked  # stale cache
        clock.advance(61.0)
        assert proxy.status(identifier).revoked  # TTL expired

    def test_no_filter_no_cache_always_queries(self, env):
        irs, population, _ = env
        proxy = IrsProxy("naive", irs.registry)
        for identifier in population.identifiers[:30]:
            proxy.status(identifier)
        assert proxy.stats.ledger_queries == 30
        assert proxy.stats.load_reduction_factor == pytest.approx(1.0)

    def test_load_reduction_factor(self, env):
        irs, population, filterset = env
        proxy = IrsProxy("p", irs.registry, filterset=filterset)
        unrevoked = [
            identifier
            for i, identifier in enumerate(population.identifiers)
            if not population.revoked_mask[i]
        ]
        for identifier in unrevoked:
            proxy.status(identifier)
        assert proxy.stats.load_reduction_factor > 10

    def test_refresh_filters_passthrough(self, env):
        irs, _, filterset = env
        proxy = IrsProxy("p", irs.registry, filterset=filterset)
        assert proxy.refresh_filters() == 0  # already current
        assert IrsProxy("bare", irs.registry).refresh_filters() == 0


class TestObservationLog:
    def test_ledger_sees_proxy_not_viewer(self, env):
        irs, population, filterset = env
        log = ObservationLog()
        proxy = IrsProxy("proxy-A", irs.registry, observation_log=log)
        for identifier in population.identifiers[:10]:
            proxy.status(identifier)
        assert log.requesters() == {"proxy-A"}
        assert len(log) == 10


class TestAnonymityReport:
    def test_direct_browsing_fully_attributed(self):
        log = ObservationLog()
        for i in range(10):
            log.record(f"user-{i % 2}", "l", f"irs1:l:{i}", float(i))
        report = anonymity_report(
            log,
            requester_populations={"user-0": ["user-0"], "user-1": ["user-1"]},
            viewer_checks={"user-0": 5, "user-1": 5},
        )
        assert report.attribution_rate == 1.0
        assert report.mean_anonymity_set == 1.0
        assert report.profile_leakage == 1.0

    def test_proxied_browsing_hides_viewers(self):
        log = ObservationLog()
        for i in range(10):
            log.record("proxy", "l", f"irs1:l:{i}", float(i))
        users = [f"user-{i}" for i in range(100)]
        report = anonymity_report(
            log,
            requester_populations={"proxy": users},
            viewer_checks={u: 1 for u in users},
        )
        assert report.attribution_rate == 0.0
        assert report.mean_anonymity_set == 100.0
        assert report.profile_leakage == 0.0

    def test_filter_short_circuits_reduce_visible_requests(self):
        log = ObservationLog()
        log.record("proxy", "l", "irs1:l:1", 0.0)
        report = anonymity_report(
            log,
            requester_populations={"proxy": ["u1", "u2"]},
            viewer_checks={"u1": 50, "u2": 50},
        )
        assert report.total_viewer_checks == 100
        assert report.ledger_visible_requests == 1

    def test_empty_checks_rejected(self):
        with pytest.raises(ValueError):
            anonymity_report(ObservationLog(), {}, {})
