"""Tests for the two-hop oblivious proxy construction."""

import numpy as np
import pytest

from repro.core import IrsDeployment
from repro.ledger.export import FilterExporter
from repro.proxy.anonymity import ObservationLog
from repro.proxy.filterset import ProxyFilterSet
from repro.proxy.twohop import EgressHop, IngressHop, ObliviousClient, SecretBox
from repro.workload.population import populate_ledger


class TestSecretBox:
    def test_roundtrip(self):
        box = SecretBox(b"k" * 16)
        for message in (b"", b"x", b"hello world", bytes(range(256))):
            assert box.open(box.seal(message)) == message

    def test_nonces_randomize_ciphertext(self):
        box = SecretBox(b"k" * 16)
        assert box.seal(b"same") != box.seal(b"same")

    def test_tamper_detected(self):
        box = SecretBox(b"k" * 16)
        sealed = bytearray(box.seal(b"secret"))
        sealed[-1] ^= 0x01
        with pytest.raises(ValueError):
            box.open(bytes(sealed))

    def test_wrong_key_rejected(self):
        sealed = SecretBox(b"k" * 16).seal(b"secret")
        with pytest.raises(ValueError):
            SecretBox(b"j" * 16).open(sealed)

    def test_short_inputs_rejected(self):
        with pytest.raises(ValueError):
            SecretBox(b"short")
        with pytest.raises(ValueError):
            SecretBox(b"k" * 16).open(b"tiny")


@pytest.fixture()
def oblivious(rng):
    irs = IrsDeployment.create(seed=150)
    population = populate_ledger(irs.ledger, 1000, 0.4, rng)
    exporter = FilterExporter(irs.ledger, nbits=1 << 14, num_hashes=5)
    exporter.publish()
    filterset = ProxyFilterSet()
    filterset.subscribe(exporter)
    filterset.refresh()
    box = SecretBox(b"shared-key-material!")
    observations = ObservationLog()
    egress = EgressHop(
        "egress", irs.registry, box, filterset=filterset,
        observation_log=observations,
    )
    ingress = IngressHop("ingress", egress)
    clients = {
        f"user-{u}": ObliviousClient(f"user-{u}", ingress, box) for u in range(5)
    }
    return irs, population, ingress, egress, clients, observations


class TestTwoHopPrivacy:
    def test_answers_correct(self, oblivious):
        irs, population, _, _, clients, _ = oblivious
        client = clients["user-0"]
        for i in range(30):
            answer = client.status(population.identifiers[i])
            assert answer.revoked == bool(population.revoked_mask[i])

    def test_ingress_never_sees_identifiers(self, oblivious):
        """The ingress log contains only blob digests; sealed queries
        for the same identifier differ every time (nonce), so the
        ingress cannot even link repeat views."""
        irs, population, ingress, _, clients, _ = oblivious
        identifier = population.identifiers[0]
        clients["user-0"].status(identifier)
        clients["user-0"].status(identifier)
        digests = ingress.observed_queries()
        assert len(digests) == 2
        assert digests[0] != digests[1]
        for record in ingress.log:
            assert identifier.to_string() not in str(record.blob_digest)

    def test_egress_never_sees_users(self, oblivious):
        irs, population, _, egress, clients, _ = oblivious
        for user, client in clients.items():
            client.status(population.identifiers[1])
        peers = {peer for peer, _ in egress.log}
        assert peers == {"ingress"}

    def test_ledger_sees_only_egress(self, oblivious):
        irs, population, _, _, clients, observations = oblivious
        revoked_index = int(np.nonzero(population.revoked_mask)[0][0])
        clients["user-2"].status(population.identifiers[revoked_index])
        assert observations.requesters() <= {"egress"}

    def test_filter_short_circuit_in_egress(self, oblivious):
        irs, population, _, egress, clients, observations = oblivious
        unrevoked = [
            identifier
            for i, identifier in enumerate(population.identifiers[:100])
            if not population.revoked_mask[i]
        ]
        before = len(observations)
        filter_answers = 0
        for identifier in unrevoked:
            if clients["user-3"].status(identifier).source == "filter":
                filter_answers += 1
        assert filter_answers > 0.9 * len(unrevoked)
        # Only false positives reached any ledger.
        assert len(observations) - before <= len(unrevoked) - filter_answers
