"""Tests for the proxy cache and filter subscription machinery."""

import numpy as np
import pytest

from repro.crypto.timestamp import TimestampAuthority
from repro.ledger.export import FilterExporter
from repro.ledger.ledger import Ledger
from repro.netsim.simulator import ManualClock
from repro.proxy.cache import TtlLruCache
from repro.proxy.filterset import ProxyFilterSet
from repro.workload.population import populate_ledger


class TestTtlLruCache:
    def test_put_get(self):
        cache = TtlLruCache(10)
        cache.put("k", "v")
        assert cache.get("k") == "v"
        assert cache.stats.hits == 1

    def test_miss_counted(self):
        cache = TtlLruCache(10)
        assert cache.get("absent") is None
        assert cache.stats.misses == 1

    def test_ttl_expiry(self):
        clock = ManualClock()
        cache = TtlLruCache(10, ttl=5.0, clock=clock.now)
        cache.put("k", "v")
        clock.advance(4.0)
        assert cache.get("k") == "v"
        clock.advance(2.0)
        assert cache.get("k") is None
        assert cache.stats.expirations == 1

    def test_lru_eviction(self):
        cache = TtlLruCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a
        cache.put("c", 3)  # evicts b
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.stats.evictions == 1

    def test_overwrite_refreshes(self):
        clock = ManualClock()
        cache = TtlLruCache(10, ttl=5.0, clock=clock.now)
        cache.put("k", "old")
        clock.advance(4.0)
        cache.put("k", "new")
        clock.advance(3.0)
        assert cache.get("k") == "new"

    def test_invalidate(self):
        cache = TtlLruCache(10)
        cache.put("k", 1)
        cache.invalidate("k")
        assert cache.get("k") is None

    def test_hit_rate(self):
        cache = TtlLruCache(10)
        cache.put("k", 1)
        cache.get("k")
        cache.get("x")
        assert cache.stats.hit_rate == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            TtlLruCache(0)
        with pytest.raises(ValueError):
            TtlLruCache(5, ttl=0.0)

    def test_ttl_without_clock_rejected(self):
        # Regression: a ttl with the default frozen clock silently made
        # every entry immortal; it must be a loud constructor error.
        with pytest.raises(ValueError, match="clock"):
            TtlLruCache(5, ttl=60.0)
        # Either knob alone remains fine.
        assert TtlLruCache(5, ttl=60.0, clock=ManualClock().now) is not None
        assert TtlLruCache(5) is not None
        assert TtlLruCache(5, clock=ManualClock().now) is not None


class TestProxyFilterSet:
    def _env(self, rng, num_ledgers=2, count=400, revoked=0.5):
        tsa = TimestampAuthority()
        ledgers, exporters, populations = [], [], []
        for i in range(num_ledgers):
            ledger = Ledger(f"l{i}", tsa)
            populations.append(populate_ledger(ledger, count, revoked, rng))
            exporter = FilterExporter(ledger, nbits=1 << 15, num_hashes=5)
            exporter.publish()
            ledgers.append(ledger)
            exporters.append(exporter)
        return ledgers, exporters, populations

    def test_first_refresh_is_full_transfer(self, rng):
        _, exporters, _ = self._env(rng)
        filterset = ProxyFilterSet()
        for exporter in exporters:
            filterset.subscribe(exporter)
        transferred = filterset.refresh()
        assert transferred == sum(e.current.filter.nbytes for e in exporters)

    def test_merged_filter_covers_all_ledgers(self, rng):
        _, exporters, populations = self._env(rng)
        filterset = ProxyFilterSet()
        for exporter in exporters:
            filterset.subscribe(exporter)
        filterset.refresh()
        for population in populations:
            for i, identifier in enumerate(population.identifiers):
                if population.revoked_mask[i]:
                    assert filterset.might_be_revoked(identifier.to_compact())

    def test_subsequent_refresh_uses_deltas(self, rng):
        ledgers, exporters, _ = self._env(rng)
        filterset = ProxyFilterSet()
        for exporter in exporters:
            filterset.subscribe(exporter)
        filterset.refresh()
        # Small churn, republish.
        populate_ledger(ledgers[0], 20, 1.0, rng)
        for exporter in exporters:
            exporter.publish()
        transferred = filterset.refresh()
        subs = [filterset._subscriptions[l] for l in filterset.ledger_ids]
        assert all(s.delta_transfers >= 1 for s in subs)
        assert transferred < exporters[0].current.filter.nbytes

    def test_refresh_noop_when_current(self, rng):
        _, exporters, _ = self._env(rng, num_ledgers=1)
        filterset = ProxyFilterSet()
        filterset.subscribe(exporters[0])
        filterset.refresh()
        assert filterset.refresh() == 0

    def test_no_filter_means_everything_might_be_revoked(self):
        filterset = ProxyFilterSet()
        assert filterset.might_be_revoked(b"x" * 12)

    def test_duplicate_subscription_rejected(self, rng):
        _, exporters, _ = self._env(rng, num_ledgers=1)
        filterset = ProxyFilterSet()
        filterset.subscribe(exporters[0])
        with pytest.raises(ValueError):
            filterset.subscribe(exporters[0])

    def test_refresh_before_publish_rejected(self, rng):
        tsa = TimestampAuthority()
        ledger = Ledger("empty", tsa)
        exporter = FilterExporter(ledger, nbits=1 << 10, num_hashes=3)
        filterset = ProxyFilterSet()
        filterset.subscribe(exporter)
        with pytest.raises(RuntimeError):
            filterset.refresh()

    def test_delta_keeps_filter_exact(self, rng):
        """After delta refreshes, the local filter must equal a fresh
        full download (no drift)."""
        ledgers, exporters, _ = self._env(rng, num_ledgers=1)
        filterset = ProxyFilterSet()
        filterset.subscribe(exporters[0])
        filterset.refresh()
        for _ in range(3):
            populate_ledger(ledgers[0], 15, 0.8, rng)
            exporters[0].publish()
            filterset.refresh()
        local = filterset._subscriptions["l0"].local_filter
        assert local.bits == exporters[0].current.filter.bits
