"""Tests for video claiming/labeling/revocation — the media
generalization of section 2."""

import numpy as np
import pytest

from repro.core import IrsDeployment
from repro.core.errors import ClaimError
from repro.core.video_owner import VideoOwnerToolkit, judge_video_appeal
from repro.media.jpeg import jpeg_roundtrip
from repro.media.video import Video, generate_video


@pytest.fixture(scope="module")
def env():
    irs = IrsDeployment.create(seed=140)
    toolkit = VideoOwnerToolkit(rng=np.random.default_rng(140))
    video = generate_video(seed=140, num_frames=6, height=128, width=128)
    receipt, labeled = toolkit.claim_and_label(video, irs.ledger)
    return irs, toolkit, video, receipt, labeled


class TestVideoClaiming:
    def test_claim_covers_all_frames(self, env):
        _, _, video, receipt, _ = env
        assert receipt.content_hash == video.content_hash()

    def test_label_sets_both_channels(self, env):
        irs, toolkit, _, receipt, labeled = env
        assert labeled.metadata.irs_identifier == receipt.identifier.to_string()
        payload = toolkit.video_codec.extract(labeled, search_offsets=False)
        assert payload == receipt.identifier.to_compact()

    def test_identify_from_watermark_after_strip(self, env):
        irs, toolkit, _, receipt, labeled = env
        stripped = labeled.copy(with_metadata=False)
        identifier = toolkit.identify(stripped, registry=irs.registry)
        assert identifier == receipt.identifier

    def test_identify_survives_clipping(self, env):
        irs, toolkit, _, receipt, labeled = env
        clipped = labeled.clip(2, 5)
        clipped.metadata = clipped.metadata.stripped(preserve_irs=False)
        identifier = toolkit.identify(clipped, registry=irs.registry)
        assert identifier == receipt.identifier

    def test_revoke_unrevoke(self, env):
        irs, toolkit, _, receipt, _ = env
        toolkit.revoke(receipt, irs.ledger)
        assert irs.ledger.status(receipt.identifier).revoked
        toolkit.unrevoke(receipt, irs.ledger)
        assert not irs.ledger.status(receipt.identifier).revoked

    def test_wrong_ledger_rejected(self, env):
        _, toolkit, _, receipt, _ = env
        other = IrsDeployment.create(seed=141, num_ledgers=2)
        # receipt is for "ledger-0"; ledgers[1] is "ledger-1".
        with pytest.raises(ClaimError):
            toolkit.revoke(receipt, other.ledgers[1])

    def test_unlabeled_video_identifies_as_none(self, env):
        irs, toolkit, video, *_ = env
        assert toolkit.identify(video, registry=irs.registry) is None


class TestVideoAppeals:
    def test_recompressed_clip_judged_derived(self, env):
        _, _, video, _, labeled = env
        copy = Video(
            frames=[jpeg_roundtrip(f, 60) for f in labeled.clip(1, 5).frames],
            fps=labeled.fps,
        )
        judgement = judge_video_appeal(video, copy)
        assert judgement.derived
        assert judgement.coverage >= 0.8

    def test_unrelated_video_not_derived(self, env):
        _, _, video, *_ = env
        other = generate_video(seed=999, num_frames=6, height=128, width=128)
        judgement = judge_video_appeal(video, other)
        assert not judgement.derived
        assert judgement.coverage <= 0.2

    def test_mixed_material_uses_threshold(self, env):
        """A copy mixing derived and novel frames sits at its true
        coverage and the threshold decides."""
        _, _, video, _, labeled = env
        other = generate_video(seed=888, num_frames=6, height=128, width=128)
        mixed = Video(
            frames=list(labeled.frames[:3]) + list(other.frames[:3]),
            fps=labeled.fps,
        )
        judgement = judge_video_appeal(video, mixed, coverage_threshold=0.4)
        assert judgement.derived
        assert 0.4 <= judgement.coverage <= 0.6
        strict = judge_video_appeal(video, mixed, coverage_threshold=0.9)
        assert not strict.derived
