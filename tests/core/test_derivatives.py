"""Tests for label-inheriting derivatives (the section 3.2 meme path)."""

import numpy as np
import pytest

from repro.aggregator.aggregator import ContentAggregator
from repro.aggregator.hashdb import RobustHashDatabase
from repro.aggregator.uploads import UploadDecision, UploadPipeline
from repro.core import IrsDeployment
from repro.core.derivatives import DerivativeError, make_derivative
from repro.core.labeling import LabelState, read_label
from repro.core.owner import OwnerToolkit
from repro.media.transforms import overlay_caption


@pytest.fixture()
def env():
    irs = IrsDeployment.create(seed=180)
    photo = irs.new_photo()
    receipt, labeled = irs.owner_toolkit.claim_and_label(photo, irs.ledger)
    return irs, photo, receipt, labeled


class TestDerivativeLabeling:
    def test_derivative_carries_source_identifier(self, env):
        irs, _, receipt, labeled = env
        meme = make_derivative(
            labeled, overlay_caption, codec=irs.watermark_codec,
            registry=irs.registry,
        )
        label = read_label(meme, irs.watermark_codec, registry=irs.registry)
        assert label.state is LabelState.BOTH_AGREE
        assert label.identifier == receipt.identifier

    def test_derivative_pixels_differ(self, env):
        irs, _, _, labeled = env
        meme = make_derivative(
            labeled, overlay_caption, codec=irs.watermark_codec,
            registry=irs.registry,
        )
        assert meme.content_hash() != labeled.content_hash()

    def test_unlabeled_source_rejected(self, env):
        irs, photo, *_ = env
        with pytest.raises(DerivativeError):
            make_derivative(
                photo, overlay_caption, codec=irs.watermark_codec,
                registry=irs.registry,
            )

    def test_derivative_of_watermark_only_source(self, env):
        """Even a metadata-stripped source transfers its label (the
        watermark resolves via the registry)."""
        irs, _, receipt, labeled = env
        stripped = labeled.copy()
        stripped.metadata = stripped.metadata.stripped(preserve_irs=False)
        meme = make_derivative(
            stripped, overlay_caption, codec=irs.watermark_codec,
            registry=irs.registry,
        )
        label = read_label(meme, irs.watermark_codec, registry=irs.registry)
        assert label.identifier == receipt.identifier


class TestDerivativeLifecycle:
    def _pipeline(self, irs):
        aggregator = ContentAggregator("site", irs.registry)
        return aggregator, UploadPipeline(
            aggregator,
            watermark_codec=irs.watermark_codec,
            custodial_ledger=irs.ledger,
            custodial_toolkit=OwnerToolkit(
                rng=np.random.default_rng(181),
                watermark_codec=irs.watermark_codec,
            ),
            hash_database=RobustHashDatabase(),
        )

    def test_derivative_uploads_cleanly(self, env):
        irs, _, _, labeled = env
        _, pipeline = self._pipeline(irs)
        meme = make_derivative(
            labeled, overlay_caption, codec=irs.watermark_codec,
            registry=irs.registry,
        )
        outcome = pipeline.upload("meme", meme)
        assert outcome.decision is UploadDecision.ACCEPTED

    def test_revoking_original_takes_down_derivative(self, env):
        """The whole point: one revocation covers the meme too."""
        from repro.aggregator.recheck import PeriodicRechecker

        irs, _, receipt, labeled = env
        aggregator, pipeline = self._pipeline(irs)
        meme = make_derivative(
            labeled, overlay_caption, codec=irs.watermark_codec,
            registry=irs.registry,
        )
        pipeline.upload("original", labeled)
        pipeline.upload("meme", meme)
        irs.owner_toolkit.revoke(receipt, irs.ledger)
        PeriodicRechecker(aggregator).run_sweep()
        assert not aggregator.serve("original").served
        assert not aggregator.serve("meme").served

    def test_revoked_original_blocks_new_derivative_uploads(self, env):
        irs, _, receipt, labeled = env
        _, pipeline = self._pipeline(irs)
        meme = make_derivative(
            labeled, overlay_caption, codec=irs.watermark_codec,
            registry=irs.registry,
        )
        irs.owner_toolkit.revoke(receipt, irs.ledger)
        outcome = pipeline.upload("meme", meme)
        assert outcome.decision is UploadDecision.DENIED_REVOKED
