"""Tests for photo identifiers."""

import pytest
from hypothesis import given, strategies as st

from repro.core.identifiers import (
    COMPACT_LENGTH,
    IdentifierError,
    PhotoIdentifier,
    ledger_tag,
)


class TestStringEncoding:
    def test_roundtrip(self):
        identifier = PhotoIdentifier(ledger_id="ledger-0", serial=42)
        assert PhotoIdentifier.from_string(identifier.to_string()) == identifier

    def test_format(self):
        assert (
            PhotoIdentifier(ledger_id="my-ledger", serial=7).to_string()
            == "irs1:my-ledger:7"
        )

    @pytest.mark.parametrize(
        "bad",
        ["", "irs1:x", "irs2:x:1", "irs1:x:notanumber", "x:y:z:w", "irs1::5"],
    )
    def test_malformed_rejected(self, bad):
        with pytest.raises(IdentifierError):
            PhotoIdentifier.from_string(bad)

    def test_str_dunder(self):
        identifier = PhotoIdentifier(ledger_id="l", serial=1)
        assert str(identifier) == identifier.to_string()


class TestValidation:
    def test_empty_ledger_id_rejected(self):
        with pytest.raises(IdentifierError):
            PhotoIdentifier(ledger_id="", serial=1)

    def test_colon_in_ledger_id_rejected(self):
        with pytest.raises(IdentifierError):
            PhotoIdentifier(ledger_id="a:b", serial=1)

    def test_pipe_in_ledger_id_rejected(self):
        # '|' is the escape character in the status-proof wire format.
        with pytest.raises(IdentifierError):
            PhotoIdentifier(ledger_id="a|b", serial=1)

    def test_serial_range(self):
        PhotoIdentifier(ledger_id="l", serial=0)
        PhotoIdentifier(ledger_id="l", serial=2**64 - 1)
        with pytest.raises(IdentifierError):
            PhotoIdentifier(ledger_id="l", serial=-1)
        with pytest.raises(IdentifierError):
            PhotoIdentifier(ledger_id="l", serial=2**64)


class TestCompactEncoding:
    def test_length(self):
        compact = PhotoIdentifier(ledger_id="ledger-0", serial=5).to_compact()
        assert len(compact) == COMPACT_LENGTH

    def test_tag_and_serial_split(self):
        identifier = PhotoIdentifier(ledger_id="ledger-0", serial=123456)
        tag, serial = PhotoIdentifier.tag_and_serial_from_compact(
            identifier.to_compact()
        )
        assert tag == ledger_tag("ledger-0")
        assert serial == 123456

    def test_matches_compact(self):
        identifier = PhotoIdentifier(ledger_id="ledger-0", serial=5)
        assert identifier.matches_compact(identifier.to_compact())
        other = PhotoIdentifier(ledger_id="ledger-0", serial=6)
        assert not identifier.matches_compact(other.to_compact())
        assert not identifier.matches_compact(b"garbage")

    def test_wrong_length_rejected(self):
        with pytest.raises(IdentifierError):
            PhotoIdentifier.tag_and_serial_from_compact(b"short")

    def test_distinct_ledgers_distinct_tags(self):
        assert ledger_tag("ledger-a") != ledger_tag("ledger-b")

    def test_empty_ledger_tag_rejected(self):
        with pytest.raises(IdentifierError):
            ledger_tag("")


@given(
    st.text(
        alphabet=st.characters(blacklist_characters=":|", min_codepoint=33, max_codepoint=126),
        min_size=1,
        max_size=20,
    ),
    st.integers(min_value=0, max_value=2**64 - 1),
)
def test_property_string_roundtrip(ledger_id, serial):
    """Property: string encoding round-trips for any valid identifier."""
    identifier = PhotoIdentifier(ledger_id=ledger_id, serial=serial)
    assert PhotoIdentifier.from_string(identifier.to_string()) == identifier


@given(
    st.text(
        alphabet=st.characters(blacklist_characters=":|", min_codepoint=33, max_codepoint=126),
        min_size=1,
        max_size=20,
    ),
    st.integers(min_value=0, max_value=2**64 - 1),
)
def test_property_compact_self_match(ledger_id, serial):
    """Property: every identifier matches its own compact encoding."""
    identifier = PhotoIdentifier(ledger_id=ledger_id, serial=serial)
    assert identifier.matches_compact(identifier.to_compact())
