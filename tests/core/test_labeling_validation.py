"""Tests for labeling, label reading, and the validation policy matrix."""

import pytest

from repro.core import IrsDeployment
from repro.core.errors import LedgerUnavailableError
from repro.core.identifiers import PhotoIdentifier
from repro.core.labeling import LabelState, label_photo, read_label
from repro.core.validation import (
    ValidationDecision,
    ValidationPolicy,
    Validator,
)
from repro.media.metadata import IRS_IDENTIFIER_FIELD


@pytest.fixture(scope="module")
def env():
    """Deployment + a claimed, labeled photo (module-scoped: read-only)."""
    irs = IrsDeployment.create(seed=17)
    photo = irs.new_photo()
    receipt, labeled = irs.owner_toolkit.claim_and_label(photo, irs.ledger)
    return irs, photo, receipt, labeled


class TestLabeling:
    def test_label_sets_both_channels(self, env):
        irs, _, receipt, labeled = env
        result = read_label(labeled, irs.watermark_codec, registry=irs.registry)
        assert result.state is LabelState.BOTH_AGREE
        assert result.identifier == receipt.identifier
        assert result.watermark_identifier == receipt.identifier

    def test_unlabeled_photo(self, env):
        irs, photo, *_ = env
        result = read_label(photo, irs.watermark_codec)
        assert result.state is LabelState.UNLABELED
        assert result.identifier is None
        assert not result.is_labeled

    def test_metadata_only(self, env):
        irs, photo, receipt, _ = env
        tagged = photo.copy()
        tagged.metadata.irs_identifier = receipt.identifier.to_string()
        result = read_label(tagged, irs.watermark_codec)
        assert result.state is LabelState.METADATA_ONLY
        assert result.identifier == receipt.identifier

    def test_watermark_only_after_strip(self, env):
        irs, _, receipt, labeled = env
        stripped = labeled.copy()
        stripped.metadata = stripped.metadata.stripped(preserve_irs=False)
        result = read_label(stripped, irs.watermark_codec, registry=irs.registry)
        assert result.state is LabelState.WATERMARK_ONLY
        assert result.watermark_identifier == receipt.identifier
        assert result.identifier == receipt.identifier

    def test_watermark_only_without_registry_unresolvable(self, env):
        irs, _, _, labeled = env
        stripped = labeled.copy()
        stripped.metadata = stripped.metadata.stripped(preserve_irs=False)
        result = read_label(stripped, irs.watermark_codec, registry=None)
        assert result.state is LabelState.WATERMARK_ONLY
        assert result.identifier is None

    def test_disagreeing_channels(self, env):
        irs, _, _, labeled = env
        forged = labeled.copy()
        other = PhotoIdentifier(ledger_id="ledger-0", serial=9999)
        forged.metadata.set(IRS_IDENTIFIER_FIELD, other.to_string())
        result = read_label(forged, irs.watermark_codec, registry=irs.registry)
        assert result.state is LabelState.DISAGREE
        assert result.identifier is None

    def test_malformed_metadata_treated_as_absent(self, env):
        irs, photo, *_ = env
        junk = photo.copy()
        junk.metadata.set(IRS_IDENTIFIER_FIELD, "not-an-identifier")
        result = read_label(junk, irs.watermark_codec)
        assert result.state is LabelState.UNLABELED

    def test_codec_payload_length_mismatch(self, env):
        from repro.media.watermark import WatermarkCodec

        irs, photo, receipt, _ = env
        wrong_codec = WatermarkCodec(payload_len=8)
        with pytest.raises(ValueError):
            label_photo(photo, receipt.identifier, wrong_codec)


class TestValidatorUploadPosture:
    @pytest.fixture()
    def validator(self, env):
        irs, *_ = env
        return Validator.for_registry(
            irs.registry,
            policy=ValidationPolicy.upload(),
            watermark_codec=irs.watermark_codec,
        )

    def test_clean_labeled_allowed(self, env, validator):
        *_, labeled = env
        assert validator.validate(labeled).allowed

    def test_revoked_denied(self, env, validator):
        irs, _, receipt, labeled = env
        irs.owner_toolkit.revoke(receipt, irs.ledger)
        try:
            result = validator.validate(labeled)
            assert result.decision is ValidationDecision.DENY_REVOKED
            assert result.proof is not None and result.proof.revoked
        finally:
            irs.owner_toolkit.unrevoke(receipt, irs.ledger)

    def test_unlabeled_denied(self, env, validator):
        irs, photo, *_ = env
        result = validator.validate(photo)
        assert result.decision is ValidationDecision.DENY_UNLABELED

    def test_partial_label_denied(self, env, validator):
        _, _, _, labeled = env
        stripped = labeled.copy()
        stripped.metadata = stripped.metadata.stripped(preserve_irs=False)
        result = validator.validate(stripped)
        assert result.decision is ValidationDecision.DENY_LABEL_PARTIAL

    def test_conflicting_label_denied(self, env, validator):
        _, _, _, labeled = env
        forged = labeled.copy()
        forged.metadata.set(
            IRS_IDENTIFIER_FIELD,
            PhotoIdentifier(ledger_id="ledger-0", serial=12345).to_string(),
        )
        result = validator.validate(forged)
        assert result.decision is ValidationDecision.DENY_LABEL_CONFLICT

    def test_fail_closed_on_ledger_outage(self, env):
        irs, _, _, labeled = env

        def dead_source(identifier):
            raise LedgerUnavailableError("ledger down")

        validator = Validator(
            status_source=dead_source,
            watermark_codec=irs.watermark_codec,
            policy=ValidationPolicy.upload(),
            registry=irs.registry,
        )
        result = validator.validate(labeled)
        assert result.decision is ValidationDecision.DENY_LEDGER_UNAVAILABLE


class TestValidatorViewingPosture:
    @pytest.fixture()
    def validator(self, env):
        irs, *_ = env
        return Validator.for_registry(
            irs.registry,
            policy=ValidationPolicy.viewing(),
            watermark_codec=irs.watermark_codec,
        )

    def test_unlabeled_allowed(self, env, validator):
        irs, photo, *_ = env
        assert validator.validate(photo).allowed

    def test_labeled_checked_via_metadata(self, env, validator):
        *_, labeled = env
        result = validator.validate(labeled)
        assert result.allowed
        assert result.proof is not None  # a real check happened

    def test_fail_open_on_ledger_outage(self, env):
        irs, _, _, labeled = env

        def dead_source(identifier):
            raise LedgerUnavailableError("ledger down")

        validator = Validator(
            status_source=dead_source,
            watermark_codec=irs.watermark_codec,
            policy=ValidationPolicy.viewing(),
        )
        assert validator.validate(labeled).allowed

    def test_no_watermark_extraction_in_viewing_path(self, env):
        """Viewing posture must not pay watermark-extraction cost, so a
        stripped-metadata photo reads as unlabeled and renders."""
        irs, _, _, labeled = env
        stripped = labeled.copy()
        stripped.metadata = stripped.metadata.stripped(preserve_irs=False)
        validator = Validator.for_registry(
            irs.registry,
            policy=ValidationPolicy.viewing(),
            watermark_codec=irs.watermark_codec,
        )
        result = validator.validate(stripped)
        assert result.allowed
        assert result.label.state is LabelState.UNLABELED

    def test_validations_counted(self, env, validator):
        *_, labeled = env
        before = validator.validations_performed
        validator.validate(labeled)
        assert validator.validations_performed == before + 1
