"""Targeted tests for the remaining validation-policy branches."""

import pytest

from repro.core import IrsDeployment
from repro.core.validation import (
    ValidationDecision,
    ValidationPolicy,
    Validator,
)


@pytest.fixture(scope="module")
def env():
    irs = IrsDeployment.create(seed=210)
    photo = irs.new_photo()
    receipt, labeled = irs.owner_toolkit.claim_and_label(photo, irs.ledger)
    return irs, photo, receipt, labeled


class TestPartialLabelPolicies:
    def test_watermark_only_without_registry_fail_open(self, env):
        """Lenient policy + no registry: an unresolvable watermark
        cannot be checked, so a fail-open deployment renders it."""
        irs, _, _, labeled = env
        stripped = labeled.copy()
        stripped.metadata = stripped.metadata.stripped(preserve_irs=False)
        validator = Validator(
            status_source=irs.registry.status,
            watermark_codec=irs.watermark_codec,
            policy=ValidationPolicy(
                check_watermark=True,
                allow_unlabeled=True,
                allow_partial_label=True,
                fail_closed=False,
            ),
            registry=None,  # cannot resolve compact identifiers
        )
        result = validator.validate(stripped)
        assert result.allowed
        assert "unresolvable" in result.detail

    def test_watermark_only_without_registry_strict_denies(self, env):
        irs, _, _, labeled = env
        stripped = labeled.copy()
        stripped.metadata = stripped.metadata.stripped(preserve_irs=False)
        validator = Validator(
            status_source=irs.registry.status,
            watermark_codec=irs.watermark_codec,
            policy=ValidationPolicy(
                check_watermark=True,
                allow_unlabeled=False,
                allow_partial_label=True,
                fail_closed=True,
            ),
            registry=None,
        )
        result = validator.validate(stripped)
        assert result.decision is ValidationDecision.DENY_LABEL_PARTIAL

    def test_partial_allowed_with_registry_checks_status(self, env):
        """Lenient policy + registry: the watermark-only label resolves
        and the revocation status decides."""
        irs, _, receipt, labeled = env
        stripped = labeled.copy()
        stripped.metadata = stripped.metadata.stripped(preserve_irs=False)
        validator = Validator(
            status_source=irs.registry.status,
            watermark_codec=irs.watermark_codec,
            policy=ValidationPolicy(
                check_watermark=True,
                allow_unlabeled=True,
                allow_partial_label=True,
                fail_closed=False,
            ),
            registry=irs.registry,
        )
        assert validator.validate(stripped).allowed
        irs.owner_toolkit.revoke(receipt, irs.ledger)
        try:
            result = validator.validate(stripped)
            assert result.decision is ValidationDecision.DENY_REVOKED
        finally:
            irs.owner_toolkit.unrevoke(receipt, irs.ledger)

    def test_metadata_only_denied_under_upload_policy(self, env):
        """A photo with metadata but a destroyed watermark fails the
        agreement requirement."""
        from repro.media.transforms import resize

        irs, _, _, labeled = env
        shrunk = resize(labeled, 96, 96)  # kills watermark, keeps metadata
        validator = Validator.for_registry(
            irs.registry,
            policy=ValidationPolicy.upload(),
            watermark_codec=irs.watermark_codec,
        )
        result = validator.validate(shrunk)
        assert result.decision is ValidationDecision.DENY_LABEL_PARTIAL


class TestPolicyPresets:
    def test_upload_preset_flags(self):
        policy = ValidationPolicy.upload()
        assert policy.check_watermark
        assert not policy.allow_unlabeled
        assert not policy.allow_partial_label
        assert policy.fail_closed

    def test_viewing_preset_flags(self):
        policy = ValidationPolicy.viewing()
        assert not policy.check_watermark
        assert policy.allow_unlabeled
        assert policy.allow_partial_label
        assert not policy.fail_closed
