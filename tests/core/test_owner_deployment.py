"""Tests for the owner toolkit and the deployment bundle."""

import numpy as np
import pytest

from repro.core import IrsDeployment
from repro.core.errors import ClaimError
from repro.core.owner import OwnerToolkit
from repro.core.validation import ValidationPolicy
from repro.ledger.ledger import LedgerConfig


class TestOwnerToolkit:
    def test_claim_stores_receipt_material(self, deployment):
        photo = deployment.new_photo()
        receipt = deployment.owner_toolkit.claim(photo, deployment.ledger)
        assert receipt.content_hash == photo.content_hash()
        assert receipt.identifier.ledger_id == deployment.ledger.ledger_id
        assert receipt.timestamp.verify(
            deployment.timestamp_authority.public_key
        )

    def test_per_photo_keys_unique(self, deployment):
        r1 = deployment.owner_toolkit.claim(deployment.new_photo(), deployment.ledger)
        r2 = deployment.owner_toolkit.claim(deployment.new_photo(), deployment.ledger)
        assert r1.keypair.fingerprint != r2.keypair.fingerprint

    def test_label_leaves_original_untouched(self, deployment):
        photo = deployment.new_photo()
        receipt = deployment.owner_toolkit.claim(photo, deployment.ledger)
        before = photo.content_hash()
        labeled = deployment.owner_toolkit.label(photo, receipt)
        assert photo.content_hash() == before
        assert labeled.content_hash() != before

    def test_claim_initially_revoked(self, deployment):
        photo = deployment.new_photo()
        receipt = deployment.owner_toolkit.claim(
            photo, deployment.ledger, initially_revoked=True
        )
        assert deployment.ledger.status(receipt.identifier).revoked

    def test_revoke_unrevoke(self, deployment):
        photo = deployment.new_photo()
        receipt = deployment.owner_toolkit.claim(photo, deployment.ledger)
        deployment.owner_toolkit.revoke(receipt, deployment.ledger)
        assert deployment.ledger.status(receipt.identifier).revoked
        deployment.owner_toolkit.unrevoke(receipt, deployment.ledger)
        assert not deployment.ledger.status(receipt.identifier).revoked

    def test_wrong_ledger_rejected(self):
        irs = IrsDeployment.create(seed=5, num_ledgers=2)
        photo = irs.new_photo()
        receipt = irs.owner_toolkit.claim(photo, irs.ledgers[0])
        with pytest.raises(ClaimError):
            irs.owner_toolkit.revoke(receipt, irs.ledgers[1])

    def test_seeded_toolkit_reproducible(self):
        tk1 = OwnerToolkit(rng=np.random.default_rng(1))
        tk2 = OwnerToolkit(rng=np.random.default_rng(1))
        irs = IrsDeployment.create(seed=1)
        photo = irs.new_photo()
        r1 = tk1.claim(photo, irs.ledger)
        r2 = tk2.claim(photo, irs.ledger)
        assert r1.keypair.fingerprint == r2.keypair.fingerprint


class TestDeployment:
    def test_multi_ledger_creation(self):
        irs = IrsDeployment.create(seed=2, num_ledgers=3)
        assert len(irs.ledgers) == 3
        assert len(irs.registry) == 3
        assert irs.ledger is irs.ledgers[0]

    def test_same_seed_same_behaviour(self):
        a = IrsDeployment.create(seed=9)
        b = IrsDeployment.create(seed=9)
        pa = a.new_photo()
        pb = b.new_photo()
        assert pa.content_hash() == pb.content_hash()
        assert a.ledger.fingerprint == b.ledger.fingerprint

    def test_policy_applied(self):
        irs = IrsDeployment.create(seed=3, policy=ValidationPolicy.upload())
        assert not irs.validator.policy.allow_unlabeled

    def test_ledger_config_applied(self):
        irs = IrsDeployment.create(
            seed=4, ledger_config=LedgerConfig(allow_revocation=False)
        )
        assert not irs.ledger.config.allow_revocation

    def test_zero_ledgers_rejected(self):
        with pytest.raises(ValueError):
            IrsDeployment.create(seed=0, num_ledgers=0)

    def test_end_to_end_revocation_flow(self, deployment):
        """The README quickstart flow, as a test."""
        photo = deployment.new_photo()
        receipt, labeled = deployment.owner_toolkit.claim_and_label(
            photo, deployment.ledger
        )
        assert deployment.validator.validate(labeled).allowed
        deployment.owner_toolkit.revoke(receipt, deployment.ledger)
        assert not deployment.validator.validate(labeled).allowed
