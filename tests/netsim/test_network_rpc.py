"""Tests for links, the network fabric, and RPC."""

import numpy as np
import pytest

from repro.netsim.latency import ConstantLatency
from repro.netsim.link import Link, Network, NetworkError
from repro.netsim.node import Node
from repro.netsim.simulator import Simulator
from repro.netsim.trace import Counter, TraceRecorder
from repro.netsim.transport import RpcEndpoint, RpcResult


def _fabric(latency=0.01, bandwidth=None):
    sim = Simulator()
    net = Network(sim, np.random.default_rng(1))
    a = net.add_node(Node("a", sim))
    b = net.add_node(Node("b", sim))
    net.connect("a", "b", ConstantLatency(latency), bandwidth_bps=bandwidth)
    return sim, net, a, b


class TestTopology:
    def test_duplicate_node_rejected(self):
        sim = Simulator()
        net = Network(sim, np.random.default_rng(0))
        net.add_node(Node("a", sim))
        with pytest.raises(NetworkError):
            net.add_node(Node("a", sim))

    def test_unknown_node_rejected(self):
        sim = Simulator()
        net = Network(sim, np.random.default_rng(0))
        with pytest.raises(NetworkError):
            net.node("ghost")

    def test_self_link_rejected(self):
        with pytest.raises(NetworkError):
            Link("a", "a", ConstantLatency(0.01))

    def test_duplicate_link_rejected(self):
        sim, net, _, _ = _fabric()
        with pytest.raises(NetworkError):
            net.connect("a", "b", ConstantLatency(0.02))

    def test_missing_link_rejected(self):
        sim = Simulator()
        net = Network(sim, np.random.default_rng(0))
        net.add_node(Node("a", sim))
        net.add_node(Node("c", sim))
        with pytest.raises(NetworkError):
            net.link_between("a", "c")

    def test_empty_node_name_rejected(self):
        with pytest.raises(ValueError):
            Node("", Simulator())


class TestDelivery:
    def test_message_arrives_after_latency(self):
        sim, net, a, b = _fabric(latency=0.05)
        arrivals = []
        net.deliver("a", "b", lambda: arrivals.append(sim.now))
        sim.run()
        assert arrivals == [pytest.approx(0.05)]

    def test_bandwidth_adds_serialization(self):
        sim, net, a, b = _fabric(latency=0.01, bandwidth=8e6)  # 1 MB/s
        arrivals = []
        net.deliver("a", "b", lambda: arrivals.append(sim.now), size_bytes=1_000_000)
        sim.run()
        assert arrivals == [pytest.approx(1.01)]

    def test_counters_update(self):
        sim, net, a, b = _fabric()
        net.deliver("a", "b", lambda: None, size_bytes=100)
        sim.run()
        assert a.messages_sent == 1
        assert b.messages_received == 1
        link = net.link_between("a", "b")
        assert link.messages_carried == 1
        assert link.bytes_carried == 100


class TestRpc:
    def test_request_response_roundtrip(self):
        sim, net, a, b = _fabric(latency=0.02)
        endpoint = RpcEndpoint(b, net)
        endpoint.register("echo", lambda payload: payload.upper())
        results: list[RpcResult] = []
        endpoint.call("a", "echo", "hello", results.append)
        sim.run()
        assert len(results) == 1
        assert results[0].unwrap() == "HELLO"
        assert results[0].rtt == pytest.approx(0.04)

    def test_unknown_method_is_error_result(self):
        sim, net, a, b = _fabric()
        endpoint = RpcEndpoint(b, net)
        results = []
        endpoint.call("a", "nope", None, results.append)
        sim.run()
        assert not results[0].ok
        with pytest.raises(Exception):
            results[0].unwrap()

    def test_handler_exception_isolated(self):
        sim, net, a, b = _fabric()
        endpoint = RpcEndpoint(b, net)

        def boom(payload):
            raise RuntimeError("ledger on fire")

        endpoint.register("boom", boom)
        results = []
        endpoint.call("a", "boom", None, results.append)
        sim.run()  # must not raise
        assert not results[0].ok
        assert "ledger on fire" in str(results[0].error)

    def test_service_time_adds_delay(self):
        sim, net, a, b = _fabric(latency=0.01)
        endpoint = RpcEndpoint(b, net, service_time=ConstantLatency(0.5))
        endpoint.register("work", lambda p: p)
        results = []
        endpoint.call("a", "work", 1, results.append)
        sim.run()
        assert results[0].rtt == pytest.approx(0.52)

    def test_duplicate_handler_rejected(self):
        sim, net, _, b = _fabric()
        endpoint = RpcEndpoint(b, net)
        endpoint.register("m", lambda p: p)
        with pytest.raises(ValueError):
            endpoint.register("m", lambda p: p)

    def test_concurrent_calls_interleave(self):
        sim, net, a, b = _fabric(latency=0.01)
        endpoint = RpcEndpoint(b, net)
        endpoint.register("id", lambda p: p)
        results = []
        for i in range(10):
            endpoint.call("a", "id", i, lambda r: results.append(r.unwrap()))
        sim.run()
        assert sorted(results) == list(range(10))
        assert endpoint.requests_served == 10


class TestTraceRecorder:
    def test_samples_and_summary(self):
        recorder = TraceRecorder()
        for v in (1.0, 2.0, 3.0, 4.0):
            recorder.sample("latency", v)
        summary = recorder.summary("latency")
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["max"] == 4.0

    def test_empty_summary(self):
        assert TraceRecorder().summary("nothing") == {"count": 0}

    def test_events_filter(self):
        recorder = TraceRecorder()
        recorder.record(1.0, "arrive", node="a")
        recorder.record(2.0, "depart", node="a")
        assert len(recorder.events_named("arrive")) == 1

    def test_counter(self):
        counter = Counter()
        counter.increment("queries")
        counter.increment("queries", 4)
        assert counter.get("queries") == 5
        assert counter.get("absent") == 0
        with pytest.raises(ValueError):
            counter.increment("neg", -1)
