"""Tests for the discrete-event simulator and clocks."""

import pytest

from repro.netsim.simulator import ManualClock, SimulationError, Simulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        order = []
        sim.schedule(3.0, order.append, "c")
        sim.schedule(1.0, order.append, "a")
        sim.schedule(2.0, order.append, "b")
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_fifo(self):
        sim = Simulator()
        order = []
        for label in "abc":
            sim.schedule(1.0, order.append, label)
        sim.run()
        assert order == ["a", "b", "c"]

    def test_time_advances_to_event(self):
        sim = Simulator()
        seen = []
        sim.schedule(5.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [5.5]
        assert sim.now == 5.5

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_absolute(self):
        sim = Simulator()
        seen = []
        sim.schedule_at(4.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [4.0]

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(2.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_nested_scheduling(self):
        sim = Simulator()
        seen = []

        def outer():
            seen.append(("outer", sim.now))
            sim.schedule(1.0, inner)

        def inner():
            seen.append(("inner", sim.now))

        sim.schedule(1.0, outer)
        sim.run()
        assert seen == [("outer", 1.0), ("inner", 2.0)]


class TestRunControl:
    def test_run_until_stops_early(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, 1)
        sim.schedule(10.0, seen.append, 10)
        sim.run(until=5.0)
        assert seen == [1]
        assert sim.now == 5.0
        assert sim.pending_events == 1
        sim.run()
        assert seen == [1, 10]

    def test_run_until_advances_time_without_events(self):
        sim = Simulator()
        sim.run(until=7.0)
        assert sim.now == 7.0

    def test_step(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, seen.append, "x")
        assert sim.step() is True
        assert seen == ["x"]
        assert sim.step() is False

    def test_runaway_loop_detected(self):
        sim = Simulator()

        def forever():
            sim.schedule(0.001, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=1000)

    def test_events_processed_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        sim.run()
        assert sim.events_processed == 5


class TestClocks:
    def test_sim_clock_tracks_simulator(self):
        sim = Simulator()
        clock = sim.clock()
        readings = []
        sim.schedule(2.5, lambda: readings.append(clock.now()))
        sim.run()
        assert readings == [2.5]

    def test_manual_clock(self):
        clock = ManualClock(start=10.0)
        assert clock.now() == 10.0
        clock.advance(2.0)
        assert clock.now() == 12.0

    def test_manual_clock_no_backwards(self):
        clock = ManualClock()
        with pytest.raises(SimulationError):
            clock.advance(-1.0)
