"""Tests for latency models and RNG streams."""

import numpy as np
import pytest

from repro.netsim.latency import (
    ConstantLatency,
    EmpiricalLatency,
    LogNormalLatency,
    UniformLatency,
    dns_like_latency,
    lan_latency,
    wan_latency,
)
from repro.netsim.rand import RngRegistry


class TestConstant:
    def test_samples_fixed(self, rng):
        model = ConstantLatency(0.05)
        assert model.sample(rng) == 0.05
        assert (model.sample_many(rng, 10) == 0.05).all()
        assert model.mean() == 0.05

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-0.1)


class TestUniform:
    def test_within_bounds(self, rng):
        model = UniformLatency(0.01, 0.02)
        samples = model.sample_many(rng, 1000)
        assert samples.min() >= 0.01 and samples.max() <= 0.02

    def test_mean(self):
        assert UniformLatency(0.0, 0.1).mean() == pytest.approx(0.05)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            UniformLatency(0.2, 0.1)


class TestLogNormal:
    def test_median_accuracy(self, rng):
        model = LogNormalLatency(median=0.025, sigma=0.5)
        samples = model.sample_many(rng, 20_000)
        assert np.median(samples) == pytest.approx(0.025, rel=0.05)

    def test_cap_applies(self, rng):
        model = LogNormalLatency(median=0.025, sigma=1.0, cap=0.05)
        samples = model.sample_many(rng, 5000)
        assert samples.max() <= 0.05

    def test_analytic_mean_close_to_empirical(self, rng):
        model = LogNormalLatency(median=0.03, sigma=0.4)
        samples = model.sample_many(rng, 50_000)
        assert model.mean() == pytest.approx(float(samples.mean()), rel=0.05)

    def test_percentile_monotone(self):
        model = LogNormalLatency(median=0.03, sigma=0.4)
        assert model.percentile(0.5) == pytest.approx(0.03, rel=1e-6)
        assert model.percentile(0.99) > model.percentile(0.5)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            LogNormalLatency(median=0.0)


class TestEmpirical:
    def test_interpolates_percentiles(self, rng):
        model = EmpiricalLatency([(0.0, 0.01), (0.5, 0.02), (1.0, 0.10)])
        samples = model.sample_many(rng, 20_000)
        assert np.median(samples) == pytest.approx(0.02, rel=0.1)
        assert samples.min() >= 0.01 and samples.max() <= 0.10

    def test_mean_is_integral(self):
        model = EmpiricalLatency([(0.0, 0.0), (1.0, 1.0)])
        assert model.mean() == pytest.approx(0.5)

    def test_non_monotone_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalLatency([(0.0, 0.05), (1.0, 0.01)])

    def test_too_few_points_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalLatency([(0.5, 0.02)])


class TestPresets:
    def test_dns_like_under_100ms_p99ish(self, rng):
        """Section 4.3's budget: responsive ledgers answer 'under 100ms'."""
        samples = dns_like_latency().sample_many(rng, 20_000)
        assert np.median(samples) < 0.05
        assert np.percentile(samples, 95) < 0.1

    def test_ordering_of_presets(self, rng):
        lan = lan_latency().sample_many(rng, 1000).mean()
        dns = dns_like_latency().sample_many(rng, 1000).mean()
        wan = wan_latency().sample_many(rng, 1000).mean()
        assert lan < dns
        assert lan < wan


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        rngs = RngRegistry(seed=1)
        assert rngs.stream("a") is rngs.stream("a")

    def test_streams_reproducible_across_registries(self):
        a = RngRegistry(seed=1).stream("x").uniform(size=5)
        b = RngRegistry(seed=1).stream("x").uniform(size=5)
        assert np.array_equal(a, b)

    def test_streams_independent_of_creation_order(self):
        r1 = RngRegistry(seed=1)
        r1.stream("a")
        x1 = r1.stream("x").uniform(size=3)
        r2 = RngRegistry(seed=1)
        x2 = r2.stream("x").uniform(size=3)
        assert np.array_equal(x1, x2)

    def test_different_names_differ(self):
        rngs = RngRegistry(seed=1)
        assert not np.array_equal(
            rngs.stream("a").uniform(size=5), rngs.stream("b").uniform(size=5)
        )

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=1).stream("x").uniform(size=5)
        b = RngRegistry(seed=2).stream("x").uniform(size=5)
        assert not np.array_equal(a, b)

    def test_fork_independent(self):
        parent = RngRegistry(seed=1)
        child = parent.fork("child")
        assert not np.array_equal(
            parent.stream("x").uniform(size=5), child.stream("x").uniform(size=5)
        )
