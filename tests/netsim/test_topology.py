"""Tests for topology helpers and the networkx view."""

import networkx as nx
import numpy as np
import pytest

from repro.netsim.latency import ConstantLatency
from repro.netsim.link import Network
from repro.netsim.node import Node
from repro.netsim.simulator import Simulator


@pytest.fixture()
def star_network():
    sim = Simulator()
    net = Network(sim, np.random.default_rng(1))
    net.add_node(Node("proxy", sim))
    leaves = [f"browser-{i}" for i in range(5)]
    for leaf in leaves:
        net.add_node(Node(leaf, sim))
    net.star("proxy", leaves, ConstantLatency(0.01))
    return sim, net, leaves


class TestStarHelper:
    def test_all_leaves_connected(self, star_network):
        _, net, leaves = star_network
        for leaf in leaves:
            assert net.link_between("proxy", leaf) is not None

    def test_leaves_not_interconnected(self, star_network):
        from repro.netsim.link import NetworkError

        _, net, leaves = star_network
        with pytest.raises(NetworkError):
            net.link_between(leaves[0], leaves[1])

    def test_traffic_flows_over_star(self, star_network):
        sim, net, leaves = star_network
        received = []
        for leaf in leaves:
            net.deliver(leaf, "proxy", received.append, leaf)
        sim.run()
        assert sorted(received) == sorted(leaves)


class TestNetworkxView:
    def test_graph_shape(self, star_network):
        _, net, leaves = star_network
        graph = net.to_networkx()
        assert graph.number_of_nodes() == 6
        assert graph.number_of_edges() == 5
        assert nx.is_connected(graph)
        # Star: the proxy is the single articulation point.
        assert set(nx.articulation_points(graph)) == {"proxy"}

    def test_edge_attributes(self, star_network):
        sim, net, leaves = star_network
        net.deliver(leaves[0], "proxy", lambda: None, size_bytes=100)
        sim.run()
        graph = net.to_networkx()
        edge = graph.edges["proxy", leaves[0]]
        assert edge["latency_mean_s"] == pytest.approx(0.01)
        assert edge["messages_carried"] == 1
        assert edge["bytes_carried"] == 100

    def test_latency_weighted_paths(self):
        """Shortest-latency routing analysis over a two-tier topology."""
        sim = Simulator()
        net = Network(sim, np.random.default_rng(2))
        for name in ("browser", "proxy-fast", "proxy-slow", "ledger"):
            net.add_node(Node(name, sim))
        net.connect("browser", "proxy-fast", ConstantLatency(0.005))
        net.connect("browser", "proxy-slow", ConstantLatency(0.050))
        net.connect("proxy-fast", "ledger", ConstantLatency(0.020))
        net.connect("proxy-slow", "ledger", ConstantLatency(0.020))
        graph = net.to_networkx()
        path = nx.shortest_path(
            graph, "browser", "ledger", weight="latency_mean_s"
        )
        assert path == ["browser", "proxy-fast", "ledger"]
