"""Tests for network fault injection: lossy links, timeouts, retries."""

import numpy as np
import pytest

from repro.netsim.latency import ConstantLatency
from repro.netsim.link import Link, Network, NetworkError
from repro.netsim.node import Node
from repro.netsim.simulator import Simulator
from repro.netsim.transport import RpcEndpoint


def _fabric(loss=0.0, latency=0.01, rng_seed=1):
    sim = Simulator()
    net = Network(sim, np.random.default_rng(rng_seed))
    net.add_node(Node("a", sim))
    net.add_node(Node("b", sim))
    net.connect("a", "b", ConstantLatency(latency), loss_probability=loss)
    return sim, net


class TestLossyLinks:
    def test_loss_probability_validated(self):
        with pytest.raises(NetworkError):
            Link("a", "b", ConstantLatency(0.01), loss_probability=1.0)
        with pytest.raises(NetworkError):
            Link("a", "b", ConstantLatency(0.01), loss_probability=-0.1)

    def test_lossless_link_delivers_everything(self):
        sim, net = _fabric(loss=0.0)
        delivered = []
        for i in range(50):
            net.deliver("a", "b", delivered.append, i)
        sim.run()
        assert len(delivered) == 50

    def test_lossy_link_drops_fraction(self):
        sim, net = _fabric(loss=0.3, rng_seed=7)
        delivered = []
        for i in range(1000):
            net.deliver("a", "b", delivered.append, i)
        sim.run()
        link = net.link_between("a", "b")
        assert link.messages_dropped + link.messages_carried == 1000
        assert 0.2 < link.messages_dropped / 1000 < 0.4
        assert len(delivered) == link.messages_carried

    def test_drop_returns_none(self):
        sim, net = _fabric(loss=0.999999, rng_seed=3)
        result = net.deliver("a", "b", lambda: None)
        assert result is None


class TestRpcTimeouts:
    def test_timeout_fires_on_total_loss(self):
        sim, net = _fabric(loss=0.999999, rng_seed=5)
        endpoint = RpcEndpoint(net.node("b"), net)
        endpoint.register("ping", lambda p: p)
        results = []
        endpoint.call("a", "ping", 1, results.append, timeout=0.1)
        sim.run()
        assert len(results) == 1
        assert not results[0].ok
        assert "timed out" in str(results[0].error)

    def test_retries_recover_from_loss(self):
        sim, net = _fabric(loss=0.5, rng_seed=11)
        endpoint = RpcEndpoint(net.node("b"), net)
        endpoint.register("ping", lambda p: p * 2)
        results = []
        # 8 retries at 50% loss: failure odds ~ (1 - 0.25)^9 ~ 7.5%,
        # and the seed is fixed.
        endpoint.call("a", "ping", 21, results.append, timeout=0.1, retries=8)
        sim.run()
        assert len(results) == 1
        assert results[0].ok
        assert results[0].unwrap() == 42

    def test_exactly_one_callback_even_with_late_response(self):
        """A response slower than the timeout must not double-fire."""
        sim, net = _fabric(loss=0.0, latency=0.2)
        endpoint = RpcEndpoint(net.node("b"), net)
        endpoint.register("slow", lambda p: p)
        results = []
        endpoint.call("a", "slow", 1, results.append, timeout=0.1, retries=0)
        sim.run()
        assert len(results) == 1
        assert not results[0].ok

    def test_retry_succeeds_when_latency_varies(self):
        """First attempt times out; the retry's response is accepted."""
        from repro.netsim.latency import LatencyModel

        class FlakySlowThenFast(LatencyModel):
            def __init__(self):
                self.calls = 0

            def sample(self, rng):
                self.calls += 1
                # Attempt 1 (request+response legs) slow; later fast.
                return 0.5 if self.calls <= 2 else 0.01

            def mean(self):
                return 0.1

        sim = Simulator()
        net = Network(sim, np.random.default_rng(1))
        net.add_node(Node("a", sim))
        net.add_node(Node("b", sim))
        net.connect("a", "b", FlakySlowThenFast())
        endpoint = RpcEndpoint(net.node("b"), net)
        endpoint.register("ping", lambda p: p)
        results = []
        endpoint.call("a", "ping", "ok", results.append, timeout=0.3, retries=2)
        sim.run()
        assert len(results) == 1
        assert results[0].ok

    def test_no_timeout_behaves_as_before(self):
        sim, net = _fabric()
        endpoint = RpcEndpoint(net.node("b"), net)
        endpoint.register("ping", lambda p: p)
        results = []
        endpoint.call("a", "ping", 7, results.append)
        sim.run()
        assert results[0].unwrap() == 7

    def test_parameter_validation(self):
        sim, net = _fabric()
        endpoint = RpcEndpoint(net.node("b"), net)
        endpoint.register("ping", lambda p: p)
        with pytest.raises(ValueError):
            endpoint.call("a", "ping", 1, lambda r: None, timeout=0.0)
        with pytest.raises(ValueError):
            endpoint.call("a", "ping", 1, lambda r: None, timeout=1.0, retries=-1)
