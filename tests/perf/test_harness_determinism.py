"""The perf report's deterministic projection is byte-stable.

``BENCH_hotpaths.json`` is a committed regression artifact: everything
outside the ``host`` block and the per-case ``timing`` subtrees must be
byte-identical across same-seed runs, or the CI gate would flap.  These
tests run the real suite twice (minimum repeats — timing numbers are
irrelevant here) and compare the ``strip_timing`` projections, then
hold the committed baseline itself to the schema.
"""

import json

import pytest

from repro.analysis.engine import repo_root
from repro.perf.harness import PerfError, run_suite
from repro.perf.report import (
    REPORT_SCHEMA,
    build_report,
    canonical_json,
    compare_to_baseline,
    strip_timing,
    validate_report,
)
from repro.perf.suite import default_suite

BASELINE = repo_root() / "BENCH_hotpaths.json"


@pytest.fixture(scope="module")
def two_runs():
    # One warmup call keeps cold-start noise out of the speedups the
    # self-comparison test feeds back through the gate.
    kwargs = dict(seed=2022, warmup=1, repeats=1)
    return [
        build_report(run_suite(default_suite(), **kwargs), **kwargs)
        for _ in range(2)
    ]


class TestDeterminism:
    def test_same_seed_runs_identical_modulo_timing(self, two_runs):
        first, second = two_runs
        assert canonical_json(strip_timing(first)) == canonical_json(
            strip_timing(second)
        )

    def test_reports_validate(self, two_runs):
        for report in two_runs:
            assert validate_report(report) == []

    def test_strip_timing_removes_only_the_volatile_parts(self, two_runs):
        report = two_runs[0]
        stripped = strip_timing(report)
        assert "host" not in stripped
        assert all(
            "timing" not in entry for entry in stripped["cases"].values()
        )
        # Not an in-place mutation: the original keeps its timing.
        assert "host" in report
        assert all("timing" in entry for entry in report["cases"].values())

    def test_canonical_json_is_canonical(self, two_runs):
        text = canonical_json(two_runs[0])
        assert text.endswith("\n")
        assert json.loads(text) == two_runs[0]
        # Round-tripping through parse produces the same bytes.
        assert canonical_json(json.loads(text)) == text

    def test_self_comparison_passes_the_gate(self, two_runs):
        first, second = two_runs
        assert compare_to_baseline(second, first, tolerance=0.01) == []

    def test_duplicate_case_names_rejected(self):
        suite = default_suite()
        with pytest.raises(PerfError, match="duplicate"):
            run_suite(suite + [suite[0]], seed=2022, warmup=0, repeats=1)


class TestCommittedBaseline:
    def test_baseline_exists_and_validates(self):
        assert BASELINE.exists(), (
            "BENCH_hotpaths.json missing; run `python -m repro perf` "
            "and commit the report"
        )
        with open(BASELINE, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        assert baseline["schema"] == REPORT_SCHEMA
        assert validate_report(baseline) == []

    def test_baseline_bytes_are_canonical(self):
        text = BASELINE.read_text(encoding="utf-8")
        assert canonical_json(json.loads(text)) == text

    def test_baseline_cases_match_the_suite(self):
        with open(BASELINE, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        assert sorted(baseline["cases"]) == sorted(
            case.name for case in default_suite()
        )

    def test_baseline_covers_the_named_hot_paths(self):
        with open(BASELINE, "r", encoding="utf-8") as fh:
            names = set(json.load(fh)["cases"])
        assert {
            "bloom_batch_membership",
            "ring_lookup",
            "quorum_round",
            "signature_verify_batch",
            "hamming_distance",
        } <= names
        assert len(names) >= 5
