"""Differential tests: every vectorized fast path equals its scalar oracle.

The perf suite (``repro.perf.suite``) reports speedups only after
locking fast/oracle results together by checksum; these tests hold the
same pairs equal under hypothesis-generated workloads, including the
edge shapes a benchmark never exercises — empty batches, duplicate
keys, all-hit and all-miss probes.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.ring import HashRing
from repro.filters.binary_fuse import BinaryFuseFilter
from repro.filters.bloom import BloomFilter
from repro.filters.xor_filter import XorFilter
from repro.media.perceptual import RobustHash, hamming_many, pack_signatures

keys_strategy = st.lists(
    st.binary(min_size=0, max_size=24), min_size=1, max_size=64, unique=True
)
probes_strategy = st.lists(st.binary(min_size=0, max_size=24), max_size=64)


def _build_bloom(members):
    bloom = BloomFilter.for_capacity(max(len(members), 1), 0.01)
    bloom.add_many(members)
    return bloom


FILTER_BUILDERS = {
    "bloom": _build_bloom,
    "xor": lambda members: XorFilter.build(members, seed=1),
    "fuse": lambda members: BinaryFuseFilter.build(members, seed=1),
}


class TestBatchMembership:
    @pytest.mark.parametrize("flavor", sorted(FILTER_BUILDERS))
    @settings(max_examples=40, deadline=None)
    @given(members=keys_strategy, probes=probes_strategy)
    def test_query_many_matches_contains(self, flavor, members, probes):
        flt = FILTER_BUILDERS[flavor](members)
        batch = flt.query_many(probes)
        assert isinstance(batch, np.ndarray)
        assert batch.dtype == np.bool_
        assert list(batch) == [key in flt for key in probes]

    @pytest.mark.parametrize("flavor", sorted(FILTER_BUILDERS))
    def test_empty_batch(self, flavor):
        flt = FILTER_BUILDERS[flavor]([b"only-member"])
        batch = flt.query_many([])
        assert len(batch) == 0

    @pytest.mark.parametrize("flavor", sorted(FILTER_BUILDERS))
    def test_duplicate_keys_answer_identically(self, flavor):
        members = [b"alpha", b"beta", b"gamma"]
        flt = FILTER_BUILDERS[flavor](members)
        probes = [b"alpha", b"missing", b"alpha", b"missing", b"alpha"]
        batch = list(flt.query_many(probes))
        assert batch[0] == batch[2] == batch[4]
        assert batch[1] == batch[3]
        assert batch == [key in flt for key in probes]

    @pytest.mark.parametrize("flavor", sorted(FILTER_BUILDERS))
    def test_all_members_hit(self, flavor):
        members = [f"member-{i}".encode() for i in range(300)]
        flt = FILTER_BUILDERS[flavor](members)
        assert flt.query_many(members).all()

    @pytest.mark.parametrize("flavor", sorted(FILTER_BUILDERS))
    def test_all_miss_matches_scalar(self, flavor):
        members = [f"member-{i}".encode() for i in range(300)]
        flt = FILTER_BUILDERS[flavor](members)
        misses = [f"absent-{i}".encode() for i in range(300)]
        assert list(flt.query_many(misses)) == [key in flt for key in misses]


class TestHammingDistance:
    @settings(max_examples=40, deadline=None)
    @given(
        blobs=st.lists(
            st.binary(min_size=64, max_size=64), min_size=1, max_size=32
        ),
        query=st.binary(min_size=64, max_size=64),
    )
    def test_hamming_many_matches_distance(self, blobs, query):
        query_hash = RobustHash(bits=query)
        hashes = [RobustHash(bits=blob) for blob in blobs]
        fast = hamming_many(query_hash, pack_signatures(hashes))
        slow = [query_hash.distance(other) for other in hashes]
        assert fast.shape == (len(hashes),)
        # Distances are exact multiples of 1/512: equality, not approx.
        assert list(fast) == slow

    def test_identical_and_inverted_signatures(self):
        ones = RobustHash(bits=b"\xff" * 64)
        zeros = RobustHash(bits=b"\x00" * 64)
        packed = pack_signatures([ones, zeros])
        assert list(hamming_many(ones, packed)) == [0.0, 1.0]
        assert list(hamming_many(zeros, packed)) == [1.0, 0.0]


class TestRingLookup:
    @settings(max_examples=30, deadline=None)
    @given(
        num_shards=st.integers(min_value=1, max_value=9),
        count=st.integers(min_value=1, max_value=4),
        keys=st.lists(st.binary(min_size=0, max_size=16), max_size=32),
    )
    def test_table_and_batch_match_walk(self, num_shards, count, keys):
        count = min(count, num_shards)  # placement needs count <= shards
        ring = HashRing([f"shard-{i}" for i in range(num_shards)])
        walked = [ring._replicas_walk(key, count) for key in keys]
        assert [ring.replicas(key, count) for key in keys] == walked
        assert ring.replicas_many(keys, count) == walked

    def test_overcommitted_count_rejected_even_for_empty_batch(self):
        from repro.cluster.ring import RingError

        ring = HashRing(["shard-0"])
        with pytest.raises(RingError):
            ring.replicas_many([], 2)

    def test_tables_rebuilt_after_membership_change(self):
        ring = HashRing(["shard-0", "shard-1", "shard-2"])
        keys = [f"key-{i}".encode() for i in range(64)]
        ring.replicas_many(keys, 2)  # build + cache the tables
        ring.add("shard-3")
        ring.remove("shard-0")
        assert ring.replicas_many(keys, 2) == [
            ring._replicas_walk(key, 2) for key in keys
        ]

    def test_empty_key_batch(self):
        ring = HashRing(["shard-0"])
        assert ring.replicas_many([], 1) == []


class TestBatchSignatureVerify:
    @pytest.fixture(scope="class")
    def keypair(self):
        from repro.crypto.signatures import KeyPair

        return KeyPair.generate(bits=512, rng=np.random.default_rng(7))

    def test_all_valid_batch(self, keypair):
        items = [
            (message, keypair.sign(message))
            for message in (b"a", b"b", b"c", b"d", b"e")
        ]
        assert keypair.public.verify_batch(items) == [True] * len(items)

    def test_corruption_isolated_to_corrupted_indices(self, keypair):
        from dataclasses import replace

        messages = [f"msg-{i}".encode() for i in range(16)]
        items = [(message, keypair.sign(message)) for message in messages]
        items[3] = (messages[3], replace(items[3][1], value=items[3][1].value ^ 1))
        items[7] = (messages[7], replace(items[7][1], value=0))
        items[11] = (messages[12], items[11][1])  # signature of wrong message
        modulus = keypair.public.to_dict()["n"]
        items[15] = (
            messages[15],
            replace(items[15][1], value=items[15][1].value + modulus),
        )
        batch = keypair.public.verify_batch(items)
        scalar = [
            keypair.public.verify(message, sig) for message, sig in items
        ]
        assert batch == scalar
        assert [i for i, ok in enumerate(batch) if not ok] == [3, 7, 11, 15]

    def test_empty_batch(self, keypair):
        assert keypair.public.verify_batch([]) == []
