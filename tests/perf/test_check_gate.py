"""``python -m repro perf --check`` actually trips — and actually passes.

A regression gate that never fires is indistinguishable from no gate,
so these tests drive the real CLI end to end: write a fresh baseline,
pass against it untouched, then inject a 20ms busy-wait into every
fast-path call (``--slowdown-ns``) and require a nonzero exit.
"""

import json

import pytest

from repro.__main__ import main
from repro.perf.report import compare_to_baseline

# Cheap but not cold: one warmup call keeps first-call noise from
# eroding the speedups the tolerance band is computed from.
_FAST = ["--warmup", "1", "--repeats", "2"]
# 20ms per fast call dwarfs every measured hot path (sub-3ms), so the
# paired speedups collapse well below their floors.
_SLOWDOWN = ["--slowdown-ns", "20000000"]


@pytest.fixture(scope="module")
def baseline_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("perf") / "baseline.json"
    assert main(["perf", "--output", str(path), *_FAST]) == 0
    assert path.exists()
    return path


class TestCheckGate:
    def test_clean_check_passes(self, baseline_path, capsys):
        code = main(
            ["perf", "--check", "--baseline", str(baseline_path), *_FAST]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert "within the tolerance band" in captured.out

    def test_injected_slowdown_trips_the_gate(self, baseline_path, capsys):
        code = main(
            [
                "perf", "--check", "--baseline", str(baseline_path),
                *_FAST, *_SLOWDOWN,
            ]
        )
        captured = capsys.readouterr()
        assert code != 0
        assert "gate failure" in captured.out
        assert "below gate" in captured.out

    def test_missing_baseline_fails_with_instructions(self, tmp_path, capsys):
        code = main(
            [
                "perf", "--check",
                "--baseline", str(tmp_path / "absent.json"),
                *_FAST,
            ]
        )
        captured = capsys.readouterr()
        assert code != 0
        assert "no baseline" in captured.out


class TestComparePolicy:
    """Unit-level gate policy checks against a doctored baseline."""

    @pytest.fixture(scope="class")
    def report(self, baseline_path):
        with open(baseline_path, "r", encoding="utf-8") as fh:
            return json.load(fh)

    def _clone(self, report):
        return json.loads(json.dumps(report))

    def test_case_set_drift_fails_both_ways(self, report):
        missing = self._clone(report)
        del missing["cases"]["bloom_batch_membership"]
        assert any(
            "not measured" in failure
            for failure in compare_to_baseline(missing, report)
        )
        assert any(
            "absent from the baseline" in failure
            for failure in compare_to_baseline(report, missing)
        )

    def test_checksum_drift_is_a_correctness_failure(self, report):
        drifted = self._clone(report)
        drifted["cases"]["ring_lookup"]["checksum"] = "0" * 64
        assert any(
            "correctness drift" in failure
            for failure in compare_to_baseline(drifted, report)
        )

    def test_workload_size_drift_fails(self, report):
        resized = self._clone(report)
        resized["cases"]["hamming_distance"]["ops"] += 1
        assert any(
            "workload size changed" in failure
            for failure in compare_to_baseline(resized, report)
        )

    def test_floor_applies_even_with_generous_committed_speedup(self, report):
        slow = self._clone(report)
        case = slow["cases"]["bloom_batch_membership"]
        case["timing"]["speedup"] = float(case["min_speedup"]) / 2
        assert any(
            "below gate" in failure
            for failure in compare_to_baseline(slow, report, tolerance=0.01)
        )

    def test_tolerance_must_be_a_fraction(self, report):
        with pytest.raises(ValueError):
            compare_to_baseline(report, report, tolerance=0.0)
        with pytest.raises(ValueError):
            compare_to_baseline(report, report, tolerance=1.5)
