"""Shared fixtures for the IRS test suite.

Expensive objects (RSA key pairs, deployments, watermarked photos) are
session-scoped where tests only read them; tests that mutate state build
their own instances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import IrsDeployment
from repro.crypto.signatures import KeyPair
from repro.media.image import generate_photo
from repro.media.watermark import WatermarkCodec


@pytest.fixture(scope="session")
def session_keypair() -> KeyPair:
    """One reusable 512-bit key pair (keygen costs ~30 ms)."""
    return KeyPair.generate(bits=512, rng=np.random.default_rng(1234))


@pytest.fixture(scope="session")
def second_keypair() -> KeyPair:
    return KeyPair.generate(bits=512, rng=np.random.default_rng(5678))


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(42)


@pytest.fixture()
def deployment() -> IrsDeployment:
    """A fresh single-ledger deployment (mutable per test)."""
    return IrsDeployment.create(seed=7)


@pytest.fixture(scope="session")
def codec() -> WatermarkCodec:
    return WatermarkCodec(payload_len=12)


@pytest.fixture(scope="session")
def base_photo():
    """A fixed 128x128 synthetic photo."""
    return generate_photo(seed=11, height=128, width=128)


@pytest.fixture(scope="session")
def large_photo():
    """A 256x256 photo with more watermark capacity."""
    return generate_photo(seed=12, height=256, width=256)
