"""Published filter snapshots are a pure function of store contents.

Proxies compare and delta-encode filters across versions and across
mirrors; any byte-level nondeterminism (e.g. insertion-order leakage)
would break delta transfer and make mirrored exporters disagree.
"""

import numpy as np
import pytest

from repro.core.identifiers import PhotoIdentifier
from repro.crypto.hashing import sha256_hex
from repro.crypto.signatures import KeyPair
from repro.crypto.timestamp import TimestampAuthority
from repro.ledger.export import FilterExporter
from repro.ledger.ledger import Ledger
from repro.ledger.records import ClaimRecord, RevocationState, claim_digest
from repro.netsim.simulator import ManualClock


def _ledger(clock):
    rng = np.random.default_rng(77)
    tsa = TimestampAuthority(
        keypair=KeyPair.generate(bits=512, rng=rng), clock=clock.now
    )
    return Ledger(
        ledger_id="determinism",
        timestamp_authority=tsa,
        keypair=KeyPair.generate(bits=512, rng=rng),
        clock=clock.now,
    )


def _records(ledger, count=120):
    """Identical record objects for any store, built once per ledger."""
    rng = np.random.default_rng(7)
    owner = KeyPair.generate(bits=512, rng=rng)
    records = []
    for serial in range(1, count + 1):
        content_hash = sha256_hex(f"photo:{serial}".encode("utf-8"))
        timestamp = ledger._tsa.issue(claim_digest(content_hash, owner.public))
        records.append(
            ClaimRecord(
                identifier=PhotoIdentifier(ledger.ledger_id, serial),
                content_hash=content_hash,
                content_signature=owner.sign(content_hash.encode("utf-8")),
                public_key=owner.public,
                timestamp=timestamp,
                state=(
                    RevocationState.REVOKED
                    if serial % 3 == 0
                    else RevocationState.NOT_REVOKED
                ),
                revocation_epoch=1 if serial % 3 == 0 else 0,
            )
        )
    return records


@pytest.mark.parametrize("order_seed", [1, 2, 3])
def test_snapshot_bytes_ignore_insertion_order(order_seed):
    clock = ManualClock()
    baseline_ledger = _ledger(clock)
    shuffled_ledger = _ledger(clock)
    records = _records(baseline_ledger)

    for record in records:
        baseline_ledger.store.put(record)
    shuffled = list(records)
    np.random.default_rng(order_seed).shuffle(shuffled)
    for record in shuffled:
        shuffled_ledger.store.put(record)

    kwargs = dict(nbits=8192, num_hashes=5, salt=b"irs")
    baseline = FilterExporter(baseline_ledger, **kwargs).publish(now=0.0)
    reordered = FilterExporter(shuffled_ledger, **kwargs).publish(now=0.0)

    assert baseline.num_keys == reordered.num_keys > 0
    assert baseline.filter.to_bytes() == reordered.filter.to_bytes()


def test_snapshot_bytes_stable_across_republish():
    clock = ManualClock()
    ledger = _ledger(clock)
    for record in _records(ledger):
        ledger.store.put(record)
    exporter = FilterExporter(ledger, nbits=8192, num_hashes=5, salt=b"irs")
    first = exporter.publish(now=0.0)
    clock.advance(3600.0)
    second = exporter.publish()  # no state change in between
    assert first.version != second.version
    assert first.filter.to_bytes() == second.filter.to_bytes()
