"""Tests for the ledger registry and Bloom filter export."""

import numpy as np
import pytest

from repro.core.errors import LedgerUnavailableError
from repro.core.identifiers import PhotoIdentifier
from repro.crypto.timestamp import TimestampAuthority
from repro.ledger.export import FilterExporter
from repro.ledger.ledger import Ledger
from repro.ledger.registry import LedgerRegistry
from repro.workload.population import populate_ledger


@pytest.fixture()
def registry_with_ledgers():
    tsa = TimestampAuthority()
    registry = LedgerRegistry()
    ledgers = [registry.add(Ledger(f"ledger-{i}", tsa)) for i in range(3)]
    return registry, ledgers


class TestRegistry:
    def test_lookup_by_id(self, registry_with_ledgers):
        registry, ledgers = registry_with_ledgers
        assert registry.get("ledger-1") is ledgers[1]
        assert registry.require("ledger-2") is ledgers[2]

    def test_unknown_ledger(self, registry_with_ledgers):
        registry, _ = registry_with_ledgers
        assert registry.get("nope") is None
        with pytest.raises(LedgerUnavailableError):
            registry.require("nope")

    def test_duplicate_rejected(self, registry_with_ledgers):
        registry, _ = registry_with_ledgers
        tsa = TimestampAuthority()
        with pytest.raises(ValueError):
            registry.add(Ledger("ledger-0", tsa))

    def test_iteration_sorted(self, registry_with_ledgers):
        registry, _ = registry_with_ledgers
        assert [l.ledger_id for l in registry] == [
            "ledger-0",
            "ledger-1",
            "ledger-2",
        ]
        assert len(registry) == 3

    def test_resolve_identifier(self, registry_with_ledgers):
        registry, ledgers = registry_with_ledgers
        identifier = PhotoIdentifier(ledger_id="ledger-1", serial=5)
        assert registry.resolve(identifier) is ledgers[1]

    def test_resolve_compact_roundtrip(self, registry_with_ledgers):
        registry, _ = registry_with_ledgers
        identifier = PhotoIdentifier(ledger_id="ledger-2", serial=77)
        resolved = registry.resolve_compact(identifier.to_compact())
        assert resolved == identifier

    def test_resolve_compact_unknown_tag(self, registry_with_ledgers):
        registry, _ = registry_with_ledgers
        foreign = PhotoIdentifier(ledger_id="unregistered", serial=1)
        with pytest.raises(LedgerUnavailableError):
            registry.resolve_compact(foreign.to_compact())

    def test_status_routing(self, registry_with_ledgers, rng):
        registry, ledgers = registry_with_ledgers
        pop = populate_ledger(ledgers[1], 10, 0.5, rng)
        proof = registry.status(pop.identifiers[0])
        assert proof.identifier == pop.identifiers[0].to_string()
        assert registry.total_status_queries() == 1


class TestFilterExport:
    def _exporter(self, rng, count=500, revoked=0.4, contents="revoked"):
        tsa = TimestampAuthority()
        ledger = Ledger("exp-ledger", tsa)
        population = populate_ledger(ledger, count, revoked, rng)
        exporter = FilterExporter(
            ledger, nbits=1 << 15, num_hashes=5, contents=contents
        )
        return ledger, population, exporter

    def test_publish_contains_revoked_only(self, rng):
        _, population, exporter = self._exporter(rng)
        snapshot = exporter.publish()
        assert snapshot.version == 1
        assert snapshot.num_keys == population.num_revoked
        for i, identifier in enumerate(population.identifiers):
            if population.revoked_mask[i]:
                assert identifier.to_compact() in snapshot.filter

    def test_unrevoked_mostly_miss(self, rng):
        _, population, exporter = self._exporter(rng)
        snapshot = exporter.publish()
        misses = sum(
            1
            for i, identifier in enumerate(population.identifiers)
            if not population.revoked_mask[i]
            and identifier.to_compact() not in snapshot.filter
        )
        not_revoked = population.size - population.num_revoked
        assert misses / not_revoked > 0.9  # only FP hits allowed

    def test_claimed_contents_option(self, rng):
        _, population, exporter = self._exporter(rng, contents="claimed")
        snapshot = exporter.publish()
        assert snapshot.num_keys == population.size

    def test_versions_increment(self, rng):
        _, _, exporter = self._exporter(rng)
        assert exporter.publish().version == 1
        assert exporter.publish().version == 2
        assert exporter.versions == [1, 2]

    def test_delta_between_versions(self, rng):
        ledger, population, exporter = self._exporter(rng, count=300, revoked=0.3)
        exporter.publish()
        extra = populate_ledger(ledger, 50, 1.0, rng)
        exporter.publish()
        delta = exporter.delta_between(1, 2)
        assert delta.from_version == 1 and delta.to_version == 2
        from repro.filters.delta import apply_delta

        snapshot1 = exporter._snapshot(1)
        restored = apply_delta(snapshot1.filter, delta, 1)
        for identifier in extra.identifiers:
            assert identifier.to_compact() in restored

    def test_latest_delta_for_current_subscriber_is_none(self, rng):
        _, _, exporter = self._exporter(rng)
        snap = exporter.publish()
        assert exporter.latest_delta_for(snap.version) is None

    def test_latest_delta_before_publish_raises(self, rng):
        _, _, exporter = self._exporter(rng)
        with pytest.raises(ValueError):
            exporter.latest_delta_for(0)

    def test_prune_keeps_latest(self, rng):
        _, _, exporter = self._exporter(rng)
        for _ in range(5):
            exporter.publish()
        exporter.prune(keep_latest=2)
        assert exporter.versions == [4, 5]
        with pytest.raises(KeyError):
            exporter.delta_between(1, 5)


class TestCoordinatedExporters:
    def test_shared_geometry_merges(self, rng):
        from repro.ledger.export import coordinated_exporters
        from repro.proxy.filterset import ProxyFilterSet

        tsa = TimestampAuthority()
        registry = LedgerRegistry()
        populations = []
        for i in range(3):
            ledger = registry.add(Ledger(f"co-{i}", tsa))
            populations.append(populate_ledger(ledger, 200, 0.5, rng))
        exporters = coordinated_exporters(registry, expected_keys=600)
        assert len(exporters) == 3
        geometries = {
            (e.current.filter.nbits, e.current.filter.num_hashes)
            for e in exporters
        }
        assert len(geometries) == 1  # identical across ledgers
        filterset = ProxyFilterSet()
        for exporter in exporters:
            filterset.subscribe(exporter)
        filterset.refresh()
        for population in populations:
            for i, identifier in enumerate(population.identifiers):
                if population.revoked_mask[i]:
                    assert filterset.might_be_revoked(identifier.to_compact())

    def test_publish_optional(self, rng):
        from repro.ledger.export import coordinated_exporters

        tsa = TimestampAuthority()
        registry = LedgerRegistry()
        registry.add(Ledger("co-x", tsa))
        exporters = coordinated_exporters(registry, expected_keys=100, publish=False)
        assert exporters[0].current is None

    def test_validation(self, rng):
        from repro.ledger.export import coordinated_exporters

        registry = LedgerRegistry()
        with pytest.raises(ValueError):
            coordinated_exporters(registry, expected_keys=0)
