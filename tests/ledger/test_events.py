"""Unit tests for the hash-chained ledger event log."""

import json

import numpy as np
import pytest

from repro.ledger.events import (
    GENESIS_HASH,
    EventLog,
    EventLogError,
    chain_hash,
    event_from_dict,
    event_to_dict,
    replay,
    verify_events,
)
from repro.core.identifiers import PhotoIdentifier
from repro.crypto.hashing import sha256_hex
from repro.crypto.timestamp import TimestampAuthority
from repro.ledger.records import ClaimRecord, RevocationState, claim_digest


@pytest.fixture(scope="module")
def make_record(session_keypair):
    tsa = TimestampAuthority()

    def make(serial: int = 1):
        content_hash = sha256_hex(f"events-photo-{serial}".encode())
        return ClaimRecord(
            identifier=PhotoIdentifier(ledger_id="events-test", serial=serial),
            content_hash=content_hash,
            content_signature=session_keypair.sign(
                content_hash.encode("utf-8")
            ),
            public_key=session_keypair.public,
            timestamp=tsa.issue(
                claim_digest(content_hash, session_keypair.public)
            ),
        )

    return make


def _flip(state="revoked", epoch=1):
    return {"state": state, "epoch": epoch}


class TestChain:
    def test_append_links_from_genesis(self):
        log = EventLog()
        first = log.append("claim", 1, 0.0, _flip())
        assert first.seq == 1
        assert first.prev_hash == GENESIS_HASH
        assert first.chain_hash == chain_hash(GENESIS_HASH, first.body())

    def test_chain_is_contiguous_and_verifies(self):
        log = EventLog()
        for index in range(10):
            log.append("apply_state", index + 1, float(index), _flip(epoch=index))
        assert log.head_seq == 10
        assert log.verify_chain() == log.head_hash

    def test_resume_from_anchor(self):
        log = EventLog()
        for index in range(5):
            log.append("apply_state", 1, float(index), _flip(epoch=index))
        resumed = EventLog(anchor_seq=log.head_seq, anchor_hash=log.head_hash)
        event = resumed.append("revoke", 1, 5.0, _flip(epoch=5))
        assert event.seq == 6
        assert event.prev_hash == log.head_hash
        assert resumed.verify_chain() == resumed.head_hash

    def test_verify_rejects_sequence_gap(self):
        log = EventLog()
        a = log.append("claim", 1, 0.0, _flip())
        c = EventLog(anchor_seq=2, anchor_hash=a.chain_hash).append(
            "revoke", 1, 1.0, _flip()
        )
        with pytest.raises(EventLogError, match="sequence gap"):
            verify_events([a, c], 0, GENESIS_HASH)

    def test_verify_rejects_predecessor_mismatch(self):
        log = EventLog()
        log.append("claim", 1, 0.0, _flip())
        b = log.append("revoke", 1, 1.0, _flip())
        forged = EventLog().append("claim", 2, 0.0, _flip())
        with pytest.raises(EventLogError, match="predecessor hash"):
            verify_events([forged, b], 0, GENESIS_HASH)

    def test_verify_rejects_rewritten_body(self):
        log = EventLog()
        event = log.append("claim", 1, 0.0, _flip())
        redated = event_from_dict(
            {**event_to_dict(event), "time": 99.0}
        )
        with pytest.raises(EventLogError, match="does not re-derive"):
            verify_events([redated], 0, GENESIS_HASH)


class TestWireForm:
    def test_dict_round_trip(self):
        event = EventLog().append("revoke", 7, 1.5, _flip(epoch=3))
        assert event_from_dict(event_to_dict(event)) == event

    def test_numpy_scalars_normalized_before_hashing(self):
        """np.float64 times must hash as the float they decode back to.

        numpy scalars are float subclasses whose ``repr`` differs from
        the plain float's; sealing them raw would produce a chain hash
        that fails to re-derive after a JSON round-trip through the
        durable store (the exact bug chaos clock skews exposed).
        """
        log = EventLog()
        event = log.append(
            "apply_state",
            np.int64(5),
            np.float64(9.145407576097107),
            {"state": "revoked", "epoch": np.float64(1) and 1},
        )
        assert type(event.time) is float
        assert type(event.serial) is int
        decoded = event_from_dict(
            json.loads(json.dumps(event_to_dict(event)))
        )
        assert decoded == event
        assert verify_events([decoded], 0, GENESIS_HASH) == event.chain_hash


class TestReplay:
    def test_flip_events_mutate_existing_record(self, make_record):
        record = make_record()
        serial = record.identifier.serial
        log = EventLog()
        log.append("claim", serial, 0.0, {"record": record.to_payload()})
        log.append(
            "revoke", serial, 1.0, {"state": "revoked", "epoch": 1}
        )
        records = replay(log.events)
        assert records[serial].state is RevocationState.REVOKED
        assert records[serial].revocation_epoch == 1

    def test_replay_never_mutates_base(self, make_record):
        record = make_record()
        serial = record.identifier.serial
        log = EventLog(anchor_seq=1)
        log.append(
            "revoke", serial, 1.0, {"state": "revoked", "epoch": 1}
        )
        base = {serial: record}
        replayed = replay(log.events, base=base)
        assert record.state is RevocationState.NOT_REVOKED
        assert replayed[serial].state is RevocationState.REVOKED

    def test_flip_of_unknown_serial_raises(self):
        log = EventLog()
        log.append("revoke", 42, 0.0, _flip())
        with pytest.raises(EventLogError, match="unknown"):
            replay(log.events)
