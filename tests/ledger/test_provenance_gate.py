"""Tests for provenance-gated claims (C2PA integration, section 3.1)."""

import numpy as np
import pytest

from repro.core.errors import ClaimError
from repro.crypto.hashing import sha256_hex
from repro.crypto.signatures import KeyPair
from repro.crypto.timestamp import TimestampAuthority
from repro.ledger.ledger import Ledger, LedgerConfig
from repro.media.image import generate_photo
from repro.media.provenance import ProvenanceManifest
from repro.media.transforms import crop


@pytest.fixture()
def gated_ledger():
    return Ledger(
        "provenance-gated",
        TimestampAuthority(),
        config=LedgerConfig(require_provenance=True),
    )


@pytest.fixture(scope="module")
def camera_key():
    return KeyPair.generate(bits=512, rng=np.random.default_rng(300))


def _claim(ledger, keypair, content_hash, provenance=None):
    signature = keypair.sign(content_hash.encode("utf-8"))
    return ledger.claim(
        content_hash, signature, keypair.public, provenance=provenance
    )


class TestProvenanceGate:
    def test_valid_chain_accepted(self, gated_ledger, camera_key, session_keypair):
        photo = generate_photo(seed=50)
        manifest = ProvenanceManifest.capture(photo, "Cam", camera_key)
        record = _claim(
            gated_ledger, session_keypair, photo.content_hash(), manifest
        )
        assert record.identifier.serial == 1

    def test_missing_manifest_rejected(self, gated_ledger, session_keypair):
        with pytest.raises(ClaimError, match="provenance"):
            _claim(gated_ledger, session_keypair, sha256_hex(b"x"))

    def test_chain_for_other_content_rejected(
        self, gated_ledger, camera_key, session_keypair
    ):
        """The thief's move: attach a valid chain for a *different*
        photo to the stolen content."""
        own_photo = generate_photo(seed=51)
        stolen_photo = generate_photo(seed=52)
        manifest = ProvenanceManifest.capture(own_photo, "Cam", camera_key)
        with pytest.raises(ClaimError, match="terminate"):
            _claim(
                gated_ledger, session_keypair, stolen_photo.content_hash(), manifest
            )

    def test_tampered_chain_rejected(self, gated_ledger, camera_key, session_keypair):
        from dataclasses import replace

        photo = generate_photo(seed=53)
        manifest = ProvenanceManifest.capture(photo, "Cam", camera_key)
        manifest.assertions[0] = replace(
            manifest.assertions[0], actor="DifferentCam"
        )
        with pytest.raises(ClaimError, match="invalid"):
            _claim(gated_ledger, session_keypair, photo.content_hash(), manifest)

    def test_edit_chain_accepted(self, gated_ledger, camera_key, session_keypair):
        """Chains through edits remain claimable: the final hash is what
        must match."""
        photo = generate_photo(seed=54)
        manifest = ProvenanceManifest.capture(photo, "Cam", camera_key)
        edited = crop(photo, 0, 0, 64, 64)
        editor_key = KeyPair.generate(bits=512, rng=np.random.default_rng(301))
        manifest.record_edit(edited, "Editor", "crop", editor_key)
        record = _claim(
            gated_ledger, session_keypair, edited.content_hash(), manifest
        )
        assert record.content_hash == edited.content_hash()

    def test_ungated_ledger_ignores_provenance(self, session_keypair):
        ledger = Ledger("open", TimestampAuthority())
        record = _claim(ledger, session_keypair, sha256_hex(b"anything"))
        assert record.identifier.serial == 1

    def test_gate_raises_reclaim_bar(self, gated_ledger, camera_key):
        """The section-5 attacker without camera provenance cannot claim
        a stolen copy on a gated ledger at all."""
        from repro.attacks.attackers import SophisticatedAttacker
        from repro.core.owner import OwnerToolkit

        photo = generate_photo(seed=55)
        attacker = SophisticatedAttacker(
            gated_ledger, rng=np.random.default_rng(302)
        )
        with pytest.raises(ClaimError, match="provenance"):
            attacker.reclaim_copy(photo)
