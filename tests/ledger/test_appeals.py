"""Tests for the appeals process — the section 3.2/5 adjudication."""

import numpy as np
import pytest

from repro.core import IrsDeployment
from repro.core.errors import AppealError
from repro.ledger.appeals import AppealsProcess, AppealVerdict
from repro.ledger.records import RevocationState
from repro.media.jpeg import jpeg_roundtrip
from repro.media.transforms import resize, tint


@pytest.fixture()
def setup():
    """Original owner claims a photo; attacker re-claims a copy."""
    irs = IrsDeployment.create(seed=31)
    original = irs.new_photo(height=128, width=128)
    receipt, labeled = irs.owner_toolkit.claim_and_label(original, irs.ledger)
    # Attacker strips and re-claims a lightly edited copy.
    copy_photo = jpeg_roundtrip(
        tint(labeled, (1.05, 1.0, 0.95)), 70, preserve_metadata=False
    )
    attacker_receipt = irs.owner_toolkit.claim(copy_photo, irs.ledger)
    process = AppealsProcess(irs.ledger, [irs.timestamp_authority])
    return irs, original, receipt, copy_photo, attacker_receipt, process


class TestUpheldAppeals:
    def test_derived_copy_permanently_revoked(self, setup):
        irs, original, receipt, copy_photo, attacker_receipt, process = setup
        appeal = irs.owner_toolkit.prepare_appeal(
            receipt, original, process, attacker_receipt.identifier, copy_photo
        )
        decision = process.adjudicate(appeal)
        assert decision.upheld
        assert decision.robust_distance is not None
        record = irs.ledger.record(attacker_receipt.identifier)
        assert record.state is RevocationState.PERMANENTLY_REVOKED

    def test_resized_copy_caught_by_robust_hash(self, setup):
        """The watermark dies under resize, but appeals still win."""
        irs, original, receipt, _, _, process = setup
        resized_copy = resize(original, 96, 96, preserve_metadata=False)
        attacker_receipt = irs.owner_toolkit.claim(resized_copy, irs.ledger)
        appeal = irs.owner_toolkit.prepare_appeal(
            receipt, original, process, attacker_receipt.identifier, resized_copy
        )
        assert process.adjudicate(appeal).upheld

    def test_appeals_counter(self, setup):
        irs, original, receipt, copy_photo, attacker_receipt, process = setup
        appeal = irs.owner_toolkit.prepare_appeal(
            receipt, original, process, attacker_receipt.identifier, copy_photo
        )
        process.adjudicate(appeal)
        assert process.appeals_heard == 1


class TestRejectedAppeals:
    def test_unrelated_photo_rejected(self, setup):
        """Appealing against someone's *different* photo must fail --
        otherwise appeals become a censorship tool."""
        irs, original, receipt, _, _, process = setup
        unrelated = irs.new_photo(height=128, width=128)
        unrelated_receipt = irs.owner_toolkit.claim(unrelated, irs.ledger)
        appeal = irs.owner_toolkit.prepare_appeal(
            receipt, original, process, unrelated_receipt.identifier, unrelated
        )
        decision = process.adjudicate(appeal)
        assert decision.verdict is AppealVerdict.REJECTED
        assert "derived" in decision.reason

    def test_later_claim_cannot_appeal_against_earlier(self, setup):
        """Priority: the attacker cannot appeal against the *original*."""
        irs, original, receipt, copy_photo, attacker_receipt, process = setup
        # The attacker (holding the copy's receipt) appeals against the
        # original claim.
        appeal = irs.owner_toolkit.prepare_appeal(
            attacker_receipt,
            copy_photo,
            process,
            receipt.identifier,
            original,
        )
        decision = process.adjudicate(appeal)
        assert decision.verdict is AppealVerdict.REJECTED
        assert "predate" in decision.reason

    def test_wrong_original_photo_rejected(self, setup):
        irs, original, receipt, copy_photo, attacker_receipt, process = setup
        from repro.core.errors import ClaimError

        other = irs.new_photo()
        with pytest.raises(ClaimError):
            irs.owner_toolkit.prepare_appeal(
                receipt, other, process, attacker_receipt.identifier, copy_photo
            )

    def test_reused_nonce_rejected(self, setup):
        irs, original, receipt, copy_photo, attacker_receipt, process = setup
        appeal = irs.owner_toolkit.prepare_appeal(
            receipt, original, process, attacker_receipt.identifier, copy_photo
        )
        process.adjudicate(appeal)
        with pytest.raises(AppealError):
            process.adjudicate(appeal)  # nonce already consumed

    def test_untrusted_authority_rejected(self, setup):
        from repro.crypto.timestamp import TimestampAuthority

        irs, original, receipt, copy_photo, attacker_receipt, _ = setup
        stranger_process = AppealsProcess(irs.ledger, [TimestampAuthority()])
        appeal = irs.owner_toolkit.prepare_appeal(
            receipt, original, stranger_process, attacker_receipt.identifier, copy_photo
        )
        decision = stranger_process.adjudicate(appeal)
        assert decision.verdict is AppealVerdict.REJECTED
        assert "untrusted" in decision.reason

    def test_unknown_copy_identifier(self, setup):
        irs, original, receipt, copy_photo, _, process = setup
        from repro.core.identifiers import PhotoIdentifier

        ghost = PhotoIdentifier(ledger_id=irs.ledger.ledger_id, serial=999)
        appeal = irs.owner_toolkit.prepare_appeal(
            receipt, original, process, ghost, copy_photo
        )
        with pytest.raises(AppealError):
            process.adjudicate(appeal)


class TestHumanOracle:
    def test_uncertain_distance_escalates(self, setup):
        irs, original, receipt, _, _, _ = setup
        calls = []

        def oracle(a, b):
            calls.append(True)
            return True

        process = AppealsProcess(
            irs.ledger,
            [irs.timestamp_authority],
            match_threshold=0.0,  # force everything into the band
            uncertainty_band=0.2,
            human_oracle=oracle,
        )
        # A lightly compressed copy: distance > 0 but < 0.2.
        copy_photo = jpeg_roundtrip(original, 60, preserve_metadata=False)
        attacker_receipt = irs.owner_toolkit.claim(copy_photo, irs.ledger)
        appeal = irs.owner_toolkit.prepare_appeal(
            receipt, original, process, attacker_receipt.identifier, copy_photo
        )
        decision = process.adjudicate(appeal)
        assert decision.upheld
        assert decision.used_human_inspection
        assert calls

    def test_no_oracle_means_uncertain_rejects(self, setup):
        irs, original, receipt, _, _, _ = setup
        process = AppealsProcess(
            irs.ledger,
            [irs.timestamp_authority],
            match_threshold=0.0,
            uncertainty_band=0.2,
            human_oracle=None,
        )
        copy_photo = jpeg_roundtrip(original, 60, preserve_metadata=False)
        attacker_receipt = irs.owner_toolkit.claim(copy_photo, irs.ledger)
        appeal = irs.owner_toolkit.prepare_appeal(
            receipt, original, process, attacker_receipt.identifier, copy_photo
        )
        assert not process.adjudicate(appeal).upheld

    def test_requires_trusted_authority_list(self, setup):
        irs, *_ = setup
        with pytest.raises(ValueError):
            AppealsProcess(irs.ledger, [])
