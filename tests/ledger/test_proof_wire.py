"""Property tests for the status-proof wire format."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.signatures import Signature
from repro.ledger.proofs import StatusProof

_LEDGER_ID = st.text(
    alphabet=st.characters(blacklist_characters=":|", min_codepoint=33, max_codepoint=126),
    min_size=1,
    max_size=16,
)


@settings(max_examples=50, deadline=None)
@given(
    ledger_id=_LEDGER_ID,
    serial=st.integers(min_value=0, max_value=2**64 - 1),
    revoked=st.booleans(),
    permanent=st.booleans(),
    checked_at=st.floats(min_value=0, max_value=1e12, allow_nan=False),
    sig_value=st.integers(min_value=0, max_value=2**512),
    fingerprint=st.text(alphabet="0123456789abcdef", min_size=16, max_size=16),
)
def test_property_wire_roundtrip(
    ledger_id, serial, revoked, permanent, checked_at, sig_value, fingerprint
):
    """Property: any proof survives to_wire/from_wire exactly."""
    proof = StatusProof(
        identifier=f"irs1:{ledger_id}:{serial}",
        revoked=revoked,
        permanently_revoked=permanent,
        checked_at=checked_at,
        ledger_fingerprint=fingerprint,
        signature=Signature(value=sig_value, signer_fingerprint=fingerprint),
    )
    restored = StatusProof.from_wire(proof.to_wire())
    assert restored == proof


@pytest.mark.parametrize(
    "bad",
    ["", "a:b", "too:few:parts:here", "i:1:0:x:l:notanint:f"],
)
def test_malformed_wire_rejected(bad):
    with pytest.raises(ValueError):
        StatusProof.from_wire(bad)
