"""Durable-store recovery: snapshot+replay, fault detection, truncation.

The hypothesis properties at the bottom are the PR's durability claim
in its strongest form: *any* single-byte mutation of the serialized
event log is rejected by frame/chain verification, and *any*
single-byte mutation of a snapshot is rejected by its checksum — never
silently accepted into recovered state.
"""

import copy

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.hashing import sha256_hex
from repro.crypto.signatures import KeyPair
from repro.crypto.timestamp import TimestampAuthority
from repro.ledger.durable import DurableStore
from repro.ledger.ledger import Ledger
from repro.ledger.records import RevocationState
from repro.ledger.recovery import recover_store, records_digest


@pytest.fixture(scope="module")
def rig():
    """A ledger journaling to a durable store: 12 claims, 30 flips.

    Snapshots land every 16 events (at seq 16 and 32), so recovery has
    a real anchor and a real tail; tests deep-copy the disk before
    damaging it.
    """
    rng = np.random.default_rng(7)
    owner = KeyPair.generate(bits=512, rng=rng)
    ledger = Ledger(
        "durable-test",
        TimestampAuthority(keypair=KeyPair.generate(bits=512, rng=rng)),
        keypair=owner,
    )
    store = ledger.store
    disk = DurableStore(segment_size=8)
    appended = [0]

    def journal(event):
        disk.append_event(event)
        appended[0] += 1
        if appended[0] % 16 == 0:
            disk.write_snapshot(
                store.records_map(),
                store.next_serial,
                store.events.head_seq,
                store.events.head_hash,
            )

    store.attach_journal(journal)
    serials = []
    for index in range(12):
        content_hash = sha256_hex(b"durable:%d" % index)
        record = ledger.claim(
            content_hash,
            owner.sign(content_hash.encode("utf-8")),
            owner.public,
        )
        serials.append(record.identifier.serial)
    for index in range(30):
        serial = serials[index % len(serials)]
        record = store.get(serial)
        flipped = (
            RevocationState.NOT_REVOKED
            if record.state is RevocationState.REVOKED
            else RevocationState.REVOKED
        )
        store.apply_flip(
            serial,
            flipped,
            record.revocation_epoch + 1,
            "apply_state",
            float(index),
        )
    return store, disk


def _clone(disk):
    return copy.deepcopy(disk)


class TestCleanRecovery:
    def test_snapshot_recovery_matches_live_state(self, rig):
        store, disk = rig
        report = recover_store(_clone(disk))
        assert report.clean
        assert report.head_seq == store.events.head_seq
        assert report.head_hash == store.events.head_hash
        assert report.next_serial == store.next_serial
        assert records_digest(report.records) == records_digest(
            store.records_map()
        )

    def test_genesis_replay_agrees_with_snapshot_path(self, rig):
        store, disk = rig
        fast = recover_store(_clone(disk))
        full = recover_store(_clone(disk), use_snapshots=False)
        assert full.clean
        assert full.anchor_seq == 0
        assert full.head_seq == fast.head_seq
        assert records_digest(full.records) == records_digest(fast.records)

    def test_anchor_skips_pre_snapshot_segments(self, rig):
        store, disk = rig
        report = recover_store(_clone(disk))
        assert report.anchor_seq == 32
        assert len(report.tail_events) == store.events.head_seq - 32


class TestFaultDetection:
    def test_torn_final_record_detected_and_truncated(self, rig):
        store, disk = rig
        damaged = _clone(disk)
        assert damaged.tear_final_record()
        report = recover_store(damaged)
        assert report.evidence == ("torn_record",)
        assert report.head_seq == store.events.head_seq - 1
        damaged.truncate_after(*report.truncation, report.head_seq)
        assert recover_store(damaged).clean

    def test_corrupt_byte_detected(self, rig):
        _, disk = rig
        damaged = _clone(disk)
        assert damaged.corrupt_random_byte(np.random.default_rng(3))
        report = recover_store(damaged, use_snapshots=False)
        assert report.evidence
        assert set(report.evidence) <= {
            "torn_record", "corrupted_segment", "chain_broken",
        }

    def test_snapshot_corruption_falls_back(self, rig):
        store, disk = rig
        damaged = _clone(disk)
        assert damaged.corrupt_latest_snapshot()
        report = recover_store(damaged)
        assert "snapshot_corrupt" in report.evidence
        # The log itself is intact: the fallback replay reaches the
        # same head and the same state, so nothing durable was lost.
        assert not report.suffix_lost
        assert report.head_seq == store.events.head_seq
        assert records_digest(report.records) == records_digest(
            store.records_map()
        )

    def test_wipe_recovers_empty(self, rig):
        _, disk = rig
        damaged = _clone(disk)
        assert damaged.wipe() > 0
        report = recover_store(damaged)
        assert report.clean
        assert report.records == {}
        assert report.head_seq == 0


@pytest.fixture(scope="module")
def undamaged_digest(rig):
    store, _ = rig
    return records_digest(store.records_map())


@settings(max_examples=120, deadline=None)
@given(position=st.integers(min_value=0, max_value=10**9))
def test_property_any_log_byte_flip_is_detected(rig, position):
    """Property: no single-byte WAL mutation is silently accepted."""
    store, disk = rig
    damaged = _clone(disk)
    sizes = [len(segment) for segment in damaged.segments]
    position %= sum(sizes)
    for segment_index, size in enumerate(sizes):
        if position < size:
            break
        position -= size
    damaged._segments[segment_index].data[position] ^= 0xFF
    report = recover_store(damaged, use_snapshots=False)
    assert report.evidence, (
        f"flip at segment {segment_index} byte {position} went undetected"
    )
    # Detection stops the scan: nothing past the damage reaches state.
    assert report.head_seq < store.events.head_seq or report.suffix_lost


@settings(max_examples=120, deadline=None)
@given(position=st.integers(min_value=0, max_value=10**9))
def test_property_any_snapshot_byte_flip_is_detected(
    rig, undamaged_digest, position
):
    """Property: a damaged snapshot is skipped, never trusted."""
    _, disk = rig
    damaged = _clone(disk)
    snapshot = damaged._snapshots[-1]
    body = bytearray(snapshot.body)
    body[position % len(body)] ^= 0xFF
    snapshot.body = bytes(body)
    report = recover_store(damaged)
    assert "snapshot_corrupt" in report.evidence
    # The intact log rebuilds the exact same state via the fallback.
    assert records_digest(report.records) == undamaged_digest
