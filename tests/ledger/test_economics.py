"""Tests for the ledger hosting-cost model."""

import pytest

from repro.ledger.economics import BootstrapScale, ServingCostModel


@pytest.fixture()
def model():
    return ServingCostModel()


class TestScale:
    def test_labeled_view_rate(self):
        scale = BootstrapScale(
            irs_users=1e6, photo_views_per_user_day=200, labeled_fraction=0.1
        )
        # 1e6 * 200 * 0.1 / 86400 ~ 231 qps.
        assert scale.labeled_views_per_second() == pytest.approx(231.5, rel=0.01)


class TestCosts:
    def test_cost_scales_with_users(self, model):
        small = model.monthly_cost(BootstrapScale(irs_users=1e5))
        large = model.monthly_cost(BootstrapScale(irs_users=1e8))
        # Query rate is exactly linear in users; cost is superlinear
        # relative to the one-server floor the small deployment sits on.
        assert large.query_rate_per_s == pytest.approx(
            small.query_rate_per_s * 1000
        )
        assert large.total > small.total * 15
        assert large.servers > small.servers

    def test_load_reduction_cuts_cost(self, model):
        scale = BootstrapScale(irs_users=1e8)
        naive = model.monthly_cost(scale, load_reduction=1.0)
        offloaded = model.monthly_cost(scale, load_reduction=50.0)
        assert offloaded.total < naive.total / 10
        assert offloaded.query_rate_per_s == pytest.approx(
            naive.query_rate_per_s / 50.0
        )

    def test_filter_publication_cost_present_but_small(self, model):
        scale = BootstrapScale(irs_users=1e8, claimed_photos=1e9)
        cost = model.monthly_cost(scale, load_reduction=50.0, publish_filters=True)
        assert cost.filter_hosting_cost > 0
        naive = model.monthly_cost(scale, load_reduction=1.0)
        assert cost.filter_hosting_cost < naive.total / 10

    def test_offload_ratio(self, model):
        scale = BootstrapScale(irs_users=1e8)
        ratio = model.offload_ratio(scale, load_reduction=50.0)
        assert ratio > 5.0

    def test_at_least_one_server(self, model):
        tiny = model.monthly_cost(BootstrapScale(irs_users=10))
        assert tiny.servers == 1

    def test_invalid_reduction(self, model):
        with pytest.raises(ValueError):
            model.monthly_cost(BootstrapScale(irs_users=1e6), load_reduction=0.5)

    def test_filter_size_tracks_revoked_set(self, model):
        scale_small = BootstrapScale(
            irs_users=1e6, claimed_photos=1e8, revoked_fraction=0.5
        )
        scale_large = BootstrapScale(
            irs_users=1e6, claimed_photos=1e10, revoked_fraction=0.5
        )
        assert model.filter_size_bytes(scale_large) == pytest.approx(
            model.filter_size_bytes(scale_small) * 100
        )
