"""Tests for owner-side honesty probes against honest and lying ledgers."""

import numpy as np
import pytest

from repro.attacks.malicious_ledger import LyingLedger, StonewallingLedger
from repro.crypto.timestamp import TimestampAuthority
from repro.ledger.ledger import Ledger
from repro.ledger.probes import HonestyProber


@pytest.fixture()
def tsa():
    return TimestampAuthority()


class TestHonestLedger:
    def test_clean_report(self, tsa):
        ledger = Ledger("honest", tsa)
        prober = HonestyProber(ledger, np.random.default_rng(1))
        prober.plant_canaries(5)
        for _ in range(3):
            report = prober.run_round()
            assert report.clean
            assert report.probes_sent == 5

    def test_canaries_persist(self, tsa):
        ledger = Ledger("honest", tsa)
        prober = HonestyProber(ledger, np.random.default_rng(2))
        prober.plant_canaries(3)
        assert prober.num_canaries == 3
        assert len(ledger.store) == 3


class TestLyingLedger:
    def test_lies_detected(self, tsa):
        ledger = LyingLedger(
            "liar",
            tsa,
            lie_probability=1.0,
            lie_rng=np.random.default_rng(3),
        )
        prober = HonestyProber(ledger, np.random.default_rng(4))
        prober.plant_canaries(5)
        report = prober.run_round(toggle_probability=0.0)
        assert not report.clean
        assert all(v.kind == "wrong_status" for v in report.violations)
        assert len(report.violations) == 5

    def test_lie_evidence_is_signed(self, tsa):
        """A lying ledger signs its lies — portable evidence."""
        ledger = LyingLedger(
            "liar", tsa, lie_probability=1.0, lie_rng=np.random.default_rng(5)
        )
        prober = HonestyProber(ledger, np.random.default_rng(6))
        prober.plant_canaries(2)
        report = prober.run_round(toggle_probability=0.0)
        for violation in report.violations:
            assert violation.evidence is not None
            # The lie verifies under the ledger's own key: damning.
            assert violation.evidence.verify(ledger.public_key)

    def test_partial_liar_partially_detected(self, tsa):
        ledger = LyingLedger(
            "sometimes-liar",
            tsa,
            lie_probability=0.5,
            lie_rng=np.random.default_rng(7),
        )
        prober = HonestyProber(ledger, np.random.default_rng(8))
        prober.plant_canaries(40)
        report = prober.run_round(toggle_probability=0.0)
        # ~half the probes catch a lie.
        assert 8 <= len(report.violations) <= 32


class TestStonewallingLedger:
    def test_dropped_revocations_detected(self, tsa):
        ledger = StonewallingLedger(
            "stonewall",
            tsa,
            drop_probability=1.0,
            drop_rng=np.random.default_rng(9),
        )
        prober = HonestyProber(ledger, np.random.default_rng(10))
        prober.plant_canaries(6)
        # Every toggle is silently dropped, so status disagrees with
        # the prober's expectation.
        report = prober.run_round(toggle_probability=1.0)
        assert not report.clean
        assert all(v.kind == "wrong_status" for v in report.violations)
        assert ledger.requests_dropped == 6

    def test_honest_mode_passes(self, tsa):
        ledger = StonewallingLedger(
            "not-actually",
            tsa,
            drop_probability=0.0,
            drop_rng=np.random.default_rng(11),
        )
        prober = HonestyProber(ledger, np.random.default_rng(12))
        prober.plant_canaries(4)
        assert prober.run_round().clean


class TestMerkleAudit:
    def test_history_rewrite_detected(self, tsa):
        ledger = Ledger("rewriter", tsa)
        prober = HonestyProber(ledger, np.random.default_rng(13))
        prober.plant_canaries(3)
        prober.run_round()  # records the current root
        # The ledger rewrites its operation log.
        from repro.crypto.merkle import _leaf_hash

        ledger.store.merkle._leaves[0] = b"rewritten"
        ledger.store.merkle._leaf_hashes[0] = _leaf_hash(b"rewritten")
        report = prober.run_round()
        assert any(v.kind == "history_rewrite" for v in report.violations)

    def test_honest_growth_passes_audit(self, tsa):
        ledger = Ledger("grower", tsa)
        prober = HonestyProber(ledger, np.random.default_rng(14))
        prober.plant_canaries(3)
        prober.run_round()
        prober.plant_canaries(2)  # log grows between rounds
        assert prober.run_round().clean
