"""Unit tests for the ledger store."""

import pytest

from repro.core.identifiers import PhotoIdentifier
from repro.crypto.hashing import sha256_hex
from repro.crypto.signatures import KeyPair
from repro.crypto.timestamp import TimestampAuthority
from repro.ledger.records import ClaimRecord, RevocationState, claim_digest
from repro.ledger.storage import LedgerStore


@pytest.fixture(scope="module")
def record_factory(session_keypair):
    tsa = TimestampAuthority()

    def make(serial: int, state=RevocationState.NOT_REVOKED, custodial=False):
        content_hash = sha256_hex(f"photo-{serial}".encode())
        return ClaimRecord(
            identifier=PhotoIdentifier(ledger_id="store-test", serial=serial),
            content_hash=content_hash,
            content_signature=session_keypair.sign(content_hash.encode("utf-8")),
            public_key=session_keypair.public,
            timestamp=tsa.issue(claim_digest(content_hash, session_keypair.public)),
            state=state,
            custodial=custodial,
        )

    return make


class TestSerialAllocation:
    def test_monotone_from_one(self):
        store = LedgerStore()
        assert store.allocate_serial() == 1
        assert store.allocate_serial() == 2

    def test_unique_across_many(self):
        store = LedgerStore()
        serials = [store.allocate_serial() for _ in range(100)]
        assert len(set(serials)) == 100


class TestRecords:
    def test_put_get(self, record_factory):
        store = LedgerStore()
        record = record_factory(1)
        store.put(record)
        assert store.get(1) is record
        assert 1 in store
        assert store.get(2) is None

    def test_duplicate_serial_rejected(self, record_factory):
        store = LedgerStore()
        store.put(record_factory(1))
        with pytest.raises(KeyError):
            store.put(record_factory(1))

    def test_iteration_in_serial_order(self, record_factory):
        store = LedgerStore()
        for serial in (3, 1, 2):
            store.put(record_factory(serial))
        assert [r.identifier.serial for r in store.records()] == [1, 2, 3]

    def test_revoked_records_filter(self, record_factory):
        store = LedgerStore()
        store.put(record_factory(1))
        store.put(record_factory(2, state=RevocationState.REVOKED))
        store.put(record_factory(3, state=RevocationState.PERMANENTLY_REVOKED))
        revoked = [r.identifier.serial for r in store.revoked_records()]
        assert revoked == [2, 3]

    def test_counts(self, record_factory):
        store = LedgerStore()
        store.put(record_factory(1))
        store.put(record_factory(2, state=RevocationState.REVOKED))
        store.put(record_factory(3, custodial=True))
        store.log_operation("claim", 1, 0.0)
        counts = store.counts()
        assert counts["total"] == 3
        assert counts["revoked"] == 1
        assert counts["not_revoked"] == 2
        assert counts["custodial"] == 1
        assert counts["operations"] == 1


class TestOperationLog:
    def test_log_mirrors_into_merkle(self):
        store = LedgerStore()
        index = store.log_operation("claim", 1, 10.0)
        assert index == 0
        assert store.merkle.size == 1
        assert len(store.operations) == 1
        op = store.operations[0]
        assert (op.kind, op.serial, op.time) == ("claim", 1, 10.0)

    def test_merkle_inclusion_of_operations(self):
        store = LedgerStore()
        for i in range(6):
            store.log_operation("claim", i, float(i))
        root = store.merkle.root()
        proof = store.merkle.inclusion_proof(3)
        assert proof.verify(store.operations[3].to_leaf_bytes(), root)
