"""Tests for the ledger's four core operations."""

import numpy as np
import pytest

from repro.core.errors import ClaimError, RevocationError
from repro.core.identifiers import PhotoIdentifier
from repro.crypto.hashing import sha256_hex
from repro.crypto.signatures import KeyPair
from repro.crypto.timestamp import TimestampAuthority
from repro.crypto.tokens import TokenIssuer
from repro.ledger.ledger import Ledger, LedgerConfig
from repro.ledger.records import RevocationState


@pytest.fixture()
def tsa():
    return TimestampAuthority()


@pytest.fixture()
def ledger(tsa):
    return Ledger("test-ledger", tsa)


def _claim(ledger, keypair, content=b"photo-bytes"):
    content_hash = sha256_hex(content)
    signature = keypair.sign(content_hash.encode("utf-8"))
    return ledger.claim(content_hash, signature, keypair.public)


def _flip(ledger, keypair, identifier, action):
    nonce = ledger.make_challenge(identifier)
    payload = Ledger.ownership_payload(action, identifier, nonce)
    signature = keypair.sign_struct(payload)
    if action == "revoke":
        return ledger.revoke(identifier, nonce, signature)
    return ledger.unrevoke(identifier, nonce, signature)


class TestClaiming:
    def test_claim_returns_record(self, ledger, session_keypair):
        record = _claim(ledger, session_keypair)
        assert record.identifier.ledger_id == "test-ledger"
        assert record.identifier.serial == 1
        assert record.state is RevocationState.NOT_REVOKED

    def test_serials_increment(self, ledger, session_keypair):
        r1 = _claim(ledger, session_keypair, b"a")
        r2 = _claim(ledger, session_keypair, b"b")
        assert r2.identifier.serial == r1.identifier.serial + 1

    def test_claim_timestamp_verifies(self, ledger, session_keypair, tsa):
        record = _claim(ledger, session_keypair)
        assert record.timestamp.verify(tsa.public_key)

    def test_bad_signature_rejected(self, ledger, session_keypair, second_keypair):
        content_hash = sha256_hex(b"photo")
        wrong_sig = second_keypair.sign(content_hash.encode("utf-8"))
        with pytest.raises(ClaimError):
            ledger.claim(content_hash, wrong_sig, session_keypair.public)

    def test_initially_revoked(self, ledger, session_keypair):
        content_hash = sha256_hex(b"private")
        sig = session_keypair.sign(content_hash.encode("utf-8"))
        record = ledger.claim(
            content_hash, sig, session_keypair.public, initially_revoked=True
        )
        assert record.is_revoked

    def test_claim_counter(self, ledger, session_keypair):
        _claim(ledger, session_keypair)
        assert ledger.claims_served == 1

    def test_operations_logged(self, ledger, session_keypair):
        _claim(ledger, session_keypair)
        kinds = [op.kind for op in ledger.store.operations]
        assert kinds == ["claim"]

    def test_invalid_ledger_id(self, tsa):
        with pytest.raises(ValueError):
            Ledger("", tsa)
        with pytest.raises(ValueError):
            Ledger("has:colon", tsa)


class TestPayment:
    def test_payment_required_and_accepted(self, tsa, session_keypair):
        issuer = TokenIssuer()
        ledger = Ledger(
            "paid-ledger",
            tsa,
            config=LedgerConfig(require_payment=True),
            token_issuer=issuer,
        )
        token = issuer.sell("anon-buyer")
        content_hash = sha256_hex(b"photo")
        sig = session_keypair.sign(content_hash.encode("utf-8"))
        record = ledger.claim(content_hash, sig, session_keypair.public, payment=token)
        assert record.identifier.serial == 1

    def test_missing_payment_rejected(self, tsa, session_keypair):
        ledger = Ledger(
            "paid-ledger",
            tsa,
            config=LedgerConfig(require_payment=True),
            token_issuer=TokenIssuer(),
        )
        with pytest.raises(ClaimError):
            _claim(ledger, session_keypair)

    def test_double_spent_token_rejected(self, tsa, session_keypair):
        issuer = TokenIssuer()
        ledger = Ledger(
            "paid-ledger",
            tsa,
            config=LedgerConfig(require_payment=True),
            token_issuer=issuer,
        )
        token = issuer.sell("buyer")
        content_hash = sha256_hex(b"p1")
        sig = session_keypair.sign(content_hash.encode("utf-8"))
        ledger.claim(content_hash, sig, session_keypair.public, payment=token)
        content_hash2 = sha256_hex(b"p2")
        sig2 = session_keypair.sign(content_hash2.encode("utf-8"))
        with pytest.raises(ClaimError):
            ledger.claim(content_hash2, sig2, session_keypair.public, payment=token)


class TestRevocation:
    def test_revoke_unrevoke_cycle(self, ledger, session_keypair):
        record = _claim(ledger, session_keypair)
        _flip(ledger, session_keypair, record.identifier, "revoke")
        assert ledger.record(record.identifier).is_revoked
        _flip(ledger, session_keypair, record.identifier, "unrevoke")
        assert not ledger.record(record.identifier).is_revoked

    def test_wrong_key_rejected(self, ledger, session_keypair, second_keypair):
        record = _claim(ledger, session_keypair)
        nonce = ledger.make_challenge(record.identifier)
        payload = Ledger.ownership_payload("revoke", record.identifier, nonce)
        bad_sig = second_keypair.sign_struct(payload)
        with pytest.raises(RevocationError):
            ledger.revoke(record.identifier, nonce, bad_sig)
        assert not ledger.record(record.identifier).is_revoked

    def test_nonce_single_use(self, ledger, session_keypair):
        record = _claim(ledger, session_keypair)
        nonce = ledger.make_challenge(record.identifier)
        payload = Ledger.ownership_payload("revoke", record.identifier, nonce)
        sig = session_keypair.sign_struct(payload)
        ledger.revoke(record.identifier, nonce, sig)
        with pytest.raises(RevocationError):
            ledger.revoke(record.identifier, nonce, sig)

    def test_unknown_nonce_rejected(self, ledger, session_keypair):
        record = _claim(ledger, session_keypair)
        fake_nonce = b"\x00" * 16
        payload = Ledger.ownership_payload("revoke", record.identifier, fake_nonce)
        sig = session_keypair.sign_struct(payload)
        with pytest.raises(RevocationError):
            ledger.revoke(record.identifier, fake_nonce, sig)

    def test_challenge_expiry(self, tsa, session_keypair):
        # Consumed by: claim's operation log, make_challenge, and the
        # expiry check inside revoke.
        times = iter([1.0, 2.0, 1000.0, 1001.0, 1002.0])
        ledger = Ledger(
            "t", tsa, clock=lambda: next(times), config=LedgerConfig(challenge_ttl=10.0)
        )
        record = _claim(ledger, session_keypair)
        nonce = ledger.make_challenge(record.identifier)
        payload = Ledger.ownership_payload("revoke", record.identifier, nonce)
        sig = session_keypair.sign_struct(payload)
        with pytest.raises(RevocationError):
            ledger.revoke(record.identifier, nonce, sig)

    def test_action_mismatch_rejected(self, ledger, session_keypair):
        """A signature authorizing 'unrevoke' must not authorize 'revoke'."""
        record = _claim(ledger, session_keypair)
        nonce = ledger.make_challenge(record.identifier)
        payload = Ledger.ownership_payload("unrevoke", record.identifier, nonce)
        sig = session_keypair.sign_struct(payload)
        with pytest.raises(RevocationError):
            ledger.revoke(record.identifier, nonce, sig)

    def test_unknown_identifier(self, ledger):
        ghost = PhotoIdentifier(ledger_id="test-ledger", serial=999)
        with pytest.raises(RevocationError):
            ledger.make_challenge(ghost)

    def test_permanent_revocation_blocks_owner(self, ledger, session_keypair):
        record = _claim(ledger, session_keypair)
        ledger.permanently_revoke(record.identifier)
        with pytest.raises(RevocationError):
            _flip(ledger, session_keypair, record.identifier, "unrevoke")

    def test_revocation_disabled_by_policy(self, tsa, session_keypair):
        ledger = Ledger(
            "archive", tsa, config=LedgerConfig(allow_revocation=False)
        )
        record = _claim(ledger, session_keypair)
        with pytest.raises(RevocationError):
            _flip(ledger, session_keypair, record.identifier, "revoke")

    def test_idempotent_revoke(self, ledger, session_keypair):
        record = _claim(ledger, session_keypair)
        _flip(ledger, session_keypair, record.identifier, "revoke")
        _flip(ledger, session_keypair, record.identifier, "revoke")
        assert ledger.record(record.identifier).is_revoked


class TestStatus:
    def test_status_proof_verifies(self, ledger, session_keypair):
        record = _claim(ledger, session_keypair)
        proof = ledger.status(record.identifier)
        assert proof.verify(ledger.public_key)
        assert not proof.revoked

    def test_status_reflects_revocation(self, ledger, session_keypair):
        record = _claim(ledger, session_keypair)
        _flip(ledger, session_keypair, record.identifier, "revoke")
        assert ledger.status(record.identifier).revoked

    def test_status_counter(self, ledger, session_keypair):
        record = _claim(ledger, session_keypair)
        for _ in range(3):
            ledger.status(record.identifier)
        assert ledger.status_queries_served == 3

    def test_status_unknown_identifier(self, ledger):
        with pytest.raises(RevocationError):
            ledger.status(PhotoIdentifier(ledger_id="test-ledger", serial=42))

    def test_status_batch(self, ledger, session_keypair):
        records = [_claim(ledger, session_keypair, f"p{i}".encode()) for i in range(4)]
        _flip(ledger, session_keypair, records[2].identifier, "revoke")
        proofs = ledger.status_batch([r.identifier for r in records])
        assert len(proofs) == 4
        assert [p.revoked for p in proofs] == [False, False, True, False]
        assert all(p.verify(ledger.public_key) for p in proofs)
        assert ledger.status_queries_served == 4

    def test_status_batch_empty(self, ledger):
        assert ledger.status_batch([]) == []

    def test_proof_tamper_detected(self, ledger, session_keypair):
        from dataclasses import replace

        record = _claim(ledger, session_keypair)
        proof = ledger.status(record.identifier)
        forged = replace(proof, revoked=True)
        assert not forged.verify(ledger.public_key)

    def test_proof_freshness(self, tsa, session_keypair):
        times = iter(np.arange(1.0, 100.0))
        ledger = Ledger("t", tsa, clock=lambda: float(next(times)))
        record = _claim(ledger, session_keypair)
        proof = ledger.status(record.identifier)
        assert proof.is_fresh(now=proof.checked_at + 5, max_age=10)
        assert not proof.is_fresh(now=proof.checked_at + 20, max_age=10)
