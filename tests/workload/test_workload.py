"""Tests for workload generation: populations, Zipf, traces, pages."""

import numpy as np
import pytest

from repro.core import IrsDeployment
from repro.workload.pages import pinterest_like_page
from repro.workload.population import populate_ledger
from repro.workload.traces import BrowsingTraceGenerator
from repro.workload.zipf import ZipfSampler


class TestPopulation:
    def test_fast_population_shape(self, deployment, rng):
        population = populate_ledger(deployment.ledger, 1000, 0.6, rng)
        assert population.size == 1000
        assert 0.5 < population.revoked_fraction < 0.7
        assert len(deployment.ledger.store) == 1000

    def test_identifiers_queryable(self, deployment, rng):
        population = populate_ledger(deployment.ledger, 50, 0.5, rng)
        for i, identifier in enumerate(population.identifiers):
            proof = deployment.ledger.status(identifier)
            assert proof.revoked == bool(population.revoked_mask[i])

    def test_full_crypto_mode(self, deployment, rng):
        population = populate_ledger(
            deployment.ledger, 20, 0.5, rng, full_crypto=True
        )
        # Every record's timestamp and signature are individually valid.
        for identifier in population.identifiers:
            record = deployment.ledger.record(identifier)
            assert record.timestamp.verify(
                deployment.timestamp_authority.public_key
            )
            assert record.public_key.verify(
                record.content_hash.encode("utf-8"), record.content_signature
            )

    def test_revoked_fraction_extremes(self, deployment, rng):
        all_revoked = populate_ledger(deployment.ledger, 100, 1.0, rng)
        assert all_revoked.num_revoked == 100
        assert all_revoked.viewable_mask().sum() == 0

    def test_zero_count(self, deployment, rng):
        population = populate_ledger(deployment.ledger, 0, 0.5, rng)
        assert population.size == 0

    def test_validation(self, deployment, rng):
        with pytest.raises(ValueError):
            populate_ledger(deployment.ledger, -1, 0.5, rng)
        with pytest.raises(ValueError):
            populate_ledger(deployment.ledger, 10, 1.5, rng)

    def test_populations_compose_on_one_ledger(self, deployment, rng):
        p1 = populate_ledger(deployment.ledger, 100, 0.5, rng)
        p2 = populate_ledger(deployment.ledger, 100, 0.5, rng)
        serials = {i.serial for i in p1.identifiers} | {
            i.serial for i in p2.identifiers
        }
        assert len(serials) == 200


class TestZipf:
    def test_uniform_at_zero_exponent(self):
        sampler = ZipfSampler(100, 0.0, np.random.default_rng(1))
        samples = sampler.sample(50_000)
        counts = np.bincount(samples, minlength=100)
        assert counts.min() > 300  # roughly uniform (500 expected)

    def test_skew_at_one(self):
        sampler = ZipfSampler(1000, 1.0, np.random.default_rng(2))
        samples = sampler.sample(50_000)
        counts = np.bincount(samples, minlength=1000)
        # Rank-0 item should dominate rank-99 by roughly 100x.
        assert counts[0] > counts[99] * 20

    def test_probabilities_sum_to_one(self):
        sampler = ZipfSampler(500, 1.2, np.random.default_rng(3))
        assert sampler.probabilities.sum() == pytest.approx(1.0)

    def test_expected_hit_rate(self):
        sampler = ZipfSampler(10, 0.0, np.random.default_rng(4))
        mask = np.zeros(10, dtype=bool)
        mask[:3] = True
        assert sampler.expected_hit_rate(mask) == pytest.approx(0.3)

    def test_samples_in_range(self):
        sampler = ZipfSampler(7, 2.0, np.random.default_rng(5))
        samples = sampler.sample(1000)
        assert samples.min() >= 0 and samples.max() < 7

    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0, rng)
        with pytest.raises(ValueError):
            ZipfSampler(10, -1.0, rng)
        sampler = ZipfSampler(10, 1.0, rng)
        with pytest.raises(ValueError):
            sampler.sample(-1)
        with pytest.raises(ValueError):
            sampler.expected_hit_rate(np.zeros(5, dtype=bool))


class TestTraces:
    def _population(self, deployment, rng, revoked=0.5):
        return populate_ledger(deployment.ledger, 200, revoked, rng)

    def test_trace_sorted_by_time(self, deployment, rng):
        population = self._population(deployment, rng)
        gen = BrowsingTraceGenerator(population, num_users=5, rng=rng)
        events = gen.generate(views_per_user=20)
        assert len(events) == 100
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_default_views_avoid_revoked(self, deployment, rng):
        population = self._population(deployment, rng)
        gen = BrowsingTraceGenerator(
            population, num_users=4, rng=rng, revoked_view_fraction=0.0
        )
        events = gen.generate(views_per_user=50)
        assert all(not population.revoked_mask[e.photo_index] for e in events)

    def test_leak_rate_hits_revoked(self, deployment, rng):
        population = self._population(deployment, rng)
        gen = BrowsingTraceGenerator(
            population, num_users=4, rng=rng, revoked_view_fraction=0.3
        )
        events = gen.generate(views_per_user=200)
        revoked_views = sum(
            1 for e in events if population.revoked_mask[e.photo_index]
        )
        assert 0.2 < revoked_views / len(events) < 0.4

    def test_stream_yields_requested_count(self, deployment, rng):
        population = self._population(deployment, rng)
        gen = BrowsingTraceGenerator(population, num_users=3, rng=rng)
        events = list(gen.stream(total_views=77))
        assert len(events) == 77
        times = [e.time for e in events]
        assert times == sorted(times)

    def test_all_revoked_population_rejected(self, deployment, rng):
        population = populate_ledger(deployment.ledger, 50, 1.0, rng)
        with pytest.raises(ValueError):
            BrowsingTraceGenerator(population, num_users=2, rng=rng)

    def test_validation(self, deployment, rng):
        population = self._population(deployment, rng)
        with pytest.raises(ValueError):
            BrowsingTraceGenerator(population, num_users=0, rng=rng)
        with pytest.raises(ValueError):
            BrowsingTraceGenerator(
                population, num_users=1, rng=rng, mean_interarrival=0.0
            )


class TestPagesWithRealIdentifiers:
    def test_page_uses_population_identifiers(self, deployment, rng):
        population = populate_ledger(deployment.ledger, 100, 0.0, rng)
        page = pinterest_like_page(
            rng, num_images=20, identifiers=population.identifiers
        )
        for image in page.images:
            assert image.identifier in population.identifiers
