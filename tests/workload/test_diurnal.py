"""Tests for the diurnal traffic profile."""

import numpy as np
import pytest

from repro.workload.diurnal import DiurnalProfile


class TestProfileShape:
    def test_mean_is_one(self):
        profile = DiurnalProfile()
        times = np.linspace(0, 86_400, 10_000, endpoint=False)
        assert float(profile.intensities(times).mean()) == pytest.approx(
            1.0, abs=1e-3
        )

    def test_intensity_positive_everywhere(self):
        profile = DiurnalProfile()
        times = np.linspace(0, 86_400, 10_000, endpoint=False)
        assert profile.intensities(times).min() > 0

    def test_peak_in_the_evening(self):
        profile = DiurnalProfile()
        assert 20.0 <= profile.peak_hour() <= 23.5

    def test_peak_to_mean_reasonable(self):
        ratio = DiurnalProfile().peak_to_mean()
        assert 1.4 < ratio < 1.8

    def test_trough_is_deep_and_off_peak(self):
        profile = DiurnalProfile()
        trough_hour = profile.trough_hour()
        assert profile.intensity(trough_hour * 3600) < 0.6
        assert profile.intensity(profile.peak_hour() * 3600) > 1.4
        # Trough and peak are far apart (at least 6 hours around the clock).
        gap = abs(profile.peak_hour() - trough_hour)
        assert min(gap, 24 - gap) >= 6.0

    def test_wraps_across_midnight(self):
        profile = DiurnalProfile()
        assert profile.intensity(0.0) == pytest.approx(
            profile.intensity(86_400.0)
        )

    def test_scalar_matches_vector(self):
        profile = DiurnalProfile()
        t = 12_345.0
        assert profile.intensity(t) == pytest.approx(
            float(profile.intensities(np.array([t]))[0])
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalProfile(primary_amplitude=1.2)
        with pytest.raises(ValueError):
            DiurnalProfile(primary_amplitude=0.7, secondary_amplitude=0.4)


class TestThinning:
    def test_thinned_stream_follows_profile(self):
        profile = DiurnalProfile()
        rng = np.random.default_rng(5)
        # A flat stream across one day.
        flat = np.sort(rng.uniform(0, 86_400, size=200_000))
        kept = np.asarray(profile.thin_events(flat, rng))
        # Volume in the peak hour dwarfs volume in the trough hour.
        peak_h = profile.peak_hour()
        trough_h = profile.trough_hour()
        peak_count = (
            (kept > (peak_h - 1) * 3600) & (kept < (peak_h + 1) * 3600)
        ).sum()
        trough_count = (
            (kept > (trough_h - 1) * 3600) & (kept < (trough_h + 1) * 3600)
        ).sum()
        assert peak_count > trough_count * 2

    def test_thinning_keeps_subset(self):
        profile = DiurnalProfile()
        rng = np.random.default_rng(6)
        flat = list(np.linspace(0, 86_400, 1000, endpoint=False))
        kept = profile.thin_events(flat, rng)
        assert 0 < len(kept) < len(flat)
        assert set(kept) <= set(float(t) for t in flat)

    def test_empty_stream(self):
        profile = DiurnalProfile()
        assert profile.thin_events([], np.random.default_rng(7)) == []


class TestEconomicsIntegration:
    def test_provision_factor_covers_measured_peak(self):
        """The cost model's headroom must cover the diurnal peak."""
        from repro.ledger.economics import ServingCostModel

        model = ServingCostModel()
        profile = DiurnalProfile()
        assert model.peak_provision_factor >= profile.peak_to_mean()
