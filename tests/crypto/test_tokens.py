"""Tests for payment tokens and the mixing market."""

import numpy as np
import pytest

from repro.crypto.tokens import MixingMarket, TokenError, TokenIssuer


class TestIssuer:
    def test_sell_records_purchase(self):
        issuer = TokenIssuer()
        token = issuer.sell("alice")
        assert issuer.purchases[token.serial] == "alice"

    def test_redeem_valid_token(self):
        issuer = TokenIssuer()
        token = issuer.sell("alice")
        issuer.redeem(token)
        assert issuer.is_redeemed(token.serial)

    def test_double_spend_rejected(self):
        issuer = TokenIssuer()
        token = issuer.sell("alice")
        issuer.redeem(token)
        with pytest.raises(TokenError):
            issuer.redeem(token)

    def test_foreign_token_rejected(self):
        issuer1, issuer2 = TokenIssuer(), TokenIssuer()
        token = issuer1.sell("alice")
        with pytest.raises(TokenError):
            issuer2.redeem(token)

    def test_forged_serial_rejected(self):
        from dataclasses import replace

        issuer = TokenIssuer()
        token = issuer.sell("alice")
        forged = replace(token, serial=token.serial + 1)
        with pytest.raises(TokenError):
            issuer.redeem(forged)

    def test_serials_unique(self):
        issuer = TokenIssuer()
        serials = {issuer.sell(f"u{i}").serial for i in range(10)}
        assert len(serials) == 10


class TestMixingMarket:
    def _setup(self, n_users=20, rng_seed=5):
        issuer = TokenIssuer()
        market = MixingMarket(rng=np.random.default_rng(rng_seed))
        for i in range(n_users):
            market.deposit(f"user-{i}", issuer.sell(f"user-{i}"))
        return issuer, market

    def test_initial_linkage_is_total(self):
        issuer, market = self._setup()
        assert market.linkage_probability(issuer) == 1.0

    def test_mixing_reduces_linkage(self):
        issuer, market = self._setup(n_users=50)
        market.mix(3)
        linkage = market.linkage_probability(issuer)
        # After mixing 50 tokens, expected linkage ~1/50.
        assert linkage < 0.2

    def test_token_conservation(self):
        issuer, market = self._setup(n_users=10)
        market.mix(5)
        total = sum(
            len(market.withdraw_all(f"user-{i}")) for i in range(10)
        )
        assert total == 10

    def test_withdrawn_tokens_still_redeemable(self):
        issuer, market = self._setup(n_users=8)
        market.mix(2)
        for i in range(8):
            for token in market.withdraw_all(f"user-{i}"):
                issuer.redeem(token)  # all still valid, spendable once

    def test_participants_listing(self):
        _, market = self._setup(n_users=3)
        assert market.participants == ["user-0", "user-1", "user-2"]

    def test_empty_market_linkage_zero(self):
        issuer = TokenIssuer()
        market = MixingMarket()
        assert market.linkage_probability(issuer) == 0.0
