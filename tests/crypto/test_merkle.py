"""Tests for the Merkle transparency log."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.merkle import MerkleConsistencyError, MerkleLog


def _filled_log(n: int) -> MerkleLog:
    log = MerkleLog()
    for i in range(n):
        log.append(f"entry-{i}".encode())
    return log


class TestBasics:
    def test_empty_log_has_root(self):
        log = MerkleLog()
        assert isinstance(log.root(), bytes)
        assert len(log.root()) == 32

    def test_append_returns_indices(self):
        log = MerkleLog()
        assert log.append(b"a") == 0
        assert log.append(b"b") == 1
        assert len(log) == 2

    def test_entry_retrieval(self):
        log = _filled_log(3)
        assert log.entry(1) == b"entry-1"

    def test_root_changes_on_append(self):
        log = _filled_log(4)
        before = log.root()
        log.append(b"new")
        assert log.root() != before

    def test_prefix_root_is_stable(self):
        log = _filled_log(4)
        prefix_root = log.root(4)
        log.append(b"later")
        assert log.root(4) == prefix_root

    def test_root_out_of_range(self):
        log = _filled_log(2)
        with pytest.raises(ValueError):
            log.root(3)


class TestInclusionProofs:
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8, 13])
    def test_all_leaves_prove(self, size):
        log = _filled_log(size)
        root = log.root()
        for i in range(size):
            proof = log.inclusion_proof(i)
            assert proof.verify(f"entry-{i}".encode(), root)

    def test_wrong_leaf_fails(self):
        log = _filled_log(6)
        proof = log.inclusion_proof(2)
        assert not proof.verify(b"entry-3", log.root())

    def test_wrong_root_fails(self):
        log = _filled_log(6)
        proof = log.inclusion_proof(2)
        assert not proof.verify(b"entry-2", b"\x00" * 32)

    def test_proof_against_prefix(self):
        log = _filled_log(10)
        proof = log.inclusion_proof(3, tree_size=7)
        assert proof.verify(b"entry-3", log.root(7))
        assert not proof.verify(b"entry-3", log.root(10))

    def test_out_of_range_proof(self):
        log = _filled_log(4)
        with pytest.raises(ValueError):
            log.inclusion_proof(4)
        with pytest.raises(ValueError):
            log.inclusion_proof(2, tree_size=9)


class TestConsistency:
    def test_honest_growth_passes(self):
        log = _filled_log(5)
        old_root = log.root()
        log.append(b"more")
        log.check_consistency(5, old_root)  # no raise

    def test_rewrite_detected(self):
        log = _filled_log(5)
        old_root = log.root()
        from repro.crypto.merkle import _leaf_hash

        log._leaves[2] = b"tampered"
        log._leaf_hashes[2] = _leaf_hash(b"tampered")
        with pytest.raises(MerkleConsistencyError):
            log.check_consistency(5, old_root)

    def test_shrunk_log_detected(self):
        log = _filled_log(3)
        old_root = log.root()
        with pytest.raises(MerkleConsistencyError):
            log.check_consistency(5, old_root)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=40))
def test_property_every_inclusion_proof_verifies(entries):
    """Property: for any entry list, every leaf proves against the root."""
    log = MerkleLog()
    for entry in entries:
        log.append(entry)
    root = log.root()
    for i, entry in enumerate(entries):
        assert log.inclusion_proof(i).verify(entry, root)


@settings(max_examples=25, deadline=None)
@given(
    st.lists(st.binary(min_size=1, max_size=8), min_size=2, max_size=30),
    st.data(),
)
def test_property_consistency_across_any_growth(entries, data):
    """Property: any prefix root stays consistent as the log grows."""
    cut = data.draw(st.integers(min_value=1, max_value=len(entries) - 1))
    log = MerkleLog()
    for entry in entries[:cut]:
        log.append(entry)
    old_root = log.root()
    for entry in entries[cut:]:
        log.append(entry)
    log.check_consistency(cut, old_root)
