"""Tests for the timestamping authority."""

import pytest

from repro.crypto.timestamp import TimestampAuthority, TimestampError


class TestIssuance:
    def test_token_verifies(self):
        tsa = TimestampAuthority()
        token = tsa.issue(b"digest")
        assert token.verify(tsa.public_key)
        assert tsa.verify(token)

    def test_serials_strictly_increase(self):
        tsa = TimestampAuthority()
        tokens = [tsa.issue(f"d{i}".encode()) for i in range(5)]
        serials = [t.serial for t in tokens]
        assert serials == sorted(serials)
        assert len(set(serials)) == 5

    def test_logical_clock_increases(self):
        tsa = TimestampAuthority()
        t1, t2 = tsa.issue(b"a"), tsa.issue(b"b")
        assert t2.time > t1.time

    def test_external_clock_used(self):
        times = iter([10.0, 20.0])
        tsa = TimestampAuthority(clock=lambda: next(times))
        assert tsa.issue(b"a").time == 10.0
        assert tsa.issue(b"b").time == 20.0

    def test_empty_digest_rejected(self):
        tsa = TimestampAuthority()
        with pytest.raises(TimestampError):
            tsa.issue(b"")

    def test_non_bytes_digest_rejected(self):
        tsa = TimestampAuthority()
        with pytest.raises(TimestampError):
            tsa.issue("string")  # type: ignore[arg-type]


class TestVerification:
    def test_other_authority_rejects(self):
        tsa1, tsa2 = TimestampAuthority(), TimestampAuthority()
        token = tsa1.issue(b"d")
        assert not token.verify(tsa2.public_key)
        assert not tsa2.verify(token)

    def test_tampered_time_fails(self):
        from dataclasses import replace

        tsa = TimestampAuthority()
        token = tsa.issue(b"d")
        forged = replace(token, time=token.time - 100.0)
        assert not forged.verify(tsa.public_key)

    def test_tampered_digest_fails(self):
        from dataclasses import replace

        tsa = TimestampAuthority()
        token = tsa.issue(b"d")
        forged = replace(token, digest=b"other")
        assert not forged.verify(tsa.public_key)


class TestOrdering:
    def test_precedes_same_authority(self):
        tsa = TimestampAuthority()
        t1, t2 = tsa.issue(b"a"), tsa.issue(b"b")
        assert t1.precedes(t2)
        assert not t2.precedes(t1)

    def test_serial_breaks_time_ties(self):
        tsa = TimestampAuthority(clock=lambda: 5.0)  # frozen clock
        t1, t2 = tsa.issue(b"a"), tsa.issue(b"b")
        assert t1.precedes(t2)

    def test_cross_authority_falls_back_to_time(self):
        times1 = iter([1.0])
        times2 = iter([2.0])
        tsa1 = TimestampAuthority(clock=lambda: next(times1))
        tsa2 = TimestampAuthority(clock=lambda: next(times2))
        early = tsa1.issue(b"a")
        late = tsa2.issue(b"b")
        assert early.precedes(late)
        assert not late.precedes(early)
