"""Tests for canonical encoding and hashing."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.hashing import (
    canonical_encode,
    hash_struct,
    hmac_sha256,
    sha256_bytes,
    sha256_hex,
    sha256_int,
)


class TestSha256Helpers:
    def test_bytes_digest_length(self):
        assert len(sha256_bytes(b"abc")) == 32

    def test_hex_matches_bytes(self):
        assert sha256_hex(b"abc") == sha256_bytes(b"abc").hex()

    def test_int_form_is_big_endian(self):
        assert sha256_int(b"abc") == int.from_bytes(sha256_bytes(b"abc"), "big")

    def test_known_vector(self):
        # FIPS 180-2 test vector for "abc".
        assert sha256_hex(b"abc") == (
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        )

    def test_hmac_differs_from_plain_hash(self):
        assert hmac_sha256(b"key", b"data") != sha256_bytes(b"data")

    def test_hmac_key_sensitivity(self):
        assert hmac_sha256(b"k1", b"data") != hmac_sha256(b"k2", b"data")


class TestCanonicalEncode:
    def test_dict_order_independence(self):
        a = {"x": 1, "y": 2}
        b = {"y": 2, "x": 1}
        assert canonical_encode(a) == canonical_encode(b)

    def test_nested_structures(self):
        value = {"a": [1, 2, {"b": None}], "c": (True, 2.5, b"bytes")}
        assert canonical_encode(value) == canonical_encode(value)

    def test_bool_and_int_distinct(self):
        assert canonical_encode(True) != canonical_encode(1)
        assert canonical_encode(False) != canonical_encode(0)

    def test_str_and_bytes_distinct(self):
        assert canonical_encode("ab") != canonical_encode(b"ab")

    def test_list_and_tuple_equivalent(self):
        assert canonical_encode([1, 2]) == canonical_encode((1, 2))

    def test_non_string_dict_key_rejected(self):
        with pytest.raises(TypeError):
            canonical_encode({1: "x"})

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            canonical_encode(object())

    def test_empty_containers_distinct(self):
        assert canonical_encode([]) != canonical_encode({})
        assert canonical_encode("") != canonical_encode(b"")

    def test_negative_and_large_ints(self):
        assert canonical_encode(-1) != canonical_encode(1)
        big = 2**300
        assert canonical_encode(big) != canonical_encode(big + 1)

    def test_hash_struct_stable(self):
        assert hash_struct({"k": [1, "v"]}) == hash_struct({"k": [1, "v"]})


@given(
    st.recursive(
        st.none()
        | st.booleans()
        | st.integers()
        | st.text(max_size=20)
        | st.binary(max_size=20),
        lambda children: st.lists(children, max_size=4)
        | st.dictionaries(st.text(max_size=8), children, max_size=4),
        max_leaves=12,
    )
)
def test_canonical_encode_deterministic(value):
    """Property: encoding any supported structure twice is identical."""
    assert canonical_encode(value) == canonical_encode(value)


@given(st.lists(st.integers(), max_size=6), st.lists(st.integers(), max_size=6))
def test_canonical_encode_injective_on_int_lists(a, b):
    """Property: distinct int lists never encode identically."""
    if a != b:
        assert canonical_encode(a) != canonical_encode(b)
