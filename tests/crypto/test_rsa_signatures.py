"""Tests for the RSA primitive and the signature layer."""

import numpy as np
import pytest

from repro.crypto import rsa
from repro.crypto.signatures import KeyPair, PublicKey, Signature, SignatureError


class TestPrimality:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 97, 7919):
            assert rsa.is_probable_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 9, 15, 561, 7917):
            assert not rsa.is_probable_prime(n)

    def test_carmichael_numbers_rejected(self):
        # Carmichael numbers fool Fermat but not Miller-Rabin.
        for n in (561, 1105, 1729, 2465, 2821, 6601):
            assert not rsa.is_probable_prime(n)

    def test_large_known_prime(self):
        # 2^127 - 1 is a Mersenne prime.
        assert rsa.is_probable_prime(2**127 - 1)


class TestKeyGeneration:
    def test_modulus_size(self):
        key = rsa.generate_keypair(bits=512, rng=np.random.default_rng(1))
        assert key.n.bit_length() == 512

    def test_reproducible_with_seed(self):
        k1 = rsa.generate_keypair(bits=384, rng=np.random.default_rng(9))
        k2 = rsa.generate_keypair(bits=384, rng=np.random.default_rng(9))
        assert k1.n == k2.n

    def test_different_seeds_different_keys(self):
        k1 = rsa.generate_keypair(bits=384, rng=np.random.default_rng(1))
        k2 = rsa.generate_keypair(bits=384, rng=np.random.default_rng(2))
        assert k1.n != k2.n

    def test_too_small_modulus_rejected(self):
        with pytest.raises(ValueError):
            rsa.generate_keypair(bits=256)

    def test_private_exponent_inverts_public(self):
        key = rsa.generate_keypair(bits=512, rng=np.random.default_rng(3))
        phi = (key.p - 1) * (key.q - 1)
        assert (key.d * key.e) % phi == 1


class TestRawSignVerify:
    def test_roundtrip(self, session_keypair):
        key = session_keypair._private
        digest = 12345678901234567890
        signature = key.sign_int(digest)
        assert key.public.verify_int(digest, signature)

    def test_wrong_digest_fails(self, session_keypair):
        key = session_keypair._private
        signature = key.sign_int(111)
        assert not key.public.verify_int(222, signature)

    def test_out_of_range_signature_fails(self, session_keypair):
        key = session_keypair._private
        assert not key.public.verify_int(1, 0)
        assert not key.public.verify_int(1, key.n + 5)


class TestKeyPairApi:
    def test_sign_verify_bytes(self, session_keypair):
        sig = session_keypair.sign(b"message")
        assert session_keypair.public.verify(b"message", sig)
        assert not session_keypair.public.verify(b"other", sig)

    def test_sign_verify_struct(self, session_keypair):
        payload = {"action": "revoke", "serial": 7}
        sig = session_keypair.sign_struct(payload)
        assert session_keypair.public.verify_struct(payload, sig)
        assert not session_keypair.public.verify_struct({"action": "revoke"}, sig)

    def test_cross_key_verification_fails(self, session_keypair, second_keypair):
        sig = session_keypair.sign(b"msg")
        assert not second_keypair.public.verify(b"msg", sig)

    def test_fingerprint_stable_and_distinct(self, session_keypair, second_keypair):
        assert session_keypair.fingerprint == session_keypair.public.fingerprint
        assert session_keypair.fingerprint != second_keypair.fingerprint

    def test_require_valid_raises(self, session_keypair):
        sig = session_keypair.sign(b"msg")
        session_keypair.public.require_valid(b"msg", sig)  # no raise
        with pytest.raises(SignatureError):
            session_keypair.public.require_valid(b"tampered", sig)

    def test_signature_dict_roundtrip(self, session_keypair):
        sig = session_keypair.sign(b"msg")
        restored = Signature.from_dict(sig.to_dict())
        assert session_keypair.public.verify(b"msg", restored)

    def test_public_key_dict_roundtrip(self, session_keypair):
        restored = PublicKey.from_dict(session_keypair.public.to_dict())
        sig = session_keypair.sign(b"msg")
        assert restored.verify(b"msg", sig)
        assert restored.fingerprint == session_keypair.fingerprint

    def test_signature_tamper_detected(self, session_keypair):
        sig = session_keypair.sign(b"msg")
        tampered = Signature(value=sig.value ^ 1, signer_fingerprint=sig.signer_fingerprint)
        assert not session_keypair.public.verify(b"msg", tampered)
