"""Link-level fault primitives: loss, duplication, reorder, sever."""

import numpy as np
import pytest

from repro.chaos.faults import LinkFaultProfile, heal_all_links, partition
from repro.netsim.latency import lan_latency
from repro.netsim.link import Network, NetworkError
from repro.netsim.node import Node
from repro.netsim.simulator import ManualClock, Simulator, SkewedClock


def _network(*names, seed=0):
    sim = Simulator()
    net = Network(sim, np.random.default_rng(seed))
    for name in names:
        net.add_node(Node(name, sim))
    return sim, net


def _blast(sim, net, count, collect):
    for i in range(count):
        net.deliver("a", "b", collect, i)
    sim.run()


class TestLinkFaults:
    def test_fault_free_link_delivers_everything(self):
        sim, net = _network("a", "b")
        net.connect("a", "b", lan_latency())
        arrived = []
        _blast(sim, net, 50, arrived.append)
        assert len(arrived) == 50

    def test_duplication_delivers_extra_copies(self):
        sim, net = _network("a", "b")
        link = net.connect("a", "b", lan_latency())
        link.set_faults(duplicate=0.9)
        arrived = []
        _blast(sim, net, 100, arrived.append)
        assert len(arrived) > 100
        assert link.messages_duplicated == len(arrived) - 100
        # Duplicates are copies of real messages, not inventions.
        assert sorted(set(arrived)) == list(range(100))

    def test_loss_drops_messages_silently(self):
        sim, net = _network("a", "b")
        link = net.connect("a", "b", lan_latency())
        link.set_faults(loss=0.9)
        arrived = []
        _blast(sim, net, 100, arrived.append)
        assert len(arrived) < 50
        assert link.messages_dropped == 100 - len(arrived)

    def test_reorder_shuffles_delivery_order(self):
        # Constant latency: without the fault, arrival order is exactly
        # send order (the simulator breaks ties by sequence number).
        from repro.netsim.latency import ConstantLatency

        sim, net = _network("a", "b")
        link = net.connect("a", "b", ConstantLatency(0.001))
        arrived = []
        _blast(sim, net, 60, arrived.append)
        assert arrived == list(range(60))
        arrived.clear()
        link.set_faults(reorder=0.5, reorder_delay=0.5)
        arrived = []
        _blast(sim, net, 60, arrived.append)
        # Everything arrives (reorder delays, never drops)...
        assert sorted(arrived) == list(range(60))
        # ...but no longer in send order.
        assert arrived != list(range(60))
        assert link.messages_reordered > 0

    def test_severed_link_drops_everything_until_heal(self):
        sim, net = _network("a", "b")
        link = net.connect("a", "b", lan_latency())
        link.sever()
        arrived = []
        _blast(sim, net, 10, arrived.append)
        assert arrived == []
        assert link.messages_severed == 10
        link.heal()
        _blast(sim, net, 10, arrived.append)
        assert len(arrived) == 10

    def test_fault_probabilities_validated(self):
        sim, net = _network("a", "b")
        link = net.connect("a", "b", lan_latency())
        with pytest.raises(NetworkError):
            link.set_faults(loss=1.0)
        with pytest.raises(NetworkError):
            link.set_faults(duplicate=-0.1)
        with pytest.raises(NetworkError):
            link.set_faults(reorder_delay=-1.0)

    def test_set_faults_leaves_unnamed_knobs_alone(self):
        sim, net = _network("a", "b")
        link = net.connect("a", "b", lan_latency())
        link.set_faults(loss=0.1, duplicate=0.2)
        link.set_faults(reorder=0.3)
        assert link.loss_probability == 0.1
        assert link.duplicate_probability == 0.2
        assert link.reorder_probability == 0.3


class TestPartition:
    def test_partition_severs_only_cross_group_links(self):
        sim, net = _network("a", "b", "c", "d")
        ab = net.connect("a", "b", lan_latency())
        ac = net.connect("a", "c", lan_latency())
        ad = net.connect("a", "d", lan_latency())
        cd = net.connect("c", "d", lan_latency())
        severed = partition(net, [["a", "b"], ["c", "d"]])
        assert set(severed) == {ac, ad}
        assert not ab.severed and not cd.severed

    def test_unlisted_nodes_keep_their_links(self):
        sim, net = _network("a", "b", "c")
        ab = net.connect("a", "b", lan_latency())
        bc = net.connect("b", "c", lan_latency())
        severed = partition(net, [["a"], ["b"]])
        assert severed == [ab]
        assert not bc.severed  # 'c' was in no group

    def test_node_in_two_groups_rejected(self):
        sim, net = _network("a", "b")
        net.connect("a", "b", lan_latency())
        with pytest.raises(ValueError):
            partition(net, [["a"], ["a", "b"]])

    def test_heal_all_links(self):
        sim, net = _network("a", "b", "c")
        net.connect("a", "b", lan_latency())
        net.connect("a", "c", lan_latency())
        partition(net, [["a"], ["b", "c"]])
        assert heal_all_links(net) == 2
        assert all(not link.severed for link in net.links())


class TestLinkFaultProfile:
    def test_scaled_and_quiet(self):
        profile = LinkFaultProfile(loss=0.2, duplicate=0.4, reorder=0.6)
        half = profile.scaled(0.5)
        assert half.loss == pytest.approx(0.1)
        assert half.duplicate == pytest.approx(0.2)
        assert half.reorder == pytest.approx(0.3)
        assert profile.scaled(0.0).quiet
        assert not profile.quiet
        # Scaling clips below 1.0 (probability, not a rate).
        assert profile.scaled(10.0).loss == 0.99

    def test_apply_and_clear_touch_every_link(self):
        sim, net = _network("a", "b", "c")
        net.connect("a", "b", lan_latency())
        net.connect("a", "c", lan_latency())
        LinkFaultProfile(loss=0.05, duplicate=0.1).apply(net)
        assert all(link.loss_probability == 0.05 for link in net.links())
        LinkFaultProfile.clear(net)
        assert all(link.loss_probability == 0.0 for link in net.links())
        assert all(link.duplicate_probability == 0.0 for link in net.links())


class TestSkewedClock:
    def test_offset_shifts_the_base_clock(self):
        base = ManualClock()
        skewed = SkewedClock(base.now, offset=5.0)
        assert skewed.now() == 5.0
        base.advance(2.0)
        assert skewed.now() == 7.0
        skewed.offset = -1.0
        assert skewed.now() == 1.0
