"""Storage-fault chaos: plan budget, controller wiring, durability gate."""

import numpy as np

from repro.chaos import (
    ChaosKnobs,
    ChaosPlan,
    ConsistencyChecker,
    run_chaos,
    run_durability_selftest,
)
from repro.cluster.simnet import ShardRecovery

SHARDS = ["shard-0", "shard-1", "shard-2", "shard-3"]


def _plan(seed, knobs, intensity=0.8):
    return ChaosPlan.generate(
        np.random.default_rng(seed),
        SHARDS,
        horizon=8.0,
        intensity=intensity,
        knobs=knobs,
    )


class TestPlanGeneration:
    def test_default_knobs_schedule_no_storage_faults(self):
        for seed in range(5):
            plan = _plan(seed, ChaosKnobs())
            assert plan.counts()["storage"] == 0

    def test_storage_knob_leaves_legacy_schedule_untouched(self):
        """Stream stability: old seeds reproduce old fault schedules."""
        for seed in range(5):
            legacy = _plan(seed, ChaosKnobs())
            extended = _plan(
                seed, ChaosKnobs(storage_fault_probability=1.0)
            )
            stripped = [
                (e.kind, e.at, e.duration, e.targets, e.wipe, e.offset)
                for e in extended.events
            ]
            assert stripped == [
                (e.kind, e.at, e.duration, e.targets, e.wipe, e.offset)
                for e in legacy.events
            ]

    def test_destructive_faults_share_the_wipe_budget(self):
        """At most max_wipes torn/corrupt faults + wipes per plan."""
        for seed in range(20):
            knobs = ChaosKnobs(
                storage_fault_probability=1.0,
                wipe_probability=0.5,
                crash_rate=1.5,
            )
            plan = _plan(seed, knobs)
            wipes = sum(1 for e in plan.events if e.wipe)
            destructive = sum(
                1
                for e in plan.events
                if e.storage_fault in ("torn", "corrupt")
            )
            assert wipes + destructive <= knobs.max_wipes

    def test_wiped_crashes_never_carry_storage_faults(self):
        for seed in range(20):
            plan = _plan(
                seed,
                ChaosKnobs(
                    storage_fault_probability=1.0, wipe_probability=0.5,
                    crash_rate=1.5,
                ),
            )
            for event in plan.events:
                if event.wipe:
                    assert event.storage_fault == ""


class TestRecoveryInvariants:
    def _recovery(self, **kwargs):
        defaults = dict(
            shard_id="shard-0",
            at=1.0,
            evidence=(),
            installed_digest="d1",
            replayed_digest="d1",
            records_recovered=10,
            events_replayed=5,
        )
        defaults.update(kwargs)
        return ShardRecovery(**defaults)

    def test_matching_digests_and_evidence_pass(self):
        checker = ConsistencyChecker()
        report = checker.check_recovery(
            [self._recovery(evidence=("torn_record",))],
            injected=[("shard-0", "torn", 0.5)],
        )
        assert report.ok
        assert report.recoveries_checked == 1

    def test_digest_mismatch_is_flagged(self):
        checker = ConsistencyChecker()
        report = checker.check_recovery(
            [self._recovery(replayed_digest="d2")]
        )
        assert report.count("recovery_mismatch") == 1

    def test_missed_corruption_is_flagged(self):
        checker = ConsistencyChecker()
        report = checker.check_recovery(
            [self._recovery(evidence=())],
            injected=[("shard-0", "corrupt", 0.5)],
        )
        assert report.count("corruption_missed") == 1

    def test_fault_with_no_recovery_at_all_is_flagged(self):
        checker = ConsistencyChecker()
        report = checker.check_recovery(
            [], injected=[("shard-1", "snapshot", 0.5)]
        )
        assert report.count("corruption_missed") == 1

    def test_wrong_evidence_kind_is_flagged(self):
        checker = ConsistencyChecker()
        report = checker.check_recovery(
            [self._recovery(evidence=("snapshot_corrupt",))],
            injected=[("shard-0", "torn", 0.5)],
        )
        assert report.count("corruption_missed") == 1


STORAGE_KNOBS = ChaosKnobs(
    storage_fault_probability=1.0, wipe_probability=0.0, crash_rate=1.2
)


class TestStorageChaosRuns:
    def test_faults_land_and_run_stays_green(self):
        report = run_chaos(seed=0, intensity=0.7, knobs=STORAGE_KNOBS)
        assert report.faults["storage"] > 0
        assert report.faults["storage"] == len(report.storage_faults)
        assert len(report.recoveries) > 0
        assert report.check.ok, report.check.by_invariant()

    def test_every_landed_fault_left_evidence(self):
        report = run_chaos(seed=2, intensity=0.7, knobs=STORAGE_KNOBS)
        assert report.storage_faults
        for shard_id, kind, at in report.storage_faults:
            matching = next(
                r
                for r in report.recoveries
                if r.shard_id == shard_id and r.at >= at
            )
            assert matching.evidence

    def test_runs_are_deterministic(self):
        row_a = run_chaos(seed=3, intensity=0.7, knobs=STORAGE_KNOBS).row()
        row_b = run_chaos(seed=3, intensity=0.7, knobs=STORAGE_KNOBS).row()
        assert row_a == row_b

    def test_mixed_wipe_and_storage_chaos_stays_green(self):
        knobs = ChaosKnobs(
            storage_fault_probability=0.8,
            wipe_probability=0.4,
            crash_rate=1.0,
        )
        report = run_chaos(seed=0, intensity=0.8, knobs=knobs)
        assert report.faults["wipe"] > 0
        assert report.faults["storage"] > 0
        assert report.check.ok, report.check.by_invariant()


def test_durability_selftest_discriminates():
    result = run_durability_selftest(seed=0)
    assert result.clean.check.ok
    assert result.blind.check.count("corruption_missed") > 0
    assert result.diverged.check.count("recovery_mismatch") > 0
    assert result.detected
