"""Chaos plans, the controller, the runner, and the checker self-test."""

import numpy as np
import pytest

from repro.chaos import (
    ChaosController,
    ChaosEvent,
    ChaosKnobs,
    ChaosPlan,
    LinkFaultProfile,
    run_chaos,
    run_selftest,
)
from repro.cluster import ClusterConfig, SimulatedCluster

SHARDS = ["shard-0", "shard-1", "shard-2", "shard-3"]


class TestPlanGeneration:
    def test_same_stream_same_plan(self):
        plans = [
            ChaosPlan.generate(
                np.random.default_rng(5), SHARDS, horizon=10.0, intensity=0.8
            )
            for _ in range(2)
        ]
        assert plans[0].events == plans[1].events
        assert plans[0].link_faults == plans[1].link_faults

    def test_zero_intensity_is_an_empty_plan(self):
        plan = ChaosPlan.generate(
            np.random.default_rng(0), SHARDS, horizon=10.0, intensity=0.0
        )
        assert plan.events == []
        assert plan.link_faults.quiet

    def test_events_fit_the_horizon(self):
        plan = ChaosPlan.generate(
            np.random.default_rng(1), SHARDS, horizon=10.0, intensity=1.0
        )
        assert plan.events == sorted(
            plan.events, key=lambda e: (e.at, e.kind, e.targets)
        )
        for event in plan.events:
            assert 0.0 < event.at < 10.0
            assert event.ends_at <= 10.0 + 1e-9
            assert all(target in SHARDS for target in event.targets)

    def test_wipes_capped_by_tolerance_contract(self):
        knobs = ChaosKnobs(crash_rate=3.0, wipe_probability=1.0, max_wipes=1)
        plan = ChaosPlan.generate(
            np.random.default_rng(2), SHARDS, horizon=10.0,
            intensity=1.0, knobs=knobs,
        )
        assert plan.counts()["crash"] > 1
        assert plan.counts()["wipe"] == 1

    def test_invalid_parameters_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            ChaosPlan.generate(rng, SHARDS, horizon=10.0, intensity=-0.1)
        with pytest.raises(ValueError):
            ChaosPlan.generate(rng, SHARDS, horizon=0.0, intensity=0.5)


class TestControllerRefcounting:
    def _cluster(self):
        return SimulatedCluster(
            4, config=ClusterConfig(replication_factor=3), seed=0
        )

    def test_overlapping_partitions_heal_only_when_both_end(self):
        cluster = self._cluster()
        plan = ChaosPlan(
            events=[], link_faults=LinkFaultProfile(),
            horizon=10.0, intensity=1.0,
        )
        controller = ChaosController(cluster, plan)
        first = ChaosEvent("partition", 1.0, 2.0, ("shard-0",))
        second = ChaosEvent("partition", 2.0, 3.0, ("shard-0",))
        link = cluster.network.link_between("frontend", "shard-0")

        controller._start_partition(first)
        controller._start_partition(second)
        assert link.severed
        controller._end_partition(first)
        assert link.severed  # second window still open
        controller._end_partition(second)
        assert not link.severed

    def test_overlapping_crashes_restart_once_wipe_sticks(self):
        cluster = self._cluster()
        plan = ChaosPlan(
            events=[], link_faults=LinkFaultProfile(),
            horizon=10.0, intensity=1.0,
        )
        cluster.seed_population(30, revoked_fraction=0.5)
        controller = ChaosController(cluster, plan)
        keep = ChaosEvent("crash", 1.0, 2.0, ("shard-1",), wipe=False)
        wipe = ChaosEvent("crash", 2.0, 3.0, ("shard-1",), wipe=True)

        controller._start_crash(keep)
        controller._start_crash(wipe)
        assert cluster.endpoints["shard-1"].down
        controller._end_crash(keep)
        assert cluster.endpoints["shard-1"].down  # still inside `wipe`
        controller._end_crash(wipe)
        assert not cluster.endpoints["shard-1"].down
        # The wipe from the *second* window survived the merge.
        assert controller.records_lost > 0
        assert len(cluster.shards["shard-1"].ledger.store) == 0

    def test_heal_everything_restores_the_cluster(self):
        cluster = self._cluster()
        plan = ChaosPlan.generate(
            cluster.rngs.stream("chaos"), sorted(cluster.shards),
            horizon=4.0, intensity=1.0,
        )
        controller = ChaosController(cluster, plan)
        controller.install()
        cluster.simulator.run(until=6.0)
        assert all(not link.severed for link in cluster.network.links())
        assert all(not ep.down for ep in cluster.endpoints.values())
        assert all(
            clock.offset == 0.0 for clock in cluster.shard_clocks.values()
        )
        assert all(link.loss_probability == 0.0 for link in cluster.network.links())


class TestRunner:
    def test_zero_intensity_run_is_perfect(self):
        report = run_chaos(
            num_shards=3, seed=9, intensity=0.0,
            queries=60, revocations=6, population=40,
        )
        assert report.check.ok
        assert report.availability == 1.0
        assert report.status_ops == 60
        assert report.revokes_acked == 6
        assert sum(report.faults.values()) == 0

    def test_faulted_run_keeps_invariants(self):
        report = run_chaos(
            num_shards=4, seed=9, intensity=0.9,
            queries=80, revocations=8, population=50,
        )
        assert report.check.ok, report.check.by_invariant()
        assert sum(report.faults.values()) > 0
        assert 0.0 < report.availability <= 1.0
        row = report.row()
        assert row["violations"] == 0
        assert len(row["digest"]) == 16

    def test_selftest_detects_the_seeded_bug(self):
        result = run_selftest(seed=1)
        assert result.clean.ok
        assert result.buggy.count("revocation_durability") >= 1
        assert result.buggy.count("divergence") >= 1
        assert result.detected
