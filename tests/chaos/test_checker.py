"""Consistency checker: each invariant on synthetic histories."""

import pytest

from repro.chaos.checker import ConsistencyChecker, state_digest
from repro.chaos.history import HistoryRecorder, Op


def _write(op_id, kind, serial, at, epoch, state, done=None):
    return Op(
        op_id=op_id,
        kind=kind,
        serial=serial,
        invoked_at=at,
        completed_at=done if done is not None else at + 0.1,
        ok=True,
        revoked=(state == "revoked"),
        epoch=epoch,
        state=state,
    )


def _status(op_id, serial, at, epoch, revoked, ok=True, done=None):
    return Op(
        op_id=op_id,
        kind="status",
        serial=serial,
        invoked_at=at,
        completed_at=done if done is not None else at + 0.05,
        ok=ok,
        revoked=revoked,
        epoch=epoch,
    )


class TestMonotonicEpochs:
    def test_increasing_epochs_pass(self):
        history = [
            _write(0, "revoke", 1, 1.0, 1, "revoked"),
            _write(1, "unrevoke", 1, 2.0, 2, "not_revoked"),
            _write(2, "revoke", 1, 3.0, 3, "revoked"),
        ]
        assert ConsistencyChecker().check(history).ok

    def test_epoch_regression_flagged(self):
        history = [
            _write(0, "revoke", 1, 1.0, 2, "revoked"),
            _write(1, "unrevoke", 1, 2.0, 1, "not_revoked"),
        ]
        report = ConsistencyChecker().check(history)
        assert report.count("monotonic_epoch") == 1

    def test_idempotent_reack_is_legal(self):
        # Revoking an already-revoked record re-acks the same epoch
        # with the same state — not a regression.
        history = [
            _write(0, "revoke", 1, 1.0, 1, "revoked"),
            _write(1, "revoke", 1, 2.0, 1, "revoked"),
        ]
        assert ConsistencyChecker().check(history).ok

    def test_same_epoch_different_state_flagged(self):
        history = [
            _write(0, "revoke", 1, 1.0, 1, "revoked"),
            _write(1, "unrevoke", 1, 2.0, 1, "not_revoked"),
        ]
        report = ConsistencyChecker().check(history)
        assert report.count("monotonic_epoch") == 1

    def test_unacked_writes_ignored(self):
        failed = _write(0, "revoke", 1, 1.0, 5, "revoked")
        failed.ok = False
        history = [failed, _write(1, "revoke", 1, 2.0, 1, "revoked")]
        assert ConsistencyChecker().check(history).ok


class TestDurability:
    def test_read_after_acked_revoke_must_see_it(self):
        history = [
            _write(0, "revoke", 1, 1.0, 1, "revoked", done=1.2),
            _status(1, 1, at=2.0, epoch=0, revoked=False),
        ]
        report = ConsistencyChecker().check(history)
        assert report.count("revocation_durability") == 1

    def test_read_issued_before_the_ack_is_exempt(self):
        # Invoked at 1.1 < ack at 1.2: the write was not yet
        # acknowledged when the read started — bounded staleness, legal.
        history = [
            _write(0, "revoke", 1, 1.0, 1, "revoked", done=1.2),
            _status(1, 1, at=1.1, epoch=0, revoked=False, done=1.3),
        ]
        assert ConsistencyChecker().check(history).ok

    def test_stale_epoch_with_correct_verdict_is_stale_read(self):
        # Observed revoked=True (verdict right) but at an old epoch
        # after a newer unrevoke was acknowledged: stale, not a
        # resurrection.
        history = [
            _write(0, "revoke", 1, 1.0, 1, "revoked"),
            _write(1, "unrevoke", 1, 2.0, 2, "not_revoked", done=2.2),
            _status(2, 1, at=3.0, epoch=1, revoked=True),
        ]
        report = ConsistencyChecker().check(history)
        assert report.count("stale_read") == 1
        assert report.count("revocation_durability") == 0

    def test_current_reads_pass(self):
        history = [
            _write(0, "revoke", 1, 1.0, 1, "revoked", done=1.2),
            _status(1, 1, at=2.0, epoch=1, revoked=True),
        ]
        assert ConsistencyChecker().check(history).ok

    def test_failed_reads_are_unavailability_not_violations(self):
        history = [
            _write(0, "revoke", 1, 1.0, 1, "revoked", done=1.2),
            _status(1, 1, at=2.0, epoch=-1, revoked=True, ok=False),
        ]
        assert ConsistencyChecker().check(history).ok


class TestConvergence:
    def _history(self):
        return [_write(0, "revoke", 7, 1.0, 2, "revoked")]

    def test_agreeing_replicas_pass(self):
        states = {
            "s0": {7: ("revoked", 2)},
            "s1": {7: ("revoked", 2)},
        }
        report = ConsistencyChecker().check(
            self._history(), replica_states=states
        )
        assert report.ok

    def test_disagreeing_replicas_flagged(self):
        states = {
            "s0": {7: ("revoked", 2)},
            "s1": {7: ("not_revoked", 1)},
        }
        report = ConsistencyChecker().check(
            self._history(), replica_states=states
        )
        assert report.count("divergence") == 1

    def test_dead_replicas_excluded_from_divergence(self):
        states = {
            "s0": {7: ("revoked", 2)},
            "s1": {7: ("not_revoked", 1)},
        }
        report = ConsistencyChecker().check(
            self._history(), replica_states=states, live_shards=["s0"]
        )
        assert report.ok

    def test_wiped_replicas_are_not_divergent(self):
        # s1 does not hold the record at all (wiped): an availability
        # gap, not disagreement.
        states = {"s0": {7: ("revoked", 2)}, "s1": {}}
        report = ConsistencyChecker().check(
            self._history(), replica_states=states
        )
        assert report.ok

    def test_acked_epoch_missing_everywhere_is_lost_write(self):
        states = {
            "s0": {7: ("not_revoked", 0)},
            "s1": {7: ("not_revoked", 0)},
        }
        report = ConsistencyChecker().check(
            self._history(), replica_states=states
        )
        assert report.count("lost_write") == 1

    def test_placement_scopes_the_replica_set(self):
        # s2 is not a replica of serial 7 — its stray copy is ignored.
        states = {
            "s0": {7: ("revoked", 2)},
            "s1": {7: ("revoked", 2)},
            "s2": {7: ("not_revoked", 0)},
        }
        report = ConsistencyChecker(
            placement=lambda serial: ["s0", "s1"]
        ).check(self._history(), replica_states=states)
        assert report.ok


class TestHistoryRecorder:
    def test_records_intervals_and_signatures(self):
        times = iter([1.0, 1.5, 2.0])
        recorder = HistoryRecorder(clock=lambda: next(times))
        op_id = recorder.begin("status", 42)
        other = recorder.begin("revoke", 43)
        recorder.complete(op_id, ok=True, revoked=False, epoch=0)
        assert len(recorder) == 2
        op = recorder.ops[op_id]
        assert op.invoked_at == 1.0 and op.completed_at == 2.0
        assert op.acked
        assert not recorder.ops[other].completed  # still open
        assert recorder.signature()[0][1] == "status"

    def test_acked_writes_sorted_by_ack_time(self):
        t = iter([0.0, 1.0, 5.0, 2.0])
        recorder = HistoryRecorder(clock=lambda: next(t))
        first = recorder.begin("revoke", 1)
        second = recorder.begin("revoke", 1)
        recorder.complete(first, ok=True, epoch=1, state="revoked")  # t=5
        recorder.complete(second, ok=True, epoch=2, state="revoked")  # t=2
        writes = recorder.acked_writes(1)
        assert [w.op_id for w in writes] == [second, first]


class TestStateDigest:
    def test_digest_is_canonical(self):
        a = {"s0": {1: ("revoked", 1), 2: ("not_revoked", 0)}}
        b = {"s0": {2: ("not_revoked", 0), 1: ("revoked", 1)}}
        assert state_digest(a) == state_digest(b)

    def test_digest_moves_with_state(self):
        a = {"s0": {1: ("revoked", 1)}}
        b = {"s0": {1: ("revoked", 2)}}
        c = {"s1": {1: ("revoked", 1)}}
        assert len({state_digest(a), state_digest(b), state_digest(c)}) == 3
