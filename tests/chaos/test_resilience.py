"""E19 harness tests: determinism and the resilience guarantees."""

import pytest

from repro.chaos import (
    POLICIES,
    resilience_config,
    run_resilient_chaos,
)

_FAST = dict(queries=120, revocations=10, population=60, horizon=4.0, drain=3.0)


def test_identical_seeds_produce_identical_rows():
    """The full E19 row — digest included — replays byte-identically."""
    a = run_resilient_chaos(seed=11, intensity=0.5, policy="full", **_FAST)
    b = run_resilient_chaos(seed=11, intensity=0.5, policy="full", **_FAST)
    assert a.row() == b.row()
    assert a.digest == b.digest


def test_different_seeds_differ():
    a = run_resilient_chaos(seed=11, intensity=0.5, policy="full", **_FAST)
    b = run_resilient_chaos(seed=12, intensity=0.5, policy="full", **_FAST)
    assert a.row() != b.row()


def test_full_policy_survives_intensity_half():
    """The PR's acceptance bar, at test scale: no violations, no
    fail-open, and every status query answered within the deadline."""
    report = run_resilient_chaos(seed=0, intensity=0.5, policy="full", **_FAST)
    assert report.check.ok, report.check.by_invariant()
    assert report.fail_open == 0
    assert report.availability == 1.0
    assert report.deadline_rate >= 0.99


def test_policies_share_the_same_adversary():
    """Policy choice must not perturb the fault plan or workload."""
    reports = {
        policy: run_resilient_chaos(
            seed=5, intensity=0.75, policy=policy, **_FAST
        )
        for policy in POLICIES
    }
    faults = {policy: r.faults for policy, r in reports.items()}
    assert faults["none"] == faults["retry"] == faults["full"]
    ops = {policy: r.status_ops for policy, r in reports.items()}
    assert ops["none"] == ops["retry"] == ops["full"]


def test_resilience_config_tiers_are_cumulative():
    none = resilience_config("none")
    retry = resilience_config("retry")
    full = resilience_config("full")
    assert none.request_deadline is None and not none.degraded_reads
    assert retry.request_deadline is not None and retry.max_retries > 0
    assert not retry.degraded_reads
    assert full.request_deadline == retry.request_deadline
    assert full.degraded_reads and full.hinted_handoff
    assert full.breaker_threshold is not None


def test_unknown_policy_is_rejected():
    with pytest.raises(ValueError):
        resilience_config("heroic")
    with pytest.raises(ValueError):
        run_resilient_chaos(seed=0, intensity=0.1, policy="heroic", **_FAST)
