"""Tests for ledger reputation dynamics and censorship scenarios."""

import numpy as np
import pytest

from repro.attacks.censorship import (
    ArchiveLedger,
    CoercionOutcome,
    DuressScreenedAppeals,
    attempt_coerced_revocation,
)
from repro.attacks.malicious_ledger import LyingLedger
from repro.attacks.reputation import LedgerMarket
from repro.core.errors import RevocationError
from repro.core.owner import OwnerToolkit
from repro.crypto.timestamp import TimestampAuthority
from repro.ledger.ledger import Ledger
from repro.ledger.probes import HonestyProber
from repro.media.image import generate_photo


class TestLedgerMarket:
    def _run_market(self, lie_probability: float, rounds: int = 10):
        tsa = TimestampAuthority()
        honest = Ledger("honest", tsa)
        liar = LyingLedger(
            "liar", tsa, lie_probability=lie_probability,
            lie_rng=np.random.default_rng(1),
        )
        probers = {
            "honest": HonestyProber(honest, np.random.default_rng(2)),
            "liar": HonestyProber(liar, np.random.default_rng(3)),
        }
        for prober in probers.values():
            prober.plant_canaries(10)
        market = LedgerMarket(["honest", "liar"])
        for _ in range(rounds):
            reports = {
                name: prober.run_round() for name, prober in probers.items()
            }
            market.round(reports)
        return market

    def test_liar_loses_market_share(self):
        market = self._run_market(lie_probability=0.5)
        shares = market.market_share()
        assert shares["honest"] > 0.9
        assert shares["liar"] < 0.1

    def test_honest_market_stays_split(self):
        market = self._run_market(lie_probability=0.0)
        shares = market.market_share()
        assert shares["honest"] == pytest.approx(0.5, abs=0.05)

    def test_share_history_recorded(self):
        market = self._run_market(lie_probability=0.5, rounds=4)
        assert len(market.share_history) == 5  # initial + 4 rounds

    def test_reputation_recovers_when_clean(self):
        market = LedgerMarket(["a", "b"], recovery_rate=0.5)
        market.reputations["a"].score = 0.5
        market.round({})
        assert market.reputations["a"].score > 0.5

    def test_empty_market_rejected(self):
        with pytest.raises(ValueError):
            LedgerMarket([])


class TestCensorship:
    def _claimed(self, ledger):
        toolkit = OwnerToolkit(rng=np.random.default_rng(9))
        photo = generate_photo(seed=81)
        receipt = toolkit.claim(photo, ledger)
        return toolkit, photo, receipt

    def test_coercion_succeeds_on_commercial_ledger(self):
        ledger = Ledger("commercial", TimestampAuthority())
        toolkit, _, receipt = self._claimed(ledger)
        attempt = attempt_coerced_revocation(toolkit, receipt, ledger)
        assert attempt.outcome is CoercionOutcome.CONTENT_REVOKED

    def test_coercion_fails_on_archive_ledger(self):
        ledger = ArchiveLedger("rights-archive", TimestampAuthority())
        toolkit, _, receipt = self._claimed(ledger)
        attempt = attempt_coerced_revocation(toolkit, receipt, ledger)
        assert attempt.survived
        assert not ledger.status(receipt.identifier).revoked

    def test_archive_ledger_blocks_permanent_revocation(self):
        ledger = ArchiveLedger("rights-archive", TimestampAuthority())
        _, _, receipt = self._claimed(ledger)
        with pytest.raises(RevocationError):
            ledger.permanently_revoke(receipt.identifier)

    def test_duress_screen_rejects_appeal(self):
        tsa = TimestampAuthority()
        ledger = Ledger("l", tsa)
        toolkit, photo, receipt = self._claimed(ledger)
        # Someone re-claims a copy on the same ledger.
        copy_receipt = toolkit.claim(photo.copy(), ledger)
        process = DuressScreenedAppeals(
            ledger, [tsa], duress_detector=lambda appeal: True
        )
        appeal = toolkit.prepare_appeal(
            receipt, photo, process, copy_receipt.identifier, photo
        )
        decision = process.adjudicate(appeal)
        assert not decision.upheld
        assert "duress" in decision.reason
        assert process.appeals_screened_out == 1

    def test_duress_screen_passes_normal_appeals(self):
        tsa = TimestampAuthority()
        ledger = Ledger("l", tsa)
        toolkit, photo, receipt = self._claimed(ledger)
        copy_receipt = toolkit.claim(photo.copy(), ledger)
        process = DuressScreenedAppeals(
            ledger, [tsa], duress_detector=lambda appeal: False
        )
        appeal = toolkit.prepare_appeal(
            receipt, photo, process, copy_receipt.identifier, photo
        )
        assert process.adjudicate(appeal).upheld
