"""Tests for section-5 attackers against the IRS defences."""

import numpy as np
import pytest

from repro.aggregator.aggregator import ContentAggregator
from repro.aggregator.hashdb import RobustHashDatabase
from repro.aggregator.uploads import UploadDecision, UploadPipeline
from repro.attacks.attackers import NaiveAttacker, SophisticatedAttacker
from repro.core import IrsDeployment
from repro.core.identifiers import PhotoIdentifier
from repro.core.owner import OwnerToolkit
from repro.ledger.appeals import AppealsProcess
from repro.ledger.records import RevocationState


@pytest.fixture()
def env():
    irs = IrsDeployment.create(seed=71)
    photo = irs.new_photo()
    receipt, labeled = irs.owner_toolkit.claim_and_label(photo, irs.ledger)
    aggregator = ContentAggregator("site", irs.registry)
    pipeline = UploadPipeline(
        aggregator,
        watermark_codec=irs.watermark_codec,
        custodial_ledger=irs.ledger,
        custodial_toolkit=OwnerToolkit(
            rng=np.random.default_rng(5), watermark_codec=irs.watermark_codec
        ),
        hash_database=RobustHashDatabase(),
    )
    return irs, photo, receipt, labeled, pipeline


class TestNaiveAttacker:
    def test_strip_and_mangle_is_self_defeating(self, env):
        """The mangled photo has no label at all; the hash DB still
        catches it as a derivative of the hosted original."""
        irs, _, _, labeled, pipeline = env
        pipeline.upload("original", labeled)
        attacker = NaiveAttacker(np.random.default_rng(1))
        result = attacker.strip_and_mangle(labeled)
        outcome = pipeline.upload("mangled", result.photo)
        assert outcome.decision in (
            UploadDecision.DENIED_DERIVATIVE,
            UploadDecision.DENIED_LABEL_PARTIAL,
        )

    def test_forged_metadata_denied_as_conflict(self, env):
        irs, _, _, labeled, pipeline = env
        attacker = NaiveAttacker()
        fake = PhotoIdentifier(ledger_id=irs.ledger.ledger_id, serial=9999)
        result = attacker.forge_metadata(labeled, fake)
        outcome = pipeline.upload("forged", result.photo)
        assert outcome.decision is UploadDecision.DENIED_LABEL_CONFLICT

    def test_metadata_strip_denied_as_partial(self, env):
        _, _, _, labeled, pipeline = env
        attacker = NaiveAttacker()
        result = attacker.strip_metadata_only(labeled)
        outcome = pipeline.upload("stripped", result.photo)
        assert outcome.decision is UploadDecision.DENIED_LABEL_PARTIAL

    def test_mangling_degrades_quality(self, env):
        """Destroying the watermark costs visible quality — the
        'self-defeating' part of the paper's argument."""
        _, _, _, labeled, _ = env
        attacker = NaiveAttacker(np.random.default_rng(2))
        result = attacker.strip_and_mangle(labeled)
        assert result.photo.psnr_against(labeled) < 25.0


class TestSophisticatedAttacker:
    def test_reclaimed_copy_passes_upload_checks(self, env):
        """The attack works exactly as the paper says: the copy looks
        legitimately claimed and uploads cleanly."""
        irs, _, receipt, labeled, pipeline = env
        irs.owner_toolkit.revoke(receipt, irs.ledger)  # original revoked
        attacker = SophisticatedAttacker(
            irs.ledger,
            rng=np.random.default_rng(3),
            watermark_codec=irs.watermark_codec,
        )
        result = attacker.reclaim_copy(labeled)
        outcome = pipeline.upload("stolen", result.photo)
        assert outcome.decision is UploadDecision.ACCEPTED
        assert outcome.identifier == result.identifier

    def test_appeal_defeats_reclaim(self, env):
        irs, photo, receipt, labeled, _ = env
        attacker = SophisticatedAttacker(
            irs.ledger,
            rng=np.random.default_rng(4),
            watermark_codec=irs.watermark_codec,
        )
        result = attacker.reclaim_copy(labeled)
        process = AppealsProcess(irs.ledger, [irs.timestamp_authority])
        appeal = irs.owner_toolkit.prepare_appeal(
            receipt, photo, process, result.identifier, result.photo
        )
        decision = process.adjudicate(appeal)
        assert decision.upheld
        record = irs.ledger.record(result.identifier)
        assert record.state is RevocationState.PERMANENTLY_REVOKED

    def test_reclaimed_copy_carries_attacker_watermark(self, env):
        irs, _, receipt, labeled, _ = env
        attacker = SophisticatedAttacker(
            irs.ledger, rng=np.random.default_rng(6), watermark_codec=irs.watermark_codec
        )
        result = attacker.reclaim_copy(labeled)
        extraction = irs.watermark_codec.extract(result.photo, search_offsets=False)
        assert extraction.payload == result.identifier.to_compact()
        assert extraction.payload != receipt.identifier.to_compact()

    def test_takedown_after_upheld_appeal(self, env):
        """End of the attack lifecycle: the recheck sweep removes the
        permanently revoked copy from the aggregator."""
        from repro.aggregator.recheck import PeriodicRechecker

        irs, photo, receipt, labeled, pipeline = env
        attacker = SophisticatedAttacker(
            irs.ledger, rng=np.random.default_rng(7), watermark_codec=irs.watermark_codec
        )
        result = attacker.reclaim_copy(labeled)
        pipeline.upload("stolen", result.photo)
        process = AppealsProcess(irs.ledger, [irs.timestamp_authority])
        appeal = irs.owner_toolkit.prepare_appeal(
            receipt, photo, process, result.identifier, result.photo
        )
        assert process.adjudicate(appeal).upheld
        PeriodicRechecker(pipeline.aggregator).run_sweep()
        assert not pipeline.aggregator.serve("stolen").served
