"""End-to-end API tests over a real socket (one event loop per test)."""

import asyncio

from repro.service.cluster import LiveClusterConfig
from tests.service.conftest import serve


def test_claim_status_label_revoke_flow():
    async def inner():
        async with serve() as env:
            # Claim.
            r = await env.client.request(
                "POST", "/claims", {"content": "photo-bytes"}
            )
            assert r.status == 201
            body = r.json()
            claimed = body["id"]
            assert claimed.startswith("irs1:")
            assert body["error"] is None

            # Fresh claim reads back not revoked (filter short-circuit).
            r = await env.client.request("GET", f"/status/{claimed}")
            assert r.status == 200
            status = r.json()
            assert status["revoked"] is False
            assert status["degraded"] is False
            assert status["error"] is None

            # Labels hand out the watermark channels.
            r = await env.client.request("POST", "/labels", {"id": claimed})
            assert r.status == 200
            label = r.json()
            assert label["metadata"] == claimed
            assert bytes.fromhex(label["watermark_hex"])

            # Revoke, then the authoritative read must flip.
            r = await env.client.request(
                "POST", "/revocations", {"id": claimed}
            )
            assert r.status == 200
            assert r.json()["epoch"] >= 1
            r = await env.client.request("GET", f"/status/{claimed}")
            assert r.status == 200
            after = r.json()
            assert after["revoked"] is True
            assert after["state"] == "revoked"

            # The acknowledged revocation shows up in the delta feed.
            r = await env.client.request("GET", "/deltas?since=0")
            assert r.status == 200
            deltas = r.json()
            assert deltas["head"] == 1
            assert deltas["entries"][0]["id"] == claimed
            assert deltas["entries"][0]["action"] == "revoke"
            r = await env.client.request("GET", "/deltas?since=1")
            assert r.json()["entries"] == []

            # Unrevoke is the same endpoint with action.
            r = await env.client.request(
                "POST", "/revocations", {"id": claimed, "action": "unrevoke"}
            )
            assert r.status == 200
            r = await env.client.request("GET", f"/status/{claimed}")
            answer = r.json()
            assert answer["revoked"] is False

    asyncio.run(inner())


def test_batch_status_preserves_order():
    async def inner():
        config = LiveClusterConfig(num_shards=3, replication_factor=2)
        async with serve(config=config, populate=8, revoked_fraction=0.5) as env:
            population = env.population
            ids = [i.to_string() for i in population.identifiers]
            r = await env.client.request("POST", "/status", {"ids": ids})
            assert r.status == 200
            results = r.json()["results"]
            assert [item["id"] for item in results] == ids
            for index, item in enumerate(results):
                assert item["revoked"] == population.revoked(index)

    asyncio.run(inner())


def test_bloom_etag_and_304_refresh():
    async def inner():
        async with serve(populate=16, revoked_fraction=0.5) as env:
            r = await env.client.request("GET", "/bloom")
            assert r.status == 200
            etag = r.headers["etag"]
            assert int(r.headers["x-filter-keys"]) >= 1
            assert len(r.body) > 0
            assert r.headers["content-type"] == "application/octet-stream"

            # Unchanged chain head -> 304, no body.
            r = await env.client.request(
                "GET", "/bloom", headers={"If-None-Match": etag}
            )
            assert r.status == 304
            assert r.body == b""

            # A mutation advances the chain head and invalidates the tag.
            target = None
            for index, identifier in enumerate(env.population.identifiers):
                if not env.population.revoked(index):
                    target = identifier.to_string()
                    break
            assert target is not None
            env.app._owners[env.population.identifiers[0].serial]  # registered
            r = await env.client.request("POST", "/revocations", {"id": target})
            assert r.status == 200
            r = await env.client.request(
                "GET", "/bloom", headers={"If-None-Match": etag}
            )
            assert r.status == 200
            assert r.headers["etag"] != etag

    asyncio.run(inner())


def test_healthz_and_metrics():
    async def inner():
        async with serve(populate=4) as env:
            r = await env.client.request("GET", "/healthz")
            assert r.status == 200
            health = r.json()
            assert health["ok"] is True
            assert health["shards"] == 4
            assert health["shards_down"] == []
            assert health["breakers_open"] == []

            r = await env.client.request("GET", f"/status/{env.population.identifiers[0].to_string()}")
            assert r.status == 200

            r = await env.client.request("GET", "/metrics")
            assert r.status == 200
            text = r.body.decode("utf-8")
            assert "service_requests_total" in text
            assert "service_request_latency_seconds" in text
            assert 'route="/status/{id}"' in text

    asyncio.run(inner())


def test_healthz_reports_downed_shards():
    async def inner():
        async with serve() as env:
            env.cluster.kill_shard("shard-1")
            r = await env.client.request("GET", "/healthz")
            assert r.json()["shards_down"] == ["shard-1"]

    asyncio.run(inner())


def test_deadline_header_validation():
    async def inner():
        async with serve() as env:
            for value in ("abc", "0", "-5"):
                r = await env.client.request(
                    "GET", "/status/irs1:irs1:42",
                    headers={"X-Deadline-Ms": value},
                )
                assert r.status == 400
                assert r.json()["error"]["kind"] == "malformed"

    asyncio.run(inner())


def test_keep_alive_reuses_one_connection():
    async def inner():
        async with serve(with_obs=True) as env:
            for _ in range(5):
                r = await env.client.request("GET", "/healthz")
                assert r.status == 200
            connections = env.obs.counter("service_connections_total").value
            assert connections == 1

    asyncio.run(inner())
