"""docs/api.md and the route registry must agree — and keep agreeing.

``tools/check_docs.py`` parses both sides *textually* so it can run
without PYTHONPATH in CI; this test loads that exact checker and also
cross-checks its textual parse against the imported ``ROUTES`` object,
so regex rot in the checker itself cannot silently disable the gate.
"""

import importlib.util
from pathlib import Path

from repro.service.routes import ROUTES

REPO_ROOT = Path(__file__).resolve().parents[2]


def load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO_ROOT / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_route_drift_is_clean():
    check_docs = load_check_docs()
    assert check_docs.check_route_drift() == []


def test_textual_parse_matches_imported_registry():
    check_docs = load_check_docs()
    served = check_docs.served_routes()
    assert served == {(route.method, route.pattern) for route in ROUTES}


def test_documented_routes_parse_is_nonempty_and_served():
    check_docs = load_check_docs()
    documented = check_docs.documented_routes()
    assert len(documented) == len(ROUTES)
    assert documented == check_docs.served_routes()


def test_drift_is_detected_both_ways():
    """Tampering with either side must produce a complaint."""
    phantom = ("GET", "/made-up")

    check_docs = load_check_docs()
    true_served = check_docs.served_routes()
    check_docs.served_routes = lambda: true_served | {phantom}
    problems = check_docs.check_route_drift()
    assert any("not documented" in p and "/made-up" in p for p in problems)

    check_docs = load_check_docs()
    true_documented = check_docs.documented_routes()
    check_docs.documented_routes = lambda: true_documented | {phantom}
    problems = check_docs.check_route_drift()
    assert any("not in the route registry" in p and "/made-up" in p
               for p in problems)

    check_docs = load_check_docs()
    check_docs.served_routes = lambda: set()
    problems = check_docs.check_route_drift()
    assert any("regex rot" in p for p in problems)
