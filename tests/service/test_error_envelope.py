"""The error envelope contract, held equal to docs/api.md and driven live.

Satellite 4 of the service PR: the error-kind table in ``docs/api.md``
is parsed here and asserted equal to ``repro.service.errors.ERROR_STATUS``,
then every failure mode is manufactured against a real server — deadline
exceeded, breaker open / quorum dark, token-bucket shed, degraded Bloom
answer, malformed body — and each response is checked against the
*documented* status and ``error.kind``, not just the code's constants.
"""

import asyncio
import re
from pathlib import Path

import pytest

from repro.service.errors import ERROR_STATUS
from repro.service.cluster import LiveClusterConfig
from tests.service.conftest import serve

API_MD = Path(__file__).resolve().parents[2] / "docs" / "api.md"
DOC_KIND_RE = re.compile(r"^\|\s*`(\w+)`\s*\|\s*(\d{3})\s*\|")


def documented_kinds():
    kinds = {}
    for line in API_MD.read_text(encoding="utf-8").splitlines():
        match = DOC_KIND_RE.match(line)
        if match:
            kinds[match.group(1)] = int(match.group(2))
    return kinds


DOCS = documented_kinds()


def test_docs_table_matches_error_status():
    """Both directions: every kind documented, nothing extra documented."""
    assert DOCS, f"no error-kind rows parsed from {API_MD}"
    assert DOCS == ERROR_STATUS


def assert_envelope(response, kind):
    """The response carries kind with its *documented* status."""
    assert kind in DOCS, f"{kind!r} is not documented in docs/api.md"
    assert response.status == DOCS[kind], (
        f"kind {kind!r}: docs say {DOCS[kind]}, served {response.status}"
    )
    body = response.json()
    assert body["error"]["kind"] == kind
    assert body["error"]["status"] == response.status
    assert body["error"]["detail"]
    return body


def test_malformed_bodies():
    async def inner():
        async with serve() as env:
            # Unparseable JSON.
            r = await env.client.request("POST", "/claims", b"not json{")
            assert_envelope(r, "malformed")
            # Missing body.
            r = await env.client.request("POST", "/claims")
            assert_envelope(r, "malformed")
            # Wrong shape.
            r = await env.client.request("POST", "/status", {"ids": "nope"})
            assert_envelope(r, "malformed")
            # Bad identifier string.
            r = await env.client.request("GET", "/status/garbage")
            assert_envelope(r, "malformed")
            # Unknown revocation action.
            r = await env.client.request(
                "POST", "/revocations",
                {"id": "irs1:irs1:42", "action": "shred"},
            )
            assert_envelope(r, "malformed")

    asyncio.run(inner())


def test_not_found_unknown_serial_and_foreign_ledger():
    async def inner():
        async with serve() as env:
            # A never-claimed id on /status answers 200 "not revoked" via
            # the Bloom short-circuit — correct, not an error.
            r = await env.client.request("GET", "/status/irs1:irs1:12345")
            assert r.status == 200
            assert r.json()["revoked"] is False
            # /labels needs an *authoritative* read, so the quorum's
            # "unknown serial" verdict surfaces as the 404 envelope.
            r = await env.client.request(
                "POST", "/labels", {"id": "irs1:irs1:12345"}
            )
            assert_envelope(r, "not_found")
            # An identifier naming some other ledger.
            r = await env.client.request("GET", "/status/irs1:other:42")
            assert_envelope(r, "not_found")
            # Revoking without a registered owner key.
            r = await env.client.request(
                "POST", "/revocations", {"id": "irs1:irs1:42"}
            )
            assert_envelope(r, "not_found")
            # And an unrouted path.
            r = await env.client.request("GET", "/nope")
            assert_envelope(r, "not_found")

    asyncio.run(inner())


def test_method_not_allowed():
    async def inner():
        async with serve() as env:
            r = await env.client.request("DELETE", "/claims")
            assert_envelope(r, "method_not_allowed")
            r = await env.client.request("PUT", "/healthz")
            assert_envelope(r, "method_not_allowed")

    asyncio.run(inner())


def test_too_large_batch():
    async def inner():
        async with serve() as env:
            ids = ["irs1:irs1:42"] * 1025
            r = await env.client.request("POST", "/status", {"ids": ids})
            assert_envelope(r, "too_large")

    asyncio.run(inner())


def test_shed_strict_is_429():
    """Token-bucket refusal with degraded reads off is the 429 envelope."""

    async def inner():
        config = LiveClusterConfig(
            shed_rate=0.0001, shed_burst=1, degraded_reads=False
        )
        # Revoked ids: the Bloom filter cannot short-circuit them, so the
        # reads reach the token bucket instead of answering "not revoked".
        async with serve(config=config, populate=4, revoked_fraction=1.0) as env:
            target = env.population.identifiers[0].to_string()
            statuses = []
            for _ in range(3):
                r = await env.client.request("GET", f"/status/{target}")
                statuses.append(r)
            shed = [r for r in statuses if r.status == DOCS["shed"]]
            assert shed, [r.status for r in statuses]
            assert_envelope(shed[0], "shed")

    asyncio.run(inner())


def test_shed_degraded_is_203_with_cause():
    """With degraded reads on, a shed request still answers, as 203."""

    async def inner():
        config = LiveClusterConfig(shed_rate=0.0001, shed_burst=1)
        async with serve(config=config, populate=4, revoked_fraction=1.0) as env:
            target = env.population.identifiers[0].to_string()
            answers = []
            for _ in range(3):
                r = await env.client.request("GET", f"/status/{target}")
                answers.append(r)
            degraded = [r for r in answers if r.status == DOCS["degraded"]]
            assert degraded, [r.status for r in answers]
            body = assert_envelope(degraded[0], "degraded")
            # Fail-closed: the revoked id still reads revoked.
            assert body["revoked"] is True
            assert body["source"] == "degraded"
            assert "admission refused" in body["error"]["detail"]

    asyncio.run(inner())


def test_deadline_strict_read_is_504():
    """Slow replicas + a tight budget + degraded reads off: 504."""

    async def inner():
        config = LiveClusterConfig(degraded_reads=False)
        # Revoked ids, so the Bloom filter cannot answer and the read
        # must wait on the (delayed) quorum.
        async with serve(config=config, populate=4, revoked_fraction=1.0) as env:
            for shard_id in env.cluster.shards:
                env.cluster.delay_shard(shard_id, 0.5)
            target = env.population.identifiers[0].to_string()
            r = await env.client.request(
                "GET", f"/status/{target}",
                headers={"X-Deadline-Ms": "30"},
            )
            assert_envelope(r, "deadline")

    asyncio.run(inner())


def test_deadline_degraded_read_answers_203():
    """Same expiry with degraded reads on: a 203 Bloom-backed answer."""

    async def inner():
        async with serve(populate=4, revoked_fraction=1.0) as env:
            for shard_id in env.cluster.shards:
                env.cluster.delay_shard(shard_id, 0.5)
            target = env.population.identifiers[0].to_string()
            r = await env.client.request(
                "GET", f"/status/{target}",
                headers={"X-Deadline-Ms": "30"},
            )
            body = assert_envelope(r, "degraded")
            assert body["revoked"] is True
            assert "budget exhausted" in body["error"]["detail"]

    asyncio.run(inner())


def test_deadline_on_write_is_504():
    async def inner():
        async with serve() as env:
            r = await env.client.request(
                "POST", "/claims", {"content": "slow-claim"}
            )
            claimed = r.json()["id"]
            assert r.status == 201
            for shard_id in env.cluster.shards:
                env.cluster.delay_shard(shard_id, 0.5)
            r = await env.client.request(
                "POST", "/revocations", {"id": claimed},
                headers={"X-Deadline-Ms": "30"},
            )
            assert_envelope(r, "deadline")

    asyncio.run(inner())


def test_unavailable_when_quorum_dark_and_strict():
    """All shards down, degraded reads off, no backstop race: 503."""

    async def inner():
        config = LiveClusterConfig(
            degraded_reads=False,
            max_retries=0,
            rpc_timeout=0.02,
            request_deadline=5.0,
        )
        async with serve(config=config, populate=4, revoked_fraction=1.0) as env:
            for shard_id in env.cluster.shards:
                env.cluster.kill_shard(shard_id)
            target = env.population.identifiers[0].to_string()
            r = await env.client.request("GET", f"/status/{target}")
            assert_envelope(r, "unavailable")

    asyncio.run(inner())


def test_breaker_open_still_answers_degraded():
    """Dark quorum trips the breakers; answers stay 203 and healthz shows it."""

    async def inner():
        config = LiveClusterConfig(
            breaker_threshold=2, max_retries=0, rpc_timeout=0.02,
            request_deadline=0.2,
        )
        async with serve(config=config, populate=4, revoked_fraction=1.0) as env:
            for shard_id in env.cluster.shards:
                env.cluster.kill_shard(shard_id)
            target = env.population.identifiers[0].to_string()
            for _ in range(6):
                r = await env.client.request("GET", f"/status/{target}")
                body = assert_envelope(r, "degraded")
                assert body["revoked"] is True
            health = (await env.client.request("GET", "/healthz")).json()
            assert health["breakers_open"], health
            assert health["ok"] is False

    asyncio.run(inner())


def test_internal_bug_is_500_envelope():
    async def inner():
        async with serve() as env:
            def boom(request, params):
                raise RuntimeError("injected handler bug")

            async def boom_async(request, params):
                return boom(request, params)

            env.app.handle_healthz = boom_async
            r = await env.client.request("GET", "/healthz")
            body = assert_envelope(r, "internal")
            assert "injected handler bug" in body["error"]["detail"]

    asyncio.run(inner())


def test_every_documented_kind_is_exercised():
    """Paranoia: the suite above covers the whole documented table."""
    source = Path(__file__).read_text(encoding="utf-8")
    for kind in DOCS:
        assert f'"{kind}"' in source, f"no live test drives kind {kind!r}"
