"""Regression tests for the handle_bloom event-loop fix.

The Bloom export scans every record — before this fix it ran
synchronously inside the async handler, freezing every in-flight
request for the duration (the exact shape the ``blocking-in-async``
program lint pass exists to catch).  These tests pin the repaired
behavior: the scan runs off-loop, is single-flight per chain head,
and honors the request deadline.
"""

import asyncio
import threading
import time

from repro.service.protocol import HttpRequest
from tests.service.conftest import serve


def _bloom_request(headers=None):
    return HttpRequest(
        method="GET",
        target="/bloom",
        path="/bloom",
        query={},
        headers=headers or {},
        body=b"",
    )


def test_bloom_export_runs_off_loop_and_single_flight():
    async def inner():
        async with serve(populate=8, revoked_fraction=0.5) as env:
            loop_thread = threading.get_ident()
            export_threads = []
            real_export = env.cluster.export_bloom

            def counting_export():
                export_threads.append(threading.get_ident())
                return real_export()

            env.cluster.export_bloom = counting_export
            results = await asyncio.gather(
                *(env.app.handle_bloom(_bloom_request(), {}) for _ in range(4))
            )
            # One scan served all four concurrent requests...
            assert len(export_threads) == 1
            # ...and it did not run on the event-loop thread.
            assert export_threads[0] != loop_thread
            bodies = {body for _, body, _ in results}
            assert len(bodies) == 1
            assert all(status == 200 for status, _, _ in results)

    asyncio.run(inner())


def test_event_loop_stays_responsive_during_bloom_export():
    async def inner():
        async with serve(populate=8) as env:
            started = threading.Event()
            release = threading.Event()
            real_export = env.cluster.export_bloom

            def stalled_export():
                started.set()
                assert release.wait(timeout=10.0)
                return real_export()

            env.cluster.export_bloom = stalled_export
            bloom = asyncio.ensure_future(
                env.app.handle_bloom(_bloom_request(), {})
            )
            await asyncio.get_running_loop().run_in_executor(
                None, started.wait, 10.0
            )
            # The export is parked mid-scan; before the fix this
            # request could not complete until it finished.
            r = await env.client.request("GET", "/healthz")
            assert r.status == 200
            assert not bloom.done()
            release.set()
            status, _, _ = await bloom
            assert status == 200

    asyncio.run(inner())


def test_bloom_deadline_maps_to_504_envelope():
    async def inner():
        async with serve(populate=8) as env:
            real_export = env.cluster.export_bloom

            def slow_export():
                time.sleep(0.1)
                return real_export()

            env.cluster.export_bloom = slow_export
            r = await env.client.request(
                "GET", "/bloom", headers={"X-Deadline-Ms": "1"}
            )
            assert r.status == 504
            assert r.json()["error"]["kind"] == "deadline"
            # With the budget gone, the next unbounded request still
            # fills the cache and serves normally.
            r = await env.client.request("GET", "/bloom")
            assert r.status == 200
            assert len(r.body) > 0

    asyncio.run(inner())
