"""The load generator: determinism, the invariant checker, and one burst."""

import asyncio

import numpy as np

from repro.service.loadgen import (
    LoadgenConfig,
    LoadReport,
    OpSample,
    _check_envelope,
    arrival_schedule,
    run_loadgen,
)
from tests.service.conftest import serve


def test_arrival_schedule_is_seed_deterministic():
    a = arrival_schedule(200.0, 2.0, np.random.default_rng(7))
    b = arrival_schedule(200.0, 2.0, np.random.default_rng(7))
    c = arrival_schedule(200.0, 2.0, np.random.default_rng(8))
    assert np.array_equal(a, b)
    assert not np.array_equal(a, c)
    assert a.size > 0
    assert float(a[-1]) < 2.0
    assert np.all(np.diff(a) >= 0.0)


def test_arrival_schedule_degenerate_inputs():
    assert arrival_schedule(0.0, 5.0, np.random.default_rng(0)).size == 0
    assert arrival_schedule(100.0, 0.0, np.random.default_rng(0)).size == 0


def test_check_envelope_accepts_documented_failures():
    violations = []
    kind = _check_envelope(
        {"error": {"kind": "shed", "status": 429, "detail": "x"}},
        429, "status", violations,
    )
    assert kind == "shed"
    assert violations == []


def test_check_envelope_flags_undocumented_kind():
    violations = []
    _check_envelope(
        {"error": {"kind": "gremlins", "status": 500, "detail": "x"}},
        500, "status", violations,
    )
    assert any("undocumented error kind" in v for v in violations)


def test_check_envelope_flags_status_mismatch():
    violations = []
    _check_envelope(
        {"error": {"kind": "shed", "status": 429, "detail": "x"}},
        500, "status", violations,
    )
    assert any("documented as 429" in v for v in violations)


def test_check_envelope_flags_error_without_envelope():
    violations = []
    _check_envelope({"error": None}, 500, "claim", violations)
    assert any("without an error envelope" in v for v in violations)
    violations = []
    _check_envelope(b"bytes", 200, "claim", violations)
    assert any("not a JSON object" in v for v in violations)


def test_report_percentiles_and_kind_counts():
    report = LoadReport(config=LoadgenConfig())
    for i in range(10):
        report.samples.append(OpSample(
            op="status", status=200, kind=None,
            latency=(i + 1) / 1000.0, scheduled_at=0.0,
        ))
    report.samples.append(OpSample(
        op="status", status=429, kind="shed", latency=0.001, scheduled_at=0.0,
    ))
    assert report.percentile(report.of_op("status"), 50) > 0.0
    assert report.kind_counts() == {"shed": 1}
    assert 0.0 < report.answered_fraction("status") < 1.0
    assert report.table().render()


def test_small_burst_end_to_end_has_no_violations():
    async def inner():
        async with serve() as env:
            config = LoadgenConfig(
                host=env.host, port=env.port,
                rate=60.0, duration=0.6, seed=3,
                warmup_claims=6, connections=8,
            )
            report = await run_loadgen(config)
            assert report.violations == []
            assert report.samples, "the measured window produced no samples"
            assert report.answered_fraction() == 1.0
            # The generator claimed its warmup working set.
            assert len(report.claimed_ids) >= config.warmup_claims

    asyncio.run(inner())
