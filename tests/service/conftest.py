"""Shared helpers: an ephemeral-port server + client inside one loop.

There is no pytest-asyncio here by design — each test owns its loop
via ``asyncio.run`` so server, cluster, and client share exactly one
event loop and tear down deterministically.  ``serve`` yields an
:class:`Env` with fault hooks (kill/delay shards) so the envelope
tests can manufacture each failure mode on demand.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager
from dataclasses import dataclass
from typing import Optional

from repro.obs import Observability
from repro.service.app import ServiceApp, ServiceServer
from repro.service.cluster import LiveCluster, LiveClusterConfig
from repro.service.protocol import HttpClient


@dataclass
class Env:
    cluster: LiveCluster
    app: ServiceApp
    server: ServiceServer
    client: HttpClient
    obs: Observability

    @property
    def host(self) -> str:
        return self.server.host

    @property
    def port(self) -> int:
        return self.server.port


@asynccontextmanager
async def serve(
    config: Optional[LiveClusterConfig] = None,
    populate: int = 0,
    revoked_fraction: float = 0.0,
    with_obs: bool = True,
):
    loop = asyncio.get_running_loop()
    obs = Observability(clock=loop.time) if with_obs else None
    cluster = LiveCluster(config=config or LiveClusterConfig(), obs=obs)
    app = ServiceApp(cluster=cluster, obs=obs)
    population = None
    if populate:
        population = cluster.seed_population(populate, revoked_fraction)
        app.adopt_population(population)
    server = ServiceServer(app, port=0)
    await server.start()
    client = HttpClient(server.host, server.port)
    env = Env(cluster=cluster, app=app, server=server, client=client, obs=obs)
    env.population = population  # type: ignore[attr-defined]
    try:
        yield env
    finally:
        await client.close()
        await server.stop()
