"""Wire-level tests for the stdlib HTTP/1.1 subset in repro.service.protocol."""

import asyncio

import pytest

from repro.service.errors import ApiError
from repro.service.protocol import (
    MAX_BODY_BYTES,
    MAX_HEADER_COUNT,
    HttpRequest,
    read_request,
    render_response,
)


def parse(raw: bytes, eof: bool = True):
    """Feed raw bytes to read_request through a StreamReader."""

    async def inner():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        if eof:
            reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(inner())


def test_parses_request_line_query_and_headers():
    request = parse(
        b"GET /deltas?since=7&empty= HTTP/1.1\r\n"
        b"Host: example\r\n"
        b"X-Deadline-Ms: 250\r\n\r\n"
    )
    assert request.method == "GET"
    assert request.path == "/deltas"
    assert request.query == {"since": "7", "empty": ""}
    assert request.headers["host"] == "example"
    assert request.headers["x-deadline-ms"] == "250"
    assert request.body == b""
    assert request.keep_alive


def test_percent_encoded_path_is_decoded():
    request = parse(b"GET /status/irs1%3Airs1%3A42 HTTP/1.1\r\n\r\n")
    assert request.path == "/status/irs1:irs1:42"


def test_reads_content_length_body():
    request = parse(
        b"POST /claims HTTP/1.1\r\ncontent-length: 9\r\n\r\n{\"a\": 1}x"
    )
    assert request.body == b'{"a": 1}x'


def test_connection_close_disables_keep_alive():
    request = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
    assert not request.keep_alive


def test_clean_eof_returns_none():
    assert parse(b"") is None


def test_truncated_head_is_malformed():
    with pytest.raises(ApiError) as excinfo:
        parse(b"GET / HTTP/1.1\r\nHost: x")
    assert excinfo.value.kind == "malformed"


def test_bad_request_line_is_malformed():
    with pytest.raises(ApiError) as excinfo:
        parse(b"GET /\r\n\r\n")
    assert excinfo.value.kind == "malformed"


def test_too_many_headers_is_too_large():
    headers = b"".join(
        b"x-h%d: v\r\n" % i for i in range(MAX_HEADER_COUNT + 1)
    )
    with pytest.raises(ApiError) as excinfo:
        parse(b"GET / HTTP/1.1\r\n" + headers + b"\r\n")
    assert excinfo.value.kind == "too_large"


def test_transfer_encoding_is_refused():
    with pytest.raises(ApiError) as excinfo:
        parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
    assert excinfo.value.kind == "malformed"


def test_bad_content_length_is_malformed():
    for value in (b"nope", b"-3"):
        with pytest.raises(ApiError) as excinfo:
            parse(b"POST / HTTP/1.1\r\ncontent-length: " + value + b"\r\n\r\n")
        assert excinfo.value.kind == "malformed"


def test_oversized_body_is_too_large():
    declared = str(MAX_BODY_BYTES + 1).encode()
    with pytest.raises(ApiError) as excinfo:
        parse(b"POST / HTTP/1.1\r\ncontent-length: " + declared + b"\r\n\r\n")
    assert excinfo.value.kind == "too_large"


def test_truncated_body_is_malformed():
    with pytest.raises(ApiError) as excinfo:
        parse(b"POST / HTTP/1.1\r\ncontent-length: 10\r\n\r\nshort")
    assert excinfo.value.kind == "malformed"


def test_json_body_parse_and_failure():
    request = HttpRequest(
        method="POST", target="/", path="/", query={},
        headers={}, body=b'{"ids": [1]}',
    )
    assert request.json() == {"ids": [1]}
    request.body = b"not json"
    with pytest.raises(ApiError) as excinfo:
        request.json()
    assert excinfo.value.kind == "malformed"
    request.body = b""
    with pytest.raises(ApiError):
        request.json()


def test_render_response_shape():
    raw = render_response(200, b'{"ok": true}')
    head, _, body = raw.partition(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    assert lines[0] == "HTTP/1.1 200 OK"
    assert body == b'{"ok": true}'
    # Headers are sorted for byte-stable output.
    names = [line.split(":")[0] for line in lines[1:]]
    assert names == sorted(names)
    assert "content-length: 12" in lines
    assert "connection: keep-alive" in lines


def test_render_304_omits_content_type():
    raw = render_response(304, b"", keep_alive=False)
    assert b"content-type" not in raw
    assert b"connection: close" in raw
    assert raw.endswith(b"\r\n\r\n")


def test_render_unknown_status_still_serializes():
    assert render_response(299, b"x").startswith(b"HTTP/1.1 299 Unknown\r\n")
