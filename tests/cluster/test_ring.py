"""Consistent-hash ring: units plus hypothesis rebalancing properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import DEFAULT_VNODES, HashRing, RingError


def _keys(count: int, tag: str = "key") -> list:
    return [f"{tag}:{i}".encode("utf-8") for i in range(count)]


class TestRingBasics:
    def test_construction_is_order_insensitive(self):
        a = HashRing(["alpha", "beta", "gamma"])
        b = HashRing(["gamma", "alpha", "beta"])
        keys = _keys(200)
        assert a.assignment(keys) == b.assignment(keys)

    def test_primary_is_first_replica(self):
        ring = HashRing([f"s{i}" for i in range(5)])
        for key in _keys(50):
            assert ring.primary(key) == ring.replicas(key, 3)[0]

    def test_replicas_are_distinct_shards(self):
        ring = HashRing([f"s{i}" for i in range(5)])
        for key in _keys(100):
            replicas = ring.replicas(key, 3)
            assert len(replicas) == len(set(replicas)) == 3

    def test_too_many_replicas_rejected(self):
        ring = HashRing(["a", "b"])
        with pytest.raises(RingError):
            ring.replicas(b"key", 3)
        with pytest.raises(RingError):
            ring.replicas(b"key", 0)

    def test_membership_errors(self):
        ring = HashRing(["a"])
        with pytest.raises(RingError):
            ring.add("a")
        with pytest.raises(RingError):
            ring.add("")
        with pytest.raises(RingError):
            ring.remove("missing")
        with pytest.raises(RingError):
            HashRing(vnodes=0)

    def test_shard_ids_and_contains(self):
        ring = HashRing(["b", "a"])
        assert ring.shard_ids == ["a", "b"]
        assert "a" in ring and "z" not in ring
        assert len(ring) == 2

    def test_load_share_is_roughly_balanced(self):
        ring = HashRing([f"s{i}" for i in range(4)])
        shares = ring.load_share(_keys(4000))
        assert abs(sum(shares.values()) - 1.0) < 1e-9
        for share in shares.values():
            # vnodes=64 keeps imbalance well under 2x.
            assert 0.10 < share < 0.45

    def test_remove_only_moves_the_removed_shards_keys(self):
        ring = HashRing([f"s{i}" for i in range(5)])
        keys = _keys(500)
        before = ring.assignment(keys)
        ring.remove("s2")
        after = ring.assignment(keys)
        for key in keys:
            if before[key] != "s2":
                assert after[key] == before[key]
            else:
                assert after[key] != "s2"

    def test_default_vnodes_exported(self):
        assert HashRing(["a"]).vnodes == DEFAULT_VNODES


# -- hypothesis properties (satellite: rebalancing invariants) -----------------

SHARD_COUNTS = st.integers(min_value=2, max_value=8)


@settings(max_examples=25, deadline=None, derandomize=True)
@given(
    num_shards=SHARD_COUNTS,
    joiner=st.integers(min_value=0, max_value=10_000),
    key_seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_property_join_moves_about_one_nth(num_shards, joiner, key_seed):
    """Property: a join moves ~1/(N+1) of keys, all of them to the joiner."""
    keys = _keys(400, tag=str(key_seed))
    ring = HashRing([f"s{i}" for i in range(num_shards)])
    before = ring.assignment(keys)
    new_id = f"joiner-{joiner}"
    ring.add(new_id)
    after = ring.assignment(keys)
    moved = [key for key in keys if before[key] != after[key]]
    # Invariant: the only possible new owner is the joining shard.
    assert all(after[key] == new_id for key in moved)
    # Magnitude: ~1/(N+1) within generous sampling + vnode tolerance.
    expected = len(keys) / (num_shards + 1)
    assert expected / 4 <= len(moved) <= expected * 2.5


@settings(max_examples=25, deadline=None, derandomize=True)
@given(num_shards=st.integers(min_value=3, max_value=8), key_seed=st.integers(0, 2**32 - 1))
def test_property_leave_moves_only_departed_keys(num_shards, key_seed):
    """Property: a leave re-homes exactly the departed shard's keys."""
    keys = _keys(300, tag=str(key_seed))
    ids = [f"s{i}" for i in range(num_shards)]
    ring = HashRing(ids)
    before = ring.assignment(keys)
    victim = ids[key_seed % num_shards]
    ring.remove(victim)
    after = ring.assignment(keys)
    moved = {key for key in keys if before[key] != after[key]}
    assert moved == {key for key in keys if before[key] == victim}
    assert victim not in set(after.values())


@settings(max_examples=40, deadline=None, derandomize=True)
@given(
    num_shards=st.integers(min_value=3, max_value=9),
    count=st.integers(min_value=1, max_value=3),
    key=st.binary(min_size=1, max_size=24),
)
def test_property_every_key_gets_exactly_r_distinct_replicas(num_shards, count, key):
    """Property: replicas(key, R) always yields R distinct known shards."""
    ids = [f"s{i}" for i in range(num_shards)]
    ring = HashRing(ids)
    replicas = ring.replicas(key, count)
    assert len(replicas) == count
    assert len(set(replicas)) == count
    assert set(replicas) <= set(ids)
    assert replicas[0] == ring.primary(key)


@settings(max_examples=20, deadline=None, derandomize=True)
@given(num_shards=SHARD_COUNTS, seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_property_ring_deterministic_under_seed(num_shards, seed):
    """Property: placement depends only on the shard *set*, never order."""
    ids = [f"s{i}" for i in range(num_shards)]
    shuffled = list(ids)
    np.random.default_rng(seed).shuffle(shuffled)
    keys = _keys(100, tag=str(seed))
    one, two = HashRing(ids), HashRing(shuffled)
    assert one.assignment(keys) == two.assignment(keys)
    for key in keys[:20]:
        assert one.replicas(key, min(3, num_shards)) == two.replicas(
            key, min(3, num_shards)
        )
