"""Failure detector: consecutive suspicion and half-open probation."""

import pytest

from repro.cluster import FailureDetector
from repro.netsim.simulator import ManualClock


@pytest.fixture
def clock():
    return ManualClock()


def test_fresh_shard_is_trusted(clock):
    detector = FailureDetector(clock.now)
    assert not detector.is_suspect("s0")
    assert detector.live(["s0", "s1"]) == ["s0", "s1"]
    assert detector.suspects() == []


def test_suspicion_requires_consecutive_failures(clock):
    detector = FailureDetector(clock.now, failure_threshold=3)
    detector.record_failure("s0")
    detector.record_failure("s0")
    detector.record_success("s0")  # streak broken
    detector.record_failure("s0")
    detector.record_failure("s0")
    assert not detector.is_suspect("s0")
    detector.record_failure("s0")
    assert detector.is_suspect("s0")
    assert detector.suspects() == ["s0"]
    assert detector.suspicions_raised == 1


def test_success_clears_suspicion(clock):
    detector = FailureDetector(clock.now, failure_threshold=1)
    detector.record_failure("s0")
    assert detector.is_suspect("s0")
    detector.record_success("s0")
    assert not detector.is_suspect("s0")
    assert detector.recoveries == 1


def test_probation_admits_one_probe(clock):
    detector = FailureDetector(clock.now, failure_threshold=1, probation=10.0)
    detector.record_failure("s0")
    assert detector.is_suspect("s0")
    clock.advance(10.0)
    # Half-open: exactly one call is let through, then re-armed.
    assert not detector.is_suspect("s0")
    assert detector.is_suspect("s0")
    # The probe failing re-enters the wait; succeeding clears it.
    clock.advance(10.0)
    assert not detector.is_suspect("s0")
    detector.record_success("s0")
    assert not detector.is_suspect("s0")
    assert detector.suspects() == []


def test_probation_success_fully_clears_suspicion(clock):
    """A probe that succeeds wipes all suspicion state, not just the flag."""
    detector = FailureDetector(clock.now, failure_threshold=2, probation=10.0)
    detector.record_failure("s0")
    detector.record_failure("s0")
    assert detector.is_suspect("s0")
    clock.advance(10.0)
    assert not detector.is_suspect("s0")  # the admitted probe
    assert detector.probes_admitted == 1
    detector.record_success("s0")
    assert detector.recoveries == 1
    assert detector.suspects() == []
    # Fully cleared: the failure streak restarts from zero, so one new
    # failure (below threshold) must not re-suspect...
    detector.record_failure("s0")
    assert not detector.is_suspect("s0")
    # ...and when the threshold is crossed again it is a *new* suspicion.
    detector.record_failure("s0")
    assert detector.is_suspect("s0")
    assert detector.suspicions_raised == 2


def test_probation_timeout_resuspects_without_double_counting(clock):
    """A failed probe re-arms the window but is the same suspicion."""
    detector = FailureDetector(clock.now, failure_threshold=1, probation=10.0)
    detector.record_failure("s0")
    assert detector.suspicions_raised == 1
    clock.advance(10.0)
    assert not detector.is_suspect("s0")  # probe admitted
    detector.record_failure("s0")  # the probe timed out
    # Re-suspected immediately — no second probe until a full window
    # from the failed probe...
    assert detector.is_suspect("s0")
    clock.advance(9.0)
    assert detector.is_suspect("s0")
    clock.advance(1.0)
    assert not detector.is_suspect("s0")
    # ...and the whole episode counts as ONE suspicion, however many
    # probes fail.
    detector.record_failure("s0")
    assert detector.suspicions_raised == 1
    assert detector.probes_admitted == 2
    assert detector.health("s0").total_failures == 3


def test_live_preserves_input_order(clock):
    detector = FailureDetector(clock.now, failure_threshold=1)
    detector.record_failure("s1")
    assert detector.live(["s2", "s1", "s0"]) == ["s2", "s0"]


def test_health_counters(clock):
    detector = FailureDetector(clock.now, failure_threshold=2)
    detector.record_failure("s0")
    detector.record_success("s0")
    entry = detector.health("s0")
    assert entry.total_failures == 1
    assert entry.total_successes == 1
    assert entry.consecutive_failures == 0
    assert not entry.suspected


def test_invalid_parameters_rejected(clock):
    with pytest.raises(ValueError):
        FailureDetector(clock.now, failure_threshold=0)
    with pytest.raises(ValueError):
        FailureDetector(clock.now, probation=0.0)
