"""Quorum primitives: transport faults, quorum writes, status merging."""

import pytest

from repro.cluster import (
    LocalShardTransport,
    QuorumExecutor,
    ShardReply,
    StatusCollector,
    majority,
)
from repro.cluster.health import FailureDetector
from repro.netsim.simulator import ManualClock


class EchoShard:
    """Minimal shard double: one handler that records invocations."""

    def __init__(self, fail=False):
        self.fail = fail
        self.calls = []

    def rpc_handlers(self):
        def ping(payload):
            self.calls.append(payload)
            if self.fail:
                raise RuntimeError("boom")
            return {"pong": payload}

        return {"ping": ping}


def collect(transport, shard_id, method, payload):
    box = []
    transport.invoke(shard_id, method, payload, box.append)
    return box[0]


def test_majority():
    assert [majority(n) for n in (1, 2, 3, 4, 5)] == [1, 2, 2, 3, 3]


class TestLocalTransport:
    def test_roundtrip_and_errors(self):
        transport = LocalShardTransport({"a": EchoShard(), "b": EchoShard(fail=True)})
        assert collect(transport, "a", "ping", 1).value == {"pong": 1}
        assert "boom" in collect(transport, "b", "ping", 1).error
        assert "unknown shard" in collect(transport, "z", "ping", 1).error
        assert "unknown method" in collect(transport, "a", "nope", 1).error
        assert transport.shard_ids() == ["a", "b"]

    def test_kill_and_revive(self):
        transport = LocalShardTransport({"a": EchoShard()})
        transport.kill("a")
        assert collect(transport, "a", "ping", 1).error == "shard down"
        transport.revive("a")
        assert collect(transport, "a", "ping", 1).ok
        with pytest.raises(KeyError):
            transport.kill("z")


class TestQuorumExecutor:
    def _transport(self, down=()):
        shards = {f"s{i}": EchoShard() for i in range(3)}
        transport = LocalShardTransport(shards)
        for shard_id in down:
            transport.kill(shard_id)
        return transport

    def test_write_succeeds_at_quorum(self):
        executor = QuorumExecutor(self._transport(down=["s2"]))
        results = []
        executor.execute(["s0", "s1", "s2"], "ping", {}, 2, results.append)
        assert results[0].ok
        assert len(results[0].acks) >= 2
        assert executor.writes_succeeded == 1

    def test_write_fails_when_quorum_unreachable(self):
        executor = QuorumExecutor(self._transport(down=["s1", "s2"]))
        results = []
        executor.execute(["s0", "s1", "s2"], "ping", {}, 2, results.append)
        assert not results[0].ok
        assert "quorum 2/3 unreachable" in results[0].error
        assert executor.writes_failed == 1

    def test_detector_sees_every_reply(self):
        clock = ManualClock()
        detector = FailureDetector(clock.now, failure_threshold=1)
        executor = QuorumExecutor(self._transport(down=["s2"]), detector=detector)
        executor.execute(["s0", "s1", "s2"], "ping", {}, 1, lambda r: None)
        assert detector.is_suspect("s2")
        assert not detector.is_suspect("s0")

    def test_invalid_quorum_rejected(self):
        executor = QuorumExecutor(self._transport())
        with pytest.raises(ValueError):
            executor.execute(["s0"], "ping", {}, 2, lambda r: None)
        with pytest.raises(ValueError):
            executor.execute(["s0"], "ping", {}, 0, lambda r: None)


def _entry(epoch, state="revoked"):
    return {"serial": 7, "proof": f"proof@{epoch}", "epoch": epoch, "state": state}


class TestStatusCollector:
    def test_highest_epoch_wins(self):
        outcomes = []
        collector = StatusCollector(7, ["a", "b"], 2, outcomes.append)
        collector.record("a", _entry(0, "not_revoked"))
        assert not collector.done
        collector.record("b", _entry(2))
        assert collector.done
        outcome = outcomes[0]
        assert outcome.ok and outcome.epoch == 2
        assert outcome.answered_by == "b"
        assert outcome.stale_shards == ["a"]

    def test_stale_replicas_reported_for_repair(self):
        repairs = []
        collector = StatusCollector(
            7, ["a", "b", "c"], 2, lambda o: None,
            on_stale=lambda shard, o: repairs.append(shard),
        )
        collector.record("a", _entry(3))
        collector.record("b", _entry(1))
        assert repairs == ["b"]
        # A late reply below the winning epoch is also repaired.
        collector.record("c", _entry(0))
        assert repairs == ["b", "c"]

    def test_late_fresh_reply_not_repaired(self):
        repairs = []
        collector = StatusCollector(
            7, ["a", "b"], 1, lambda o: None,
            on_stale=lambda shard, o: repairs.append(shard),
        )
        collector.record("a", _entry(2))
        collector.record("b", _entry(2))
        assert repairs == []

    def test_quorum_failure_when_too_many_errors(self):
        outcomes = []
        collector = StatusCollector(7, ["a", "b", "c"], 2, outcomes.append)
        collector.record("a", {"serial": 7, "error": "unknown serial"})
        collector.record_error("b", "timeout")
        assert collector.done
        assert not outcomes[0].ok
        assert "quorum 2/3 unreachable" in outcomes[0].error
        # Errors after completion are ignored, not double-counted.
        collector.record_error("c", "timeout")
        assert len(outcomes) == 1

    def test_invalid_quorum_rejected(self):
        with pytest.raises(ValueError):
            StatusCollector(7, ["a"], 2, lambda o: None)


def test_shard_reply_ok():
    assert ShardReply("a", value=1).ok
    assert not ShardReply("a", error="x").ok
