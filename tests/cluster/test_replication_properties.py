"""Property tests for the replication layer (Hypothesis).

Two properties carry the whole consistency story:

* **Quorum overlap** — for *any* replication factor N and quorums with
  R + W > N, a quorum-acknowledged write is observed by every later
  quorum read, no matter which replicas were down for the write and
  which are down for the read (within what the quorums tolerate).
* **LWW convergence** — replicas applying the same set of
  ``apply_state`` messages converge to the same (state, epoch)
  regardless of delivery order or duplication, and the survivor is the
  highest epoch.  This is the property the chaos self-test breaks on
  purpose (see :mod:`repro.chaos.selftest`).
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.cluster import ClusterConfig, ClusterShard
from repro.core.identifiers import PhotoIdentifier
from repro.crypto.hashing import sha256_hex
from repro.crypto.signatures import KeyPair
from repro.crypto.timestamp import TimestampAuthority
from repro.ledger.records import ClaimRecord, RevocationState, claim_digest
from repro.netsim.simulator import ManualClock

from tests.cluster.conftest import LocalCluster

MAX_SHARDS = 5


@st.composite
def quorum_scenarios(draw):
    """(n, w, r, dead-for-write, dead-for-read) with R + W > N.

    The dead sets stay within what each quorum tolerates — more
    failures than that and the operation *reports* failure, which is a
    different (also correct) outcome tested elsewhere.
    """
    n = draw(st.integers(1, MAX_SHARDS))
    w = draw(st.integers(1, n))
    r = draw(st.integers(n - w + 1, n))
    indexes = st.integers(0, n - 1)
    dead_for_write = draw(st.sets(indexes, max_size=n - w))
    dead_for_read = draw(st.sets(indexes, max_size=n - r))
    return n, w, r, sorted(dead_for_write), sorted(dead_for_read)


@settings(max_examples=25, deadline=None)
@given(scenario=quorum_scenarios())
def test_quorum_read_always_observes_quorum_write(scenario):
    n, w, r, dead_for_write, dead_for_read = scenario
    cluster = LocalCluster(
        num_shards=n,
        config=ClusterConfig(
            replication_factor=n, write_quorum=w, read_quorum=r
        ),
    )
    identifier = cluster.claim_photo("quorum-property")
    replicas = cluster.frontend.replicas_for(identifier)

    # Write (revoke) with some replicas down: quorum W still reachable.
    for index in dead_for_write:
        cluster.transport.kill(replicas[index])
    verdict = cluster.frontend.revoke(identifier, cluster.owner)
    assert verdict["epoch"] == 1

    # Read with a *different* set down (the writers may be the dead
    # ones now): quorum R must still observe the acknowledged epoch.
    for index in dead_for_write:
        cluster.transport.revive(replicas[index])
    for index in dead_for_read:
        cluster.transport.kill(replicas[index])
    answer = cluster.frontend.status(identifier)
    assert answer.ok
    assert answer.revoked
    assert answer.epoch == 1


@st.composite
def delivery_interleavings(draw):
    """One message set and two arbitrary deliveries of it.

    The second delivery duplicates every message (each arrives twice,
    in any order), modelling the duplication + reordering the netsim
    link-fault layer injects.
    """
    epochs = draw(
        st.lists(st.integers(1, 30), min_size=1, max_size=6, unique=True)
    )
    states = ["revoked", "not_revoked"]
    messages = [(epoch, draw(st.sampled_from(states))) for epoch in epochs]
    order_a = draw(st.permutations(messages))
    order_b = draw(st.permutations(messages + messages))
    return messages, order_a, order_b


_FIXTURES = {}


def _shared_fixtures():
    """One RSA key pair / TSA / claim template for every example."""
    if not _FIXTURES:
        rng = np.random.default_rng(99)
        clock = ManualClock()
        keypair = KeyPair.generate(bits=512, rng=rng)
        tsa = TimestampAuthority(
            keypair=KeyPair.generate(bits=512, rng=rng), clock=clock.now
        )
        content_hash = sha256_hex(b"lww-property")
        _FIXTURES.update(
            clock=clock,
            keypair=keypair,
            tsa=tsa,
            content_hash=content_hash,
            signature=keypair.sign(content_hash.encode("utf-8")),
            timestamp=tsa.issue(claim_digest(content_hash, keypair.public)),
        )
    return _FIXTURES


def _fresh_replica(shard_id: str, serial: int) -> ClusterShard:
    f = _shared_fixtures()
    shard = ClusterShard(
        shard_id, "lww", f["tsa"], keypair=f["keypair"], clock=f["clock"].now
    )
    shard.ledger.store.put(
        ClaimRecord(
            identifier=PhotoIdentifier("lww", serial),
            content_hash=f["content_hash"],
            content_signature=f["signature"],
            public_key=f["keypair"].public,
            timestamp=f["timestamp"],
            state=RevocationState.NOT_REVOKED,
            revocation_epoch=0,
        )
    )
    return shard


@settings(max_examples=50, deadline=None)
@given(interleaving=delivery_interleavings())
def test_lww_convergence_is_order_and_duplication_independent(interleaving):
    messages, order_a, order_b = interleaving
    serial = 7
    replica_a = _fresh_replica("a", serial)
    replica_b = _fresh_replica("b", serial)
    for replica, order in ((replica_a, order_a), (replica_b, order_b)):
        for epoch, state in order:
            replica.apply_state(
                {"serial": serial, "state": state, "epoch": epoch}
            )

    record_a = replica_a.ledger.store.get(serial)
    record_b = replica_b.ledger.store.get(serial)
    # Convergence: same survivor on both replicas...
    assert (record_a.state, record_a.revocation_epoch) == (
        record_b.state,
        record_b.revocation_epoch,
    )
    # ...and the survivor is exactly the highest-epoch message.
    winner_epoch, winner_state = max(messages)
    assert record_a.revocation_epoch == winner_epoch
    assert record_a.state == RevocationState(winner_state)
    # Duplicated deliveries were recognized as stale, not re-applied.
    assert replica_b.stale_applies_ignored >= len(messages)
