"""The frontend's resilience layer on the synchronous local transport.

Covers the client-side half (bounded failover, degraded fail-closed
reads, breakers, config validation) and the server-side repair half
(hinted handoff replay, anti-entropy re-replication after a wipe).
"""

import pytest

from repro.chaos import RevocationBloom
from repro.cluster import AntiEntropySweeper, ClusterConfig
from repro.ledger.records import RevocationState

from tests.cluster.conftest import LocalCluster


def _status_unfiltered(cluster, identifier):
    """A status read that skips the Bloom pre-check (forces shard I/O)."""
    box = []
    cluster.frontend.status_async(identifier, box.append, use_filter=False)
    cluster.frontend.flush()
    assert box, "status did not complete synchronously"
    return box[0]


# -- bounded failover (the PR's bugfix satellite) ------------------------------


def test_failover_depth_is_bounded():
    """Primary reads stop hopping at ``max_failover_depth``."""
    cluster = LocalCluster(
        config=ClusterConfig(
            replication_factor=3, read_quorum=1, max_failover_depth=1
        )
    )
    identifier = cluster.claim_photo("depth")
    for shard_id in cluster.frontend.replicas_for(identifier):
        cluster.transport.kill(shard_id)
    answer = cluster.frontend.status(identifier)
    assert not answer.ok
    assert answer.revoked  # legacy fail-safe verdict
    # One primary + one failover hop: never the third replica.
    assert cluster.frontend.stats.failovers == 1
    assert cluster.frontend.stats.shard_lookups == 2


def test_failover_depth_zero_means_no_failover():
    cluster = LocalCluster(
        config=ClusterConfig(
            replication_factor=3, read_quorum=1, max_failover_depth=0
        )
    )
    identifier = cluster.claim_photo("no-failover")
    cluster.transport.kill(cluster.frontend.replicas_for(identifier)[0])
    # The detector hasn't suspected anyone yet, so the primary is tried
    # (and fails) with no second hop.
    answer = cluster.frontend.status(identifier)
    assert not answer.ok
    assert cluster.frontend.stats.failovers == 0


def test_failover_still_finds_a_survivor():
    cluster = LocalCluster(
        config=ClusterConfig(
            replication_factor=3, read_quorum=1, max_failover_depth=2
        )
    )
    identifier = cluster.claim_photo("survivor")
    replicas = cluster.frontend.replicas_for(identifier)
    cluster.transport.kill(replicas[0])
    cluster.transport.kill(replicas[1])
    answer = cluster.frontend.status(identifier)
    assert answer.ok
    assert answer.answered_by == replicas[2]


# -- degraded reads are fail-closed --------------------------------------------


def test_degraded_read_reports_acked_revocation_with_all_replicas_dead():
    cluster = LocalCluster(
        config=ClusterConfig(replication_factor=3, degraded_reads=True)
    )
    cluster.frontend.filterset = RevocationBloom(capacity=256)
    identifier = cluster.claim_photo("degraded-revoked")
    cluster.frontend.revoke(identifier, cluster.owner)  # acked => in filter
    for shard_id in cluster.frontend.replicas_for(identifier):
        cluster.transport.kill(shard_id)
    answer = _status_unfiltered(cluster, identifier)
    assert answer.ok  # degraded answers are answers, not errors
    assert answer.degraded
    assert answer.source == "degraded"
    assert answer.revoked  # never fail open on an acked revocation
    assert cluster.frontend.stats.degraded_answers == 1


def test_degraded_read_clears_unrevoked_records_from_the_filter():
    cluster = LocalCluster(
        config=ClusterConfig(replication_factor=3, degraded_reads=True)
    )
    cluster.frontend.filterset = RevocationBloom(capacity=256)
    identifier = cluster.claim_photo("degraded-clean")
    for shard_id in cluster.frontend.replicas_for(identifier):
        cluster.transport.kill(shard_id)
    answer = _status_unfiltered(cluster, identifier)
    assert answer.degraded
    assert not answer.revoked  # filter miss: definitively not revoked


def test_degraded_read_without_any_filter_is_maximally_conservative():
    cluster = LocalCluster(
        config=ClusterConfig(replication_factor=3, degraded_reads=True)
    )
    identifier = cluster.claim_photo("no-filter")
    for shard_id in cluster.frontend.replicas_for(identifier):
        cluster.transport.kill(shard_id)
    answer = _status_unfiltered(cluster, identifier)
    assert answer.degraded and answer.revoked


# -- circuit breakers ----------------------------------------------------------


def test_open_breakers_divert_reads_to_the_degraded_path():
    cluster = LocalCluster(
        config=ClusterConfig(
            replication_factor=3,
            breaker_threshold=1,
            degraded_reads=True,
        )
    )
    cluster.frontend.filterset = RevocationBloom(capacity=256)
    identifier = cluster.claim_photo("breaker")
    replicas = cluster.frontend.replicas_for(identifier)
    for shard_id in replicas:
        cluster.transport.kill(shard_id)
    first = _status_unfiltered(cluster, identifier)
    assert first.degraded
    # Every replica breaker is now open: the next read is refused
    # before any shard I/O happens.
    lookups_before = cluster.frontend.stats.shard_lookups
    second = _status_unfiltered(cluster, identifier)
    assert second.degraded
    assert cluster.frontend.stats.shard_lookups == lookups_before
    assert sorted(cluster.frontend.breakers.open_targets()) == sorted(replicas)


# -- hinted handoff ------------------------------------------------------------


def test_hinted_handoff_repairs_the_replica_a_write_missed():
    cluster = LocalCluster(
        config=ClusterConfig(
            replication_factor=3, write_quorum=2, hinted_handoff=True
        )
    )
    identifier = cluster.claim_photo("handoff")
    victim = cluster.frontend.replicas_for(identifier)[0]
    cluster.transport.kill(victim)
    cluster.frontend.revoke(identifier, cluster.owner)
    assert cluster.frontend.hints.pending(victim) >= 1
    # While down, the victim still holds the unrevoked claim.
    record = cluster.shards[victim].ledger.store.get(identifier.serial)
    assert record.state is RevocationState.NOT_REVOKED

    cluster.transport.revive(victim)
    cluster.frontend.replay_hints()
    assert cluster.frontend.hints.pending() == 0
    assert cluster.frontend.hints.drained_at is not None
    record = cluster.shards[victim].ledger.store.get(identifier.serial)
    assert record.state is RevocationState.REVOKED
    assert record.revocation_epoch == 1


def test_hints_coalesce_to_the_newest_epoch():
    cluster = LocalCluster(
        config=ClusterConfig(
            replication_factor=3, write_quorum=2, hinted_handoff=True
        )
    )
    identifier = cluster.claim_photo("coalesce")
    victim = cluster.frontend.replicas_for(identifier)[0]
    cluster.transport.kill(victim)
    cluster.frontend.revoke(identifier, cluster.owner)  # epoch 1
    cluster.frontend.unrevoke(identifier, cluster.owner)  # epoch 2
    assert cluster.frontend.hints.pending(victim) == 1  # coalesced
    cluster.transport.revive(victim)
    cluster.frontend.replay_hints()
    record = cluster.shards[victim].ledger.store.get(identifier.serial)
    assert record.state is RevocationState.NOT_REVOKED
    assert record.revocation_epoch == 2


# -- anti-entropy --------------------------------------------------------------


def test_sweep_restores_a_wiped_replica():
    cluster = LocalCluster(config=ClusterConfig(replication_factor=3))
    identifiers = [cluster.claim_photo(f"sweep-{i}") for i in range(8)]
    for identifier in identifiers[:4]:
        cluster.frontend.revoke(identifier, cluster.owner)
    victim = cluster.frontend.replicas_for(identifiers[0])[0]
    held_before = len(cluster.shards[victim].ledger.store)
    assert cluster.shards[victim].ledger.store.wipe() == held_before

    sweeper = AntiEntropySweeper(
        "cluster", cluster.ring, cluster.transport, replication_factor=3
    )
    report = sweeper.sweep()
    assert report.complete
    assert report.push_failures == 0
    assert report.records_pushed >= held_before
    store = cluster.shards[victim].ledger.store
    assert len(store) == held_before
    # Restored records carry the revocation state, not just the claim.
    for identifier in identifiers[:4]:
        replicas = cluster.frontend.replicas_for(identifier)
        if victim in replicas:
            assert store.get(identifier.serial).is_revoked


def test_sweep_is_idempotent_and_reports_consistency():
    cluster = LocalCluster(config=ClusterConfig(replication_factor=3))
    for i in range(4):
        cluster.claim_photo(f"idempotent-{i}")
    sweeper = AntiEntropySweeper(
        "cluster", cluster.ring, cluster.transport, replication_factor=3
    )
    first = sweeper.sweep()
    second = sweeper.sweep()
    assert second.records_pushed == 0
    assert second.already_consistent == second.serials_scanned
    assert first.serials_scanned == second.serials_scanned


def test_sweep_skips_unreachable_shards_without_failing():
    cluster = LocalCluster(config=ClusterConfig(replication_factor=3))
    cluster.claim_photo("partial")
    cluster.transport.kill("shard-0")
    sweeper = AntiEntropySweeper(
        "cluster", cluster.ring, cluster.transport, replication_factor=3
    )
    report = sweeper.sweep()
    assert not report.complete
    assert report.unreachable == ["shard-0"]


# -- config validation (satellite) ---------------------------------------------


def test_read_quorum_above_replication_factor_names_both_numbers():
    with pytest.raises(ValueError, match=r"read_quorum 4 cannot exceed "
                                         r"replication_factor 3"):
        ClusterConfig(replication_factor=3, read_quorum=4).resolved()


def test_negative_batch_window_is_rejected():
    with pytest.raises(ValueError, match="batch_window must be non-negative"):
        ClusterConfig(batch_window=-0.001).resolved()


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(request_deadline=0.0),
        dict(max_retries=-1),
        dict(max_failover_depth=-1),
        dict(backoff_base=0.0),
        dict(backoff_cap=0.001, backoff_base=0.01),
        dict(breaker_threshold=0),
        dict(breaker_reset_timeout=0.0),
        dict(breaker_half_open_probes=0),
        dict(shed_rate=0.0),
        dict(shed_burst=0),
        dict(hint_replay_interval=0.0),
        dict(max_hints_per_shard=0),
    ],
)
def test_resilience_knobs_are_validated(kwargs):
    with pytest.raises(ValueError):
        ClusterConfig(**kwargs).resolved()


def test_resolved_defaults_preserve_legacy_semantics():
    cfg = ClusterConfig().resolved()
    assert cfg.request_deadline is None
    assert cfg.max_retries == 0
    assert cfg.breaker_threshold is None
    assert cfg.shed_rate is None
    assert not cfg.degraded_reads
    assert not cfg.hinted_handoff
