"""Frontend coordination: claims, quorum status, revocation, repair."""

import pytest

from repro.cluster import ClusterConfig, ClusterFrontend, content_serial
from repro.core.errors import ClaimError, LedgerUnavailableError, RevocationError
from repro.crypto.hashing import sha256_hex

from tests.cluster.conftest import LocalCluster


class TestClaims:
    def test_claim_places_records_on_all_replicas(self, local_cluster):
        identifier = local_cluster.claim_photo()
        replicas = local_cluster.frontend.replicas_for(identifier)
        assert len(replicas) == 3
        for shard_id in replicas:
            store = local_cluster.shards[shard_id].ledger.store
            assert identifier.serial in store

    def test_serial_is_content_derived(self, local_cluster):
        identifier = local_cluster.claim_photo("pic-a")
        content_hash = sha256_hex(b"cluster:pic-a")
        assert identifier.serial == content_serial(content_hash)
        assert identifier.ledger_id == "cluster"

    def test_claim_is_idempotent(self, local_cluster):
        first = local_cluster.claim_photo("dup")
        second = local_cluster.claim_photo("dup")
        assert first == second
        assert local_cluster.frontend.stats.claims == 2

    def test_claim_fails_without_write_quorum(self, local_cluster):
        identifier = local_cluster.claim_photo("probe")
        for shard_id in local_cluster.frontend.replicas_for(identifier)[:2]:
            local_cluster.transport.kill(shard_id)
        with pytest.raises(ClaimError):
            local_cluster.claim_photo("probe")  # same placement, quorum dead


class TestStatus:
    def test_claimed_photo_reads_not_revoked(self, local_cluster):
        identifier = local_cluster.claim_photo()
        answer = local_cluster.frontend.status(identifier)
        assert answer.ok and not answer.revoked
        assert answer.source == "shard"
        assert answer.epoch == 0
        assert local_cluster.directory.verify(answer.proof)

    def test_status_survives_one_dead_replica(self, local_cluster):
        identifier = local_cluster.claim_photo()
        local_cluster.frontend.revoke(identifier, local_cluster.owner)
        local_cluster.transport.kill(
            local_cluster.frontend.replicas_for(identifier)[0]
        )
        answer = local_cluster.frontend.status(identifier)
        assert answer.ok and answer.revoked and answer.epoch == 1

    def test_status_fail_safe_without_quorum(self, local_cluster):
        identifier = local_cluster.claim_photo()
        for shard_id in local_cluster.frontend.replicas_for(identifier)[:2]:
            local_cluster.transport.kill(shard_id)
        answer = local_cluster.frontend.status(identifier)
        assert not answer.ok
        assert answer.revoked  # fail-safe verdict
        with pytest.raises(LedgerUnavailableError):
            local_cluster.frontend.status_proof(identifier)

    def test_status_proof_feeds_validators(self, local_cluster):
        identifier = local_cluster.claim_photo()
        proof = local_cluster.frontend.status_proof(identifier)
        assert not proof.revoked
        assert local_cluster.directory.verify(proof)

    def test_filter_short_circuit(self):
        class NeverRevoked:
            def might_be_revoked(self, compact):
                return False

        cluster = LocalCluster()
        cluster.frontend.filterset = NeverRevoked()
        identifier = cluster.claim_photo()
        answer = cluster.frontend.status(identifier)
        assert answer.source == "filter" and not answer.revoked
        assert cluster.frontend.stats.filter_short_circuits == 1
        # Validators bypass the filter and still get a signed proof.
        assert cluster.frontend.status_proof(identifier) is not None


class TestRevocation:
    def test_revoke_and_unrevoke_bump_epochs(self, local_cluster):
        identifier = local_cluster.claim_photo()
        verdict = local_cluster.frontend.revoke(identifier, local_cluster.owner)
        assert verdict == {"state": "revoked", "epoch": 1}
        assert local_cluster.frontend.status(identifier).revoked
        verdict = local_cluster.frontend.unrevoke(identifier, local_cluster.owner)
        assert verdict == {"state": "not_revoked", "epoch": 2}
        assert not local_cluster.frontend.status(identifier).revoked

    def test_revocation_reaches_every_replica(self, local_cluster):
        identifier = local_cluster.claim_photo()
        local_cluster.frontend.revoke(identifier, local_cluster.owner)
        for shard_id in local_cluster.frontend.replicas_for(identifier):
            record = local_cluster.shards[shard_id].ledger.store.get(
                identifier.serial
            )
            assert record.revocation_epoch == 1

    def test_challenge_fails_over_a_dead_coordinator(self, local_cluster):
        identifier = local_cluster.claim_photo()
        primary = local_cluster.frontend.replicas_for(identifier)[0]
        local_cluster.transport.kill(primary)
        verdict = local_cluster.frontend.revoke(identifier, local_cluster.owner)
        assert verdict["state"] == "revoked"
        assert local_cluster.frontend.stats.failovers >= 1

    def test_revocation_needs_all_replicas_dead_to_fail(self, local_cluster):
        identifier = local_cluster.claim_photo()
        for shard_id in local_cluster.frontend.replicas_for(identifier):
            local_cluster.transport.kill(shard_id)
        with pytest.raises(RevocationError):
            local_cluster.frontend.revoke(identifier, local_cluster.owner)


class TestReadRepair:
    def test_quorum_read_heals_a_stale_replica(self, local_cluster):
        identifier = local_cluster.claim_photo()
        replicas = local_cluster.frontend.replicas_for(identifier)
        victim = replicas[-1]
        local_cluster.transport.kill(victim)
        local_cluster.frontend.revoke(identifier, local_cluster.owner)
        stale = local_cluster.shards[victim].ledger.store.get(identifier.serial)
        assert stale.revocation_epoch == 0  # missed the write
        local_cluster.transport.revive(victim)
        answer = local_cluster.frontend.status(identifier)
        assert answer.revoked and answer.epoch == 1
        assert local_cluster.frontend.stats.read_repairs >= 1
        healed = local_cluster.shards[victim].ledger.store.get(identifier.serial)
        assert healed.revocation_epoch == 1
        assert local_cluster.shards[victim].states_applied >= 1


class TestBackpressure:
    def test_inflight_window_bounds_outstanding_batches(self):
        """Overload queues at the frontend instead of flooding shards."""
        from repro.cluster import SimulatedCluster

        cluster = SimulatedCluster(
            num_shards=4,
            config=ClusterConfig(
                replication_factor=3, max_batch=4, max_inflight=2
            ),
            seed=11,
        )
        population = cluster.seed_population(80, revoked_fraction=0.3)
        answers = []
        for identifier in population.identifiers:
            cluster.simulator.schedule_at(
                0.0, cluster.frontend.status_async, identifier, answers.append
            )
        cluster.simulator.run(until=30.0)
        stats = cluster.frontend.stats

        # Every query completes: the window delays batches, never drops
        # them.
        assert len(answers) == population.size
        assert all(a.ok for a in answers)
        # The window held: never more than max_inflight outstanding
        # RPCs, and the excess visibly queued.
        assert stats.peak_inflight <= 2
        assert stats.throttled > 0
        # No residual growth: the queues fully drained.
        assert cluster.frontend._inflight == 0
        assert all(not q for q in cluster.frontend._queues.values())

    def test_bloom_precheck_never_masks_a_revoked_record(self):
        """Filter short-circuits are safe: no false negatives, ever."""
        from repro.ledger.export import FilterExporter
        from repro.proxy.filterset import ProxyFilterSet

        cluster = LocalCluster(
            num_shards=1, config=ClusterConfig(replication_factor=1)
        )
        identifiers = [cluster.claim_photo(f"p{i}") for i in range(12)]
        revoked = identifiers[:5]
        for identifier in revoked:
            cluster.frontend.revoke(identifier, cluster.owner)

        shard = next(iter(cluster.shards.values()))
        exporter = FilterExporter(shard.ledger, nbits=4096, num_hashes=4)
        exporter.publish()
        filterset = ProxyFilterSet()
        filterset.subscribe(exporter)
        filterset.refresh()
        cluster.frontend.filterset = filterset

        # Every record revoked at publish time hits the filter and gets
        # the authoritative shard answer — the pre-check cannot mask it.
        for identifier in revoked:
            answer = cluster.frontend.status(identifier)
            assert answer.revoked and answer.source == "shard"
        # Valid records still flow (filter or shard, both answer false).
        for identifier in identifiers[5:]:
            answer = cluster.frontend.status(identifier)
            assert answer.ok and not answer.revoked
        assert cluster.frontend.stats.filter_short_circuits >= 1

        # A revocation after the snapshot is invisible until the next
        # refresh closes the staleness window.
        late = identifiers[-1]
        cluster.frontend.revoke(late, cluster.owner)
        exporter.publish()
        filterset.refresh()
        answer = cluster.frontend.status(late)
        assert answer.revoked and answer.source == "shard"


class TestConfig:
    def test_quorums_default_to_majorities(self):
        cfg = ClusterConfig(replication_factor=5).resolved()
        assert cfg.write_quorum == 3 and cfg.read_quorum == 3
        assert cfg.hedged_reads is True
        solo = ClusterConfig(replication_factor=1).resolved()
        assert solo.write_quorum == solo.read_quorum == 1
        assert solo.hedged_reads is False

    def test_invalid_configs_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig(replication_factor=0).resolved()
        with pytest.raises(ValueError):
            ClusterConfig(replication_factor=3, read_quorum=4).resolved()
        with pytest.raises(ValueError):
            ClusterConfig(max_batch=0).resolved()

    def test_replication_cannot_exceed_ring(self):
        cluster = LocalCluster(
            num_shards=2, config=ClusterConfig(replication_factor=2)
        )
        with pytest.raises(ValueError):
            ClusterFrontend(
                "cluster",
                cluster.ring,
                cluster.transport,
                cluster.tsa,
                config=ClusterConfig(replication_factor=3),
            )

    def test_batching_stats_accumulate(self, local_cluster):
        for i in range(4):
            local_cluster.frontend.status(local_cluster.claim_photo(f"p{i}"))
        stats = local_cluster.frontend.stats
        assert stats.queries == 4
        assert stats.batches_sent > 0
        assert stats.batch_items == stats.shard_lookups
        assert stats.mean_batch_size >= 1.0
