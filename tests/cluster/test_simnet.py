"""The cluster under the discrete-event simulator: faults and determinism."""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, ShardCostModel, SimulatedCluster


def _run_queries(cluster, population, indices, kill_at=None, victim=None):
    """Schedule status queries; returns parallel (answers, latencies)."""
    sim = cluster.simulator
    answers = {}
    latencies = {}

    def ask(slot, identifier):
        started = sim.now
        cluster.frontend.status_async(
            identifier,
            lambda answer: (
                answers.__setitem__(slot, answer),
                latencies.__setitem__(slot, sim.now - started),
            ),
        )

    for slot, index in enumerate(indices):
        sim.schedule(slot * 0.002, ask, slot, population.identifiers[index])
    if kill_at is not None:
        sim.schedule(kill_at, cluster.kill_shard, victim)
    sim.run(until=30.0)
    return answers, latencies


def _small_cluster(seed=11, **kwargs):
    kwargs.setdefault("config", ClusterConfig(replication_factor=3))
    kwargs.setdefault("rpc_timeout", 0.05)
    return SimulatedCluster(num_shards=3, seed=seed, **kwargs)


def test_quorum_reads_correct_with_replica_killed_mid_run():
    cluster = _small_cluster()
    population = cluster.seed_population(80, revoked_fraction=0.3)
    rng = np.random.default_rng(5)
    indices = rng.integers(0, population.size, size=60)
    answers, latencies = _run_queries(
        cluster, population, indices, kill_at=0.05, victim="shard-1"
    )
    assert len(answers) == len(indices)
    for slot, index in enumerate(indices):
        answer = answers[slot]
        assert answer.ok, answer.error
        assert answer.revoked == population.revoked(index)
    # The dead shard is discovered through timeouts alone.
    assert cluster.detector.suspects() == ["shard-1"]
    # Hedged quorum reads mask the dead replica: no query ever waits
    # for the RPC timeout, the surviving pair answers first.
    assert max(latencies.values()) < cluster.transport.timeout


def test_population_seeding_places_real_replicas():
    cluster = _small_cluster()
    population = cluster.seed_population(50, revoked_fraction=0.5)
    replication = cluster.frontend.config.replication_factor
    for index, identifier in enumerate(population.identifiers):
        replicas = cluster.ring.replicas(identifier.to_compact(), replication)
        for shard_id in replicas:
            record = cluster.shards[shard_id].ledger.store.get(identifier.serial)
            assert record is not None
            assert (record.revocation_epoch == 1) == population.revoked(index)
    with pytest.raises(ValueError):
        cluster.seed_population(1, revoked_fraction=1.5)


def test_batching_amortizes_shard_requests():
    cluster = _small_cluster(config=ClusterConfig(replication_factor=3, batch_window=0.01))
    population = cluster.seed_population(100, revoked_fraction=0.2)
    sim = cluster.simulator
    done = []
    # A burst arriving inside one batch window must coalesce.
    for index in range(40):
        identifier = population.identifiers[index]
        sim.schedule(
            0.0005, cluster.frontend.status_async, identifier, done.append
        )
    sim.run(until=10.0)
    stats = cluster.frontend.stats
    assert len(done) == 40
    assert stats.batches_sent < stats.shard_lookups
    assert stats.mean_batch_size > 2.0


def test_same_seed_same_trajectory():
    outcomes = []
    for _ in range(2):
        cluster = _small_cluster(seed=23)
        population = cluster.seed_population(40, revoked_fraction=0.4)
        indices = list(range(30))
        answers, latencies = _run_queries(cluster, population, indices)
        outcomes.append(
            (
                [answers[slot].revoked for slot in range(len(indices))],
                [round(latencies[slot], 9) for slot in range(len(indices))],
                cluster.simulator.now,
            )
        )
    assert outcomes[0] == outcomes[1]


def test_revive_heals_via_read_repair_in_sim():
    cluster = _small_cluster(
        config=ClusterConfig(replication_factor=3, read_quorum=2)
    )
    population = cluster.seed_population(10, revoked_fraction=0.0)
    sim = cluster.simulator
    identifier = population.identifiers[0]
    replicas = cluster.frontend.replicas_for(identifier)
    victim = replicas[-1]

    # Manually diverge the victim: it misses a revocation epoch.
    for shard_id in replicas:
        if shard_id == victim:
            continue
        record = cluster.shards[shard_id].ledger.store.get(identifier.serial)
        from repro.ledger.records import RevocationState

        record.state = RevocationState.REVOKED
        record.revocation_epoch = 1

    answers = []
    sim.schedule(0.0, cluster.frontend.status_async, identifier, answers.append)
    sim.run(until=5.0)
    assert answers and answers[0].revoked and answers[0].epoch == 1
    sim.run(until=10.0)  # let the repair RPC land
    healed = cluster.shards[victim].ledger.store.get(identifier.serial)
    assert healed.revocation_epoch == 1


def test_cost_model_prices_batches():
    model = ShardCostModel(request_overhead=1.0, per_status_item=0.5, per_write=2.0)
    assert model.cost("status", {"serials": [1, 2, 3]}) == pytest.approx(2.5)
    assert model.cost("claim", {}) == pytest.approx(3.0)
    assert model.cost("challenge", {}) == pytest.approx(1.0)
