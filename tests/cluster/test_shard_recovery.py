"""Shard-level durability: journaling, snapshots, crash recovery."""

import numpy as np

from repro.cluster import ClusterConfig, SimulatedCluster
from repro.ledger.recovery import records_digest


def _cluster(seed=11, **kwargs):
    kwargs.setdefault("config", ClusterConfig(replication_factor=3))
    kwargs.setdefault("rpc_timeout", 0.05)
    return SimulatedCluster(num_shards=3, seed=seed, **kwargs)


def _shard_digests(cluster):
    return {
        shard_id: records_digest(shard.ledger.store.records_map())
        for shard_id, shard in cluster.shards.items()
    }


class TestJournaling:
    def test_every_mutation_reaches_disk(self):
        cluster = _cluster()
        cluster.seed_population(60, revoked_fraction=0.25)
        for shard_id, shard in cluster.shards.items():
            disk = cluster.disks[shard_id]
            assert disk.events_written == shard.ledger.store.events.head_seq
            assert disk.events_written > 0

    def test_snapshots_ride_the_configured_cadence(self):
        cluster = _cluster(snapshot_interval=16)
        cluster.seed_population(60, revoked_fraction=0.25)
        for shard_id, shard in cluster.shards.items():
            disk = cluster.disks[shard_id]
            expected = shard.ledger.store.events.head_seq // 16
            assert disk.snapshots_written == expected

    def test_durable_false_runs_diskless(self):
        cluster = _cluster(durable=False)
        cluster.seed_population(20, revoked_fraction=0.25)
        assert all(disk is None for disk in cluster.disks.values())
        assert cluster.restart_shard("shard-0") == 0
        assert cluster.recoveries == []


class TestCrashRecovery:
    def test_restart_rebuilds_exact_state(self):
        cluster = _cluster(snapshot_interval=16)
        cluster.seed_population(60, revoked_fraction=0.25)
        before = _shard_digests(cluster)
        cluster.kill_shard("shard-1")
        cluster.restart_shard("shard-1")
        assert _shard_digests(cluster) == before
        (recovery,) = cluster.recoveries
        assert recovery.shard_id == "shard-1"
        assert recovery.evidence == ()
        assert recovery.installed_digest == recovery.replayed_digest

    def test_restart_resumes_the_chain(self):
        cluster = _cluster()
        population = cluster.seed_population(40, revoked_fraction=0.0)
        cluster.restart_shard("shard-0")
        shard = cluster.shards["shard-0"]
        head_before = shard.ledger.store.events.head_seq
        sim = cluster.simulator
        sim.schedule_at(
            0.1,
            cluster.frontend.revoke_async,
            population.identifiers[0],
            population.owner,
            lambda outcome, error: None,
        )
        sim.run(until=1.0)
        # Post-recovery appends extend the verified chain and the disk.
        for shard_id, shard in cluster.shards.items():
            disk = cluster.disks[shard_id]
            assert disk.events_written == shard.ledger.store.events.head_seq
        assert shard.ledger.store.events.verify_chain()
        assert shard.ledger.store.events.head_seq >= head_before

    def test_wipe_restart_loses_disk_and_memory(self):
        cluster = _cluster()
        cluster.seed_population(30, revoked_fraction=0.25)
        lost = cluster.restart_shard("shard-2", wipe=True)
        assert lost > 0
        assert cluster.disks["shard-2"].events_written == 0
        assert cluster.shards["shard-2"].ledger.store.counts()["total"] == 0


class TestInjectedFaults:
    def test_torn_disk_recovery_reports_evidence(self):
        cluster = _cluster()
        cluster.seed_population(60, revoked_fraction=0.25)
        assert cluster.inject_storage_fault("shard-0", "torn")
        cluster.restart_shard("shard-0")
        (recovery,) = cluster.recoveries
        assert recovery.evidence == ("torn_record",)
        # The invariant the checker enforces: what the shard adopted is
        # exactly the replay of what it could prove.
        assert recovery.installed_digest == recovery.replayed_digest
        # The disk was truncated back to the verified prefix.
        shard = cluster.shards["shard-0"]
        assert (
            cluster.disks["shard-0"].events_written
            >= shard.ledger.store.events.head_seq
        )

    def test_suffix_loss_backfills_from_peers(self):
        cluster = _cluster(seed=5)
        population = cluster.seed_population(40, revoked_fraction=0.0)
        sim = cluster.simulator
        acked = []
        sim.schedule_at(
            0.1,
            cluster.frontend.revoke_async,
            population.identifiers[0],
            population.owner,
            lambda outcome, error: acked.append(error is None),
        )
        sim.run(until=0.5)
        assert acked == [True]
        # Tear every replica's final record, then restart one: its
        # recovery sheds the revoke, and the scheduled backfill sweep
        # must restore it from the peers.
        victim = cluster.ring.replicas(
            population.identifiers[0].to_compact(), 3
        )[0]
        cluster.kill_shard(victim)
        assert cluster.inject_storage_fault(victim, "torn")
        cluster.restart_shard(victim)
        recovery = cluster.recoveries[-1]
        assert recovery.evidence == ("torn_record",)
        sim.run(until=2.0)
        serial = population.identifiers[0].serial
        record = cluster.shards[victim].ledger.store.get(serial)
        assert record is not None and record.is_revoked

    def test_snapshot_fault_is_detection_only(self):
        cluster = _cluster(snapshot_interval=16)
        cluster.seed_population(60, revoked_fraction=0.25)
        before = _shard_digests(cluster)
        assert cluster.inject_storage_fault("shard-1", "snapshot")
        cluster.restart_shard("shard-1")
        (recovery,) = cluster.recoveries
        assert "snapshot_corrupt" in recovery.evidence
        assert _shard_digests(cluster) == before

    def test_corrupt_uses_the_named_rng_stream(self):
        cluster_a = _cluster(seed=9)
        cluster_b = _cluster(seed=9)
        for cluster in (cluster_a, cluster_b):
            cluster.seed_population(60, revoked_fraction=0.25)
            assert cluster.inject_storage_fault("shard-0", "corrupt")
            cluster.restart_shard("shard-0")
        assert (
            cluster_a.recoveries[-1].evidence
            == cluster_b.recoveries[-1].evidence
        )
        assert (
            cluster_a.recoveries[-1].installed_digest
            == cluster_b.recoveries[-1].installed_digest
        )
