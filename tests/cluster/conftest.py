"""Shared fixtures for cluster tests: a synchronous local cluster."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterDirectory,
    ClusterFrontend,
    ClusterShard,
    FailureDetector,
    HashRing,
    LocalShardTransport,
)
from repro.crypto.hashing import sha256_hex
from repro.crypto.signatures import KeyPair
from repro.crypto.timestamp import TimestampAuthority
from repro.netsim.simulator import ManualClock


class LocalCluster:
    """A full cluster on the in-process transport, for unit tests."""

    def __init__(
        self,
        num_shards: int = 4,
        config: ClusterConfig = None,
        seed: int = 0,
        failure_threshold: int = 2,
        probation: float = 5.0,
    ):
        rng = np.random.default_rng(seed)
        self.clock = ManualClock()
        self.tsa = TimestampAuthority(
            keypair=KeyPair.generate(bits=512, rng=rng), clock=self.clock.now
        )
        shard_ids = [f"shard-{i}" for i in range(num_shards)]
        self.shards = {
            shard_id: ClusterShard(
                shard_id,
                "cluster",
                self.tsa,
                keypair=KeyPair.generate(bits=512, rng=rng),
                clock=self.clock.now,
            )
            for shard_id in shard_ids
        }
        self.ring = HashRing(shard_ids)
        self.transport = LocalShardTransport(self.shards)
        self.detector = FailureDetector(
            self.clock.now,
            failure_threshold=failure_threshold,
            probation=probation,
        )
        self.directory = ClusterDirectory(list(self.shards.values()))
        self.frontend = ClusterFrontend(
            "cluster",
            self.ring,
            self.transport,
            self.tsa,
            detector=self.detector,
            config=config,
            clock=self.clock.now,
        )
        self.owner = KeyPair.generate(bits=512, rng=rng)

    def claim_photo(self, label: str = "photo"):
        """Claim one synthetic photo; returns its identifier."""
        content_hash = sha256_hex(f"cluster:{label}".encode("utf-8"))
        signature = self.owner.sign(content_hash.encode("utf-8"))
        return self.frontend.claim(content_hash, signature, self.owner.public)


@pytest.fixture
def local_cluster():
    return LocalCluster()
