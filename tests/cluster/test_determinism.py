"""Determinism regression: one seed, one byte-identical cluster run.

The whole chaos methodology rests on replay: a violation found at seed
S must be reproducible by re-running seed S.  These tests pin that
guarantee at full strength — identical seeds must reproduce the entire
client-visible history (every operation's timestamps, outcomes and
epochs) and the entire final replica state, *through* an actively
faulted run where partitions, crashes, duplicated messages and clock
skew all perturb event order.
"""

from repro.chaos import run_chaos, state_digest


def _run(seed, intensity=0.8):
    return run_chaos(
        num_shards=4,
        seed=seed,
        intensity=intensity,
        queries=80,
        revocations=8,
        population=50,
    )


def test_identical_seeds_replay_identical_histories():
    first, second = _run(31), _run(31)
    # The full operation trace — issue times, completion times,
    # outcomes, epochs — replays exactly.
    assert first.history.signature() == second.history.signature()
    # So do the aggregate report and the fault schedule that shaped it.
    assert first.row() == second.row()
    assert first.faults == second.faults


def test_identical_seeds_reach_identical_final_states():
    first, second = _run(32), _run(32)
    assert first.digest == second.digest
    # The digest covers every replica's full (state, epoch) map; equal
    # digests with a non-trivial run is the convergence-of-replay claim.
    assert len(first.history.ops) > 0


def test_different_seeds_genuinely_diverge():
    # Guard against a digest/signature that ignores its inputs.
    first, other = _run(33), _run(34)
    assert first.history.signature() != other.history.signature()
    assert first.digest != other.digest


def test_fault_free_runs_replay_too():
    # Zero intensity draws no fault coins at all — the determinism
    # guarantee must hold on the exact RNG draw sequence the seeded
    # experiments (E17) rely on.
    first, second = _run(35, intensity=0.0), _run(35, intensity=0.0)
    assert first.history.signature() == second.history.signature()
    assert first.digest == second.digest
    states = {  # digest helper agrees with itself across calls
        "s": {1: ("revoked", 1)}
    }
    assert state_digest(states) == state_digest(states)
