"""Tests for delta encoding and the analytic sizing model."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.filters.bloom import BloomFilter
from repro.filters.delta import DeltaError, apply_delta, encode_delta
from repro.filters.sizing import (
    bloom_bits_for_fpr,
    bloom_false_positive_rate,
    bloom_fpr_for_size_bytes,
    bloom_optimal_hashes,
    load_reduction_factor,
    paper_scaling_table,
)


def _keys(n: int, prefix: str = "key") -> list[bytes]:
    return [f"{prefix}-{i}".encode() for i in range(n)]


class TestDelta:
    def _pair(self, base_keys: int, extra_keys: int):
        old = BloomFilter(1 << 16, 4)
        old.add_many(_keys(base_keys))
        new = old.copy()
        new.add_many(_keys(extra_keys, "extra"))
        return old, new

    def test_sparse_delta_roundtrip(self):
        old, new = self._pair(2000, 30)
        delta = encode_delta(old, new, 1, 2)
        assert delta.kind == "sparse"
        restored = apply_delta(old, delta, 1)
        assert all(k in restored for k in _keys(30, "extra"))
        assert restored.bits == new.bits

    def test_small_delta_is_small(self):
        old, new = self._pair(2000, 10)
        delta = encode_delta(old, new, 1, 2)
        assert delta.nbytes < old.nbytes / 10

    def test_huge_change_falls_back_to_full(self):
        old = BloomFilter(1 << 12, 4)
        new = BloomFilter(1 << 12, 4)
        new.add_many(_keys(5000))
        delta = encode_delta(old, new, 1, 2)
        assert delta.kind == "full"
        restored = apply_delta(old, delta, 1)
        assert restored.bits == new.bits

    def test_empty_delta(self):
        old, _ = self._pair(100, 0)
        delta = encode_delta(old, old, 3, 4)
        restored = apply_delta(old, delta, 3)
        assert restored.bits == old.bits
        assert delta.num_changed_bits == 0

    def test_version_mismatch_rejected(self):
        old, new = self._pair(100, 5)
        delta = encode_delta(old, new, 1, 2)
        with pytest.raises(DeltaError):
            apply_delta(old, delta, 99)

    def test_geometry_mismatch_rejected(self):
        old, new = self._pair(100, 5)
        delta = encode_delta(old, new, 1, 2)
        other = BloomFilter(1 << 10, 4)
        with pytest.raises(DeltaError):
            apply_delta(other, delta, 1)

    def test_incompatible_filters_rejected(self):
        with pytest.raises(DeltaError):
            encode_delta(BloomFilter(128, 2), BloomFilter(256, 2), 1, 2)

    def test_delta_handles_cleared_bits(self):
        """Revoked-set filters shrink when owners unrevoke; deltas must
        carry cleared bits too (XOR semantics)."""
        dense = BloomFilter(1 << 12, 3)
        dense.add_many(_keys(200))
        sparse = BloomFilter(1 << 12, 3)
        sparse.add_many(_keys(50))
        delta = encode_delta(dense, sparse, 1, 2)
        restored = apply_delta(dense, delta, 1)
        assert restored.bits == sparse.bits


class TestSizingMath:
    def test_fpr_formula_basic(self):
        # 8 bits/key with optimal k ~ 5.5 -> ~2.2%.
        fpr = bloom_false_positive_rate(8_000_000, 1_000_000, 6)
        assert 0.015 < fpr < 0.03

    def test_bits_for_fpr_inverts(self):
        nbits = bloom_bits_for_fpr(1_000_000, 0.01)
        k = bloom_optimal_hashes(nbits, 1_000_000)
        achieved = bloom_false_positive_rate(nbits, 1_000_000, k)
        assert achieved <= 0.012

    def test_optimal_hashes_formula(self):
        # m/n = 8 -> k = round(8 ln 2) = 6.
        assert bloom_optimal_hashes(8000, 1000) == 6

    def test_zero_keys_gives_zero_fpr(self):
        assert bloom_false_positive_rate(1000, 0, 4) == 0.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bloom_false_positive_rate(0, 10, 2)
        with pytest.raises(ValueError):
            bloom_bits_for_fpr(100, 1.5)
        with pytest.raises(ValueError):
            load_reduction_factor(0.0)

    def test_load_reduction_pure_fpr(self):
        assert load_reduction_factor(0.02) == pytest.approx(50.0)

    def test_load_reduction_with_true_hits(self):
        # 1% of views are genuinely revoked: those always query.
        factor = load_reduction_factor(0.02, revoked_view_fraction=0.01)
        assert factor == pytest.approx(1.0 / (0.01 + 0.99 * 0.02))

    def test_analytic_matches_measured(self):
        """The analytic model must track a real filter (the basis for
        extrapolating to the paper's 1 GB / 100 GB points)."""
        n = 50_000
        bloom = BloomFilter.for_capacity(n, 0.02)
        bloom.add_many(_keys(n))
        analytic = bloom_false_positive_rate(bloom.nbits, n, bloom.num_hashes)
        measured = bloom.measure_fpr(50_000, np.random.default_rng(8))
        assert abs(analytic - measured) < 0.01


class TestPaperScalingTable:
    def test_1gb_at_1b_photos_is_2_percent(self):
        """The paper's headline claim: 1 GB filter, 1 B photos, ~2% FPR."""
        rows = {r.population: r for r in paper_scaling_table()}
        row = rows[10**9]
        assert row.filter_gb == 1.0
        assert 0.015 <= row.false_positive_rate <= 0.025

    def test_100gb_at_100b_photos_same_rate(self):
        rows = {r.population: r for r in paper_scaling_table()}
        small, large = rows[10**9], rows[10**11]
        assert large.filter_gb == 100.0
        assert large.false_positive_rate == pytest.approx(
            small.false_positive_rate, rel=0.05
        )

    def test_load_reduction_near_fifty(self):
        """"Lessening the load on ledgers by a factor of fifty"."""
        rows = {r.population: r for r in paper_scaling_table()}
        assert 40 <= rows[10**9].load_reduction <= 55

    def test_fpr_for_size_helper(self):
        fpr = bloom_fpr_for_size_bytes(10**9, 10**9)
        assert 0.015 <= fpr <= 0.025


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=100, max_value=5000),
    st.integers(min_value=0, max_value=100),
)
def test_property_delta_roundtrip(base, extra):
    """Property: apply(encode(old, new)) == new for any growth."""
    old = BloomFilter(1 << 13, 3)
    old.add_many(_keys(base))
    new = old.copy()
    new.add_many(_keys(extra, "x"))
    delta = encode_delta(old, new, 1, 2)
    assert apply_delta(old, delta, 1).bits == new.bits
