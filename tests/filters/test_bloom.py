"""Tests for the Bloom filter."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.filters.bloom import BloomFilter


def _keys(n: int, prefix: str = "key") -> list[bytes]:
    return [f"{prefix}-{i}".encode() for i in range(n)]


class TestMembership:
    def test_no_false_negatives(self):
        bloom = BloomFilter.for_capacity(1000, 0.02)
        keys = _keys(1000)
        bloom.add_many(keys)
        assert all(k in bloom for k in keys)

    def test_empty_filter_contains_nothing(self):
        bloom = BloomFilter(1024, 4)
        assert b"anything" not in bloom

    def test_might_contain_alias(self):
        bloom = BloomFilter(1024, 4)
        bloom.add(b"x")
        assert bloom.might_contain(b"x")

    def test_measured_fpr_near_target(self):
        bloom = BloomFilter.for_capacity(20_000, 0.02)
        bloom.add_many(_keys(20_000))
        fpr = bloom.measure_fpr(20_000, np.random.default_rng(1))
        assert 0.01 < fpr < 0.035  # 2% +/- measurement noise

    def test_estimated_fpr_tracks_measured(self):
        bloom = BloomFilter.for_capacity(10_000, 0.05)
        bloom.add_many(_keys(10_000))
        measured = bloom.measure_fpr(10_000, np.random.default_rng(2))
        assert abs(bloom.estimated_fpr() - measured) < 0.03


class TestGeometry:
    def test_for_capacity_sizing(self):
        bloom = BloomFilter.for_capacity(10_000, 0.02)
        # ~8.14 bits/key at 2%.
        assert 7.5 <= bloom.nbits / 10_000 <= 9.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            BloomFilter(100, 0)
        with pytest.raises(ValueError):
            BloomFilter(100, 2, salt=b"way-too-long!")

    def test_fill_ratio_grows(self):
        bloom = BloomFilter(4096, 3)
        before = bloom.fill_ratio()
        bloom.add_many(_keys(100))
        assert bloom.fill_ratio() > before


class TestUnion:
    def test_union_preserves_members(self):
        a = BloomFilter(8192, 4)
        b = BloomFilter(8192, 4)
        a.add_many(_keys(100, "a"))
        b.add_many(_keys(100, "b"))
        merged = BloomFilter.union([a, b])
        assert all(k in merged for k in _keys(100, "a"))
        assert all(k in merged for k in _keys(100, "b"))

    def test_union_geometry_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(8192, 4).union_with(BloomFilter(4096, 4))
        with pytest.raises(ValueError):
            BloomFilter(8192, 4).union_with(BloomFilter(8192, 5))
        with pytest.raises(ValueError):
            BloomFilter(8192, 4, salt=b"s1").union_with(
                BloomFilter(8192, 4, salt=b"s2")
            )

    def test_union_counts_accumulate(self):
        a, b = BloomFilter(8192, 4), BloomFilter(8192, 4)
        a.add_many(_keys(10, "a"))
        b.add_many(_keys(20, "b"))
        merged = BloomFilter.union([a, b])
        assert merged.num_keys == 30

    def test_union_empty_list_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter.union([])


class TestSerialization:
    def test_bytes_roundtrip(self):
        bloom = BloomFilter(4096, 3)
        bloom.add_many(_keys(50))
        restored = BloomFilter.from_bytes(4096, 3, bloom.to_bytes())
        assert all(k in restored for k in _keys(50))

    def test_copy_independent(self):
        bloom = BloomFilter(4096, 3)
        clone = bloom.copy()
        clone.add(b"only-in-clone")
        assert b"only-in-clone" not in bloom


@settings(max_examples=20, deadline=None)
@given(st.lists(st.binary(min_size=1, max_size=24), min_size=1, max_size=100))
def test_property_no_false_negatives(keys):
    """Property: every added key is always reported present."""
    bloom = BloomFilter(4096, 5)
    bloom.add_many(keys)
    assert all(k in bloom for k in keys)


@settings(max_examples=15, deadline=None)
@given(
    st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=50),
    st.lists(st.binary(min_size=1, max_size=16), min_size=1, max_size=50),
)
def test_property_union_is_superset(keys_a, keys_b):
    """Property: the union reports every key either side held."""
    a, b = BloomFilter(4096, 4), BloomFilter(4096, 4)
    a.add_many(keys_a)
    b.add_many(keys_b)
    merged = BloomFilter.union([a, b])
    assert all(k in merged for k in keys_a + keys_b)
