"""Tests for counting Bloom, Xor, and binary fuse filters."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.filters.binary_fuse import BinaryFuseFilter
from repro.filters.counting import CountingBloomFilter
from repro.filters.xor_filter import XorFilter


def _keys(n: int, prefix: str = "key") -> list[bytes]:
    return [f"{prefix}-{i}".encode() for i in range(n)]


class TestCountingBloom:
    def test_add_remove_cycle(self):
        cbf = CountingBloomFilter(4096, 4)
        cbf.add(b"x")
        assert b"x" in cbf
        cbf.remove(b"x")
        assert b"x" not in cbf

    def test_remove_keeps_other_keys(self):
        cbf = CountingBloomFilter(4096, 4)
        for k in _keys(50):
            cbf.add(k)
        cbf.remove(b"key-0")
        assert all(k in cbf for k in _keys(50)[1:])

    def test_remove_absent_key_refused(self):
        cbf = CountingBloomFilter(4096, 4)
        cbf.add(b"present")
        with pytest.raises(KeyError):
            cbf.remove(b"definitely-not-present-key")

    def test_duplicate_adds_need_duplicate_removes(self):
        cbf = CountingBloomFilter(4096, 4)
        cbf.add(b"x")
        cbf.add(b"x")
        cbf.remove(b"x")
        assert b"x" in cbf
        cbf.remove(b"x")
        assert b"x" not in cbf

    def test_projection_matches_membership(self):
        cbf = CountingBloomFilter(4096, 4)
        keys = _keys(200)
        for k in keys:
            cbf.add(k)
        for k in keys[:100]:
            cbf.remove(k)
        projected = cbf.project()
        assert all(k in projected for k in keys[100:])
        assert projected.nbits == cbf.nbits

    def test_projection_geometry_compatible_with_plain(self):
        from repro.filters.bloom import BloomFilter

        cbf = CountingBloomFilter(4096, 4)
        cbf.add(b"a")
        plain = BloomFilter(4096, 4)
        plain.add(b"b")
        merged = cbf.project()
        merged.union_with(plain)
        assert b"a" in merged and b"b" in merged


class TestXorFilter:
    def test_no_false_negatives(self):
        keys = _keys(2000)
        xf = XorFilter.build(keys)
        assert all(k in xf for k in keys)

    def test_fpr_near_1_over_256(self):
        xf = XorFilter.build(_keys(5000))
        fpr = xf.measure_fpr(30_000, np.random.default_rng(3))
        assert fpr < 0.012  # expected ~0.0039

    def test_bits_per_key_near_paper_value(self):
        xf = XorFilter.build(_keys(20_000))
        assert 9.0 < xf.bits_per_key() < 11.0

    def test_duplicates_collapsed(self):
        xf = XorFilter.build([b"a", b"a", b"b"])
        assert xf.num_keys == 2
        assert b"a" in xf

    def test_tiny_sets(self):
        for n in (1, 2, 3):
            keys = _keys(n)
            xf = XorFilter.build(keys)
            assert all(k in xf for k in keys)

    def test_empty_set(self):
        xf = XorFilter.build([])
        assert b"x" not in xf


class TestBinaryFuseFilter:
    def test_no_false_negatives(self):
        keys = _keys(2000)
        bf = BinaryFuseFilter.build(keys)
        assert all(k in bf for k in keys)

    def test_fpr_near_1_over_256(self):
        bf = BinaryFuseFilter.build(_keys(5000))
        fpr = bf.measure_fpr(30_000, np.random.default_rng(4))
        assert fpr < 0.012

    def test_bits_per_key_beats_xor_at_scale(self):
        keys = _keys(50_000)
        xor_bpk = XorFilter.build(keys).bits_per_key()
        fuse_bpk = BinaryFuseFilter.build(keys).bits_per_key()
        assert fuse_bpk < xor_bpk

    def test_small_sets(self):
        for n in (1, 5, 37):
            keys = _keys(n)
            bf = BinaryFuseFilter.build(keys)
            assert all(k in bf for k in keys)


@settings(max_examples=15, deadline=None)
@given(st.sets(st.binary(min_size=1, max_size=16), min_size=1, max_size=200))
def test_property_xor_filter_complete(keys):
    """Property: xor filters never produce false negatives."""
    xf = XorFilter.build(sorted(keys))
    assert all(k in xf for k in keys)


@settings(max_examples=15, deadline=None)
@given(st.sets(st.binary(min_size=1, max_size=16), min_size=1, max_size=200))
def test_property_fuse_filter_complete(keys):
    """Property: binary fuse filters never produce false negatives."""
    bf = BinaryFuseFilter.build(sorted(keys))
    assert all(k in bf for k in keys)
