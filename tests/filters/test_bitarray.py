"""Tests for the numpy-backed bit array."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.filters.bitarray import BitArray


class TestBasics:
    def test_starts_empty(self):
        bits = BitArray(100)
        assert bits.count() == 0
        assert bits.fill_ratio() == 0.0

    def test_set_get_clear(self):
        bits = BitArray(100)
        bits.set(5)
        assert bits.get(5)
        assert not bits.get(6)
        bits.clear(5)
        assert not bits.get(5)

    def test_boundary_bits(self):
        bits = BitArray(65)  # crosses a word boundary
        bits.set(0)
        bits.set(63)
        bits.set(64)
        assert bits.count() == 3
        assert bits.get(64)

    def test_out_of_range_rejected(self):
        bits = BitArray(10)
        with pytest.raises(IndexError):
            bits.set(10)
        with pytest.raises(IndexError):
            bits.get(-1)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            BitArray(0)

    def test_nbytes_rounds_to_words(self):
        assert BitArray(1).nbytes == 8
        assert BitArray(64).nbytes == 8
        assert BitArray(65).nbytes == 16


class TestBulkOps:
    def test_set_many_and_get_many(self):
        bits = BitArray(200)
        indices = [0, 3, 64, 127, 199]
        bits.set_many(indices)
        assert bits.get_many(indices).all()
        assert not bits.get_many([1, 2, 100]).any()
        assert bits.count() == 5

    def test_set_many_duplicates_idempotent(self):
        bits = BitArray(50)
        bits.set_many([7, 7, 7])
        assert bits.count() == 1

    def test_set_many_empty(self):
        bits = BitArray(50)
        bits.set_many([])
        assert bits.count() == 0

    def test_set_many_out_of_range(self):
        bits = BitArray(50)
        with pytest.raises(IndexError):
            bits.set_many([10, 50])


class TestWholeArrayOps:
    def test_union(self):
        a, b = BitArray(100), BitArray(100)
        a.set_many([1, 2, 3])
        b.set_many([3, 4, 5])
        a.union_with(b)
        assert a.count() == 5

    def test_intersect(self):
        a, b = BitArray(100), BitArray(100)
        a.set_many([1, 2, 3])
        b.set_many([3, 4])
        a.intersect_with(b)
        assert a.count() == 1
        assert a.get(3)

    def test_xor_and_changed_indices(self):
        a, b = BitArray(130), BitArray(130)
        a.set_many([1, 64, 129])
        b.set_many([1, 65])
        changed = a.changed_indices(b)
        assert sorted(changed.tolist()) == [64, 65, 129]
        a.xor_with(b)
        assert sorted(np.nonzero([a.get(i) for i in range(130)])[0].tolist()) == [
            64,
            65,
            129,
        ]

    def test_size_mismatch_rejected(self):
        with pytest.raises(ValueError):
            BitArray(10).union_with(BitArray(11))


class TestSerialization:
    def test_roundtrip(self):
        bits = BitArray(100)
        bits.set_many([0, 50, 99])
        restored = BitArray.from_bytes(100, bits.to_bytes())
        assert restored == bits

    def test_copy_independent(self):
        bits = BitArray(50)
        bits.set(1)
        clone = bits.copy()
        clone.set(2)
        assert not bits.get(2)

    def test_tail_masking(self):
        # Bits beyond nbits in the last word must stay zero.
        words = np.full(1, np.uint64(0xFFFFFFFFFFFFFFFF))
        bits = BitArray.from_words(10, words)
        assert bits.count() == 10


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=300),
    st.data(),
)
def test_property_count_matches_set(nbits, data):
    """Property: count() equals the number of distinct set indices."""
    indices = data.draw(
        st.lists(st.integers(min_value=0, max_value=nbits - 1), max_size=50)
    )
    bits = BitArray(nbits)
    bits.set_many(indices) if indices else None
    assert bits.count() == len(set(indices))
