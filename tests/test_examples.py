"""Smoke tests: every example script and CLI demo runs to completion.

The examples are user-facing documentation; regressing one silently is
worse than regressing an internal helper.  Each runs in a subprocess so
import-time failures are also caught.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

EXAMPLES = [
    "quickstart.py",
    "bootstrap_phase.py",
    "eventual_phase.py",
    "adoption_dynamics.py",
    "attack_and_appeal.py",
    "video_lifecycle.py",
    "full_ecosystem.py",
    "cluster_demo.py",
]


def _run(args: list[str]) -> subprocess.CompletedProcess:
    return subprocess.run(
        args,
        capture_output=True,
        text=True,
        timeout=300,
        check=False,
    )


@pytest.mark.parametrize("script", EXAMPLES)
def test_example_runs(script):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"example {script} is missing"
    result = _run([sys.executable, str(path)])
    assert result.returncode == 0, (
        f"{script} failed:\n{result.stdout[-2000:]}\n{result.stderr[-2000:]}"
    )
    assert result.stdout.strip(), f"{script} produced no output"


@pytest.mark.parametrize("demo", ["quickstart", "scaling", "adoption"])
def test_cli_demo_runs(demo):
    result = _run([sys.executable, "-m", "repro", demo])
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip()


def test_cli_cluster_demo_runs():
    result = _run(
        [
            sys.executable, "-m", "repro", "cluster",
            "--shards", "3", "--queries", "200", "--kill-shard",
        ]
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert "correct answers: 200/200" in result.stdout


def test_cli_help_lists_cluster():
    result = _run([sys.executable, "-m", "repro", "--help"])
    assert result.returncode == 0
    assert "cluster" in result.stdout


def test_cli_rejects_unknown_demo():
    result = _run([sys.executable, "-m", "repro", "nonsense"])
    assert result.returncode != 0
