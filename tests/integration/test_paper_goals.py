"""Goal/Nongoal conformance: section 2's requirements, one test each.

These tests are executable documentation: each asserts the system
property the paper states, with the mechanism that provides it named in
the test body.
"""

import numpy as np
import pytest

from repro.core import IrsDeployment
from repro.core.validation import ValidationDecision, ValidationPolicy, Validator
from repro.media.jpeg import jpeg_roundtrip
from repro.media.transforms import crop, tint


@pytest.fixture()
def irs():
    return IrsDeployment.create(seed=190)


@pytest.fixture()
def claimed(irs):
    photo = irs.new_photo()
    receipt, labeled = irs.owner_toolkit.claim_and_label(photo, irs.ledger)
    return photo, receipt, labeled


class TestGoal1OwnerControl:
    def test_i_revocable_after_sharing_and_resharing(self, irs, claimed):
        """(i) revoke even after it has been shared and reshared."""
        _, receipt, labeled = claimed
        reshared = jpeg_roundtrip(labeled, 70)  # a reshare transcoded it
        irs.owner_toolkit.revoke(receipt, irs.ledger)
        assert not irs.validator.validate(labeled).allowed
        assert not irs.validator.validate(reshared).allowed

    def test_ii_no_per_copy_takedown_needed(self, irs, claimed):
        """(ii) one ledger flag covers every copy — no copy enumeration."""
        _, receipt, labeled = claimed
        copies = [jpeg_roundtrip(labeled, q) for q in (80, 60)]
        irs.owner_toolkit.revoke(receipt, irs.ledger)
        # A single revocation call; every copy now denies.
        for copy in copies:
            assert (
                irs.validator.validate(copy).decision
                is ValidationDecision.DENY_REVOKED
            )

    def test_iii_revocation_without_divulging_content(self, irs, claimed):
        """(iii) the ledger never holds pixels — only hashes, keys,
        signatures.  Inspect the actual stored record."""
        _, receipt, _ = claimed
        record = irs.ledger.record(receipt.identifier)
        # The record's fields are hash/key/timestamp material only.
        assert isinstance(record.content_hash, str)
        assert len(record.content_hash) == 64  # a digest, not an image
        assert not hasattr(record, "pixels")
        assert not hasattr(record, "photo")

    def test_iv_owner_anonymity(self, irs, claimed):
        """(iv) ownership is key possession; no identity anywhere."""
        _, receipt, _ = claimed
        record = irs.ledger.record(receipt.identifier)
        # Nothing in the record or the revocation protocol names the
        # owner: the only owner-linked material is the public key.
        assert record.public_key.fingerprint == receipt.keypair.fingerprint
        for op in irs.ledger.store.operations:
            assert not hasattr(op, "owner")


class TestGoal2ViewerPrivacy:
    def test_proxied_checks_hide_viewers(self, irs, claimed):
        from repro.proxy.anonymity import ObservationLog
        from repro.proxy.proxy import IrsProxy

        _, receipt, _ = claimed
        observations = ObservationLog()
        proxy = IrsProxy("p", irs.registry, observation_log=observations)
        proxy.status(receipt.identifier)
        assert observations.requesters() == {"p"}  # never a viewer name


class TestGoal3EmpowerGoodBehaviour:
    def test_viewer_informed_of_revocation(self, irs, claimed):
        """The extension tells the viewer *why* an image is blocked."""
        from repro.browser.extension import IrsBrowserExtension

        _, receipt, labeled = claimed
        irs.owner_toolkit.revoke(receipt, irs.ledger)
        extension = IrsBrowserExtension(status_source=irs.registry.status)
        decision = extension.on_image(labeled)
        assert not decision.display
        assert "revoked" in decision.reason

    def test_system_informed_at_upload(self, irs, claimed):
        _, receipt, labeled = claimed
        irs.owner_toolkit.revoke(receipt, irs.ledger)
        validator = Validator.for_registry(
            irs.registry,
            policy=ValidationPolicy.upload(),
            watermark_codec=irs.watermark_codec,
        )
        result = validator.validate(labeled)
        assert result.decision is ValidationDecision.DENY_REVOKED
        assert result.proof is not None  # verifiable, not just asserted


class TestGoal4LowOverhead:
    def test_viewing_path_does_not_extract_watermarks(self, irs, claimed):
        """The per-image hot path is a metadata read + one lookup; the
        expensive watermark extraction is reserved for uploads."""
        *_, labeled = claimed
        viewing = Validator.for_registry(
            irs.registry,
            policy=ValidationPolicy.viewing(),
            watermark_codec=irs.watermark_codec,
        )
        import time

        start = time.perf_counter()
        for _ in range(50):
            viewing.validate(labeled)
        per_photo = (time.perf_counter() - start) / 50
        assert per_photo < 0.005  # milliseconds, not tens of them


class TestGoal5RobustToBenignAlteration:
    def test_transcode_and_tint_keep_label(self, irs, claimed):
        _, receipt, labeled = claimed
        mangled = jpeg_roundtrip(tint(labeled, (1.1, 1.0, 0.9)), 60)
        from repro.core.labeling import read_label

        label = read_label(mangled, irs.watermark_codec, registry=irs.registry)
        assert label.identifier == receipt.identifier

    def test_metadata_strip_keeps_watermark_channel(self, irs, claimed):
        _, receipt, labeled = claimed
        stripped = labeled.copy()
        stripped.metadata = stripped.metadata.stripped(preserve_irs=False)
        from repro.core.labeling import read_label

        label = read_label(stripped, irs.watermark_codec, registry=irs.registry)
        assert label.identifier == receipt.identifier


class TestNongoals:
    def test_nongoal1_willful_violators_not_stopped(self, irs, claimed):
        """A determined attacker with their own software sees the
        pixels regardless — IRS never encrypts content."""
        _, receipt, labeled = claimed
        irs.owner_toolkit.revoke(receipt, irs.ledger)
        # The pixels remain plainly readable by non-IRS software.
        assert labeled.pixels.shape == (128, 128, 3)
        assert labeled.pixels.mean() > 0

    def test_nongoal2_third_party_photos_out_of_scope(self, irs):
        """Someone who owns a photo of *you* controls its claim; IRS
        offers no mechanism to revoke others' claims except the
        derivation-based appeal (which fails for genuinely distinct
        photos)."""
        from repro.ledger.appeals import AppealsProcess

        photographer = irs.owner_toolkit
        their_photo = irs.new_photo()
        their_receipt = photographer.claim(their_photo, irs.ledger)
        # The subject's own (different) photo gives no standing.
        subject_photo = irs.new_photo()
        subject_receipt = photographer.claim(subject_photo, irs.ledger)
        process = AppealsProcess(irs.ledger, [irs.timestamp_authority])
        appeal = photographer.prepare_appeal(
            subject_receipt,
            subject_photo,
            process,
            their_receipt.identifier,
            their_photo,
        )
        assert not process.adjudicate(appeal).upheld

    def test_nongoal3_heavy_modification_loses_label(self, irs, claimed):
        """Aggressive cropping can defeat automatic labeling — accepted,
        because appeals + hash DB remain."""
        _, _, labeled = claimed
        tiny = crop(labeled, 0, 0, 24, 24, preserve_metadata=False)
        from repro.core.labeling import LabelState, read_label

        label = read_label(tiny, irs.watermark_codec, registry=irs.registry)
        assert label.state is LabelState.UNLABELED

    def test_nongoal4_revocation_not_instantaneous(self, irs, claimed):
        """With a caching proxy, revocation becomes visible at TTL
        expiry, not immediately — bounded staleness by design."""
        from repro.netsim.simulator import ManualClock
        from repro.proxy.cache import TtlLruCache
        from repro.proxy.proxy import IrsProxy

        _, receipt, _ = claimed
        clock = ManualClock()
        proxy = IrsProxy(
            "p",
            irs.registry,
            cache=TtlLruCache(10, ttl=100.0, clock=clock.now),
            clock=clock.now,
        )
        assert not proxy.status(receipt.identifier).revoked
        irs.owner_toolkit.revoke(receipt, irs.ledger)
        assert not proxy.status(receipt.identifier).revoked  # stale window
        clock.advance(101.0)
        assert proxy.status(receipt.identifier).revoked  # bounded
