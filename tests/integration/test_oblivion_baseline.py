"""Tests for the reactive (Oblivion-style) takedown baseline."""

import numpy as np
import pytest

from repro.aggregator.aggregator import AggregatorConfig, ContentAggregator
from repro.baselines.oblivion import ReactiveTakedownSystem
from repro.core import IrsDeployment
from repro.media.jpeg import jpeg_roundtrip
from repro.netsim.simulator import Simulator

HOUR = 3600.0
DAY = 24 * HOUR


@pytest.fixture()
def world():
    """Three legacy sites hosting copies of one photo plus decoys."""
    irs = IrsDeployment.create(seed=230)
    sim = Simulator()
    target = irs.new_photo()
    sites = []
    for i in range(3):
        site = ContentAggregator(
            f"legacy-{i}", irs.registry, config=AggregatorConfig.legacy(),
            clock=sim.clock().now,
        )
        # A transcoded copy of the target plus unrelated photos.
        site.host(f"copy-{i}", jpeg_roundtrip(target, 70), identifier=None)
        site.host(f"other-{i}", irs.new_photo(), identifier=None)
        sites.append(site)
    return irs, sim, target, sites


class TestReactiveTakedown:
    def test_finds_and_removes_all_copies(self, world):
        irs, sim, target, sites = world
        system = ReactiveTakedownSystem(
            sites, sim, crawl_interval=6 * HOUR, processing_delay=DAY
        )
        campaign = system.request_removal(target, until=10 * DAY)
        sim.run(until=10 * DAY)
        assert campaign.outcome.copies_found == 3
        assert len(campaign.outcome.takedown_times) == 3
        assert system.copies_visible(campaign) == 0

    def test_decoys_untouched(self, world):
        irs, sim, target, sites = world
        system = ReactiveTakedownSystem(sites, sim)
        system.request_removal(target, until=10 * DAY)
        sim.run(until=10 * DAY)
        for i, site in enumerate(sites):
            assert site.serve(f"other-{i}").served

    def test_takedown_latency_includes_processing(self, world):
        irs, sim, target, sites = world
        system = ReactiveTakedownSystem(
            sites, sim, crawl_interval=HOUR, processing_delay=2 * DAY
        )
        campaign = system.request_removal(target, until=10 * DAY)
        sim.run(until=10 * DAY)
        assert campaign.outcome.mean_takedown_latency >= 2 * DAY

    def test_reupload_restarts_the_cycle(self, world):
        """The structural weakness: nothing blocks re-uploads."""
        irs, sim, target, sites = world
        system = ReactiveTakedownSystem(
            sites, sim, crawl_interval=6 * HOUR, processing_delay=DAY
        )
        campaign = system.request_removal(target, until=30 * DAY)

        def reupload():
            sites[0].host("copy-again", jpeg_roundtrip(target, 60), identifier=None)

        sim.schedule(5 * DAY, reupload)
        sim.run(until=30 * DAY)
        # The re-upload was found and removed — but only by crawling
        # again and filing again (4 total requests for 3 original
        # copies), and it was visible for at least processing_delay.
        assert campaign.outcome.requests_filed == 4
        assert len(campaign.outcome.takedown_times) == 4
        reupload_takedown = max(campaign.outcome.takedown_times)
        assert reupload_takedown - 5 * DAY >= DAY

    def test_validation(self, world):
        _, sim, _, sites = world
        with pytest.raises(ValueError):
            ReactiveTakedownSystem(sites, sim, crawl_interval=0.0)
