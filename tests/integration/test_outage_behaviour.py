"""Integration: ledger outages and degraded-network behaviour.

The validation policies encode the availability stance: viewing fails
open (an outage must not blank the web), uploads fail closed (an outage
must not let revoked content in).  These tests exercise both through
real component wiring, plus RPC-level timeouts on a dead ledger node.
"""

import numpy as np
import pytest

from repro.core import IrsDeployment
from repro.core.errors import LedgerUnavailableError
from repro.core.validation import ValidationDecision, ValidationPolicy, Validator
from repro.netsim.latency import ConstantLatency
from repro.netsim.link import Network
from repro.netsim.node import Node
from repro.netsim.simulator import Simulator
from repro.netsim.transport import RpcEndpoint


@pytest.fixture()
def env():
    irs = IrsDeployment.create(seed=160)
    photo = irs.new_photo()
    receipt, labeled = irs.owner_toolkit.claim_and_label(photo, irs.ledger)
    return irs, photo, receipt, labeled


class _FlakySource:
    """Status source that fails for a configurable window."""

    def __init__(self, registry):
        self._registry = registry
        self.down = False
        self.calls = 0

    def __call__(self, identifier):
        self.calls += 1
        if self.down:
            raise LedgerUnavailableError("ledger outage (injected)")
        return self._registry.status(identifier)


class TestOutagePolicies:
    def test_viewing_fails_open_during_outage(self, env):
        irs, _, _, labeled = env
        source = _FlakySource(irs.registry)
        validator = Validator(
            status_source=source,
            watermark_codec=irs.watermark_codec,
            policy=ValidationPolicy.viewing(),
        )
        source.down = True
        result = validator.validate(labeled)
        assert result.allowed
        assert "fail-open" in result.detail

    def test_upload_fails_closed_during_outage(self, env):
        irs, _, _, labeled = env
        source = _FlakySource(irs.registry)
        validator = Validator(
            status_source=source,
            watermark_codec=irs.watermark_codec,
            policy=ValidationPolicy.upload(),
            registry=irs.registry,
        )
        source.down = True
        result = validator.validate(labeled)
        assert result.decision is ValidationDecision.DENY_LEDGER_UNAVAILABLE

    def test_recovery_restores_normal_answers(self, env):
        irs, _, receipt, labeled = env
        source = _FlakySource(irs.registry)
        validator = Validator(
            status_source=source,
            watermark_codec=irs.watermark_codec,
            policy=ValidationPolicy.upload(),
            registry=irs.registry,
        )
        source.down = True
        assert not validator.validate(labeled).allowed
        source.down = False
        assert validator.validate(labeled).allowed
        irs.owner_toolkit.revoke(receipt, irs.ledger)
        assert (
            validator.validate(labeled).decision is ValidationDecision.DENY_REVOKED
        )

    def test_extension_fail_open_via_proxy_cache(self, env):
        """A proxy whose cache holds the verdict keeps answering through
        a ledger outage — the availability benefit of caching."""
        from repro.netsim.simulator import ManualClock
        from repro.proxy.cache import TtlLruCache
        from repro.proxy.proxy import IrsProxy

        irs, _, receipt, labeled = env
        clock = ManualClock()
        proxy = IrsProxy(
            "p",
            irs.registry,
            cache=TtlLruCache(100, ttl=3600, clock=clock.now),
            clock=clock.now,
        )
        first = proxy.status(receipt.identifier)
        assert first.source == "ledger"
        # Outage: replace the registry routing with a failing one.
        proxy._registry = None  # any ledger call would now crash
        cached = proxy.status(receipt.identifier)
        assert cached.source == "cache"
        assert cached.revoked == first.revoked


class TestRpcOutage:
    def test_dead_ledger_node_times_out_and_browser_fails_open(self):
        """Full RPC wiring: the ledger node stops answering; with a
        timeout, the browser-side policy converts the RPC error into a
        fail-open render decision."""
        sim = Simulator()
        net = Network(sim, np.random.default_rng(1))
        net.add_node(Node("browser", sim))
        net.add_node(Node("ledger", sim))
        # Requests reach the ledger but responses are lost (the link is
        # fine; the service hangs): model by a handler that never
        # responds — i.e. don't register the method at all would error
        # immediately, so instead use a link that loses everything.
        net.connect(
            "browser", "ledger", ConstantLatency(0.01), loss_probability=0.99999
        )
        endpoint = RpcEndpoint(net.node("ledger"), net)
        endpoint.register("status", lambda p: {"revoked": False})

        decisions = []

        def on_result(result):
            if result.ok:
                decisions.append(not result.value["revoked"])
            else:
                decisions.append(True)  # fail-open viewing

        for _ in range(5):
            endpoint.call(
                "browser", "status", "irs1:l:1", on_result, timeout=0.5, retries=1
            )
        sim.run()
        assert len(decisions) == 5
        assert all(decisions)  # every image rendered despite the outage
        assert sim.now < 10.0  # timeouts bounded the wait
