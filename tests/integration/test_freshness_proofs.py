"""Integration: aggregator freshness proofs verified by the extension.

Section 3.2: "When an aggregator provides a response to an application
or browser containing a claimed photo, it includes in metadata
cryptographic proof that it has recently verified the non-revoked
status of the photo."  The browser can then skip its own check — but
only after verifying the proof's signature, binding, and freshness.
"""

import numpy as np
import pytest

from repro.aggregator.aggregator import ContentAggregator
from repro.aggregator.recheck import PeriodicRechecker
from repro.aggregator.uploads import UploadPipeline
from repro.browser.extension import IrsBrowserExtension
from repro.core import IrsDeployment
from repro.core.owner import OwnerToolkit
from repro.ledger.proofs import StatusProof
from repro.media.metadata import IRS_FRESHNESS_FIELD
from repro.netsim.simulator import ManualClock


@pytest.fixture()
def served_photo():
    """A photo served by an IRS aggregator, with proof attached."""
    irs = IrsDeployment.create(seed=170)
    clock = ManualClock()
    aggregator = ContentAggregator("site", irs.registry, clock=clock.now)
    pipeline = UploadPipeline(
        aggregator,
        watermark_codec=irs.watermark_codec,
        custodial_ledger=irs.ledger,
        custodial_toolkit=OwnerToolkit(
            rng=np.random.default_rng(170), watermark_codec=irs.watermark_codec
        ),
    )
    photo = irs.new_photo()
    receipt, labeled = irs.owner_toolkit.claim_and_label(photo, irs.ledger)
    pipeline.upload("pic", labeled)
    PeriodicRechecker(aggregator).run_sweep()  # attach a fresh proof
    result = aggregator.serve("pic")
    assert result.served
    return irs, clock, receipt, result.photo


def _extension(irs, clock, **kwargs):
    return IrsBrowserExtension(
        status_source=irs.registry.status,
        registry=irs.registry,
        accept_freshness_proofs=True,
        clock=clock.now,
        **kwargs,
    )


class TestWireFormat:
    def test_roundtrip(self, served_photo):
        _, _, _, photo = served_photo
        wire = photo.metadata.get(IRS_FRESHNESS_FIELD)
        proof = StatusProof.from_wire(wire)
        assert proof.to_wire() == wire

    def test_malformed_rejected(self):
        with pytest.raises(ValueError):
            StatusProof.from_wire("not:enough")


class TestProofAcceptance:
    def test_valid_proof_skips_check(self, served_photo):
        irs, clock, _, photo = served_photo
        extension = _extension(irs, clock)
        decision = extension.on_image(photo)
        assert decision.display
        assert extension.stats.freshness_proofs_accepted == 1
        assert extension.stats.checks_sent == 0

    def test_stale_proof_triggers_real_check(self, served_photo):
        irs, clock, _, photo = served_photo
        extension = _extension(irs, clock, freshness_max_age=100.0)
        clock.advance(1000.0)
        decision = extension.on_image(photo)
        assert decision.display
        assert extension.stats.freshness_proofs_accepted == 0
        assert extension.stats.checks_sent == 1

    def test_forged_proof_falls_through(self, served_photo):
        """A site re-stamping a stale proof's timestamp (to keep
        serving a since-revoked photo) breaks the signature; the
        extension checks for itself and catches the revocation."""
        from dataclasses import replace

        irs, clock, receipt, photo = served_photo
        proof = StatusProof.from_wire(photo.metadata.get(IRS_FRESHNESS_FIELD))
        # Time passes; the owner revokes; the honest proof is now stale.
        clock.advance(10_000.0)
        irs.owner_toolkit.revoke(receipt, irs.ledger)
        forged = replace(proof, checked_at=clock.now())  # re-stamped
        tampered = photo.copy()
        tampered.metadata.set(IRS_FRESHNESS_FIELD, forged.to_wire())
        extension = _extension(irs, clock)
        decision = extension.on_image(tampered)
        assert not decision.display  # real check caught the revocation
        assert extension.stats.freshness_proofs_accepted == 0
        assert extension.stats.checks_sent == 1

    def test_proof_for_other_photo_ignored(self, served_photo):
        irs, clock, _, photo = served_photo
        other = irs.new_photo()
        other_receipt, other_labeled = irs.owner_toolkit.claim_and_label(
            other, irs.ledger
        )
        # Transplant pic's proof onto the other photo.
        other_labeled.metadata.set(
            IRS_FRESHNESS_FIELD, photo.metadata.get(IRS_FRESHNESS_FIELD)
        )
        extension = _extension(irs, clock)
        decision = extension.on_image(other_labeled)
        assert decision.display
        assert extension.stats.freshness_proofs_accepted == 0
        assert extension.stats.checks_sent == 1

    def test_garbage_proof_field_ignored(self, served_photo):
        irs, clock, _, photo = served_photo
        garbled = photo.copy()
        garbled.metadata.set(IRS_FRESHNESS_FIELD, "garbage!!!")
        extension = _extension(irs, clock)
        assert extension.on_image(garbled).display
        assert extension.stats.checks_sent == 1

    def test_requires_registry(self, served_photo):
        irs, clock, *_ = served_photo
        with pytest.raises(ValueError):
            IrsBrowserExtension(
                status_source=irs.registry.status,
                accept_freshness_proofs=True,
            )
