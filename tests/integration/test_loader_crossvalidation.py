"""Cross-validation: the analytic page-load model vs a discrete-event
implementation of the same semantics.

E1/E2 rest on the analytic loader.  This test re-implements the page
load as literal simulator events (per-connection fetch processes,
check completions) and verifies both produce identical milestones under
deterministic latencies — guarding the analytic shortcut against drift.
"""

import heapq

import numpy as np
import pytest

from repro.browser.loader import CheckMode, PageLoadModel
from repro.browser.page import AuxResource, ImageResource, Page
from repro.core.identifiers import PhotoIdentifier
from repro.netsim.latency import ConstantLatency
from repro.netsim.simulator import Simulator


def _page(num_images: int, aux: bool = True) -> Page:
    images = [
        ImageResource(
            name=f"img-{i}",
            size_bytes=40_000 + 7_000 * i,
            identifier=PhotoIdentifier(ledger_id="l", serial=i + 1),
        )
        for i in range(num_images)
    ]
    aux_resources = (
        [
            AuxResource(name="a.css", size_bytes=50_000, kind="css"),
            AuxResource(name="b.js", size_bytes=120_000, kind="js"),
        ]
        if aux
        else []
    )
    return Page(name="p", html_bytes=30_000, aux=aux_resources, images=images)


def _simulate_event_driven(
    page: Page,
    rtt: float,
    bandwidth_bps: float,
    connections: int,
    check_latency: float | None,
    mode: CheckMode,
) -> tuple[float, float]:
    """(first_contentful_paint, page_complete) via explicit events."""
    sim = Simulator()
    transfer = lambda size: size * 8.0 / bandwidth_bps  # noqa: E731

    milestones = {"fcp": 0.0, "rendered": []}

    # Connection pool as a heap of free times, processed through events.
    html_done = rtt + transfer(page.html_bytes)

    def after_html():
        pool = [sim.now] * connections
        # Aux resources sequentially over the pool.
        for resource in page.aux:
            start = heapq.heappop(pool)
            heapq.heappush(pool, start + rtt + transfer(resource.size_bytes))
        aux_done = max(max(pool), sim.now) if page.aux else sim.now
        sim.schedule_at(aux_done, after_aux)

    def after_aux():
        milestones["fcp"] = sim.now
        pool = [sim.now] * connections
        for image in page.images:
            start = heapq.heappop(pool)
            metadata_at = start + rtt + transfer(image.metadata_prefix_bytes)
            download_done = start + rtt + transfer(image.size_bytes)
            heapq.heappush(pool, download_done)
            if mode is CheckMode.OFF or not image.labeled:
                ready = download_done
            elif mode is CheckMode.PIPELINED:
                ready = max(download_done, metadata_at + check_latency)
            else:
                ready = download_done + check_latency
            # Materialize the render as a real event.
            sim.schedule_at(ready, lambda t=ready: milestones["rendered"].append(t))

    sim.schedule_at(html_done, after_html)
    sim.run()
    page_complete = max([milestones["fcp"]] + milestones["rendered"])
    return milestones["fcp"], page_complete


@pytest.mark.parametrize("num_images", [1, 5, 17])
@pytest.mark.parametrize(
    "mode,check",
    [
        (CheckMode.OFF, None),
        (CheckMode.PIPELINED, 0.08),
        (CheckMode.PIPELINED, 0.4),
        (CheckMode.BLOCKING, 0.08),
    ],
)
def test_analytic_matches_event_driven(num_images, mode, check):
    rtt, bandwidth, connections = 0.03, 4e6, 6
    page = _page(num_images)
    model = PageLoadModel(
        rtt=ConstantLatency(rtt),
        bandwidth_bps=bandwidth,
        connections=connections,
        check_latency=ConstantLatency(check) if check else None,
        mode=mode,
    )
    analytic = model.load(page, np.random.default_rng(0))
    fcp, complete = _simulate_event_driven(
        page, rtt, bandwidth, connections, check, mode
    )
    assert analytic.first_contentful_paint == pytest.approx(fcp, abs=1e-9)
    assert analytic.page_complete == pytest.approx(complete, abs=1e-9)


def test_agreement_without_aux_resources():
    page = _page(4, aux=False)
    model = PageLoadModel(
        rtt=ConstantLatency(0.02),
        bandwidth_bps=8e6,
        connections=2,
        check_latency=ConstantLatency(0.1),
        mode=CheckMode.PIPELINED,
    )
    analytic = model.load(page, np.random.default_rng(0))
    fcp, complete = _simulate_event_driven(
        page, 0.02, 8e6, 2, 0.1, CheckMode.PIPELINED
    )
    assert analytic.page_complete == pytest.approx(complete, abs=1e-9)
    assert analytic.first_contentful_paint == pytest.approx(fcp, abs=1e-9)
