"""Integration: the bootstrap phase wired end-to-end.

Browsers with IRS extensions -> anonymizing proxy (cache + OR'd Bloom
filters) -> multiple commercial ledgers, exercised by a Zipf browsing
trace.  This is the deployment of section 4 in one test.
"""

import numpy as np
import pytest

from repro.browser.extension import IrsBrowserExtension
from repro.core import IrsDeployment
from repro.ledger.export import FilterExporter
from repro.netsim.simulator import ManualClock
from repro.proxy.anonymity import ObservationLog, anonymity_report
from repro.proxy.cache import TtlLruCache
from repro.proxy.filterset import ProxyFilterSet
from repro.proxy.proxy import IrsProxy
from repro.workload.population import populate_ledger
from repro.workload.traces import BrowsingTraceGenerator


@pytest.fixture(scope="module")
def bootstrap():
    irs = IrsDeployment.create(seed=91, num_ledgers=3)
    rng = np.random.default_rng(91)
    populations = [
        populate_ledger(ledger, 2000, 0.5, rng) for ledger in irs.ledgers
    ]
    exporters = []
    for ledger in irs.ledgers:
        exporter = FilterExporter(ledger, nbits=1 << 16, num_hashes=5)
        exporter.publish()
        exporters.append(exporter)
    filterset = ProxyFilterSet()
    for exporter in exporters:
        filterset.subscribe(exporter)
    filterset.refresh()
    clock = ManualClock()
    observations = ObservationLog()
    proxy = IrsProxy(
        "bootstrap-proxy",
        irs.registry,
        filterset=filterset,
        cache=TtlLruCache(50_000, ttl=3600, clock=clock.now),
        clock=clock.now,
        observation_log=observations,
    )
    return irs, populations, proxy, observations, clock, rng


class TestBootstrapPipeline:
    def test_trace_through_proxy(self, bootstrap):
        irs, populations, proxy, observations, clock, rng = bootstrap
        population = populations[0]
        generator = BrowsingTraceGenerator(
            population, num_users=25, rng=rng, revoked_view_fraction=0.005
        )
        extensions = {
            f"user-{u}": IrsBrowserExtension(status_source=proxy.status)
            for u in range(25)
        }
        events = generator.generate(views_per_user=80)
        blocked = 0
        for event in events:
            clock.advance(0.01)
            identifier = population.identifiers[event.photo_index]
            decision = extensions[event.user].check_identifier(identifier)
            if not decision.display:
                blocked += 1
        total = len(events)
        # Structure of the run: most views short-circuit at the filter;
        # ledger queries are a small fraction; revoked views blocked.
        assert proxy.stats.queries == total
        assert proxy.stats.filter_short_circuits > 0.8 * total
        assert proxy.stats.load_reduction_factor > 10
        assert blocked > 0

    def test_ledgers_see_only_proxy(self, bootstrap):
        _, _, _, observations, _, _ = bootstrap
        assert observations.requesters() <= {"bootstrap-proxy"}

    def test_anonymity_report_shows_hiding(self, bootstrap):
        irs, populations, proxy, observations, clock, rng = bootstrap
        users = [f"user-{u}" for u in range(25)]
        report = anonymity_report(
            observations,
            requester_populations={"bootstrap-proxy": users},
            viewer_checks={u: 80 for u in users},
        )
        assert report.attribution_rate == 0.0
        assert report.mean_anonymity_set == 25.0
        assert report.profile_leakage == 0.0

    def test_revocation_propagates_within_filter_period(self, bootstrap):
        """An owner revokes; after the next hourly filter publish +
        proxy refresh, the bootstrap pipeline blocks the photo."""
        irs, populations, proxy, _, clock, rng = bootstrap
        population = populations[1]
        # Pick an unrevoked photo and revoke it directly via the store
        # (bulk population uses a shared key, so flip state directly).
        from repro.ledger.records import RevocationState

        idx = int(np.nonzero(~population.revoked_mask)[0][0])
        identifier = population.identifiers[idx]
        extension = IrsBrowserExtension(status_source=proxy.status)
        assert extension.check_identifier(identifier).display

        record = irs.ledgers[1].record(identifier)
        record.state = RevocationState.REVOKED
        irs.ledgers[1].store.log_operation("revoke", identifier.serial, clock.now())

        # Next hourly cycle: ledger republishes, proxy refreshes.
        for ledger in irs.ledgers:
            pass
        exporter = proxy.filterset._subscriptions[irs.ledgers[1].ledger_id].exporter
        exporter.publish()
        proxy.refresh_filters()
        clock.advance(3601.0)  # expire any cached answer
        assert not extension.check_identifier(identifier).display
