"""Deployment compatibility: what happens when watermark codec
parameters diverge between labeler and validator.

The IRS watermark parameters (payload length, tile geometry, QIM step,
positions) are deployment-wide constants.  These tests pin the failure
modes of mismatches: everything fails *safe* (label unreadable, photo
treated per the unlabeled/partial policy) — never a wrong identifier.
"""

import pytest

from repro.core import IrsDeployment
from repro.core.labeling import LabelState, read_label
from repro.media.watermark import WatermarkCodec, WatermarkError


@pytest.fixture(scope="module")
def env():
    irs = IrsDeployment.create(seed=220)
    photo = irs.new_photo()
    receipt, labeled = irs.owner_toolkit.claim_and_label(photo, irs.ledger)
    return irs, receipt, labeled


class TestCodecMismatch:
    def test_delta_mismatch_is_correct_or_nothing(self, env):
        """Delta mismatches degrade gracefully: a moderately wrong step
        may still majority-decode, but the CRC guarantees any decode is
        the *true* payload — and a strongly wrong step fails cleanly."""
        _, receipt, labeled = env
        for delta in (24.0, 32.0, 48.0, 64.0, 80.0):
            other = WatermarkCodec(payload_len=12, delta=delta)
            try:
                result = other.extract(labeled, search_offsets=False)
            except WatermarkError:
                continue  # clean failure is acceptable
            assert result.payload == receipt.identifier.to_compact()
        # Far-off steps are outside the graceful band.
        with pytest.raises(WatermarkError):
            WatermarkCodec(payload_len=12, delta=24.0).extract(
                labeled, search_offsets=False
            )

    def test_different_positions_fail_clean(self, env):
        _, _, labeled = env
        other = WatermarkCodec(
            payload_len=12, positions=((1, 3), (3, 1), (2, 3), (3, 2))
        )
        with pytest.raises(WatermarkError):
            other.extract(labeled, search_offsets=False)

    def test_different_tile_geometry_fails_clean(self, env):
        _, _, labeled = env
        other = WatermarkCodec(payload_len=12, tile_rows=7, tile_cols=4)
        with pytest.raises(WatermarkError):
            other.extract(labeled, search_offsets=False)

    def test_mismatched_validator_treats_as_metadata_only(self, env):
        """A validator whose codec is outside the graceful band sees
        metadata but no watermark: the strict policy denies (partial),
        it never fabricates agreement."""
        irs, receipt, labeled = env
        wrong_codec = WatermarkCodec(payload_len=12, delta=24.0)
        label = read_label(labeled, wrong_codec, registry=irs.registry)
        assert label.state is LabelState.METADATA_ONLY
        assert label.metadata_identifier == receipt.identifier
        assert label.watermark_payload is None

    def test_shorter_payload_codec_never_missreads(self, env):
        """A codec expecting 8-byte payloads must not extract a bogus
        8-byte identifier from a 12-byte-payload watermark."""
        _, _, labeled = env
        short = WatermarkCodec(payload_len=8)
        with pytest.raises(WatermarkError):
            short.extract(labeled, search_offsets=False)
