"""Cross-cutting property-based tests (hypothesis).

These cover invariants spanning modules: watermark payload
transparency, cache correctness against a model, simulator ordering,
and the claim/revoke state machine.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.media.image import generate_photo
from repro.media.watermark import WatermarkCodec
from repro.netsim.simulator import ManualClock, Simulator
from repro.proxy.cache import TtlLruCache


# One photo and codec shared across hypothesis examples (embedding is
# pure; extraction does not mutate).
_CODEC = WatermarkCodec(payload_len=12)
_PHOTO = generate_photo(seed=424, height=160, width=160)


@settings(max_examples=20, deadline=None)
@given(st.binary(min_size=12, max_size=12))
def test_property_watermark_payload_transparent(payload):
    """Property: any 12-byte payload embeds and extracts exactly."""
    marked = _CODEC.embed(_PHOTO, payload)
    result = _CODEC.extract(marked, search_offsets=False)
    assert result.payload == payload


@settings(max_examples=30, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sampled_from(["put", "get", "advance"]),
            st.integers(min_value=0, max_value=5),  # key universe
        ),
        max_size=60,
    )
)
def test_property_cache_matches_model(operations):
    """Property: TtlLruCache agrees with a brute-force model."""
    capacity, ttl = 3, 10.0
    clock = ManualClock()
    cache = TtlLruCache(capacity, ttl=ttl, clock=clock.now)
    # Model: list of (key, value, stored_at, last_used) in recency order.
    model: list = []

    def model_get(key):
        for i, (k, v, stored, _) in enumerate(model):
            if k == key:
                if clock.now() - stored > ttl:
                    del model[i]
                    return None
                entry = model.pop(i)
                model.append(entry)
                return v
        return None

    def model_put(key, value):
        for i, (k, *_rest) in enumerate(model):
            if k == key:
                del model[i]
                break
        model.append((key, value, clock.now(), clock.now()))
        while len(model) > capacity:
            model.pop(0)

    counter = 0
    for op, key in operations:
        if op == "put":
            counter += 1
            cache.put(key, counter)
            model_put(key, counter)
        elif op == "get":
            assert cache.get(key) == model_get(key)
        else:
            clock.advance(3.0)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=40))
def test_property_simulator_runs_in_time_order(delays):
    """Property: events always execute in non-decreasing time order."""
    sim = Simulator()
    executed = []
    for delay in delays:
        sim.schedule(delay, lambda d=delay: executed.append(sim.now))
    sim.run()
    assert executed == sorted(executed)
    assert len(executed) == len(delays)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(st.lists(st.sampled_from(["revoke", "unrevoke", "status"]), max_size=12))
def test_property_revocation_state_machine(actions):
    """Property: the ledger's revocation flag always equals the last
    effective action, and every status proof verifies."""
    from repro.crypto.hashing import sha256_hex
    from repro.crypto.signatures import KeyPair
    from repro.crypto.timestamp import TimestampAuthority
    from repro.ledger.ledger import Ledger

    keypair = _STATE_KEYPAIR
    ledger = Ledger("prop-ledger", TimestampAuthority())
    content_hash = sha256_hex(b"prop")
    record = ledger.claim(
        content_hash,
        keypair.sign(content_hash.encode("utf-8")),
        keypair.public,
    )
    expected = False
    for action in actions:
        if action == "status":
            proof = ledger.status(record.identifier)
            assert proof.revoked == expected
            assert proof.verify(ledger.public_key)
            continue
        nonce = ledger.make_challenge(record.identifier)
        payload = Ledger.ownership_payload(action, record.identifier, nonce)
        signature = keypair.sign_struct(payload)
        if action == "revoke":
            ledger.revoke(record.identifier, nonce, signature)
            expected = True
        else:
            ledger.unrevoke(record.identifier, nonce, signature)
            expected = False
    assert ledger.status(record.identifier).revoked == expected


_STATE_KEYPAIR = __import__("numpy").random.default_rng(77)
# Generate once at import: keygen is the expensive part.
from repro.crypto.signatures import KeyPair as _KP  # noqa: E402

_STATE_KEYPAIR = _KP.generate(bits=512, rng=_STATE_KEYPAIR)
