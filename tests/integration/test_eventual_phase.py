"""Integration: the eventual solution (section 3.2) end-to-end.

Owners claim and label; aggregators gate uploads, host with preserved
IRS metadata, periodically recheck, and serve freshness proofs; the
full attack-appeal-takedown lifecycle runs across two aggregators.
"""

import numpy as np
import pytest

from repro.aggregator.aggregator import AggregatorConfig, ContentAggregator
from repro.aggregator.hashdb import RobustHashDatabase
from repro.aggregator.recheck import PeriodicRechecker
from repro.aggregator.uploads import UploadDecision, UploadPipeline
from repro.attacks.attackers import SophisticatedAttacker
from repro.core import IrsDeployment
from repro.core.owner import OwnerToolkit
from repro.ledger.appeals import AppealsProcess
from repro.netsim.simulator import Simulator


@pytest.fixture()
def world():
    irs = IrsDeployment.create(seed=101, num_ledgers=2)
    sim = Simulator()
    aggregators = []
    pipelines = []
    for i, name in enumerate(["photowall", "sharesphere"]):
        aggregator = ContentAggregator(
            name,
            irs.registry,
            config=AggregatorConfig(recheck_interval=3600.0),
            clock=sim.clock().now,
        )
        pipeline = UploadPipeline(
            aggregator,
            watermark_codec=irs.watermark_codec,
            custodial_ledger=irs.ledgers[i],
            custodial_toolkit=OwnerToolkit(
                rng=np.random.default_rng(200 + i),
                watermark_codec=irs.watermark_codec,
            ),
            hash_database=RobustHashDatabase(),
        )
        aggregators.append(aggregator)
        pipelines.append(pipeline)
    return irs, sim, aggregators, pipelines


class TestEventualPhase:
    def test_share_revoke_takedown_lifecycle(self, world):
        """Use case #2: shared freely, later revoked, comes down at the
        next periodic recheck on every participating aggregator."""
        irs, sim, aggregators, pipelines = world
        photo = irs.new_photo()
        receipt, labeled = irs.owner_toolkit.claim_and_label(photo, irs.ledger)

        for i, pipeline in enumerate(pipelines):
            outcome = pipeline.upload(f"vacation-{i}", labeled)
            assert outcome.decision is UploadDecision.ACCEPTED

        recheckers = [PeriodicRechecker(a) for a in aggregators]
        for rechecker in recheckers:
            rechecker.schedule_on(sim, until=10 * 3600.0)

        sim.run(until=1800.0)
        irs.owner_toolkit.revoke(receipt, irs.ledger)
        sim.run(until=2 * 3600.0 + 1)

        for i, aggregator in enumerate(aggregators):
            assert not aggregator.serve(f"vacation-{i}").served

    def test_accidental_upload_blocked_everywhere(self, world):
        """Use case #1: photo claimed-and-revoked at creation; a leaked
        copy cannot be uploaded to any participating aggregator."""
        irs, _, _, pipelines = world
        photo = irs.new_photo()
        receipt = irs.owner_toolkit.claim(
            photo, irs.ledger, initially_revoked=True
        )
        leaked = irs.owner_toolkit.label(photo, receipt)
        for i, pipeline in enumerate(pipelines):
            outcome = pipeline.upload(f"leak-{i}", leaked)
            assert outcome.decision is UploadDecision.DENIED_REVOKED

    def test_cross_ledger_attack_and_appeal(self, world):
        """The attacker claims the copy on a *different* ledger than
        the original; appeals still work because the original's
        timestamp authority is shared and trusted."""
        irs, _, aggregators, pipelines = world
        photo = irs.new_photo()
        receipt, labeled = irs.owner_toolkit.claim_and_label(
            photo, irs.ledgers[0]
        )
        irs.owner_toolkit.revoke(receipt, irs.ledgers[0])

        attacker = SophisticatedAttacker(
            irs.ledgers[1],
            rng=np.random.default_rng(7),
            watermark_codec=irs.watermark_codec,
        )
        result = attacker.reclaim_copy(labeled)
        outcome = pipelines[1].upload("stolen", result.photo)
        assert outcome.decision is UploadDecision.ACCEPTED

        process = AppealsProcess(irs.ledgers[1], [irs.timestamp_authority])
        appeal = irs.owner_toolkit.prepare_appeal(
            receipt, photo, process, result.identifier, result.photo
        )
        assert process.adjudicate(appeal).upheld
        PeriodicRechecker(aggregators[1]).run_sweep()
        assert not aggregators[1].serve("stolen").served

    def test_unlabeled_custodial_then_appeal(self, world):
        """Unlabeled upload gets a custodial claim; when the true owner
        appears, appeals against the custodial claim succeed (the
        custodial timestamp postdates the owner's)."""
        irs, _, aggregators, pipelines = world
        photo = irs.new_photo()
        receipt = irs.owner_toolkit.claim(photo, irs.ledgers[0])

        # A copy without labels reaches another site.
        bare = photo.copy(with_metadata=False)
        outcome = pipelines[1].upload("mystery", bare)
        assert outcome.decision is UploadDecision.ACCEPTED_CUSTODIAL

        process = AppealsProcess(irs.ledgers[1], [irs.timestamp_authority])
        hosted = aggregators[1].hosted("mystery")
        appeal = irs.owner_toolkit.prepare_appeal(
            receipt, photo, process, outcome.identifier, hosted.photo
        )
        assert process.adjudicate(appeal).upheld
        PeriodicRechecker(aggregators[1]).run_sweep()
        assert not aggregators[1].serve("mystery").served
