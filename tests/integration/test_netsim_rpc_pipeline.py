"""Integration: the bootstrap stack over the discrete-event network.

The other integration tests call components directly; here the
browser -> proxy -> ledger path runs as actual RPC over simulated links
with sampled latencies, verifying that (a) the wiring carries real
status answers, (b) end-to-end check latency decomposes the way the
section 4.3 budget assumes, and (c) filter short-circuits eliminate the
proxy->ledger leg entirely.
"""

import numpy as np
import pytest

from repro.core import IrsDeployment
from repro.core.identifiers import PhotoIdentifier
from repro.filters.sizing import bloom_bits_for_fpr, bloom_optimal_hashes
from repro.ledger.export import FilterExporter
from repro.netsim.latency import ConstantLatency, LogNormalLatency
from repro.netsim.link import Network
from repro.netsim.node import Node
from repro.netsim.simulator import Simulator
from repro.netsim.transport import RpcEndpoint
from repro.proxy.filterset import ProxyFilterSet
from repro.workload.population import populate_ledger


@pytest.fixture()
def wired():
    """Browser, proxy and ledger nodes joined by latency links."""
    irs = IrsDeployment.create(seed=131)
    rng = np.random.default_rng(131)
    population = populate_ledger(irs.ledger, 2000, 0.5, rng)

    sim = Simulator()
    net = Network(sim, rng)
    browser = net.add_node(Node("browser", sim))
    proxy_node = net.add_node(Node("proxy", sim))
    ledger_node = net.add_node(Node("ledger", sim))
    net.connect("browser", "proxy", LogNormalLatency(median=0.008, sigma=0.3))
    net.connect("proxy", "ledger", LogNormalLatency(median=0.012, sigma=0.3))

    # Ledger endpoint: status queries served with a small service time.
    ledger_endpoint = RpcEndpoint(
        ledger_node, net, service_time=ConstantLatency(0.001)
    )
    ledger_endpoint.register(
        "status",
        lambda identifier_string: irs.registry.status(
            PhotoIdentifier.from_string(identifier_string)
        ),
    )

    # Proxy endpoint: filter front, then async upstream RPC to the ledger.
    nbits = bloom_bits_for_fpr(population.num_revoked, 0.02)
    k = bloom_optimal_hashes(nbits, population.num_revoked)
    exporter = FilterExporter(irs.ledger, nbits=nbits, num_hashes=k)
    exporter.publish()
    filterset = ProxyFilterSet()
    filterset.subscribe(exporter)
    filterset.refresh()

    proxy_endpoint = RpcEndpoint(proxy_node, net)
    upstream_queries = {"count": 0}

    def proxy_status(identifier_string, respond):
        """Async handler: responds via callback, possibly after an
        upstream RPC."""
        identifier = PhotoIdentifier.from_string(identifier_string)
        if not filterset.might_be_revoked(identifier.to_compact()):
            respond({"revoked": False, "source": "filter"})
            return
        upstream_queries["count"] += 1

        def on_upstream(result):
            proof = result.unwrap()
            respond({"revoked": proof.revoked, "source": "ledger"})

        ledger_endpoint.call("proxy", "status", identifier_string, on_upstream)

    # Adapt the async handler onto the RPC endpoint: the registered
    # handler returns a sentinel and completion goes through a manual
    # response path, so we implement the proxy call inline instead.
    def browser_check(identifier, callback):
        start = sim.now

        def deliver_to_proxy():
            proxy_node.messages_received += 1
            proxy_status(
                identifier.to_string(),
                lambda answer: net.deliver(
                    "proxy",
                    "browser",
                    lambda: callback(answer, sim.now - start),
                ),
            )

        browser.messages_sent += 1
        net.deliver("browser", "proxy", deliver_to_proxy)

    return irs, population, sim, browser_check, upstream_queries


class TestRpcPipeline:
    def test_answers_are_correct(self, wired):
        irs, population, sim, browser_check, _ = wired
        answers = {}
        for i in (0, 1, 2, 3, 4):
            identifier = population.identifiers[i]
            browser_check(
                identifier,
                lambda answer, rtt, key=identifier.to_string(): answers.__setitem__(
                    key, answer
                ),
            )
        sim.run()
        assert len(answers) == 5
        for i in range(5):
            identifier = population.identifiers[i]
            expected = bool(population.revoked_mask[i])
            assert answers[identifier.to_string()]["revoked"] == expected

    def test_filter_miss_skips_ledger_leg(self, wired):
        irs, population, sim, browser_check, upstream = wired
        unrevoked = [
            identifier
            for i, identifier in enumerate(population.identifiers[:200])
            if not population.revoked_mask[i]
        ]
        rtts = []
        for identifier in unrevoked:
            browser_check(identifier, lambda answer, rtt: rtts.append((answer, rtt)))
        sim.run()
        filter_rtts = [rtt for answer, rtt in rtts if answer["source"] == "filter"]
        ledger_rtts = [rtt for answer, rtt in rtts if answer["source"] == "ledger"]
        # Almost everything short-circuits; the few false positives pay
        # the extra proxy->ledger round trip.
        assert len(filter_rtts) > 0.9 * len(rtts)
        assert upstream["count"] == len(ledger_rtts)
        if ledger_rtts:
            assert float(np.mean(ledger_rtts)) > float(np.mean(filter_rtts))
        # Filter-path RTT ~ one browser<->proxy round trip (~16 ms).
        assert 0.005 < float(np.mean(filter_rtts)) < 0.08

    def test_revoked_photos_pay_full_path_and_block(self, wired):
        irs, population, sim, browser_check, _ = wired
        revoked = [
            identifier
            for i, identifier in enumerate(population.identifiers[:100])
            if population.revoked_mask[i]
        ]
        results = []
        for identifier in revoked:
            browser_check(identifier, lambda answer, rtt: results.append((answer, rtt)))
        sim.run()
        assert all(answer["revoked"] for answer, _ in results)
        assert all(answer["source"] == "ledger" for answer, _ in results)
        # Full path: two round trips + service, still well under the
        # 100 ms budget of section 4.3.
        mean_rtt = float(np.mean([rtt for _, rtt in results]))
        assert mean_rtt < 0.1
