"""Tests for summary statistics and table reporting."""

import numpy as np
import pytest

from repro.metrics.reporting import Table, format_row, format_table
from repro.metrics.stats import confidence_interval_mean, percentile, summarize


class TestSummarize:
    def test_basic_summary(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
        assert summary.count == 5
        assert summary.mean == 3.0
        assert summary.p50 == 3.0
        assert summary.minimum == 1.0
        assert summary.maximum == 5.0

    def test_single_value(self):
        summary = summarize([7.0])
        assert summary.std == 0.0
        assert summary.mean == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict(self):
        assert summarize([1.0, 2.0]).as_dict()["count"] == 2

    def test_percentile_helper(self):
        values = list(range(101))
        assert percentile(values, 50) == 50.0
        assert percentile(values, 99) == pytest.approx(99.0)
        with pytest.raises(ValueError):
            percentile([], 50)


class TestConfidenceInterval:
    def test_contains_mean(self):
        rng = np.random.default_rng(1)
        values = rng.normal(10.0, 2.0, size=100)
        low, high = confidence_interval_mean(values)
        assert low < values.mean() < high

    def test_tightens_with_samples(self):
        rng = np.random.default_rng(2)
        small = rng.normal(0, 1, size=10)
        large = rng.normal(0, 1, size=1000)
        s_low, s_high = confidence_interval_mean(small)
        l_low, l_high = confidence_interval_mean(large)
        assert (l_high - l_low) < (s_high - s_low)

    def test_degenerate_cases(self):
        with pytest.raises(ValueError):
            confidence_interval_mean([1.0])
        low, high = confidence_interval_mean([5.0, 5.0, 5.0])
        assert low == high == 5.0


class TestReporting:
    def test_format_table_aligns(self):
        text = format_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_format_row(self):
        row = format_row(["x", 1.5], [4, 6])
        assert "x" in row and "1.5" in row

    def test_float_formatting(self):
        text = format_table(["v"], [[0.000012345], [123456.789], [1.5]])
        assert "1.23e-05" in text
        assert "1.5" in text

    def test_table_accumulator(self):
        table = Table(headers=["a", "b"], title="demo")
        table.add(1, 2)
        rendered = table.render()
        assert "demo" in rendered
        assert "1" in rendered

    def test_table_wrong_arity(self):
        table = Table(headers=["a", "b"])
        with pytest.raises(ValueError):
            table.add(1)

    def test_table_csv_output(self):
        table = Table(headers=["name", "value"], title="E99: demo, test")
        table.add("plain", 1)
        table.add('has "quotes", commas', 2.5)
        csv_text = table.to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0] == "name,value"
        assert lines[1] == "plain,1"
        assert '"has ""quotes"", commas"' in lines[2]

    def test_table_slug(self):
        table = Table(headers=["x"], title="E5: ledger load (0 revoked)")
        slug = table.slug()
        assert slug == "e5_ledger_load_0_revoked"
        assert Table(headers=["x"]).slug() == "table"


class TestFormatTableRegressions:
    """format_table must render, not crash, on degenerate shapes."""

    def test_zero_rows(self):
        text = format_table(["name", "value"], [])
        lines = text.splitlines()
        assert len(lines) == 2  # header + rule, no body
        assert "name" in lines[0] and "value" in lines[0]

    def test_ragged_rows_padded(self):
        text = format_table(["a", "b", "c"], [["x"], ["y", 2]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_row_wider_than_headers(self):
        text = format_table(["only"], [["x", "extra", "wider"]])
        assert "extra" in text and "wider" in text
        lines = text.splitlines()
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_empty_table(self):
        assert format_table([], []) == ""

    def test_body_matches_format_row(self):
        # The body is rendered by format_row itself, so float formatting
        # can never drift between the two paths.
        headers = ["v"]
        rows = [[0.000012345], [1.5]]
        text = format_table(headers, rows)
        widths = [len(text.splitlines()[0])]
        for row in rows:
            assert format_row(row, widths) in text
