"""Deadline budgets and token-bucket load shedding."""

import pytest

from repro.netsim.simulator import ManualClock
from repro.resilience import Deadline, TokenBucket


class TestDeadline:
    def test_after_sets_the_absolute_expiry(self):
        deadline = Deadline.after(10.0, 0.25)
        assert deadline.at == pytest.approx(10.25)

    def test_remaining_shrinks_and_clamps_at_zero(self):
        deadline = Deadline.after(0.0, 1.0)
        assert deadline.remaining(0.4) == pytest.approx(0.6)
        assert deadline.remaining(1.0) == 0.0
        assert deadline.remaining(5.0) == 0.0

    def test_expired(self):
        deadline = Deadline.after(0.0, 1.0)
        assert not deadline.expired(0.999)
        assert deadline.expired(1.0)

    def test_allows_requires_budget_beyond_the_delay(self):
        deadline = Deadline.after(0.0, 1.0)
        assert deadline.allows(0.0, 0.5)
        assert not deadline.allows(0.6, 0.4)  # lands exactly on expiry
        assert not deadline.allows(0.9, 0.5)

    def test_non_positive_budget_is_rejected(self):
        with pytest.raises(ValueError):
            Deadline.after(0.0, 0.0)


class TestTokenBucket:
    def test_burst_is_admitted_then_refused(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=10.0, burst=3, clock=clock.now)
        assert [bucket.try_acquire() for _ in range(4)] == [
            True, True, True, False,
        ]
        assert bucket.admitted == 3
        assert bucket.refused == 1

    def test_refill_is_a_function_of_elapsed_time(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=10.0, burst=3, clock=clock.now)
        for _ in range(3):
            bucket.try_acquire()
        clock.advance(0.1)  # one token back at 10/s
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_tokens_never_exceed_the_burst(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=100.0, burst=5, clock=clock.now)
        clock.advance(60.0)
        assert bucket.tokens == pytest.approx(5.0)

    def test_sustained_rate_is_enforced(self):
        clock = ManualClock()
        bucket = TokenBucket(rate=5.0, burst=1, clock=clock.now)
        admitted = 0
        for _ in range(100):  # 100 arrivals over 10 s at 10/s offered
            clock.advance(0.1)
            if bucket.try_acquire():
                admitted += 1
        # 5/s sustained over 10 s, plus the initial burst token.
        assert admitted <= 51

    @pytest.mark.parametrize("kwargs", [dict(rate=0.0), dict(burst=0.5)])
    def test_invalid_parameters_are_rejected(self, kwargs):
        clock = ManualClock()
        with pytest.raises(ValueError):
            TokenBucket(
                rate=kwargs.get("rate", 1.0),
                burst=kwargs.get("burst", 1.0),
                clock=clock.now,
            )
