"""Property tests for :class:`repro.resilience.BackoffPolicy`.

Three properties are the contract the frontend's deadline budgeting
relies on: delays are bounded by the cap (so a deadline provisioned
against ``cap`` survives any retry count), the undithered schedule is
non-decreasing (so retries genuinely back off), and jitter is a pure
function of the seeded stream (so chaos runs replay byte-identically).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.resilience import BackoffPolicy


@st.composite
def policies(draw):
    base = draw(st.floats(1e-4, 1.0, allow_nan=False, allow_infinity=False))
    cap = draw(st.floats(base, 10.0, allow_nan=False, allow_infinity=False))
    multiplier = draw(st.floats(1.0, 8.0, allow_nan=False, allow_infinity=False))
    jitter = draw(st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False))
    return BackoffPolicy(base=base, multiplier=multiplier, cap=cap, jitter=jitter)


@settings(max_examples=100, deadline=None)
@given(policy=policies(), attempt=st.integers(0, 200), seed=st.integers(0, 2**16))
def test_jittered_delay_is_positive_and_bounded_by_cap(policy, attempt, seed):
    rng = np.random.default_rng(seed)
    delay = policy.delay(attempt, rng)
    assert 0.0 < delay <= policy.cap
    # The jittered delay never exceeds the undithered schedule either.
    assert delay <= policy.base_delay(attempt)


@settings(max_examples=100, deadline=None)
@given(policy=policies(), attempt=st.integers(0, 100))
def test_base_schedule_is_non_decreasing(policy, attempt):
    assert policy.base_delay(attempt) <= policy.base_delay(attempt + 1)


@settings(max_examples=50, deadline=None)
@given(policy=policies(), seed=st.integers(0, 2**16))
def test_jitter_is_deterministic_per_seed(policy, seed):
    a = [policy.delay(n, np.random.default_rng(seed)) for n in range(8)]
    b = [policy.delay(n, np.random.default_rng(seed)) for n in range(8)]
    assert a == b


def test_no_rng_means_no_jitter():
    policy = BackoffPolicy(base=0.01, multiplier=2.0, cap=0.25, jitter=0.5)
    assert [policy.delay(n) for n in range(6)] == [
        policy.base_delay(n) for n in range(6)
    ]


def test_schedule_saturates_at_cap_without_overflow():
    policy = BackoffPolicy(base=0.01, multiplier=2.0, cap=0.25)
    assert policy.base_delay(10_000) == policy.cap


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(base=0.0),
        dict(base=-1.0),
        dict(multiplier=0.5),
        dict(base=0.5, cap=0.1),
        dict(jitter=1.5),
        dict(jitter=-0.1),
    ],
)
def test_invalid_policies_are_rejected(kwargs):
    with pytest.raises(ValueError):
        BackoffPolicy(**kwargs)


def test_negative_attempt_is_rejected():
    with pytest.raises(ValueError):
        BackoffPolicy().base_delay(-1)
