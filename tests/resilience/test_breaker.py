"""The circuit breaker's full state machine, driven by a manual clock."""

import pytest

from repro.netsim.simulator import ManualClock
from repro.resilience import BreakerBoard, BreakerState, CircuitBreaker


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def breaker(clock):
    return CircuitBreaker(
        clock.now, failure_threshold=3, reset_timeout=1.0, half_open_probes=1
    )


def test_starts_closed_and_allows_traffic(breaker):
    assert breaker.state is BreakerState.CLOSED
    assert all(breaker.allow() for _ in range(10))


def test_threshold_consecutive_failures_trip_it_open(breaker):
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED
    breaker.record_failure()
    assert breaker.state is BreakerState.OPEN
    assert breaker.times_opened == 1
    assert not breaker.allow()
    assert breaker.calls_refused == 1


def test_a_success_resets_the_consecutive_failure_count(breaker):
    breaker.record_failure()
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state is BreakerState.CLOSED


def test_open_half_opens_after_the_reset_timeout(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.advance(0.99)
    assert breaker.state is BreakerState.OPEN
    clock.advance(0.01)
    assert breaker.state is BreakerState.HALF_OPEN


def test_half_open_admits_only_the_probe_budget(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.advance(1.0)
    assert breaker.allow()  # the one probe slot
    assert not breaker.allow()  # budget consumed
    assert breaker.calls_refused == 1


def test_successful_probe_recloses(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.advance(1.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED
    assert breaker.times_reclosed == 1
    assert breaker.allow()


def test_failed_probe_reopens_and_restarts_the_clock(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    clock.advance(1.0)
    assert breaker.allow()
    breaker.record_failure()  # one failure suffices in half-open
    assert breaker.state is BreakerState.OPEN
    assert breaker.times_opened == 2
    clock.advance(0.5)
    assert breaker.state is BreakerState.OPEN  # clock restarted at reopen
    clock.advance(0.5)
    assert breaker.state is BreakerState.HALF_OPEN


def test_failures_while_open_do_not_accumulate(breaker, clock):
    for _ in range(3):
        breaker.record_failure()
    breaker.record_failure()  # late straggler reply, already open
    clock.advance(1.0)
    assert breaker.allow()
    breaker.record_success()
    assert breaker.state is BreakerState.CLOSED


@pytest.mark.parametrize(
    "kwargs",
    [
        dict(failure_threshold=0),
        dict(reset_timeout=0.0),
        dict(half_open_probes=0),
    ],
)
def test_invalid_breaker_parameters_are_rejected(clock, kwargs):
    with pytest.raises(ValueError):
        CircuitBreaker(clock.now, **kwargs)


def test_board_keeps_independent_per_target_state(clock):
    board = BreakerBoard(clock.now, failure_threshold=2, reset_timeout=1.0)
    board.record("shard-0", ok=False)
    board.record("shard-0", ok=False)
    board.record("shard-1", ok=False)
    assert not board.allow("shard-0")
    assert board.allow("shard-1")
    assert board.open_targets() == ["shard-0"]
    assert board.times_opened == 1
    clock.advance(1.0)
    assert board.state("shard-0") is BreakerState.HALF_OPEN
