"""E13 (ablation) — Watermark strength: robustness vs perceptibility.

DESIGN.md calls out the QIM step ``delta`` as the watermark's central
design choice: larger steps survive harsher compression but distort
pixels more.  This ablation sweeps delta and reports the trade-off
curve — JPEG survival quality threshold vs PSNR — justifying the
default (delta=40: survives quality 50, stays above 40 dB).

Also ablates the tile geometry: more coefficients per block means more
payload copies (stronger voting) at more distortion.
"""

import numpy as np
import pytest

from repro.media.image import generate_photo
from repro.media.jpeg import jpeg_roundtrip
from repro.media.watermark import WatermarkCodec, WatermarkError
from repro.metrics.reporting import Table

PAYLOAD = bytes(range(12))
NUM_PHOTOS = 6
QUALITIES = [90, 70, 50, 40, 30, 20]


def _survival(codec: WatermarkCodec, photos, quality: int) -> float:
    ok = 0
    for photo in photos:
        marked = codec.embed(photo, PAYLOAD)
        degraded = jpeg_roundtrip(marked, quality)
        try:
            if codec.extract(degraded, search_offsets=False).payload == PAYLOAD:
                ok += 1
        except WatermarkError:
            pass
    return ok / len(photos)


def _mean_psnr(codec: WatermarkCodec, photos) -> float:
    return float(
        np.mean([codec.embed(p, PAYLOAD).psnr_against(p) for p in photos])
    )


@pytest.fixture(scope="module")
def photos():
    return [
        generate_photo(seed=1300 + i, height=256, width=256)
        for i in range(NUM_PHOTOS)
    ]


def test_e13_delta_sweep(photos, report, benchmark):
    table = Table(
        headers=["delta", "PSNR (dB)"] + [f"q{q}" for q in QUALITIES],
        title="E13: QIM step vs JPEG survival (fraction recovered)",
    )
    curves = {}
    for delta in (16.0, 24.0, 40.0, 64.0, 96.0):
        codec = WatermarkCodec(payload_len=12, delta=delta)
        psnr = _mean_psnr(codec, photos)
        survivals = [_survival(codec, photos, q) for q in QUALITIES]
        curves[delta] = (psnr, survivals)
        table.add(delta, f"{psnr:.1f}", *[f"{s:.2f}" for s in survivals])
    report(table)

    # Monotonicity of the trade-off: bigger delta => lower PSNR.
    psnrs = [curves[d][0] for d in (16.0, 40.0, 96.0)]
    assert psnrs[0] > psnrs[1] > psnrs[2]
    # Bigger delta => survives harsher compression (q30 column).
    q30 = QUALITIES.index(30)
    assert curves[96.0][1][q30] >= curves[16.0][1][q30]
    # The default (40) hits the design target: survives q50 with
    # PSNR > 38 dB.
    q50 = QUALITIES.index(50)
    assert curves[40.0][1][q50] == 1.0
    assert curves[40.0][0] > 38.0
    # delta=16 is below the JPEG quantization floor at q50 (steps ~17):
    # it must do strictly worse than the default somewhere harsh.
    assert sum(curves[16.0][1]) < sum(curves[40.0][1])

    codec = WatermarkCodec(payload_len=12, delta=40.0)
    benchmark(lambda: _survival(codec, photos[:2], 50))


def test_e13_coefficients_per_block(photos, report, benchmark):
    """More embedding positions per block: more redundancy, more
    distortion, and (at fixed tile area) a smaller search space."""
    # Tile geometry must carry the 112-bit payload: 2 coeffs/block
    # needs a bigger tile (8x7x2 = 112 slots exactly).
    position_sets = {
        2: (((1, 2), (2, 1)), dict(tile_rows=8, tile_cols=7)),
        4: (((1, 2), (2, 1), (2, 2), (3, 1)), {}),
        6: (((1, 2), (2, 1), (2, 2), (3, 1), (1, 3), (3, 2)), {}),
    }
    table = Table(
        headers=["coeffs/block", "PSNR (dB)", "q50 survival", "q30 survival"],
        title="E13b: embedding density ablation",
    )
    results = {}
    for count, (positions, tile_kwargs) in position_sets.items():
        codec = WatermarkCodec(payload_len=12, positions=positions, **tile_kwargs)
        psnr = _mean_psnr(codec, photos)
        s50 = _survival(codec, photos, 50)
        s30 = _survival(codec, photos, 30)
        results[count] = (psnr, s50, s30)
        table.add(count, f"{psnr:.1f}", f"{s50:.2f}", f"{s30:.2f}")
    report(table)
    # Denser embedding costs PSNR.
    assert results[2][0] > results[6][0]
    # All configurations meet the design target (JPEG q50).
    assert all(r[1] >= 0.8 for r in results.values())
    # Extra positions include weaker (higher-frequency) coefficients
    # that break first at harsh quality: the density trade-off.
    assert results[6][2] <= results[4][2]

    codec = WatermarkCodec(payload_len=12)
    marked = codec.embed(photos[0], PAYLOAD)
    benchmark(lambda: codec.extract(marked, search_offsets=False))
