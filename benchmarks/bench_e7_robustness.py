"""E7 — Label robustness to benign manipulations (Goal #5, section 3.2).

Claim: "Because the identifier has relatively few bits, the watermark
can be made robust to many benign picture manipulations (e.g.,
compression, cropping, tinting)" — and when pixel-domain labels die,
the appeals path falls back to robust hashing ("using robust hashing
(as in PhotoDNA)").

Method: a transform sweep over watermarked synthetic photos measures,
per manipulation, (a) the watermark extraction success rate and (b) the
perceptual-hash match rate — the two recovery channels.
"""

import numpy as np
import pytest

from repro.media.image import generate_photo
from repro.media.jpeg import jpeg_roundtrip
from repro.media.perceptual import robust_hash
from repro.media.transforms import (
    add_noise,
    adjust_brightness,
    adjust_contrast,
    crop,
    flip_horizontal,
    overlay_caption,
    resize,
    tint,
)
from repro.media.watermark import WatermarkCodec, WatermarkError
from repro.metrics.reporting import Table

NUM_PHOTOS = 12
PAYLOAD = bytes(range(12))


def _transforms(rng):
    return [
        ("identity", lambda p: p),
        ("jpeg q=75", lambda p: jpeg_roundtrip(p, 75)),
        ("jpeg q=50", lambda p: jpeg_roundtrip(p, 50)),
        ("jpeg q=30", lambda p: jpeg_roundtrip(p, 30)),
        ("tint warm 10%", lambda p: tint(p, (1.1, 1.0, 0.9))),
        ("brightness +0.08", lambda p: adjust_brightness(p, 0.08)),
        ("contrast x1.15", lambda p: adjust_contrast(p, 1.15)),
        ("noise sigma=0.01", lambda p: add_noise(p, 0.01, rng)),
        ("crop 80% (unaligned)", lambda p: crop(p, 13, 21, 200, 208)),
        ("caption band", lambda p: overlay_caption(p)),
        ("flip horizontal", lambda p: flip_horizontal(p)),
        ("resize 90%", lambda p: resize(p, 230, 230)),
        ("jpeg q=50 + tint", lambda p: jpeg_roundtrip(tint(p, (1.08, 1.0, 0.92)), 50)),
    ]


def test_e7_robustness_matrix(report, benchmark):
    codec = WatermarkCodec(payload_len=12)
    rng = np.random.default_rng(77)
    photos = [
        generate_photo(seed=700 + i, height=256, width=256)
        for i in range(NUM_PHOTOS)
    ]
    marked = [codec.embed(photo, PAYLOAD) for photo in photos]
    hashes = [robust_hash(photo) for photo in photos]

    table = Table(
        headers=[
            "manipulation",
            "watermark recovered",
            "perceptual match",
            "either channel",
        ],
        title="E7: label survival per manipulation (12 photos each)",
    )
    rates = {}
    for name, transform in _transforms(rng):
        wm_ok = 0
        hash_ok = 0
        either = 0
        for original_hash, photo in zip(hashes, marked):
            transformed = transform(photo)
            try:
                result = codec.extract(transformed, try_flip=True)
                wm = result.payload == PAYLOAD
            except WatermarkError:
                wm = False
            ph = original_hash.matches(robust_hash(transformed))
            wm_ok += wm
            hash_ok += ph
            either += wm or ph
        rates[name] = (wm_ok / NUM_PHOTOS, hash_ok / NUM_PHOTOS, either / NUM_PHOTOS)
        table.add(
            name,
            f"{wm_ok}/{NUM_PHOTOS}",
            f"{hash_ok}/{NUM_PHOTOS}",
            f"{either}/{NUM_PHOTOS}",
        )
    report(table)

    # Goal #5's named manipulations: compression, cropping, tinting all
    # keep the watermark alive.
    for name in ("jpeg q=75", "jpeg q=50", "tint warm 10%", "crop 80% (unaligned)"):
        assert rates[name][0] >= 0.9, f"watermark died under {name}"
    # Resize kills the watermark but the perceptual channel holds — the
    # division of labour the design relies on.
    assert rates["resize 90%"][0] <= 0.2
    assert rates["resize 90%"][1] >= 0.9
    # Every benign manipulation is recoverable through *some* channel.
    for name, (_, _, either_rate) in rates.items():
        assert either_rate >= 0.9, f"no recovery channel under {name}"

    benchmark(
        lambda: codec.extract(jpeg_roundtrip(marked[0], 60), search_offsets=False)
    )


def test_e7_embedding_imperceptible(report, benchmark):
    """The watermark must cause "little or no perceptible distortion"."""
    codec = WatermarkCodec(payload_len=12)
    psnrs = []
    for i in range(NUM_PHOTOS):
        photo = generate_photo(seed=900 + i, height=256, width=256)
        marked = codec.embed(photo, PAYLOAD)
        psnrs.append(marked.psnr_against(photo))
    table = Table(
        headers=["metric", "value"],
        title="E7b: watermark perceptibility",
    )
    table.add("mean PSNR (dB)", f"{np.mean(psnrs):.1f}")
    table.add("min PSNR (dB)", f"{np.min(psnrs):.1f}")
    report(table)
    assert float(np.min(psnrs)) > 34.0  # comfortably imperceptible

    photo = generate_photo(seed=999, height=256, width=256)
    benchmark(lambda: codec.embed(photo, PAYLOAD))


def test_e7_unmarked_photos_never_decode(report, benchmark):
    """False-positive control: the CRC keeps unwatermarked photos from
    producing identifiers."""
    codec = WatermarkCodec(payload_len=12)
    false_positives = 0
    for i in range(NUM_PHOTOS):
        photo = generate_photo(seed=1100 + i, height=256, width=256)
        try:
            codec.extract(photo)
            false_positives += 1
        except WatermarkError:
            pass
    table = Table(
        headers=["metric", "value"],
        title="E7c: extraction false positives on unmarked photos",
    )
    table.add("false positives", f"{false_positives}/{NUM_PHOTOS}")
    report(table)
    assert false_positives == 0

    photo = generate_photo(seed=1199, height=256, width=256)
    benchmark(lambda: codec.has_watermark(photo, search_offsets=False))
