"""E14 (ablation) — Recheck interval: revocation latency vs ledger load.

Nongoal #4 accepts non-instantaneous revocation; section 3.2 says
aggregators "periodically recheck".  The interval is the design knob:
short intervals take revoked content down fast but multiply ledger
queries.  This ablation sweeps the interval over a simulated week of
aggregator operation with Poisson revocations and reports both sides
of the trade-off.
"""

import numpy as np
import pytest

from repro.aggregator.aggregator import AggregatorConfig, ContentAggregator
from repro.aggregator.recheck import PeriodicRechecker
from repro.core import IrsDeployment
from repro.ledger.records import RevocationState
from repro.metrics.reporting import Table
from repro.netsim.simulator import Simulator
from repro.workload.population import populate_ledger

HOSTED_PHOTOS = 300
WEEK = 7 * 24 * 3600.0
REVOCATIONS = 40  # owners revoking during the week


def _run_week(interval_s: float, seed: int):
    """Returns (mean takedown latency, total status queries)."""
    irs = IrsDeployment.create(seed=seed)
    rng = np.random.default_rng(seed)
    population = populate_ledger(irs.ledger, HOSTED_PHOTOS, 0.0, rng)
    sim = Simulator()
    aggregator = ContentAggregator(
        "site",
        irs.registry,
        config=AggregatorConfig(recheck_interval=interval_s),
        clock=sim.clock().now,
    )
    # Host everything (labels/proofs elided: the recheck loop only needs
    # identifiers).
    from repro.media.image import Photo

    placeholder = Photo(pixels=np.full((8, 8, 3), 0.5))
    for i, identifier in enumerate(population.identifiers):
        aggregator.host(f"p{i}", placeholder, identifier)

    rechecker = PeriodicRechecker(aggregator)
    rechecker.schedule_on(sim, interval=interval_s, until=WEEK)

    # Poisson revocations across the week.
    revocation_times = np.sort(rng.uniform(0, WEEK * 0.9, size=REVOCATIONS))
    revoked_indices = rng.choice(HOSTED_PHOTOS, size=REVOCATIONS, replace=False)
    takedown_latencies = []

    for when, index in zip(revocation_times, revoked_indices):
        identifier = population.identifiers[int(index)]

        def _revoke(identifier=identifier, when=float(when)):
            record = irs.ledger.record(identifier)
            record.state = RevocationState.REVOKED

        sim.schedule_at(float(when), _revoke)

    baseline_queries = irs.ledger.status_queries_served
    sim.run(until=WEEK)

    # Takedown latency: find when each revoked photo came down.
    takedown_time = {}
    for report_obj in rechecker.reports:
        for name in report_obj.takedowns:
            takedown_time[name] = report_obj.completed_at
    for when, index in zip(revocation_times, revoked_indices):
        name = f"p{int(index)}"
        if name in takedown_time:
            takedown_latencies.append(takedown_time[name] - float(when))
    queries = irs.ledger.status_queries_served - baseline_queries
    return (
        float(np.mean(takedown_latencies)) if takedown_latencies else float("inf"),
        queries,
        len(takedown_latencies),
    )


def test_e14_interval_tradeoff(report, benchmark):
    table = Table(
        headers=[
            "recheck interval",
            "mean takedown latency (h)",
            "ledger queries / week",
            "takedowns",
        ],
        title="E14: recheck interval — revocation latency vs ledger load",
    )
    results = {}
    for interval_h in (1, 6, 24, 72):
        latency, queries, takedowns = _run_week(interval_h * 3600.0, seed=1400)
        results[interval_h] = (latency, queries)
        table.add(
            f"{interval_h}h",
            f"{latency / 3600.0:.1f}",
            queries,
            takedowns,
        )
    report(table)

    # Latency scales with the interval (roughly interval/2 + sweep lag).
    assert results[1][0] < results[6][0] < results[72][0]
    for interval_h in (1, 6, 24, 72):
        latency, _ = results[interval_h]
        assert latency <= interval_h * 3600.0 * 1.1
    # Load scales inversely with the interval.
    assert results[1][1] > results[24][1] > results[72][1]
    # The hourly configuration keeps mean takedown under an hour —
    # the "delays ... far smaller once the eventual system is adopted"
    # regime of Nongoal #4.
    assert results[1][0] < 3600.0 * 1.1

    benchmark.pedantic(
        lambda: _run_week(24 * 3600.0, seed=1401), rounds=1, iterations=1
    )
