"""E18 — Chaos: revocation invariants survive injected faults.

Claim: the paper's central promise — a revocation, once acknowledged,
is *globally* effective — only means something if the service keeps it
under real-world failure: partitions, crashed and disk-wiped replicas,
duplicated and reordered replication traffic, drifting clocks.  The
cluster's quorum overlap (R + W > N) and read repair are supposed to
make acknowledged revocations durable and replicas convergent through
all of it.

Method: :func:`repro.chaos.run_chaos` drives a mixed status/revocation
workload through seed-generated fault schedules of increasing
intensity, records the client-visible history, and audits it with the
consistency checker.  The sweep anchors at intensity 0 (no faults: the
control every chaos claim needs), asserts zero invariant violations at
*every* intensity, and shows availability as the only casualty.  Two
further tests pin the harness itself: identical seeds reproduce
identical report rows (chaos failures must be replayable to be
debuggable), and a deliberately sabotaged last-arrival-wins replica
trips the checker — proving green runs are not vacuous.
"""

from repro.chaos import run_chaos, run_selftest
from repro.metrics.reporting import Table

INTENSITIES = (0.0, 0.3, 0.6, 1.0)
SEED = 18


def _run(intensity, seed=SEED):
    return run_chaos(
        num_shards=4,
        seed=seed,
        intensity=intensity,
        queries=300,
        revocations=20,
        population=120,
    )


def test_e18_intensity_sweep_keeps_invariants(report):
    table = Table(
        headers=[
            "intensity",
            "partitions",
            "crashes",
            "wipes",
            "availability",
            "revokes acked",
            "read repairs",
            "violations",
            "digest",
        ],
        title="E18: fault intensity vs revocation consistency",
    )
    results = {}
    for intensity in INTENSITIES:
        r = _run(intensity)
        results[intensity] = r
        row = r.row()
        table.add(
            row["intensity"],
            row["partitions"],
            row["crashes"],
            row["wipes"],
            row["availability"],
            row["revokes_acked"],
            row["read_repairs"],
            row["violations"],
            row["digest"],
        )
    report(table)

    # The control run: no faults, perfect availability, nothing lost.
    control = results[0.0]
    assert control.check.ok
    assert control.availability == 1.0
    assert sum(control.faults.values()) == 0
    assert control.records_lost == 0

    # The claim itself: *no* intensity produces an invariant violation —
    # acknowledged revocations stay durable, replicas reconverge.
    for intensity, result in results.items():
        assert result.check.ok, (
            f"intensity {intensity}: {result.check.by_invariant()}"
        )
        # Revocations issued mid-fault still reach quorum or fail loudly;
        # at least half must get through at every intensity.
        assert result.revokes_acked * 2 >= result.revokes_attempted

    # The sweep is not vacuous: the top intensity actually injected
    # faults, and the histories genuinely differ from the control.
    assert sum(results[1.0].faults.values()) > 0
    assert results[1.0].faults["partition"] > 0


def test_e18_identical_seeds_reproduce_identical_rows():
    first = _run(0.7, seed=42)
    second = _run(0.7, seed=42)
    assert first.row() == second.row()
    assert first.digest == second.digest
    # A different seed draws a different schedule and workload — the
    # digest (over every replica's full state) must move with it.
    other = _run(0.7, seed=43)
    assert other.digest != first.digest


def test_e18_checker_detects_seeded_lww_bug():
    result = run_selftest(seed=SEED)
    assert result.clean.ok, result.clean.by_invariant()
    assert result.buggy.count("revocation_durability") >= 1
    assert result.buggy.count("divergence") >= 1
    assert result.detected
