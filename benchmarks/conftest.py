"""Benchmark harness configuration.

Each ``bench_e*.py`` file regenerates one experiment from EXPERIMENTS.md
(the paper's quantitative claims).  Files both *measure* (via
pytest-benchmark), *report* (tables printed to the terminal), and
*assert* the claim's shape, so a silent run is still a verification.
"""

import pytest

from repro.perf.workloads import burst_indices


@pytest.fixture(scope="session")
def burst_workload():
    """The shared seeded workload builder (``repro.perf.workloads``).

    Benches and the perf suite must draw their query indices from the
    same builder so "the E17 workload" means one thing everywhere; a
    bench that rolls its own ``default_rng`` drifts silently.
    """
    return burst_indices


@pytest.fixture(scope="session")
def report(request):
    """Collects experiment tables and prints them at session end.

    Printing happens with capture disabled, so the tables appear in the
    terminal even without ``-s``.
    """
    tables = []
    yield tables.append
    if not tables:
        return
    # Dump machine-readable CSVs next to the benchmarks for plotting.
    from pathlib import Path

    results_dir = Path(__file__).parent / "results"
    results_dir.mkdir(exist_ok=True)
    for t in tables:
        if hasattr(t, "to_csv"):
            (results_dir / f"{t.slug()}.csv").write_text(t.to_csv())
    text = "\n".join(
        t.render() if hasattr(t, "render") else str(t) for t in tables
    )
    banner = (
        "\n" + "=" * 72 + "\n"
        "EXPERIMENT TABLES (paper-claim reproductions)\n" + "=" * 72 + "\n"
    )
    capman = request.config.pluginmanager.getplugin("capturemanager")
    if capman is not None:
        with capman.global_and_fixture_disabled():
            print(banner + text)
    else:  # pragma: no cover - capture always present under pytest
        print(banner + text)
