"""E9 — TET adoption dynamics (paper sections 1, 4.1, 4.4, 6).

Claims made executable:

* "once the population of photos in the bootstrap phase of IRS reaches
  anywhere close to 100 billion photos, the ecosystem incentives will
  start to kick in and the major content aggregators would support IRS"
* the bootstrap is necessary: without first movers, incumbents never
  flip;
* incentive composition matters: liability pressure accelerates
  tipping; engagement-heavy incumbents delay it.

Method: the agent-based adoption model runs the four canned scenarios,
plus a sweep over the liability weight locating the tipping threshold.
"""

import numpy as np
import pytest

from repro.ecosystem.adoption import AdoptionModel
from repro.ecosystem.incentives import IncentiveWeights
from repro.ecosystem.scenarios import (
    baseline_scenario,
    engagement_incumbents_scenario,
    no_first_mover_scenario,
    strong_liability_scenario,
)
from repro.metrics.reporting import Table

MONTHS = 240


def test_e9_scenarios(report, benchmark):
    table = Table(
        headers=[
            "scenario",
            "tip month",
            "photos at tip",
            "final agg. share",
            "final user adoption",
        ],
        title="E9: TET scenarios (240 months)",
    )
    traces = {}
    for scenario in (
        baseline_scenario(),
        no_first_mover_scenario(),
        strong_liability_scenario(),
        engagement_incumbents_scenario(),
    ):
        trace = scenario.build(seed=2022).run(MONTHS)
        traces[scenario.name] = trace
        tip = trace.tipping_month(0.5)
        photos = trace.photos_at_tipping(0.5)
        final = trace.final()
        table.add(
            scenario.name,
            tip if tip is not None else "never",
            f"{photos:.2e}" if photos is not None else "—",
            f"{final.aggregator_share_adopted:.2f}",
            f"{final.user_adoption:.2f}",
        )
    report(table)

    baseline = traces["baseline"]
    # The paper's 100 B threshold, within an order of magnitude.
    photos_at_tip = baseline.photos_at_tipping(0.5)
    assert photos_at_tip is not None
    assert 1e10 <= photos_at_tip <= 1e12
    assert baseline.final().aggregator_share_adopted == pytest.approx(1.0)
    # No first mover => no transformation, ever.
    never = traces["no-first-mover"]
    assert never.tipping_month() is None
    assert never.final().photo_population == 0.0
    # Liability accelerates; engagement resistance delays.
    assert (
        traces["strong-liability"].tipping_month()
        <= baseline.tipping_month()
        <= traces["engagement-incumbents"].tipping_month()
    )

    benchmark(lambda: baseline_scenario().build(seed=1).run(60))


def test_e9_liability_sweep(report, benchmark):
    """Tipping photo-population vs liability weight: the lever a legal
    environment pulls."""
    table = Table(
        headers=["liability weight", "tip month", "photos at tip"],
        title="E9b: tipping threshold vs liability pressure",
    )
    tips = {}
    for liability in (0.5, 1.0, 1.5, 3.0, 6.0):
        scenario = baseline_scenario()
        scenario.weights = IncentiveWeights(liability_weight=liability)
        trace = scenario.build(seed=5).run(MONTHS)
        month = trace.tipping_month(0.5)
        photos = trace.photos_at_tipping(0.5)
        tips[liability] = (month, photos)
        table.add(
            liability,
            month if month is not None else "never",
            f"{photos:.2e}" if photos is not None else "—",
        )
    report(table)
    # Stronger liability never delays tipping.
    months = [tips[w][0] for w in (0.5, 1.5, 6.0)]
    assert all(m is not None for m in months)
    assert months[0] >= months[1] >= months[2]

    benchmark(lambda: baseline_scenario().build(seed=9).run(120))


def test_e9_single_aggregator_effectiveness(report, benchmark):
    """Section 4.1: "adoption by a single aggregator would be effective,
    because the bootstrap phase has established the other components" —
    the first adopter triggers the follower-vendor wave and adds
    competitive pressure that cascades."""
    model = baseline_scenario().build(seed=2022)
    trace = model.run(MONTHS)
    adopt_months = sorted(
        a.adopted_at for a in model.aggregators if a.adopted_at is not None
    )
    table = Table(
        headers=["adoption order", "month"],
        title="E9c: the cascade after the first adopter",
    )
    for i, month in enumerate(adopt_months, start=1):
        table.add(f"aggregator #{i}", int(month))
    report(table)
    assert len(adopt_months) == len(model.aggregators)
    # The whole cascade completes within ~3 years of the first adopter.
    assert adopt_months[-1] - adopt_months[0] <= 36

    benchmark(lambda: baseline_scenario().build(seed=3).run(48))


def test_e9_monte_carlo_uncertainty(report, benchmark):
    """Section 6's honesty, quantified: with every incentive weight
    uncertain (30% lognormal), how often does the transformation still
    happen, and how wide is the tipping-threshold band?"""
    from repro.ecosystem.montecarlo import run_monte_carlo

    result = run_monte_carlo(
        baseline_scenario(), runs=60, months=MONTHS, weight_spread=0.3, seed=42
    )
    month_q = result.tipping_month_quantiles()
    photo_q = result.photo_threshold_quantiles()
    table = Table(
        headers=["metric", "p10", "p50", "p90"],
        title="E9d: Monte Carlo over incentive-weight uncertainty (60 runs)",
    )
    table.add("tipping month", *[f"{q:.0f}" for q in month_q])
    table.add("photos at tipping", *[f"{q:.2e}" for q in photo_q])
    table.add(
        "tipping probability",
        f"{result.tipping_probability:.2f}",
        "",
        "",
    )
    report(table)
    # The transformation is robust to weight uncertainty...
    assert result.tipping_probability > 0.8
    # ...and the threshold band brackets the paper's order of magnitude.
    assert photo_q[0] < 1e12 and photo_q[2] > 1e10

    benchmark.pedantic(
        lambda: run_monte_carlo(baseline_scenario(), runs=5, months=120, seed=9),
        rounds=1,
        iterations=1,
    )
