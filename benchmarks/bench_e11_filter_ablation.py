"""E11 (ablation) — Bloom vs the cited "recent advances" [15, 16].

The paper sizes its bootstrap argument with "a standard Bloom filter
(see more recent advances in [9, 15, 16])".  This ablation quantifies
what switching to Xor (Graf & Lemire 2020) or Binary Fuse (2022)
filters buys the same deployment: space at equal-or-better FPR, build
cost (ledgers rebuild hourly), and query cost (the proxy hot path).
"""

import numpy as np
import pytest

from repro.filters.binary_fuse import BinaryFuseFilter
from repro.filters.bloom import BloomFilter
from repro.filters.sizing import load_reduction_factor
from repro.filters.xor_filter import XorFilter
from repro.metrics.reporting import Table

NUM_KEYS = 50_000
PROBES = 50_000


@pytest.fixture(scope="module")
def keys():
    return [f"photo-{i}".encode() for i in range(NUM_KEYS)]


@pytest.fixture(scope="module")
def built(keys):
    bloom = BloomFilter.for_capacity(NUM_KEYS, 0.02)
    bloom.add_many(keys)
    xor = XorFilter.build(keys)
    fuse = BinaryFuseFilter.build(keys)
    return {"bloom (2% target)": bloom, "xor": xor, "binary fuse": fuse}


def test_e11_space_and_fpr(built, report, benchmark):
    rng = np.random.default_rng(11)
    table = Table(
        headers=[
            "filter",
            "bits/key",
            "measured FPR",
            "implied load reduction",
        ],
        title="E11: filter family ablation at 50k keys",
    )
    stats = {}
    for name, filt in built.items():
        bits_per_key = 8.0 * filt.nbytes / NUM_KEYS
        fpr = filt.measure_fpr(PROBES, rng)
        stats[name] = (bits_per_key, fpr)
        table.add(
            name,
            f"{bits_per_key:.2f}",
            f"{fpr:.4f}",
            f"{load_reduction_factor(max(fpr, 1e-6)):.0f}x",
        )
    report(table)

    bloom_bpk, bloom_fpr = stats["bloom (2% target)"]
    xor_bpk, xor_fpr = stats["xor"]
    fuse_bpk, fuse_fpr = stats["binary fuse"]
    # The advances' selling point: ~5x lower FPR at comparable space.
    assert xor_fpr < bloom_fpr / 3
    assert fuse_fpr < bloom_fpr / 3
    assert xor_bpk < 11.0
    assert fuse_bpk < xor_bpk  # fuse beats xor on space at this scale
    benchmark(lambda: BloomFilter.for_capacity(NUM_KEYS, 0.02))


@pytest.mark.parametrize("family", ["bloom", "xor", "fuse"])
def test_e11_build_cost(keys, family, benchmark):
    """Hourly rebuild cost per family (ledger side)."""
    if family == "bloom":
        def build():
            filt = BloomFilter.for_capacity(NUM_KEYS, 0.02)
            filt.add_many(keys)
            return filt
    elif family == "xor":
        def build():
            return XorFilter.build(keys)
    else:
        def build():
            return BinaryFuseFilter.build(keys)
    result = benchmark.pedantic(build, rounds=2, iterations=1)
    assert result.num_keys if family != "bloom" else True


@pytest.mark.parametrize("family", ["bloom", "xor", "fuse"])
def test_e11_query_cost(built, family, benchmark):
    """Proxy hot-path query cost per family."""
    filt = {
        "bloom": built["bloom (2% target)"],
        "xor": built["xor"],
        "fuse": built["binary fuse"],
    }[family]
    probes = [f"probe-{i}".encode() for i in range(2_000)]

    def query_all():
        return sum(1 for p in probes if p in filt)

    benchmark(query_all)


def test_e11_tradeoff_note(built, report, benchmark):
    """What Bloom still wins: incremental insert and OR-merging.  The
    static families must rebuild to add a key — relevant because the
    ledger's revoked set changes hourly."""
    table = Table(
        headers=["capability", "bloom", "xor / binary fuse"],
        title="E11b: qualitative trade-offs for the IRS deployment",
    )
    table.add("incremental insert", "yes", "no (rebuild)")
    table.add("OR-merge across ledgers", "yes (same geometry)", "no")
    table.add("delta-encodable updates", "yes (bit diffs)", "full rebuild ship")
    table.add("space @ ~0.4% FPR", "~12.8 bits/key", "~9.1-9.9 bits/key")
    report(table)
    # The one quantitative check: to match xor's measured FPR, Bloom
    # needs more space than xor uses.
    rng = np.random.default_rng(12)
    xor_fpr = built["xor"].measure_fpr(20_000, rng)
    from repro.filters.sizing import bloom_bits_for_fpr

    bloom_bits_needed = bloom_bits_for_fpr(NUM_KEYS, max(xor_fpr, 1e-4))
    assert bloom_bits_needed / NUM_KEYS > 8.0 * built["xor"].nbytes / NUM_KEYS * 0.9

    benchmark(lambda: built["xor"].measure_fpr(2_000, rng))
