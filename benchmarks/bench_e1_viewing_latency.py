"""E1 — Viewing latency vs the render budget (paper section 4.3).

Claim: "The HTTP Archive Web Almanac study ... categorizes any website
that fully renders in under 1.8s as having 'good performance' ... over
60% of studied sites take over 2.5s.  Any reasonably responsive ledger
would produce delays that would be a small fraction of this (say, under
100ms)."

We load pinterest-like pages of 10-100 images with pipelined revocation
checks at several check-latency levels and report the added page time,
absolute and as a fraction of the 1.8 s budget.
"""

import numpy as np
import pytest

from repro.browser.loader import CheckMode, PageLoadModel
from repro.metrics.reporting import Table
from repro.netsim.latency import LogNormalLatency, dns_like_latency
from repro.workload.pages import pinterest_like_page

GOOD_PERFORMANCE_BUDGET = 1.8  # seconds, Web Almanac "good"
MEDIAN_SITE_RENDER = 2.5  # seconds, the paper's 60%-of-sites figure

IMAGE_COUNTS = [10, 30, 60, 100]
CHECK_MEDIANS_MS = [10, 25, 50, 100, 200, 400]
TRIALS = 30


def _added_time(num_images: int, check_median_s: float, seed: int) -> float:
    rng = np.random.default_rng(seed)
    page = pinterest_like_page(rng, num_images=num_images)
    model = PageLoadModel(
        rtt=LogNormalLatency(median=0.03, sigma=0.4, cap=0.3),
        check_latency=LogNormalLatency(median=check_median_s, sigma=0.5, cap=1.0),
        mode=CheckMode.PIPELINED,
    )
    _, _, added = model.compare_against_baseline(page, seed)
    return added


def test_e1_added_latency_small_fraction_of_budget(report, benchmark):
    table = Table(
        headers=[
            "images",
            "check median (ms)",
            "mean added (ms)",
            "p90 added (ms)",
            "added / 1.8s budget",
        ],
        title="E1: page-render time added by pipelined revocation checks",
    )
    results = {}
    for num_images in IMAGE_COUNTS:
        for check_ms in CHECK_MEDIANS_MS:
            added = [
                _added_time(num_images, check_ms / 1000.0, seed)
                for seed in range(TRIALS)
            ]
            mean_added = float(np.mean(added))
            p90_added = float(np.percentile(added, 90))
            results[(num_images, check_ms)] = mean_added
            table.add(
                num_images,
                check_ms,
                f"{mean_added * 1000:.1f}",
                f"{p90_added * 1000:.1f}",
                f"{mean_added / GOOD_PERFORMANCE_BUDGET:.1%}",
            )
    report(table)

    # The paper's claim: a responsive (<100 ms) ledger adds only a small
    # fraction of the 1.8 s budget, at every page size.
    for num_images in IMAGE_COUNTS:
        for check_ms in (10, 25, 50, 100):
            assert results[(num_images, check_ms)] < 0.10 * GOOD_PERFORMANCE_BUDGET, (
                f"{check_ms} ms checks added "
                f"{results[(num_images, check_ms)]:.3f}s on a "
                f"{num_images}-image page"
            )
    # And added time grows with check latency (sanity of the model).
    assert results[(60, 400)] >= results[(60, 10)]

    # Timed kernel: one full page-load comparison.
    benchmark(lambda: _added_time(60, 0.05, 12345))


def test_e1_dns_like_ledger_meets_budget(report, benchmark):
    """With the DNSPerf-shaped latency the paper cites, a fully loaded
    100-image page stays comfortably inside the median-site render
    envelope."""
    rng = np.random.default_rng(7)
    page = pinterest_like_page(rng, num_images=100)
    model = PageLoadModel(
        rtt=LogNormalLatency(median=0.03, sigma=0.4, cap=0.3),
        check_latency=dns_like_latency(),
        mode=CheckMode.PIPELINED,
    )

    def run():
        totals = []
        for seed in range(20):
            with_checks, baseline, added = model.compare_against_baseline(page, seed)
            totals.append((with_checks.page_complete, added))
        return totals

    totals = benchmark.pedantic(run, rounds=1, iterations=1)
    pages = [t for t, _ in totals]
    added = [a for _, a in totals]
    table = Table(
        headers=["metric", "value"],
        title="E1b: 100-image page with DNS-like (sub-100ms) ledger checks",
    )
    table.add("mean page-complete (s)", f"{np.mean(pages):.2f}")
    table.add("mean added by checks (ms)", f"{np.mean(added) * 1000:.1f}")
    table.add("max added (ms)", f"{np.max(added) * 1000:.1f}")
    report(table)
    assert float(np.mean(added)) < 0.2


def _measure_rpc_check_latencies(num_samples: int) -> np.ndarray:
    """End-to-end check RTTs from the discrete-event RPC stack:
    browser -> proxy (Bloom filter) -> ledger, with realistic link
    latencies.  Most checks short-circuit at the filter; false
    positives pay the extra ledger leg."""
    from repro.core import IrsDeployment
    from repro.core.identifiers import PhotoIdentifier
    from repro.filters.sizing import bloom_bits_for_fpr, bloom_optimal_hashes
    from repro.ledger.export import FilterExporter
    from repro.netsim.latency import ConstantLatency
    from repro.netsim.link import Network
    from repro.netsim.node import Node
    from repro.netsim.simulator import Simulator
    from repro.netsim.transport import RpcEndpoint
    from repro.proxy.filterset import ProxyFilterSet
    from repro.workload.population import populate_ledger

    irs = IrsDeployment.create(seed=314)
    rng = np.random.default_rng(314)
    population = populate_ledger(irs.ledger, 4000, 0.5, rng)

    sim = Simulator()
    net = Network(sim, rng)
    browser = net.add_node(Node("browser", sim))
    proxy_node = net.add_node(Node("proxy", sim))
    ledger_node = net.add_node(Node("ledger", sim))
    net.connect("browser", "proxy", LogNormalLatency(median=0.008, sigma=0.3))
    net.connect("proxy", "ledger", LogNormalLatency(median=0.012, sigma=0.3))

    ledger_endpoint = RpcEndpoint(ledger_node, net, service_time=ConstantLatency(0.001))
    ledger_endpoint.register(
        "status",
        lambda s: irs.registry.status(PhotoIdentifier.from_string(s)).revoked,
    )
    nbits = bloom_bits_for_fpr(population.num_revoked, 0.02)
    k = bloom_optimal_hashes(nbits, population.num_revoked)
    exporter = FilterExporter(irs.ledger, nbits=nbits, num_hashes=k)
    exporter.publish()
    filterset = ProxyFilterSet()
    filterset.subscribe(exporter)
    filterset.refresh()

    rtts: list[float] = []
    viewable = [
        identifier
        for i, identifier in enumerate(population.identifiers)
        if not population.revoked_mask[i]
    ]

    def issue_check(identifier):
        start = sim.now

        def at_proxy():
            if not filterset.might_be_revoked(identifier.to_compact()):
                net.deliver("proxy", "browser", lambda: rtts.append(sim.now - start))
                return
            ledger_endpoint.call(
                "proxy",
                "status",
                identifier.to_string(),
                lambda result: net.deliver(
                    "proxy", "browser", lambda: rtts.append(sim.now - start)
                ),
            )

        net.deliver("browser", "proxy", at_proxy)

    for i in range(num_samples):
        issue_check(viewable[i % len(viewable)])
    sim.run()
    return np.asarray(rtts)


def test_e1_rpc_measured_check_distribution(report, benchmark):
    """Close the loop: check latencies come from the *simulated RPC
    stack* (not an assumed distribution) and feed the page-load model."""
    samples = _measure_rpc_check_latencies(600)
    quantile_points = [(q, float(np.quantile(samples, q))) for q in
                       (0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)]
    from repro.netsim.latency import EmpiricalLatency

    check_model = EmpiricalLatency(quantile_points)
    rng = np.random.default_rng(314)
    page = pinterest_like_page(rng, num_images=60)
    model = PageLoadModel(
        rtt=LogNormalLatency(median=0.03, sigma=0.4, cap=0.3),
        bandwidth_bps=25e6 / 6,
        check_latency=check_model,
        mode=CheckMode.PIPELINED,
    )
    added = [model.compare_against_baseline(page, seed)[2] for seed in range(20)]
    table = Table(
        headers=["metric", "value"],
        title="E1c: page delay with RPC-sim-measured check latencies",
    )
    table.add("check p50 (ms)", f"{np.quantile(samples, 0.5) * 1000:.1f}")
    table.add("check p99 (ms)", f"{np.quantile(samples, 0.99) * 1000:.1f}")
    table.add("mean added page time (ms)", f"{np.mean(added) * 1000:.2f}")
    report(table)
    # The measured distribution sits deep inside the hiding window:
    # effectively zero added render time.
    assert float(np.quantile(samples, 0.99)) < 0.25
    assert float(np.mean(added)) < 0.02

    benchmark.pedantic(
        lambda: _measure_rpc_check_latencies(200), rounds=1, iterations=1
    )
