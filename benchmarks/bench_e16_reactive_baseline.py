"""E16 — Proactive IRS vs the reactive Oblivion-style baseline (§1).

Claim: "Oblivion is ... inherently reactive (removing a photo once it
is posted, whereas IRS proactively tries to prevent such photos from
being posted or viewed). We see these as complementary efforts."

Method: the same scenario runs under both systems.  A photo is shared
to N sites; the owner then wants it gone; an attacker keeps re-posting
it.  We measure removal latency, total owner/site effort (crawls +
per-site requests vs one ledger flip), and whether re-uploads are
blocked.
"""

import numpy as np
import pytest

from repro.aggregator.aggregator import AggregatorConfig, ContentAggregator
from repro.aggregator.recheck import PeriodicRechecker
from repro.aggregator.uploads import UploadDecision, UploadPipeline
from repro.baselines.oblivion import ReactiveTakedownSystem
from repro.core import IrsDeployment
from repro.core.owner import OwnerToolkit
from repro.media.jpeg import jpeg_roundtrip
from repro.metrics.reporting import Table
from repro.netsim.simulator import Simulator

HOUR = 3600.0
DAY = 24 * HOUR
NUM_SITES = 4
HORIZON = 30 * DAY


def _reactive_run():
    """Legacy sites + crawling takedown service."""
    irs = IrsDeployment.create(seed=160)
    sim = Simulator()
    target = irs.new_photo()
    sites = []
    for i in range(NUM_SITES):
        site = ContentAggregator(
            f"legacy-{i}", irs.registry, config=AggregatorConfig.legacy(),
            clock=sim.clock().now,
        )
        site.host(f"copy-{i}", jpeg_roundtrip(target, 70), identifier=None)
        sites.append(site)
    system = ReactiveTakedownSystem(
        sites, sim, crawl_interval=6 * HOUR, processing_delay=DAY
    )
    campaign = system.request_removal(target, until=HORIZON)
    # The attacker re-posts twice after removals begin.
    sim.schedule(
        4 * DAY,
        lambda: sites[0].host("repost-1", jpeg_roundtrip(target, 60), identifier=None),
    )
    sim.schedule(
        9 * DAY,
        lambda: sites[1].host("repost-2", jpeg_roundtrip(target, 55), identifier=None),
    )
    sim.run(until=HORIZON)
    return campaign, system


def _irs_run():
    """IRS sites + one revocation."""
    irs = IrsDeployment.create(seed=161)
    sim = Simulator()
    target = irs.new_photo()
    receipt, labeled = irs.owner_toolkit.claim_and_label(target, irs.ledger)
    sites, pipelines = [], []
    for i in range(NUM_SITES):
        site = ContentAggregator(
            f"irs-{i}", irs.registry,
            config=AggregatorConfig(recheck_interval=HOUR),
            clock=sim.clock().now,
        )
        pipeline = UploadPipeline(
            site,
            watermark_codec=irs.watermark_codec,
            custodial_ledger=irs.ledger,
            custodial_toolkit=OwnerToolkit(
                rng=np.random.default_rng(400 + i),
                watermark_codec=irs.watermark_codec,
            ),
        )
        pipeline.upload(f"copy-{i}", labeled)
        PeriodicRechecker(site).schedule_on(sim, until=HORIZON)
        sites.append(site)
        pipelines.append(pipeline)

    revoked_at = 2 * DAY
    sim.schedule(revoked_at, lambda: irs.owner_toolkit.revoke(receipt, irs.ledger))

    reupload_outcomes = []
    sim.schedule(
        4 * DAY,
        lambda: reupload_outcomes.append(
            pipelines[0].upload("repost-1", jpeg_roundtrip(labeled, 60))
        ),
    )
    sim.schedule(
        9 * DAY,
        lambda: reupload_outcomes.append(
            pipelines[1].upload("repost-2", jpeg_roundtrip(labeled, 55))
        ),
    )
    sim.run(until=HORIZON)
    # All copies are down once the first recheck after the revocation
    # has run (interval = 1 h); verify by serving.
    down_within = all(
        not site.serve(f"copy-{i}").served for i, site in enumerate(sites)
    )
    return revoked_at, down_within, reupload_outcomes, sites


def test_e16_proactive_vs_reactive(report, benchmark):
    campaign, system = _reactive_run()
    revoked_at, irs_down, reupload_outcomes, irs_sites = _irs_run()

    table = Table(
        headers=["metric", "reactive (Oblivion-style)", "proactive (IRS)"],
        title="E16: removal of a photo shared to 4 sites + 2 re-posts",
    )
    mean_latency_h = campaign.outcome.mean_takedown_latency / 3600.0
    table.add(
        "mean removal latency",
        f"{mean_latency_h:.0f} h (crawl + review queue)",
        "<= 1 h (next recheck after the flip)",
    )
    table.add(
        "owner actions",
        f"{campaign.outcome.crawls_performed} crawls, "
        f"{campaign.outcome.requests_filed} per-site requests",
        "1 revocation",
    )
    table.add(
        "re-uploads blocked?",
        "no — each re-post visible ~a day, then re-filed",
        "yes — denied at upload",
    )
    table.add(
        "unknown/non-participating sites",
        "covered (any site with a report queue)",
        "not covered (needs IRS participation)",
    )
    report(table)

    # Reactive: everything eventually comes down, but slowly and with
    # recurring effort.
    assert campaign.outcome.copies_found == NUM_SITES + 2
    assert len(campaign.outcome.takedown_times) == NUM_SITES + 2
    assert campaign.outcome.mean_takedown_latency >= DAY
    assert campaign.outcome.requests_filed > 1

    # Proactive: one action, bounded latency, re-uploads denied outright.
    assert irs_down
    assert len(reupload_outcomes) == 2
    assert all(
        outcome.decision is UploadDecision.DENIED_REVOKED
        for outcome in reupload_outcomes
    )

    benchmark.pedantic(_reactive_run, rounds=1, iterations=1)
