"""E3 — Prototype ledger + extension overhead (paper section 4.3).

Claim: "Lastly, we built a prototype ledger and browser extension that
performed revocation checks.  While a much more complete user study is
warranted, we did not notice additional delay when scrolling through a
variety of web sites containing claimed images."

We reproduce the prototype: an in-process ledger and the IRS extension,
validating a scroll stream of claimed images.  The reproducible
quantity is per-photo CPU overhead — "not noticeable" means orders of
magnitude below frame budget (16.7 ms at 60 fps).
"""

import numpy as np
import pytest

from repro.browser.extension import IrsBrowserExtension
from repro.core import IrsDeployment
from repro.metrics.reporting import Table
from repro.proxy.cache import TtlLruCache
from repro.workload.population import populate_ledger
from repro.workload.zipf import ZipfSampler

FRAME_BUDGET_S = 1 / 60  # one 60 fps frame
SCROLL_STREAM = 2_000  # images scrolled past


@pytest.fixture(scope="module")
def prototype():
    irs = IrsDeployment.create(seed=33)
    rng = np.random.default_rng(33)
    population = populate_ledger(irs.ledger, 20_000, 0.3, rng)
    sampler = ZipfSampler(population.size, 1.0, rng)
    stream = sampler.sample(SCROLL_STREAM)
    return irs, population, stream


def test_e3_uncached_check_overhead(prototype, report, benchmark):
    irs, population, stream = prototype
    extension = IrsBrowserExtension(status_source=irs.registry.status)

    def scroll():
        for index in stream:
            extension.check_identifier(population.identifiers[int(index)])

    benchmark.pedantic(scroll, rounds=3, iterations=1)
    per_photo = benchmark.stats["mean"] / SCROLL_STREAM
    table = Table(
        headers=["configuration", "per-photo overhead (µs)", "vs 60fps frame"],
        title="E3: prototype extension + ledger, in-process revocation checks",
    )
    table.add("direct ledger, no cache", f"{per_photo * 1e6:.0f}",
              f"{per_photo / FRAME_BUDGET_S:.2%}")
    report(table)
    # "No noticeable delay": per-photo cost is far below a frame.
    assert per_photo < FRAME_BUDGET_S / 10


def test_e3_cached_scroll_overhead(prototype, report, benchmark):
    """Scrolling revisits the same images; with the extension's local
    cache, repeat checks cost microseconds."""
    irs, population, stream = prototype
    extension = IrsBrowserExtension(
        status_source=irs.registry.status,
        cache=TtlLruCache(50_000, ttl=3600, clock=lambda: 0.0),
    )

    def scroll():
        for index in stream:
            extension.check_identifier(population.identifiers[int(index)])

    benchmark.pedantic(scroll, rounds=3, iterations=1)
    per_photo = benchmark.stats["mean"] / SCROLL_STREAM
    table = Table(
        headers=["configuration", "per-photo overhead (µs)", "cache hit rate"],
        title="E3b: with the extension's local result cache",
    )
    hit_rate = extension.cache.stats.hit_rate
    table.add("with local cache", f"{per_photo * 1e6:.0f}", f"{hit_rate:.1%}")
    report(table)
    assert per_photo < FRAME_BUDGET_S / 10
    assert hit_rate > 0.3  # Zipf reuse makes caching effective


def test_e3_scroll_session_jank(report, benchmark):
    """The scrolling claim, end to end: a scroll-session model with
    prefetch measures whether checks cause visible jank at realistic
    scroll speeds."""
    from repro.browser.scrolling import ScrollFeed, ScrollSession
    from repro.netsim.latency import LogNormalLatency, dns_like_latency

    from repro.metrics.reporting import Table

    rng = np.random.default_rng(303)
    feed = ScrollFeed.generate(rng, num_images=300)
    table = Table(
        headers=[
            "scroll speed (px/s)",
            "jank rate (no IRS)",
            "jank rate (IRS)",
            "mean added jank (ms)",
        ],
        title="E3c: scroll-session jank with DNS-like checks",
    )
    worst_added = 0.0
    for speed in (400, 800, 1600):
        session = ScrollSession(
            rtt=LogNormalLatency(median=0.03, sigma=0.3, cap=0.2),
            check_latency=dns_like_latency(),
            scroll_speed_px_s=speed,
        )
        with_checks, without = session.compare(feed, seed=speed)
        added = with_checks.mean_jank_ms - without.mean_jank_ms
        worst_added = max(worst_added, added)
        table.add(
            speed,
            f"{without.jank_rate:.3f}",
            f"{with_checks.jank_rate:.3f}",
            f"{added:.1f}",
        )
    report(table)
    # "We did not notice additional delay when scrolling": checks add
    # under 10 ms of mean jank at every speed.
    assert worst_added < 10.0

    session = ScrollSession(
        rtt=LogNormalLatency(median=0.03, sigma=0.3, cap=0.2),
        check_latency=dns_like_latency(),
    )
    benchmark(lambda: session.run(feed, np.random.default_rng(1)))
