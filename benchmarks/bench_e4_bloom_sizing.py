"""E4 — Bloom filter sizing (paper section 4.4).

Claim: "a 1GB filter would provide a 2% false-hit rate with a
population of 1 billion photos, thereby lessening the load on ledgers
by a factor of fifty.  Similarly, a 100GB Bloom filter would provide a
similar error rate for a population of 100 billion photos."

Method: validate the analytic FPR model against real measured filters
at laptop scale (10^4-10^5 keys at the paper's 8 bits/key), then
evaluate the analytic model at the paper's 1 GB / 100 GB points.
"""

import numpy as np
import pytest

from repro.filters.bloom import BloomFilter
from repro.filters.sizing import (
    bloom_false_positive_rate,
    bloom_optimal_hashes,
    paper_scaling_table,
)
from repro.metrics.reporting import Table

BITS_PER_KEY = 8  # the paper's geometry: 1 GB per billion photos
MEASURE_SIZES = [10_000, 50_000, 200_000]
PROBES = 50_000


def _measured_fpr(num_keys: int, seed: int) -> tuple[float, float]:
    nbits = num_keys * BITS_PER_KEY
    k = bloom_optimal_hashes(nbits, num_keys)
    bloom = BloomFilter(nbits, k)
    bloom.add_many(f"photo-{i}".encode() for i in range(num_keys))
    measured = bloom.measure_fpr(PROBES, np.random.default_rng(seed))
    analytic = bloom_false_positive_rate(nbits, num_keys, k)
    return measured, analytic


def test_e4_analytic_model_matches_measured_filters(report, benchmark):
    table = Table(
        headers=["keys", "bits/key", "measured FPR", "analytic FPR"],
        title="E4: analytic Bloom model vs real filters (8 bits/key)",
    )
    for num_keys in MEASURE_SIZES:
        measured, analytic = _measured_fpr(num_keys, seed=num_keys)
        table.add(num_keys, BITS_PER_KEY, f"{measured:.4f}", f"{analytic:.4f}")
        assert measured == pytest.approx(analytic, abs=0.006), (
            f"analytic model off at n={num_keys}: "
            f"measured {measured:.4f} vs analytic {analytic:.4f}"
        )
    report(table)
    benchmark(lambda: _measured_fpr(10_000, seed=1))


def test_e4_paper_scale_claims(report, benchmark):
    rows = benchmark(paper_scaling_table)
    table = Table(
        headers=["filter (GB)", "photos", "optimal k", "FPR", "load reduction"],
        title="E4b: the paper's 1 GB / 100 GB scaling points (analytic)",
    )
    by_population = {}
    for row in rows:
        by_population[row.population] = row
        table.add(
            row.filter_gb,
            f"{row.population:.0e}",
            row.optimal_hashes,
            f"{row.false_positive_rate:.4f}",
            f"{row.load_reduction:.1f}x",
        )
    report(table)

    one_gb = by_population[10**9]
    hundred_gb = by_population[10**11]
    # "1GB ... 2% false-hit rate with a population of 1 billion photos"
    assert one_gb.filter_gb == 1.0
    assert one_gb.false_positive_rate == pytest.approx(0.02, abs=0.005)
    # "lessening the load on ledgers by a factor of fifty"
    assert 40 <= one_gb.load_reduction <= 55
    # "a 100GB Bloom filter would provide a similar error rate for a
    # population of 100 billion photos"
    assert hundred_gb.filter_gb == 100.0
    assert hundred_gb.false_positive_rate == pytest.approx(
        one_gb.false_positive_rate, rel=0.02
    )


def test_e4_query_throughput(report, benchmark):
    """Proxy-side query cost of a browser/proxy-resident filter."""
    num_keys = 100_000
    bloom = BloomFilter.for_capacity(num_keys, 0.02)
    bloom.add_many(f"photo-{i}".encode() for i in range(num_keys))
    probes = [f"probe-{i}".encode() for i in range(1000)]

    def query_all():
        return sum(1 for p in probes if p in bloom)

    hits = benchmark(query_all)
    per_query = benchmark.stats["mean"] / len(probes)
    table = Table(
        headers=["metric", "value"],
        title="E4c: filter query cost (the proxy hot path)",
    )
    table.add("per-query time (µs)", f"{per_query * 1e6:.1f}")
    table.add("false hits / 1000 probes", hits)
    report(table)
    assert per_query < 1e-3  # well under any network time
