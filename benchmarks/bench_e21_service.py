"""E21 — the HTTP service vs the paper's §4.4 latency budgets.

The previous experiments validated the <100 ms ledger-operation and
<250 ms revocation-check budgets inside the simulator; E21 re-takes
the measurement over a real socket: a stdlib-asyncio HTTP server in
front of live in-process shards, driven by the seeded open-loop load
generator, p50/p99 measured by the client.

Claims asserted per arrival rate:

* status checks (the revocation-check path) keep p99 under 250 ms;
* ledger operations (claims + revocations) keep p99 under 100 ms;
* the loadgen invariant checker stays empty — documented envelopes
  only, no fail-open, no lost claims — under load and (in the fault
  row) with a replica down mid-run.
"""

import asyncio

import pytest

from repro.metrics.reporting import Table
from repro.obs import Observability
from repro.service.app import ServiceApp, ServiceServer
from repro.service.cluster import LiveCluster, LiveClusterConfig
from repro.service.loadgen import LoadgenConfig, LoadReport, run_loadgen

STATUS_BUDGET_MS = 250.0  # §4.4: revocation checks
LEDGER_BUDGET_MS = 100.0  # §4.4: ledger operations


async def _drive(
    rate: float,
    duration: float,
    seed: int,
    kill_shard: bool = False,
) -> LoadReport:
    """Serve on an ephemeral port and run one seeded open-loop burst."""
    loop = asyncio.get_running_loop()
    obs = Observability(clock=loop.time)
    cluster = LiveCluster(config=LiveClusterConfig(seed=seed), obs=obs)
    app = ServiceApp(cluster=cluster, obs=obs)
    population = cluster.seed_population(128, revoked_fraction=0.2)
    app.adopt_population(population)
    server = ServiceServer(app, port=0)
    host, port = await server.start()
    killer = None
    if kill_shard:
        killer = loop.call_later(
            duration / 2, cluster.kill_shard, "shard-3"
        )
    try:
        report = await run_loadgen(LoadgenConfig(
            host=host, port=port, rate=rate, duration=duration, seed=seed,
            deadline_ms=STATUS_BUDGET_MS,
        ))
    finally:
        if killer is not None:
            killer.cancel()
        cluster.revive_shard("shard-3")
        await server.stop()
    return report


def _rows(report: LoadReport, label: str) -> list:
    status = report.of_op("status")
    ledger = report.of_op("claim", "revoke")
    status_p99 = LoadReport.percentile(status, 99)
    ledger_p99 = LoadReport.percentile(ledger, 99)
    return [
        label,
        len(status),
        f"{LoadReport.percentile(status, 50):.1f}",
        f"{status_p99:.1f}",
        len(ledger),
        f"{LoadReport.percentile(ledger, 50):.1f}",
        f"{ledger_p99:.1f}",
        f"{report.answered_fraction():.1%}",
        len(report.violations),
        "yes" if status_p99 < STATUS_BUDGET_MS and ledger_p99 < LEDGER_BUDGET_MS
        else "NO",
    ]


def _assert_budgets(report: LoadReport, label: str) -> None:
    status_p99 = LoadReport.percentile(report.of_op("status"), 99)
    ledger_p99 = LoadReport.percentile(report.of_op("claim", "revoke"), 99)
    assert report.violations == [], (
        f"{label}: loadgen invariants violated: {report.violations}"
    )
    assert status_p99 < STATUS_BUDGET_MS, (
        f"{label}: status p99 {status_p99:.1f} ms breaches the "
        f"{STATUS_BUDGET_MS:g} ms revocation-check budget"
    )
    assert ledger_p99 < LEDGER_BUDGET_MS, (
        f"{label}: ledger-op p99 {ledger_p99:.1f} ms breaches the "
        f"{LEDGER_BUDGET_MS:g} ms ledger-operation budget"
    )


def _service_table(variant: str = "") -> Table:
    return Table(
        headers=[
            "workload", "status ops", "status p50 ms", "status p99 ms",
            "ledger ops", "ledger p50 ms", "ledger p99 ms",
            "answered", "violations", "within budgets",
        ],
        title="E21: HTTP service latency vs paper section 4.4 budgets "
        "(real socket)" + (f" {variant}" if variant else ""),
    )


def test_e21_service_budgets(report):
    """Rate sweep + one faulted row, each gated on the §4.4 budgets."""
    t = _service_table()
    for rate, duration, seed in ((100, 3.0, 0), (300, 3.0, 1), (600, 3.0, 2)):
        run = asyncio.run(_drive(rate, duration, seed))
        t.add(*_rows(run, f"{rate} req/s"))
        _assert_budgets(run, f"{rate} req/s")
    faulted = asyncio.run(_drive(200, 3.0, seed=3, kill_shard=True))
    t.add(*_rows(faulted, "200 req/s, shard killed"))
    _assert_budgets(faulted, "200 req/s with a dead replica")
    report(t)


def test_e21_smoke(report):
    """CI variant: one short burst, same assertions."""
    t = _service_table("smoke")
    run = asyncio.run(_drive(100, 1.5, seed=0))
    t.add(*_rows(run, "100 req/s (smoke)"))
    _assert_budgets(run, "smoke")
    report(t)


@pytest.mark.parametrize("seed", [0, 7])
def test_e21_loadgen_schedule_deterministic(seed):
    """Same seed, same arrival schedule — the open loop is replayable."""
    import numpy as np

    from repro.service.loadgen import arrival_schedule

    a = arrival_schedule(200.0, 2.0, np.random.default_rng(seed))
    b = arrival_schedule(200.0, 2.0, np.random.default_rng(seed))
    assert np.array_equal(a, b)
    assert (a < 2.0).all()
