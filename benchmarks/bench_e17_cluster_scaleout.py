"""E17 — Cluster scale-out: sharding multiplies revocation-service throughput.

Claim: the paper's economics (appendix; section 4.4's "perhaps fifty
machines" sizing) assume the revocation service scales *horizontally* —
planetary status-check load is served by adding shards behind a
stateless frontend, and replication absorbs node failures without
serving stale revocation state.

Method: the whole cluster (consistent-hash ring, replica groups,
batching frontend) runs inside the discrete-event simulator with a
serial-server cost model on every shard, so a shard has a concrete
capacity ceiling.  A fixed burst of status checks is pushed through
clusters of 1/2/4/8 shards and we measure sustained throughput and p99
latency; then a 4-shard, 3-way-replicated cluster serves a steady load
while one replica is killed mid-run, and every answer is checked
against the seeded ground truth.
"""

import numpy as np
import pytest

from repro.cluster import ClusterConfig, SimulatedCluster
from repro.metrics.reporting import Table
from repro.perf.workloads import burst_indices

SHARD_COUNTS = (1, 2, 4, 8)
BURST_QUERIES = 1500
POPULATION = 1000


GROUP = 50  # queries per status_many_async batch in the steady-load driver


def _drive(cluster, population, indices, spacing, kill=None, until=120.0):
    """Drive queries through the batch status path; (answers, latencies).

    Queries arrive in groups of :data:`GROUP` through
    ``status_many_async`` — one vectorized Bloom pass and per-shard RPC
    batching per group, the same end-to-end path production reads take.
    """
    sim = cluster.simulator
    answers, latencies = {}, {}

    def ask_group(base_slot, identifiers):
        started = sim.now

        def record(offset, answer):
            answers[base_slot + offset] = answer
            latencies[base_slot + offset] = sim.now - started

        cluster.frontend.status_many_async(identifiers, record)

    for base_slot in range(0, len(indices), GROUP):
        batch = [
            population.identifiers[index]
            for index in indices[base_slot : base_slot + GROUP]
        ]
        sim.schedule(base_slot * spacing, ask_group, base_slot, batch)
    if kill is not None:
        at, victim = kill
        sim.schedule(at, cluster.kill_shard, victim)
    sim.run(until=until)
    return answers, latencies


def _burst_run(num_shards, queries=BURST_QUERIES, seed=17):
    """Push a burst through an unreplicated cluster; measure drain."""
    cluster = SimulatedCluster(
        num_shards,
        config=ClusterConfig(replication_factor=1),
        seed=seed,
    )
    population = cluster.seed_population(POPULATION, revoked_fraction=0.3)
    indices = burst_indices(seed, population.size, queries)
    sim = cluster.simulator
    finished = {}
    answers, latencies = {}, {}

    def ask_all(identifiers):
        started = sim.now

        def record(slot, answer):
            answers[slot] = answer
            latencies[slot] = sim.now - started
            finished[slot] = sim.now

        cluster.frontend.status_many_async(identifiers, record)

    # The whole burst lands at t=0 as one batch call: a single
    # vectorized Bloom pass, then per-shard RPC batching fans the
    # survivors out — the end-to-end batch read path under burst load.
    sim.schedule(
        0.0,
        ask_all,
        [population.identifiers[index] for index in indices],
    )
    sim.run(until=120.0)
    assert len(answers) == queries
    for slot, index in enumerate(indices):
        assert answers[slot].ok
        assert answers[slot].revoked == population.revoked(index)
    makespan = max(finished.values())
    ordered = np.array(sorted(latencies.values()))
    return {
        "throughput": queries / makespan,
        "p50_ms": float(np.percentile(ordered, 50)) * 1e3,
        "p99_ms": float(np.percentile(ordered, 99)) * 1e3,
        "makespan_s": makespan,
    }


def test_e17_throughput_scales_with_shards(report, benchmark):
    table = Table(
        headers=["shards", "queries", "throughput (q/s)", "p50 (ms)", "p99 (ms)"],
        title="E17: cluster scale-out under a status-check burst",
    )
    results = {}
    for num_shards in SHARD_COUNTS:
        results[num_shards] = _burst_run(num_shards)
        r = results[num_shards]
        table.add(
            num_shards,
            BURST_QUERIES,
            f"{r['throughput']:,.0f}",
            f"{r['p50_ms']:.1f}",
            f"{r['p99_ms']:.1f}",
        )
    report(table)

    throughputs = [results[n]["throughput"] for n in SHARD_COUNTS]
    # The claim's shape: every doubling of shards buys more throughput,
    # and the 8-shard cluster clears at least 4x the single shard.
    for smaller, larger in zip(throughputs, throughputs[1:]):
        assert larger > smaller
    assert throughputs[-1] > 4 * throughputs[0]
    # The queue-drain tail shrinks as capacity grows.
    assert results[8]["p99_ms"] < results[1]["p99_ms"]

    benchmark(lambda: _burst_run(2, queries=200, seed=29))


def test_e17_replica_failure_mid_run(report):
    cluster = SimulatedCluster(
        num_shards=4,
        config=ClusterConfig(replication_factor=3, read_quorum=2),
        seed=23,
        rpc_timeout=0.1,
    )
    population = cluster.seed_population(600, revoked_fraction=0.35)
    indices = burst_indices(23, population.size, 500)
    victim = "shard-2"
    answers, latencies = _drive(
        cluster, population, indices, spacing=0.001, kill=(0.2, victim)
    )

    assert len(answers) == len(indices)
    correct = sum(
        1
        for slot, index in enumerate(indices)
        if answers[slot].ok and answers[slot].revoked == population.revoked(index)
    )
    ordered = np.array(sorted(latencies.values()))
    table = Table(
        headers=["metric", "value"],
        title="E17: steady load with one replica killed mid-run",
    )
    table.add("queries", len(indices))
    table.add("correct answers", correct)
    table.add("killed shard", victim)
    table.add("suspected shards", ",".join(cluster.detector.suspects()))
    table.add("p50 (ms)", f"{np.percentile(ordered, 50) * 1e3:.1f}")
    table.add("p99 (ms)", f"{np.percentile(ordered, 99) * 1e3:.1f}")
    table.add("read repairs", cluster.frontend.stats.read_repairs)
    report(table)

    # Every answer — including those issued after the kill — matches
    # the seeded ground truth: quorum reads never serve stale state.
    assert correct == len(indices)
    assert cluster.detector.suspects() == [victim]
