"""E20 — Observability overhead: instrumentation must not move the numbers.

Claim: the :mod:`repro.obs` layer (metrics registry, per-query trace
spans, exporters) observes every stage of the revocation pipeline
without perturbing it.  Two properties make that claim checkable:

* **Zero simulated-time cost.**  Instrumentation draws no randomness,
  sets no timers and schedules no events, so the discrete-event run is
  the *same run* with and without ``instrument=True`` — every answer,
  every sim-time latency, identical.  The p50 regression bound below
  (<5%) is therefore expected to measure ~0%; a non-zero value means
  instrumentation leaked into the event schedule, which is a bug.
* **Bounded wall-clock cost.**  Counters, histogram observes and span
  dicts do cost real CPU.  The wall-clock column reports that price
  informationally (CI machines are too noisy for a tight assert), and
  the committed CSV records it.

Method: the E17 burst workload (status checks through a 4-shard
cluster with the serial-server cost model) runs twice per row — once
uninstrumented, once with ``instrument=True`` — and the table compares
sim-time p50/p99, answers, and wall-clock runtime, plus the span and
metric volume the instrumented run produced.
"""

import time

import numpy as np

from repro.cluster import ClusterConfig, SimulatedCluster
from repro.metrics.reporting import Table

POPULATION = 1000
BURST_QUERIES = 1500
SEED = 20
NUM_SHARDS = 4
MAX_P50_REGRESSION = 0.05  # the acceptance bound: <5% sim-time p50


def _burst_run(instrument, queries=BURST_QUERIES, seed=SEED):
    """The E17 burst, with instrumentation on or off; returns measurements."""
    cluster = SimulatedCluster(
        NUM_SHARDS,
        config=ClusterConfig(replication_factor=1),
        seed=seed,
        instrument=instrument,
    )
    population = cluster.seed_population(POPULATION, revoked_fraction=0.3)
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, population.size, size=queries)
    sim = cluster.simulator
    answers, latencies = {}, {}

    def ask(slot, identifier):
        started = sim.now
        cluster.frontend.status_async(
            identifier,
            lambda answer: (
                answers.__setitem__(slot, answer),
                latencies.__setitem__(slot, sim.now - started),
            ),
        )

    for slot, index in enumerate(indices):
        sim.schedule(0.0, ask, slot, population.identifiers[index])
    # repro-lint: allow[no-wall-clock] E20 measures real wall-clock overhead of instrumentation; this is the measurement, not sim time
    wall_started = time.perf_counter()
    sim.run(until=120.0)
    # repro-lint: allow[no-wall-clock] paired with the start read above
    wall = time.perf_counter() - wall_started
    assert len(answers) == queries
    for slot, index in enumerate(indices):
        assert answers[slot].ok
        assert answers[slot].revoked == population.revoked(index)
    ordered = np.array(sorted(latencies.values()))
    return {
        "p50_ms": float(np.percentile(ordered, 50)) * 1e3,
        "p99_ms": float(np.percentile(ordered, 99)) * 1e3,
        "wall_s": wall,
        "spans": len(cluster.obs.spans) if cluster.obs is not None else 0,
        "metrics": len(cluster.obs.metrics) if cluster.obs is not None else 0,
        "latencies": latencies,
    }


def _compare(report, queries, seed, title):
    base = _burst_run(instrument=False, queries=queries, seed=seed)
    instrumented = _burst_run(instrument=True, queries=queries, seed=seed)
    table = Table(
        headers=[
            "variant", "queries", "p50 (ms)", "p99 (ms)",
            "wall (s)", "spans", "metric series",
        ],
        title=title,
    )
    for name, r in (("baseline", base), ("instrumented", instrumented)):
        table.add(
            name, queries,
            f"{r['p50_ms']:.3f}", f"{r['p99_ms']:.3f}",
            f"{r['wall_s']:.2f}", r["spans"], r["metrics"],
        )
    overhead = (
        instrumented["p50_ms"] / base["p50_ms"] - 1.0
        if base["p50_ms"] > 0 else 0.0
    )
    wall_overhead = (
        instrumented["wall_s"] / base["wall_s"] - 1.0
        if base["wall_s"] > 0 else 0.0
    )
    table.add(
        "p50 overhead", "", f"{overhead:+.2%}", "",
        f"{wall_overhead:+.2%}", "", "",
    )
    report(table)

    # The acceptance bound — and the stronger truth behind it: the
    # instrumented run is the *same* simulated run, latency for
    # latency, because obs never touches the event schedule.
    assert overhead < MAX_P50_REGRESSION
    assert base["latencies"] == instrumented["latencies"]
    # The instrumented run actually observed the workload.
    assert instrumented["spans"] >= queries
    assert instrumented["metrics"] > 0
    return overhead


def test_e20_instrumentation_overhead(report, benchmark):
    _compare(
        report, BURST_QUERIES, SEED,
        title="E20: observability overhead on the E17 burst workload",
    )
    benchmark(lambda: _burst_run(instrument=True, queries=200, seed=29))


def test_e20_smoke_overhead(report):
    """CI smoke: the comparison holds at 1/7th the workload."""
    _compare(
        report, 200, SEED + 1,
        title="E20 smoke: observability overhead (reduced burst)",
    )
