"""E2 — Pipelined checks hide ledger latency (paper section 4.3).

Claim: "one need not wait for page resources to be fully loaded before
issuing revocation checks -- one can generally check a photo as soon as
its metadata has been downloaded ...  For example, when loading
pinterest.com (a typical photo-heavy site), as long as revocation
checks complete in less than 250ms, there is *no* delay in page
rendering."

We sweep fixed check latencies on a pinterest-like page in both
scheduling modes and locate the zero-delay crossover.
"""

import numpy as np
import pytest

from repro.browser.loader import CheckMode, PageLoadModel
from repro.metrics.reporting import Table
from repro.netsim.latency import ConstantLatency, LogNormalLatency
from repro.workload.pages import pinterest_like_page

CHECK_LATENCIES_MS = [25, 50, 100, 150, 250, 400, 600, 1000]
TRIALS = 20

# 25 Mbps broadband shared across the browser's 6 connections: each
# image transfer effectively sees ~4.2 Mbps, so a median 150 KB
# pinterest image spends ~285 ms on the wire after its metadata arrives
# -- that transfer tail is the latency-hiding window.
PER_CONNECTION_BANDWIDTH = 25e6 / 6


def _mean_added(mode: CheckMode, check_s: float) -> float:
    added = []
    for seed in range(TRIALS):
        rng = np.random.default_rng(1000 + seed)
        page = pinterest_like_page(rng, num_images=60)
        model = PageLoadModel(
            rtt=LogNormalLatency(median=0.03, sigma=0.4, cap=0.3),
            bandwidth_bps=PER_CONNECTION_BANDWIDTH,
            check_latency=ConstantLatency(check_s),
            mode=mode,
        )
        added.append(model.compare_against_baseline(page, seed)[2])
    return float(np.mean(added))


def test_e2_pipelining_hides_checks_under_250ms(report, benchmark):
    table = Table(
        headers=[
            "check latency (ms)",
            "blocking added (ms)",
            "pipelined added (ms)",
        ],
        title="E2: pinterest-like page — blocking vs pipelined checks",
    )
    blocking = {}
    pipelined = {}
    for check_ms in CHECK_LATENCIES_MS:
        blocking[check_ms] = _mean_added(CheckMode.BLOCKING, check_ms / 1000)
        pipelined[check_ms] = _mean_added(CheckMode.PIPELINED, check_ms / 1000)
        table.add(
            check_ms,
            f"{blocking[check_ms] * 1000:.1f}",
            f"{pipelined[check_ms] * 1000:.1f}",
        )
    report(table)

    # The paper's claim: pipelined checks <= 250 ms add (essentially)
    # no render delay on the photo-heavy page.  We allow up to 20 ms of
    # residual (images in the small tail of the size distribution have
    # shorter hiding windows) -- ~1% of the 1.8 s budget, imperceptible.
    for check_ms in (25, 50, 100, 150, 250):
        assert pipelined[check_ms] <= 0.020, (
            f"pipelined {check_ms} ms checks added "
            f"{pipelined[check_ms] * 1000:.1f} ms"
        )
    # Blocking mode pays the full check latency; the crossover exists.
    assert blocking[250] > pipelined[250] + 0.1
    # Beyond the hiding window, pipelining degrades gracefully.
    assert pipelined[1000] > pipelined[250]
    assert pipelined[1000] < blocking[1000]

    benchmark(lambda: _mean_added(CheckMode.PIPELINED, 0.25))


def test_e2_crossover_scales_with_image_size(report, benchmark):
    """The hiding window is the post-metadata transfer time, so larger
    images hide longer checks — the mechanism, verified."""

    def window_for(size_bytes: int) -> float:
        # Analytic hiding window: remaining transfer after metadata.
        return (size_bytes - 2048) * 8.0 / PER_CONNECTION_BANDWIDTH

    table = Table(
        headers=["image size (KB)", "hiding window (ms)", "250ms hidden?"],
        title="E2b: how much check latency one image transfer hides",
    )
    rows = []
    for size_kb in (30, 60, 120, 250, 800, 1600):
        window = window_for(size_kb * 1000)
        rows.append((size_kb, window))
        table.add(size_kb, f"{window * 1000:.1f}", window >= 0.25)
    report(table)
    # Connection-pool queueing extends the effective window well beyond
    # a single transfer, which is why 250 ms hides on a 60-image page
    # even though one median image only hides ~20 ms.
    assert rows[-1][1] > rows[0][1]
    benchmark(lambda: [window_for(s * 1000) for s in (30, 60, 120)])
