"""E19 — Resilience: fail degraded, never open, under chaos.

Claim: the resilience layer (deadlines + bounded backoff retries,
circuit breakers, degraded Bloom-backed reads, hinted handoff and an
anti-entropy sweep) converts fault-induced *unavailability* into
bounded, fail-closed *degradation*.  Under the same deterministic
adversary the PR-1 baseline measurably misses the answer-deadline bar,
while the full policy answers every status query within the reference
deadline with zero consistency violations and zero fail-open answers —
the property global revocation actually needs from its serving tier.

Method: :func:`repro.chaos.run_resilient_chaos` sweeps fault intensity
x policy tier ({none, retry, full}), holding the fault plan and
workload fixed per (seed, intensity) so rows are comparable across
policies.  The committed CSV is the acceptance artifact: availability,
deadline hit rate, p50/p99 latency, degraded-answer and stale-answer
rates, hinted-handoff queue traffic and drain time, and the per-
invariant violation counts.
"""

from repro.chaos import POLICIES, run_resilient_chaos
from repro.metrics.reporting import Table

INTENSITIES = (0.25, 0.5, 0.75)
SEED = 19

_COLUMNS = (
    "intensity",
    "policy",
    "availability",
    "deadline_met",
    "p99_latency",
    "degraded_answers",
    "stale_rate",
    "fail_open",
    "violations",
    "retries",
    "breaker_opens",
    "hints_queued",
    "hints_replayed",
    "hint_drain_s",
    "records_pushed",
    "digest",
)


def _run(intensity, policy, seed=SEED, **overrides):
    params = dict(
        num_shards=4,
        seed=seed,
        intensity=intensity,
        policy=policy,
        queries=300,
        revocations=20,
        population=120,
    )
    params.update(overrides)
    return run_resilient_chaos(**params)


def test_e19_policy_sweep_meets_the_resilience_bar(report):
    table = Table(
        headers=list(_COLUMNS),
        title="E19: resilience policy vs fault intensity",
    )
    results = {}
    for intensity in INTENSITIES:
        for policy in POLICIES:
            r = _run(intensity, policy)
            results[(intensity, policy)] = r
            row = r.row()
            table.add(*[row[c] for c in _COLUMNS])
    report(table)

    for (intensity, policy), r in results.items():
        cell = f"intensity {intensity}, policy {policy}"
        # Fail-closed is non-negotiable at every tier: degraded answers
        # may be conservative, never permissive.
        assert r.fail_open == 0, f"{cell}: {r.check.by_invariant()}"
        # Degradation must stay honest: a stale degraded verdict says
        # "revoked" about a valid record, never the reverse, and stays
        # a small minority of answers.
        assert r.stale_rate <= 0.10, f"{cell}: stale rate {r.stale_rate}"

    # The acceptance bar: at intensity >= 0.5 the full policy keeps the
    # checker green and answers ~every query within the deadline...
    for intensity in INTENSITIES:
        if intensity < 0.5:
            continue
        full = results[(intensity, "full")]
        cell = f"intensity {intensity}"
        assert full.violations == 0, f"{cell}: {full.check.by_invariant()}"
        assert full.availability >= 0.99, f"{cell}: {full.availability}"
        assert full.deadline_rate >= 0.99, f"{cell}: {full.deadline_rate}"

    # ...which the baseline measurably does not.
    baseline_rates = [
        results[(i, "none")].deadline_rate for i in INTENSITIES if i >= 0.5
    ]
    assert min(baseline_rates) < 0.99, baseline_rates

    # The middle tier sits between the extremes: retries buy deadline
    # hits over the baseline at the heaviest intensity.
    heavy = INTENSITIES[-1]
    assert (
        results[(heavy, "retry")].deadline_rate
        >= results[(heavy, "none")].deadline_rate
    )

    # Repair actually ran under the full policy somewhere in the sweep:
    # chaos queued hints, and the post-heal sweep pushed records.
    assert any(
        results[(i, "full")].hints_queued > 0 for i in INTENSITIES
    )
    assert any(
        results[(i, "full")].sweep is not None
        and results[(i, "full")].sweep.records_pushed > 0
        for i in INTENSITIES
    )


def test_e19_identical_seeds_reproduce_identical_rows():
    first = _run(0.6, "full", seed=7)
    second = _run(0.6, "full", seed=7)
    assert first.row() == second.row()
    assert first.digest == second.digest


def test_e19_smoke_lowest_intensity():
    """CI smoke: one tiny full-policy cell, green checker, fail-closed."""
    r = _run(
        0.5,
        "full",
        queries=80,
        revocations=8,
        population=50,
        horizon=3.0,
        drain=2.0,
    )
    assert r.check.ok, r.check.by_invariant()
    assert r.fail_open == 0
    assert r.availability == 1.0
