"""E12 (ablation) — What the cache vs the Bloom filter each contribute.

Section 4.4 proposes two load-shedding mechanisms at the proxy: result
caching and the OR-of-ledger-filters front.  This ablation runs the
same Zipf trace through all four on/off combinations and attributes the
ledger-load reduction (and the staleness cost) to each mechanism.
"""

import numpy as np
import pytest

from repro.core import IrsDeployment
from repro.filters.sizing import bloom_bits_for_fpr, bloom_optimal_hashes
from repro.ledger.export import FilterExporter
from repro.metrics.reporting import Table
from repro.netsim.simulator import ManualClock
from repro.proxy.cache import TtlLruCache
from repro.proxy.filterset import ProxyFilterSet
from repro.proxy.proxy import IrsProxy
from repro.workload.population import populate_ledger
from repro.workload.traces import BrowsingTraceGenerator

POPULATION = 20_000
VIEWS = 10_000
REVOKED_FRACTION = 0.5


@pytest.fixture(scope="module")
def env():
    irs = IrsDeployment.create(seed=120)
    population = populate_ledger(
        irs.ledger, POPULATION, REVOKED_FRACTION, np.random.default_rng(120)
    )
    nbits = bloom_bits_for_fpr(population.num_revoked, 0.02)
    k = bloom_optimal_hashes(nbits, population.num_revoked)
    exporter = FilterExporter(irs.ledger, nbits=nbits, num_hashes=k)
    exporter.publish()
    return irs, population, exporter


def _run(env, use_filter: bool, use_cache: bool, seed: int):
    irs, population, exporter = env
    filterset = None
    if use_filter:
        filterset = ProxyFilterSet()
        filterset.subscribe(exporter)
        filterset.refresh()
    clock = ManualClock()
    cache = TtlLruCache(100_000, ttl=3600, clock=clock.now) if use_cache else None
    proxy = IrsProxy(
        "proxy", irs.registry, filterset=filterset, cache=cache, clock=clock.now
    )
    generator = BrowsingTraceGenerator(
        population,
        num_users=50,
        rng=np.random.default_rng(seed),
        zipf_exponent=1.0,
        revoked_view_fraction=0.01,
    )
    for event in generator.stream(VIEWS):
        clock.advance(0.05)
        proxy.status(population.identifiers[event.photo_index])
    return proxy.stats


def test_e12_mechanism_attribution(env, report, benchmark):
    table = Table(
        headers=[
            "filter",
            "cache",
            "ledger queries",
            "reduction",
            "filter short-circuits",
            "cache hits",
        ],
        title="E12: cache x filter ablation (10k Zipf views, 1% revoked views)",
    )
    results = {}
    for use_filter in (False, True):
        for use_cache in (False, True):
            stats = _run(env, use_filter, use_cache, seed=7)
            results[(use_filter, use_cache)] = stats
            table.add(
                "on" if use_filter else "off",
                "on" if use_cache else "off",
                stats.ledger_queries,
                f"{stats.load_reduction_factor:.1f}x",
                stats.filter_short_circuits,
                stats.cache_hits,
            )
    report(table)

    none = results[(False, False)]
    cache_only = results[(False, True)]
    filter_only = results[(True, False)]
    both = results[(True, True)]

    # Baseline: every view is a ledger query.
    assert none.ledger_queries == none.queries
    # Each mechanism alone helps.
    assert cache_only.ledger_queries < none.ledger_queries / 2
    assert filter_only.ledger_queries < none.ledger_queries / 2
    # Combined beats either alone: the filter removes the unrevoked
    # mass; the cache absorbs repeat hits on popular maybe-revoked
    # photos (including false positives).
    assert both.ledger_queries <= filter_only.ledger_queries
    assert both.ledger_queries <= cache_only.ledger_queries
    assert both.load_reduction_factor > 40

    benchmark(lambda: _run(env, True, True, seed=8))


def test_e12_cache_staleness_cost(env, report, benchmark):
    """The cache's price: revocations propagate only after TTL expiry
    (Nongoal #4's bounded staleness), while the filter path picks up
    new revocations at the next hourly publish."""
    irs, population, exporter = env
    from repro.ledger.records import RevocationState

    filterset = ProxyFilterSet()
    filterset.subscribe(exporter)
    filterset.refresh()
    clock = ManualClock()
    proxy = IrsProxy(
        "proxy",
        irs.registry,
        filterset=filterset,
        cache=TtlLruCache(100_000, ttl=3600, clock=clock.now),
        clock=clock.now,
    )
    # Pick a revoked photo (in the filter) and view it: cached verdict.
    idx = int(np.nonzero(population.revoked_mask)[0][0])
    identifier = population.identifiers[idx]
    assert proxy.status(identifier).revoked

    # Owner unrevokes: cached answer stays "revoked" until TTL.
    record = irs.ledger.record(identifier)
    record.state = RevocationState.NOT_REVOKED
    stale = proxy.status(identifier)
    clock.advance(3601.0)
    fresh = proxy.status(identifier)

    table = Table(
        headers=["phase", "answer", "source"],
        title="E12b: staleness window of a cached verdict (TTL 3600s)",
    )
    table.add("within TTL", "revoked" if stale.revoked else "not revoked", stale.source)
    table.add("after TTL", "revoked" if fresh.revoked else "not revoked", fresh.source)
    report(table)
    assert stale.revoked and stale.source == "cache"
    assert not fresh.revoked and fresh.source == "ledger"

    benchmark(lambda: proxy.status(identifier))
