"""E8 — Viewer privacy through proxies (Goal #2, section 4.2).

Claim: "browsers will not directly query ledgers, but will make queries
through an IRS proxy" so that revocation checks do "not expose the
identity of the viewer to any parties beyond those to whom their
identity is exposed today."

Method: identical browsing traces run in three wirings — direct
browser->ledger, one shared proxy, and two proxies splitting the user
base — and we measure what ledger operators can reconstruct:
attribution rate, anonymity-set size, and per-viewer profile leakage.
"""

import numpy as np
import pytest

from repro.browser.extension import IrsBrowserExtension
from repro.core import IrsDeployment
from repro.filters.sizing import bloom_bits_for_fpr, bloom_optimal_hashes
from repro.ledger.export import FilterExporter
from repro.metrics.reporting import Table
from repro.proxy.anonymity import ObservationLog, anonymity_report
from repro.proxy.filterset import ProxyFilterSet
from repro.proxy.proxy import IrsProxy
from repro.workload.population import populate_ledger
from repro.workload.traces import BrowsingTraceGenerator

NUM_USERS = 40
VIEWS_PER_USER = 100
POPULATION = 10_000


def _trace(population, seed):
    generator = BrowsingTraceGenerator(
        population,
        num_users=NUM_USERS,
        rng=np.random.default_rng(seed),
        revoked_view_fraction=0.01,
    )
    return generator.generate(views_per_user=VIEWS_PER_USER)


def _run_wiring(irs, population, events, wiring: str, use_filter: bool):
    """Returns (observation_log, requester_populations)."""
    observations = ObservationLog()
    users = [f"user-{u}" for u in range(NUM_USERS)]

    def make_filterset():
        if not use_filter:
            return None
        nbits = bloom_bits_for_fpr(max(population.num_revoked, 1), 0.02)
        k = bloom_optimal_hashes(nbits, max(population.num_revoked, 1))
        exporter = FilterExporter(irs.ledger, nbits=nbits, num_hashes=k)
        exporter.publish()
        filterset = ProxyFilterSet()
        filterset.subscribe(exporter)
        filterset.refresh()
        return filterset

    if wiring == "direct":
        # Each browser queries ledgers itself: the requester IS the user.
        def source_for(user):
            def query(identifier):
                observations.record(
                    requester=user,
                    ledger_id=identifier.ledger_id,
                    identifier=identifier.to_string(),
                    time=0.0,
                )
                return irs.registry.status(identifier)

            return query

        extensions = {u: IrsBrowserExtension(status_source=source_for(u)) for u in users}
        populations = {u: [u] for u in users}
    elif wiring in ("one-proxy", "two-proxies"):
        num_proxies = 1 if wiring == "one-proxy" else 2
        proxies = [
            IrsProxy(
                f"proxy-{i}",
                irs.registry,
                filterset=make_filterset(),
                observation_log=observations,
            )
            for i in range(num_proxies)
        ]
        extensions = {}
        populations = {f"proxy-{i}": [] for i in range(num_proxies)}
        for u, user in enumerate(users):
            proxy = proxies[u % num_proxies]
            extensions[user] = IrsBrowserExtension(status_source=proxy.status)
            populations[proxy.name].append(user)
    else:
        raise ValueError(wiring)

    for event in events:
        identifier = population.identifiers[event.photo_index]
        extensions[event.user].check_identifier(identifier)
    return observations, populations


def test_e8_proxies_hide_viewers(report, benchmark):
    irs = IrsDeployment.create(seed=88)
    population = populate_ledger(
        irs.ledger, POPULATION, 0.5, np.random.default_rng(88)
    )
    events = _trace(population, seed=8)
    viewer_checks = {f"user-{u}": VIEWS_PER_USER for u in range(NUM_USERS)}

    table = Table(
        headers=[
            "wiring",
            "ledger-visible reqs",
            "attribution",
            "anonymity set (mean)",
            "profile leakage",
        ],
        title="E8: what ledger operators learn about viewers",
    )
    reports = {}
    for wiring, use_filter in (
        ("direct", False),
        ("one-proxy", False),
        ("one-proxy", True),
        ("two-proxies", True),
    ):
        label = wiring + (" + filter" if use_filter else "")
        observations, populations = _run_wiring(
            irs, population, events, wiring, use_filter
        )
        result = anonymity_report(observations, populations, viewer_checks)
        reports[label] = result
        table.add(
            label,
            result.ledger_visible_requests,
            f"{result.attribution_rate:.2f}",
            f"{result.mean_anonymity_set:.1f}",
            f"{result.profile_leakage:.3f}",
        )
    report(table)

    direct = reports["direct"]
    proxied = reports["one-proxy"]
    filtered = reports["one-proxy + filter"]
    split = reports["two-proxies + filter"]

    # Direct wiring leaks everything: every check attributed, full profile.
    assert direct.attribution_rate == 1.0
    assert direct.profile_leakage == 1.0
    # A proxy removes attribution entirely (Goal #2).
    assert proxied.attribution_rate == 0.0
    assert proxied.profile_leakage == 0.0
    assert proxied.mean_anonymity_set == NUM_USERS
    # The filter additionally shrinks what ledgers see at all.
    assert filtered.ledger_visible_requests < proxied.ledger_visible_requests / 5
    # Splitting users across proxies shrinks the anonymity set — the
    # trade-off operators tune.
    assert split.mean_anonymity_set == pytest.approx(NUM_USERS / 2)

    benchmark(
        lambda: _run_wiring(irs, population, events[:500], "one-proxy", True)
    )


def test_e8_oblivious_two_hop(report, benchmark):
    """Beyond the paper's single proxy: the Oblivious-DNS-style two-hop
    construction it cites removes even the proxy operator's view —
    ingress sees users but only sealed blobs, egress sees queries but
    only the ingress."""
    from repro.filters.sizing import bloom_bits_for_fpr, bloom_optimal_hashes
    from repro.proxy.twohop import (
        EgressHop,
        IngressHop,
        ObliviousClient,
        SecretBox,
    )

    irs = IrsDeployment.create(seed=89)
    population = populate_ledger(
        irs.ledger, POPULATION, 0.5, np.random.default_rng(89)
    )
    events = _trace(population, seed=9)

    nbits = bloom_bits_for_fpr(population.num_revoked, 0.02)
    k = bloom_optimal_hashes(nbits, population.num_revoked)
    exporter = FilterExporter(irs.ledger, nbits=nbits, num_hashes=k)
    exporter.publish()
    filterset = ProxyFilterSet()
    filterset.subscribe(exporter)
    filterset.refresh()

    box = SecretBox(b"shared-hpke-standin-key")
    observations = ObservationLog()
    egress = EgressHop(
        "egress", irs.registry, box, filterset=filterset,
        observation_log=observations,
    )
    ingress = IngressHop("ingress", egress)
    clients = {
        f"user-{u}": ObliviousClient(f"user-{u}", ingress, box)
        for u in range(NUM_USERS)
    }
    for event in events:
        clients[event.user].status(population.identifiers[event.photo_index])

    table = Table(
        headers=["party", "sees users?", "sees identifiers?", "records"],
        title="E8b: who learns what in the two-hop wiring",
    )
    ingress_users = {r.user for r in ingress.log}
    egress_peers = {peer for peer, _ in egress.log}
    table.add("ingress", "yes", "no (sealed blobs)", len(ingress.log))
    table.add("egress", "no (peer=ingress)", "yes", len(egress.log))
    table.add("ledgers", "no (peer=egress)", "only maybe-revoked",
              len(observations))
    report(table)

    assert ingress_users == {f"user-{u}" for u in range(NUM_USERS)}
    assert egress_peers == {"ingress"}
    assert observations.requesters() <= {"egress"}
    # The ingress never handles plaintext identifiers at all; repeat
    # queries for one identifier yield distinct blobs (nonce), so even
    # frequency analysis on equal blobs is unavailable.
    digests = ingress.observed_queries()
    assert len(set(digests)) == len(digests)

    benchmark(
        lambda: clients["user-0"].status(population.identifiers[0])
    )
