"""E10 — Attacks and the appeals process (paper sections 3.2 and 5).

Claims:

* naive attacks are "self-defeating": the artifact is unsharable;
* the sophisticated re-claim attack defeats automation but loses the
  appeals process (earlier authenticated timestamp + robust hashing);
* the appeals process "does not rely on vague judgements", only on
  derivation — so appeals against *unrelated* photos must fail.

Method: attack scenarios run against an IRS-supporting aggregator; an
adjudication-accuracy matrix measures appeals over derived copies
(should uphold) and unrelated photos (should reject).
"""

import numpy as np
import pytest

from repro.aggregator.aggregator import ContentAggregator
from repro.aggregator.hashdb import RobustHashDatabase
from repro.aggregator.uploads import UploadDecision, UploadPipeline
from repro.attacks.attackers import NaiveAttacker, SophisticatedAttacker
from repro.core import IrsDeployment
from repro.core.identifiers import PhotoIdentifier
from repro.core.owner import OwnerToolkit
from repro.ledger.appeals import AppealsProcess
from repro.media.jpeg import jpeg_roundtrip
from repro.media.transforms import resize, tint
from repro.metrics.reporting import Table

NUM_CASES = 8


@pytest.fixture(scope="module")
def world():
    irs = IrsDeployment.create(seed=110)
    aggregator = ContentAggregator("site", irs.registry)
    pipeline = UploadPipeline(
        aggregator,
        watermark_codec=irs.watermark_codec,
        custodial_ledger=irs.ledger,
        custodial_toolkit=OwnerToolkit(
            rng=np.random.default_rng(7), watermark_codec=irs.watermark_codec
        ),
        hash_database=RobustHashDatabase(),
    )
    return irs, aggregator, pipeline


def test_e10_attack_outcomes(world, report, benchmark):
    irs, _, pipeline = world
    photo = irs.new_photo()
    receipt, labeled = irs.owner_toolkit.claim_and_label(photo, irs.ledger)
    pipeline.upload("original", labeled)
    irs.owner_toolkit.revoke(receipt, irs.ledger)

    naive = NaiveAttacker(np.random.default_rng(1))
    sophisticated = SophisticatedAttacker(
        irs.ledger, rng=np.random.default_rng(2),
        watermark_codec=irs.watermark_codec,
    )

    table = Table(
        headers=["attack", "upload outcome", "defeated by"],
        title="E10: attack scenarios vs IRS defences",
    )
    rows = {}

    outcome = pipeline.upload("a1", naive.strip_metadata_only(labeled).photo)
    rows["strip metadata"] = outcome.decision
    table.add("strip metadata", outcome.decision.value, "label-partial rule")

    fake = PhotoIdentifier(ledger_id=irs.ledger.ledger_id, serial=8888)
    outcome = pipeline.upload("a2", naive.forge_metadata(labeled, fake).photo)
    rows["forge metadata"] = outcome.decision
    table.add("forge metadata", outcome.decision.value, "label-conflict rule")

    outcome = pipeline.upload("a3", naive.strip_and_mangle(labeled).photo)
    rows["destroy watermark"] = outcome.decision
    table.add("destroy watermark", outcome.decision.value,
              "hash DB / partial rule (and the copy is trash)")

    attack = sophisticated.reclaim_copy(labeled)
    outcome = pipeline.upload("a4", attack.photo)
    rows["re-claim copy"] = outcome.decision
    table.add("re-claim copy", outcome.decision.value,
              "nothing automatic — goes to appeals")
    report(table)

    assert not rows["strip metadata"].accepted
    assert not rows["forge metadata"].accepted
    assert not rows["destroy watermark"].accepted
    # The paper concedes this one to automation:
    assert rows["re-claim copy"] is UploadDecision.ACCEPTED

    benchmark(lambda: sophisticated.reclaim_copy(labeled))


def test_e10_appeals_accuracy(world, report, benchmark):
    """Adjudication matrix: derived copies upheld, unrelated rejected."""
    irs, _, _ = world
    process = AppealsProcess(irs.ledger, [irs.timestamp_authority])
    rng = np.random.default_rng(3)

    upheld_derived = 0
    for i in range(NUM_CASES):
        original = irs.new_photo()
        receipt, labeled = irs.owner_toolkit.claim_and_label(original, irs.ledger)
        attacker = SophisticatedAttacker(
            irs.ledger, rng=rng, watermark_codec=irs.watermark_codec
        )
        # The attacker's copy circulates with extra edits.
        circulated = jpeg_roundtrip(tint(labeled, (1.06, 1.0, 0.95)), 65,
                                    preserve_metadata=False)
        attack = attacker.reclaim_copy(circulated)
        appeal = irs.owner_toolkit.prepare_appeal(
            receipt, original, process, attack.identifier, attack.photo
        )
        if process.adjudicate(appeal).upheld:
            upheld_derived += 1

    upheld_unrelated = 0
    for i in range(NUM_CASES):
        original = irs.new_photo()
        receipt = irs.owner_toolkit.claim(original, irs.ledger)
        # A *different* person's photo, claimed later.
        stranger_photo = irs.new_photo()
        stranger_receipt = irs.owner_toolkit.claim(stranger_photo, irs.ledger)
        appeal = irs.owner_toolkit.prepare_appeal(
            receipt, original, process, stranger_receipt.identifier, stranger_photo
        )
        if process.adjudicate(appeal).upheld:
            upheld_unrelated += 1

    table = Table(
        headers=["case class", "appeals upheld", "expected"],
        title="E10b: appeals adjudication accuracy",
    )
    table.add("derived copies (attacked)", f"{upheld_derived}/{NUM_CASES}", "all")
    table.add("unrelated photos (abuse)", f"{upheld_unrelated}/{NUM_CASES}", "none")
    report(table)
    assert upheld_derived == NUM_CASES
    assert upheld_unrelated == 0

    # Timed kernel: one full appeal adjudication.
    original = irs.new_photo()
    receipt, labeled = irs.owner_toolkit.claim_and_label(original, irs.ledger)
    attacker = SophisticatedAttacker(
        irs.ledger, rng=rng, watermark_codec=irs.watermark_codec
    )
    attack = attacker.reclaim_copy(labeled)

    def adjudicate_once():
        appeal = irs.owner_toolkit.prepare_appeal(
            receipt, original, process, attack.identifier, attack.photo
        )
        return process.adjudicate(appeal)

    benchmark(adjudicate_once)


def test_e10_resized_copy_still_loses_appeal(world, report, benchmark):
    """Even when the attacker resizes (killing the watermark entirely),
    the robust hash carries the appeal."""
    irs, _, _ = world
    process = AppealsProcess(irs.ledger, [irs.timestamp_authority])
    wins = 0
    for i in range(NUM_CASES):
        original = irs.new_photo()
        receipt = irs.owner_toolkit.claim(original, irs.ledger)
        shrunk = resize(original, 96, 96, preserve_metadata=False)
        thief = OwnerToolkit(
            rng=np.random.default_rng(400 + i), watermark_codec=irs.watermark_codec
        )
        theft_receipt = thief.claim(shrunk, irs.ledger)
        appeal = irs.owner_toolkit.prepare_appeal(
            receipt, original, process, theft_receipt.identifier, shrunk
        )
        if process.adjudicate(appeal).upheld:
            wins += 1
    table = Table(
        headers=["case class", "appeals upheld"],
        title="E10c: appeals on resized (watermark-dead) copies",
    )
    table.add("resized copies", f"{wins}/{NUM_CASES}")
    report(table)
    assert wins == NUM_CASES

    from repro.media.perceptual import hash_distance

    photo = irs.new_photo()
    benchmark(lambda: hash_distance(photo, resize(photo, 96, 96)))
