"""E6 — Hourly delta-encoded filter updates (paper section 4.4).

Claim: filters are "updated regularly (perhaps hourly), and transferred
with a delta encoding such that the update traffic will be low."

Method: a claim/revoke churn model runs for a simulated day.  Each hour
the ledger republishes its revoked-set filter and a subscribed proxy
pulls the delta; we compare per-hour delta bytes against re-downloading
the full filter.
"""

import numpy as np
import pytest

from repro.core import IrsDeployment
from repro.filters.sizing import bloom_bits_for_fpr, bloom_optimal_hashes
from repro.ledger.export import FilterExporter
from repro.ledger.records import RevocationState
from repro.metrics.reporting import Table
from repro.proxy.filterset import ProxyFilterSet
from repro.workload.population import populate_ledger

INITIAL_POPULATION = 50_000
REVOKED_FRACTION = 0.5
HOURS = 24
HOURLY_NEW_CLAIMS = 300  # ~0.6%/hour population growth
HOURLY_FLIPS = 100  # owners revoking/unrevoking existing photos


def _simulate_day(seed: int):
    irs = IrsDeployment.create(seed=seed)
    rng = np.random.default_rng(seed)
    population = populate_ledger(
        irs.ledger, INITIAL_POPULATION, REVOKED_FRACTION, rng
    )
    # Size for expected end-of-day revoked count.
    expected_revoked = int(
        INITIAL_POPULATION * REVOKED_FRACTION + HOURS * HOURLY_NEW_CLAIMS
    )
    nbits = bloom_bits_for_fpr(expected_revoked, 0.02)
    k = bloom_optimal_hashes(nbits, expected_revoked)
    exporter = FilterExporter(irs.ledger, nbits=nbits, num_hashes=k)
    exporter.publish()
    filterset = ProxyFilterSet()
    filterset.subscribe(exporter)
    initial_bytes = filterset.refresh()

    hourly_bytes = []
    for _ in range(HOURS):
        populate_ledger(irs.ledger, HOURLY_NEW_CLAIMS, REVOKED_FRACTION, rng)
        # Owners flip revocation state on random existing photos.
        flips = rng.choice(population.size, size=HOURLY_FLIPS, replace=False)
        for index in flips:
            record = irs.ledger.record(population.identifiers[int(index)])
            if record.state is RevocationState.REVOKED:
                record.state = RevocationState.NOT_REVOKED
            else:
                record.state = RevocationState.REVOKED
        exporter.publish()
        hourly_bytes.append(filterset.refresh())
    full_size = exporter.current.filter.nbytes
    return initial_bytes, hourly_bytes, full_size, filterset


def test_e6_hourly_deltas_are_small(report, benchmark):
    initial_bytes, hourly_bytes, full_size, filterset = _simulate_day(seed=55)
    mean_delta = float(np.mean(hourly_bytes))
    table = Table(
        headers=["metric", "value"],
        title="E6: a day of hourly delta-encoded filter updates",
    )
    table.add("initial full download (bytes)", f"{initial_bytes:,}")
    table.add("full filter size (bytes)", f"{full_size:,}")
    table.add("mean hourly delta (bytes)", f"{mean_delta:,.0f}")
    table.add("max hourly delta (bytes)", f"{max(hourly_bytes):,}")
    table.add("delta / full ratio", f"{mean_delta / full_size:.2%}")
    table.add(
        "day total vs re-downloading",
        f"{sum(hourly_bytes):,} vs {HOURS * full_size:,}",
    )
    report(table)

    # "Update traffic will be low": hourly deltas are a small fraction
    # of a full transfer.
    assert mean_delta < 0.15 * full_size
    # And the subscription stayed exact (no drift).
    sub = next(iter(filterset._subscriptions.values()))
    assert sub.local_filter.bits == sub.exporter.current.filter.bits
    assert sub.delta_transfers == HOURS

    benchmark.pedantic(lambda: _simulate_day(seed=77), rounds=1, iterations=1)


def test_e6_delta_scales_with_churn(report, benchmark):
    """Delta size tracks churn, not population size — the property that
    makes hourly updates cheap at the paper's 100 B scale."""
    irs = IrsDeployment.create(seed=66)
    rng = np.random.default_rng(66)
    population = populate_ledger(irs.ledger, 50_000, 0.5, rng)
    nbits = bloom_bits_for_fpr(30_000, 0.02)
    k = bloom_optimal_hashes(nbits, 30_000)
    exporter = FilterExporter(irs.ledger, nbits=nbits, num_hashes=k)
    exporter.publish()

    table = Table(
        headers=["new claims in the hour", "delta bytes", "bytes per claim"],
        title="E6b: delta size vs hourly churn",
    )
    sizes = {}
    for churn in (10, 100, 1000):
        filterset = ProxyFilterSet()
        filterset.subscribe(exporter)
        filterset.refresh()
        populate_ledger(irs.ledger, churn, 1.0, rng)
        exporter.publish()
        delta_bytes = filterset.refresh()
        sizes[churn] = delta_bytes
        table.add(churn, f"{delta_bytes:,}", f"{delta_bytes / churn:.1f}")
    report(table)
    assert sizes[10] < sizes[100] < sizes[1000]
    # Cost per claimed photo is tens of bytes (k bit positions, gap coded).
    assert sizes[1000] / 1000 < 40

    benchmark(lambda: exporter.publish())
