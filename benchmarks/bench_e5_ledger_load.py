"""E5 — Ledger load reduction through proxy Bloom filters (section 4.4).

Claim: filters let proxies skip ledger queries for definitely-unrevoked
photos, "thereby lessening the load on ledgers by a factor of fifty" at
a 2% false-hit rate, under the assumption that "a very high fraction of
*viewed* photos are *not* revoked".  The same section also prescribes
proxy caching ("proxies can ameliorate this issue by caching lookups").

Method: browsing traces over a claimed population drive a proxy in four
configurations.  The pure-filter factor-of-fifty shows up under
popularity-neutral views (the claim's implicit expectation: false hits
are 2% of views).  Under Zipf-skewed views the *per-view* false-hit
rate has high variance — a single popular false-positive photo can
dominate — which is exactly the gap the prescribed cache closes: each
false-positive photo then costs one ledger query total, and the
combined stack beats the paper's number.
"""

import numpy as np
import pytest

from repro.core import IrsDeployment
from repro.filters.sizing import bloom_bits_for_fpr, bloom_optimal_hashes
from repro.ledger.export import FilterExporter
from repro.metrics.reporting import Table
from repro.proxy.cache import TtlLruCache
from repro.proxy.filterset import ProxyFilterSet
from repro.proxy.proxy import IrsProxy
from repro.workload.population import populate_ledger
from repro.workload.traces import BrowsingTraceGenerator

POPULATION = 20_000
REVOKED_FRACTION = 0.6  # "a high fraction of total photos will be revoked"
VIEWS = 10_000
TARGET_FPR = 0.02


def _make_filterset(irs, population, salt: bytes):
    nbits = bloom_bits_for_fpr(population.num_revoked, TARGET_FPR)
    k = bloom_optimal_hashes(nbits, population.num_revoked)
    exporter = FilterExporter(irs.ledger, nbits=nbits, num_hashes=k, salt=salt)
    exporter.publish()
    filterset = ProxyFilterSet()
    filterset.subscribe(exporter)
    filterset.refresh()
    return filterset


def _run_proxy(
    irs,
    population,
    seed,
    use_filter=False,
    use_cache=False,
    zipf_exponent=1.0,
    revoked_view_fraction=0.0,
    salt=b"irs",
):
    rng = np.random.default_rng(seed)
    filterset = _make_filterset(irs, population, salt) if use_filter else None
    cache = (
        TtlLruCache(100_000, ttl=3600.0, clock=lambda: 0.0) if use_cache else None
    )
    proxy = IrsProxy(
        "proxy", irs.registry, filterset=filterset, cache=cache
    )
    generator = BrowsingTraceGenerator(
        population,
        num_users=50,
        rng=rng,
        zipf_exponent=zipf_exponent,
        revoked_view_fraction=revoked_view_fraction,
    )
    for event in generator.stream(VIEWS):
        proxy.status(population.identifiers[event.photo_index])
    return proxy.stats


def test_e5_factor_of_fifty(report, benchmark):
    irs = IrsDeployment.create(seed=44)
    population = populate_ledger(
        irs.ledger, POPULATION, REVOKED_FRACTION, np.random.default_rng(44)
    )
    table = Table(
        headers=["config", "views", "ledger queries", "reduction"],
        title="E5: ledger load per proxy configuration (0 revoked views)",
    )

    naive = _run_proxy(irs, population, seed=1)
    table.add("no filter, no cache", naive.queries, naive.ledger_queries, "1.0x")
    assert naive.ledger_queries == naive.queries

    # Popularity-neutral views: the pure-filter factor of ~1/FPR = 50.
    neutral_factors = []
    for trial, salt in enumerate((b"s0", b"s1", b"s2", b"s3")):
        stats = _run_proxy(
            irs, population, seed=10 + trial, use_filter=True,
            zipf_exponent=0.0, salt=salt,
        )
        neutral_factors.append(stats.load_reduction_factor)
    mean_factor = float(np.mean(neutral_factors))
    table.add(
        "filter only, uniform views",
        VIEWS * len(neutral_factors),
        int(VIEWS * len(neutral_factors) / mean_factor),
        f"{mean_factor:.1f}x",
    )
    assert 35 <= mean_factor <= 75, f"expected ~50x, got {mean_factor:.1f}x"

    # Zipf views, filter only: high variance (popular false positives).
    zipf_only = _run_proxy(
        irs, population, seed=2, use_filter=True, zipf_exponent=1.0
    )
    table.add(
        "filter only, zipf views",
        zipf_only.queries,
        zipf_only.ledger_queries,
        f"{zipf_only.load_reduction_factor:.1f}x",
    )

    # The full prescribed stack: filter + cache, Zipf views.
    full = _run_proxy(
        irs, population, seed=3, use_filter=True, use_cache=True,
        zipf_exponent=1.0,
    )
    table.add(
        "filter + cache, zipf views",
        full.queries,
        full.ledger_queries,
        f"{full.load_reduction_factor:.1f}x",
    )
    report(table)
    assert full.load_reduction_factor >= 40
    assert full.load_reduction_factor >= zipf_only.load_reduction_factor

    benchmark(
        lambda: _run_proxy(
            irs, population, seed=99, use_filter=True, zipf_exponent=0.0
        )
    )


def test_e5_assumption_sweep(report, benchmark):
    """Sweep the fraction of views landing on revoked photos: the
    reduction erodes exactly as 1/(f + (1-f)*fpr) predicts, locating
    where the paper's assumption is load-bearing."""
    irs = IrsDeployment.create(seed=45)
    population = populate_ledger(
        irs.ledger, POPULATION, REVOKED_FRACTION, np.random.default_rng(45)
    )
    table = Table(
        headers=[
            "revoked-view fraction",
            "measured reduction",
            "analytic 1/(f+(1-f)p)",
        ],
        title="E5b: load reduction vs revoked-view fraction (filter+cache)",
    )
    from repro.filters.sizing import load_reduction_factor

    measured = {}
    for fraction in (0.0, 0.005, 0.02, 0.05, 0.2):
        stats = _run_proxy(
            irs, population, seed=int(fraction * 10_000) + 7,
            use_filter=True, use_cache=True, zipf_exponent=0.0,
            revoked_view_fraction=fraction,
        )
        measured[fraction] = stats.load_reduction_factor
        table.add(
            f"{fraction:.3f}",
            f"{stats.load_reduction_factor:.1f}x",
            f"{load_reduction_factor(TARGET_FPR, fraction):.1f}x",
        )
    report(table)
    assert measured[0.0] > measured[0.02] > measured[0.2]
    assert measured[0.2] < 10

    benchmark(
        lambda: _run_proxy(
            irs, population, seed=123, use_filter=True, use_cache=True,
            zipf_exponent=0.0, revoked_view_fraction=0.02,
        )
    )
