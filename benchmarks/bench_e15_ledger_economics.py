"""E15 — Bootstrap hosting economics (section 4.4).

Claim: naive per-view lookups "could make it prohibitively expensive to
host a suitably scalable ledger in this bootstrap phase" — and the
filter/cache machinery is what makes first-mover hosting affordable.

Method: the serving-cost model sweeps bootstrap adoption from 10^5 to
10^9 IRS users, costing the naive design against the filtered one (the
~50x reduction measured in E5, plus filter-publication overhead).
Constants are conservative cloud prices; the reproduced claim is the
shape: naive cost crosses "no volunteer pays this" while the filtered
design stays orders of magnitude lower.
"""

import pytest

from repro.ledger.economics import BootstrapScale, ServingCostModel
from repro.metrics.reporting import Table

# The measured E5 figure for the full prescribed stack (filter+cache
# under uniform views; Zipf+cache measured even higher).
MEASURED_LOAD_REDUCTION = 50.0

USER_SCALES = [1e5, 1e6, 1e7, 1e8, 1e9]


def test_e15_cost_sweep(report, benchmark):
    model = ServingCostModel()
    table = Table(
        headers=[
            "IRS users",
            "naive qps",
            "naive $/month",
            "filtered $/month",
            "cost ratio",
        ],
        title="E15: monthly ledger hosting cost, naive vs filtered",
    )
    naive_costs = {}
    filtered_costs = {}
    for users in USER_SCALES:
        scale = BootstrapScale(
            irs_users=users,
            claimed_photos=min(1e11, users * 1000),  # photos track users
        )
        naive = model.monthly_cost(scale, load_reduction=1.0)
        filtered = model.monthly_cost(
            scale,
            load_reduction=MEASURED_LOAD_REDUCTION,
            publish_filters=True,
        )
        naive_costs[users] = naive.total
        filtered_costs[users] = filtered.total
        table.add(
            f"{users:.0e}",
            f"{naive.query_rate_per_s:,.0f}",
            f"{naive.total:,.0f}",
            f"{filtered.total:,.0f}",
            f"{naive.total / filtered.total:.1f}x",
        )
    report(table)

    # Shape 1: the naive design at large bootstrap scale costs hundreds
    # of thousands a month — "prohibitively expensive" for the
    # privacy-nonprofit first movers the paper has in mind.
    assert naive_costs[1e9] > 100_000
    # Shape 2: the filtered design keeps even 10^9-user bootstrap in
    # the range a browser vendor's privacy team shrugs at.
    assert filtered_costs[1e9] < naive_costs[1e9] / 10
    assert filtered_costs[1e7] < 1_000
    # Shape 3: the offload ratio approaches the load reduction once
    # costs clear the one-server floor.
    big = BootstrapScale(irs_users=1e9, claimed_photos=1e11)
    ratio = model.offload_ratio(big, MEASURED_LOAD_REDUCTION)
    assert ratio > 10

    benchmark(
        lambda: model.monthly_cost(
            BootstrapScale(irs_users=1e8),
            load_reduction=MEASURED_LOAD_REDUCTION,
            publish_filters=True,
        )
    )


def test_e15_filter_publication_is_cheap(report, benchmark):
    """The 1 GB filter of section 4.4 costs pennies-to-dollars a month
    to publish — "it is in a ledger's best interest to provide such
    Bloom filters as they reduce their load"."""
    model = ServingCostModel()
    table = Table(
        headers=[
            "claimed photos",
            "filter size (GB)",
            "publication $/month",
            "queries saved $/month",
        ],
        title="E15b: the ledger's own incentive to publish filters",
    )
    for photos in (1e8, 1e9, 1e10, 1e11):
        scale = BootstrapScale(irs_users=1e8, claimed_photos=photos)
        filter_gb = model.filter_size_bytes(scale) / 1e9
        with_filters = model.monthly_cost(
            scale, load_reduction=MEASURED_LOAD_REDUCTION, publish_filters=True
        )
        naive = model.monthly_cost(scale, load_reduction=1.0)
        saved = naive.total - (with_filters.total - with_filters.filter_hosting_cost)
        table.add(
            f"{photos:.0e}",
            f"{filter_gb:.2f}",
            f"{with_filters.filter_hosting_cost:,.2f}",
            f"{saved:,.0f}",
        )
        # Publishing always pays for itself at this scale.
        assert saved > with_filters.filter_hosting_cost
    report(table)

    benchmark(
        lambda: model.filter_size_bytes(
            BootstrapScale(irs_users=1e8, claimed_photos=1e11)
        )
    )
