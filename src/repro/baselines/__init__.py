"""Baseline systems the paper positions IRS against.

Section 1 discusses Oblivion [28]: "Oblivion is more general than IRS
(focusing on all those impacted by a photo, not just the owner) but
inherently reactive (removing a photo once it is posted, whereas IRS
proactively tries to prevent such photos from being posted or viewed)."

:mod:`repro.baselines.oblivion` implements that reactive model so the
proactive-vs-reactive contrast can be measured (experiment E16).
"""

from repro.baselines.oblivion import (
    ReactiveTakedownSystem,
    TakedownCampaign,
    CampaignOutcome,
)

__all__ = ["ReactiveTakedownSystem", "TakedownCampaign", "CampaignOutcome"]
