"""A reactive takedown baseline in the style of Oblivion [28].

The reactive workflow the paper contrasts IRS with:

1. the affected person (or a service acting for them) **discovers**
   copies by periodically crawling sites and matching content
   (perceptual hashing — same primitive as our appeals process);
2. for each discovered copy they **file a per-site takedown request**;
3. each site **processes** the request after some handling delay
   (human review queues: hours to days);
4. nothing **prevents re-uploads** — each new copy restarts the cycle.

The contrast with IRS: one ledger flip covers every participating site
at the next recheck (and blocks *future* uploads outright), while the
reactive path pays per-copy discovery + per-site processing forever.

The simulation uses the same discrete-event machinery and hosting
primitives as the IRS path so the comparison in experiment E16 is
apples-to-apples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.aggregator.aggregator import ContentAggregator
from repro.media.image import Photo
from repro.media.perceptual import DEFAULT_MATCH_THRESHOLD, RobustHash, robust_hash
from repro.netsim.simulator import Simulator

__all__ = ["ReactiveTakedownSystem", "TakedownCampaign", "CampaignOutcome"]


@dataclass
class CampaignOutcome:
    """What one takedown campaign achieved, and when."""

    requested_at: float
    copies_found: int = 0
    takedown_times: List[float] = field(default_factory=list)
    crawls_performed: int = 0
    requests_filed: int = 0

    @property
    def completed_at(self) -> Optional[float]:
        """When the last discovered copy came down (None if none did)."""
        return max(self.takedown_times) if self.takedown_times else None

    @property
    def mean_takedown_latency(self) -> Optional[float]:
        if not self.takedown_times:
            return None
        return float(
            np.mean([t - self.requested_at for t in self.takedown_times])
        )


@dataclass
class TakedownCampaign:
    """An active reactive-takedown effort for one photo."""

    target_signature: RobustHash
    outcome: CampaignOutcome
    pending_requests: Dict[str, float] = field(default_factory=dict)
    seen: set = field(default_factory=set)  # (site, name) already handled


class ReactiveTakedownSystem:
    """Oblivion-style reactive removal across a set of sites.

    Parameters
    ----------
    sites:
        The aggregators to police.  They need no IRS support — the
        takedown path is the classic report-and-review flow every site
        already has.
    crawl_interval:
        Seconds between content crawls per campaign (discovery is
        polling: the victim or their service re-scans the web).
    processing_delay:
        Seconds a site takes to action a filed request (review queues).
    match_threshold:
        Perceptual-hash distance treated as "this is the photo".
    """

    def __init__(
        self,
        sites: List[ContentAggregator],
        simulator: Simulator,
        crawl_interval: float = 6 * 3600.0,
        processing_delay: float = 24 * 3600.0,
        match_threshold: float = DEFAULT_MATCH_THRESHOLD,
    ):
        if crawl_interval <= 0 or processing_delay < 0:
            raise ValueError("invalid timing parameters")
        self.sites = sites
        self.simulator = simulator
        self.crawl_interval = float(crawl_interval)
        self.processing_delay = float(processing_delay)
        self.match_threshold = float(match_threshold)
        self.campaigns: List[TakedownCampaign] = []

    # -- campaign lifecycle -----------------------------------------------------

    def request_removal(self, photo: Photo, until: float) -> TakedownCampaign:
        """Start a campaign to remove copies of ``photo`` everywhere.

        Crawling begins immediately and repeats until ``until``.
        """
        campaign = TakedownCampaign(
            target_signature=robust_hash(photo),
            outcome=CampaignOutcome(requested_at=self.simulator.now),
        )
        self.campaigns.append(campaign)

        def crawl_cycle():
            self._crawl_once(campaign)
            next_time = self.simulator.now + self.crawl_interval
            if next_time <= until:
                self.simulator.schedule(self.crawl_interval, crawl_cycle)

        self.simulator.schedule(0.0, crawl_cycle)
        return campaign

    def _crawl_once(self, campaign: TakedownCampaign) -> None:
        campaign.outcome.crawls_performed += 1
        for site in self.sites:
            for hosted in site.live_photos():
                key = (site.name, hosted.name)
                if key in campaign.seen:
                    continue
                distance = campaign.target_signature.distance(
                    robust_hash(hosted.photo)
                )
                if distance > self.match_threshold:
                    continue
                campaign.seen.add(key)
                campaign.outcome.copies_found += 1
                campaign.outcome.requests_filed += 1
                self._file_request(campaign, site, hosted.name)

    def _file_request(
        self, campaign: TakedownCampaign, site: ContentAggregator, name: str
    ) -> None:
        def process():
            hosted = site.hosted(name)
            if hosted is not None and not hosted.taken_down:
                site.take_down(name, reason="reactive takedown request honoured")
                campaign.outcome.takedown_times.append(self.simulator.now)

        self.simulator.schedule(self.processing_delay, process)

    # -- measurement --------------------------------------------------------------

    def copies_visible(self, campaign: TakedownCampaign) -> int:
        """Copies of the campaign's target currently served anywhere."""
        visible = 0
        for site in self.sites:
            for hosted in site.live_photos():
                if (
                    campaign.target_signature.distance(robust_hash(hosted.photo))
                    <= self.match_threshold
                ):
                    visible += 1
        return visible
