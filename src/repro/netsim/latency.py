"""Latency models for links and services.

Section 4.3 grounds its latency budget in DNS-resolver-like services:
"Any reasonably responsive ledger would produce delays that would be a
small fraction of this (say, under 100ms, as in [12, 26])" -- [12] is
DNSPerf, [26] Oblivious DNS.  The presets here encode those shapes:

* :func:`dns_like_latency` -- lognormal with ~25 ms median and a tail
  reaching ~100 ms at p99, matching public resolver measurements.
* :func:`lan_latency` / :func:`wan_latency` -- sub-ms and tens-of-ms
  round trips for intra-datacenter and cross-country paths.

All models sample in **seconds**.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "EmpiricalLatency",
    "dns_like_latency",
    "lan_latency",
    "wan_latency",
]


class LatencyModel(ABC):
    """A distribution of one-way (or round-trip, by convention) delays."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one delay in seconds."""

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.asarray([self.sample(rng) for _ in range(n)])

    @abstractmethod
    def mean(self) -> float:
        """Expected delay in seconds (analytic where possible)."""


class ConstantLatency(LatencyModel):
    """Fixed delay."""

    def __init__(self, seconds: float):
        if seconds < 0:
            raise ValueError("latency cannot be negative")
        self.seconds = float(seconds)

    def sample(self, rng: np.random.Generator) -> float:
        return self.seconds

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.full(n, self.seconds)

    def mean(self) -> float:
        return self.seconds

    def __repr__(self) -> str:  # pragma: no cover
        return f"ConstantLatency({self.seconds})"


class UniformLatency(LatencyModel):
    """Uniform on [low, high]."""

    def __init__(self, low: float, high: float):
        if not 0 <= low <= high:
            raise ValueError("need 0 <= low <= high")
        self.low, self.high = float(low), float(high)

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return rng.uniform(self.low, self.high, size=n)

    def mean(self) -> float:
        return (self.low + self.high) / 2.0

    def __repr__(self) -> str:  # pragma: no cover
        return f"UniformLatency({self.low}, {self.high})"


class LogNormalLatency(LatencyModel):
    """Lognormal parameterized by median and shape sigma.

    Network RTT distributions are well approximated by a lognormal: most
    samples near the median, a long but thin tail.
    """

    def __init__(self, median: float, sigma: float = 0.5, cap: float | None = None):
        if median <= 0 or sigma < 0:
            raise ValueError("median must be > 0 and sigma >= 0")
        self.median = float(median)
        self.sigma = float(sigma)
        self.cap = float(cap) if cap is not None else None
        self._mu = math.log(median)

    def sample(self, rng: np.random.Generator) -> float:
        value = float(rng.lognormal(self._mu, self.sigma))
        if self.cap is not None:
            value = min(value, self.cap)
        return value

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        values = rng.lognormal(self._mu, self.sigma, size=n)
        if self.cap is not None:
            values = np.minimum(values, self.cap)
        return values

    def mean(self) -> float:
        # Without the cap: exp(mu + sigma^2/2); the cap only trims the
        # thin tail, so this stays a good estimate.
        return math.exp(self._mu + self.sigma**2 / 2.0)

    def percentile(self, q: float) -> float:
        """Analytic quantile (ignoring the cap)."""
        from scipy import stats

        return float(stats.lognorm.ppf(q, s=self.sigma, scale=self.median))

    def __repr__(self) -> str:  # pragma: no cover
        return f"LogNormalLatency(median={self.median}, sigma={self.sigma})"


class EmpiricalLatency(LatencyModel):
    """Piecewise-linear inverse CDF from (quantile, value) points.

    Useful for encoding published percentile tables (e.g. DNSPerf
    reports p50/p90/p99 per resolver).
    """

    def __init__(self, points: Sequence[tuple[float, float]]):
        pts = sorted((float(q), float(v)) for q, v in points)
        if len(pts) < 2:
            raise ValueError("need at least two (quantile, value) points")
        qs = [q for q, _ in pts]
        vs = [v for _, v in pts]
        if qs[0] > 0.0:
            qs.insert(0, 0.0)
            vs.insert(0, vs[0])
        if qs[-1] < 1.0:
            qs.append(1.0)
            vs.append(vs[-1])
        if any(b < a for a, b in zip(vs, vs[1:])):
            raise ValueError("values must be non-decreasing in quantile")
        self._qs = np.asarray(qs)
        self._vs = np.asarray(vs)

    def sample(self, rng: np.random.Generator) -> float:
        return float(np.interp(rng.uniform(), self._qs, self._vs))

    def sample_many(self, rng: np.random.Generator, n: int) -> np.ndarray:
        return np.interp(rng.uniform(size=n), self._qs, self._vs)

    def mean(self) -> float:
        # Trapezoidal integral of the inverse CDF over [0, 1].
        return float(np.trapezoid(self._vs, self._qs))

    def __repr__(self) -> str:  # pragma: no cover
        return f"EmpiricalLatency({list(zip(self._qs, self._vs))})"


def dns_like_latency() -> LatencyModel:
    """Resolver-like RTT: ~25 ms median, ~100 ms p99 (DNSPerf-shaped)."""
    return LogNormalLatency(median=0.025, sigma=0.55, cap=0.4)


def lan_latency() -> LatencyModel:
    """Intra-datacenter RTT."""
    return LogNormalLatency(median=0.0005, sigma=0.3, cap=0.01)


def wan_latency() -> LatencyModel:
    """Cross-country RTT."""
    return LogNormalLatency(median=0.06, sigma=0.3, cap=0.5)
