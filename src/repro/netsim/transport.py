"""Asynchronous request/response RPC over the network fabric.

Callback-style RPC: a caller issues ``endpoint.call(...)`` with a
completion callback; the request travels over the link, the handler
runs (plus optional service time), and the response travels back.
Errors raised by handlers are delivered to the callback as
:class:`RpcError` results rather than crashing the simulation -- a
misbehaving ledger (section 5) is an experiment condition, not a bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.netsim.latency import LatencyModel
from repro.netsim.link import Network
from repro.netsim.node import Node

__all__ = ["RpcEndpoint", "RpcError", "RpcResult"]


class RpcError(Exception):
    """An RPC-level failure (unknown method, handler exception, timeout)."""


@dataclass(slots=True)
class RpcResult:
    """Outcome delivered to the caller's callback."""

    value: Any = None
    error: Optional[RpcError] = None
    rtt: float = 0.0  # total request->response time experienced

    @property
    def ok(self) -> bool:
        return self.error is None

    def unwrap(self) -> Any:
        if self.error is not None:
            raise self.error
        return self.value


class RpcEndpoint:
    """RPC server personality for a node.

    Handlers are registered by method name and are called as
    ``handler(payload)``; their return value becomes the response.

    Two service models are available:

    * ``service_time`` — a latency distribution sampled per request,
      with unbounded concurrency (the original model; fine for services
      that never saturate in an experiment).
    * ``cost_fn(method, payload) -> seconds`` — a *serial* server: each
      request occupies the server for its cost, and requests queue
      behind one another.  This is the model that makes saturation and
      horizontal scale-out measurable (E17): a shard has finite
      capacity, and p99 latency grows when offered load approaches it.

    ``down`` models a crashed process: requests are delivered but never
    answered, so callers discover the failure only through timeouts —
    exactly the evidence the cluster's failure detector consumes.
    """

    def __init__(
        self,
        node: Node,
        network: Network,
        service_time: Optional[LatencyModel] = None,
        cost_fn: Optional[Callable[[str, Any], float]] = None,
    ):
        if service_time is not None and cost_fn is not None:
            raise ValueError("choose service_time or cost_fn, not both")
        self.node = node
        self.network = network
        self.service_time = service_time
        self.cost_fn = cost_fn
        self.down = False
        self._busy_until = 0.0
        self._handlers: Dict[str, Callable[[Any], Any]] = {}
        self.requests_served = 0
        self.busy_seconds = 0.0

    def register(self, method: str, handler: Callable[[Any], Any]) -> None:
        if method in self._handlers:
            raise ValueError(f"handler for {method!r} already registered")
        self._handlers[method] = handler

    def call(
        self,
        src: str,
        method: str,
        payload: Any,
        callback: Callable[[RpcResult], None],
        request_bytes: int = 256,
        response_bytes: int = 256,
        timeout: Optional[float] = None,
        retries: int = 0,
    ) -> None:
        """Issue an async call from node ``src`` to this endpoint.

        With ``timeout`` set, an unanswered attempt (lost request or
        response, slow service) is retried up to ``retries`` times;
        when attempts are exhausted the callback receives an
        ``RpcResult`` whose error says "timed out".  A response that
        arrives after its attempt timed out is discarded (at-most-once
        delivery to the callback).
        """
        if timeout is not None and timeout <= 0:
            raise ValueError("timeout must be positive")
        if retries < 0:
            raise ValueError("retries cannot be negative")
        start_time = self.network.simulator.now
        state = {"done": False, "attempt": 0}

        def _finish(result: RpcResult) -> None:
            if state["done"]:
                return
            state["done"] = True
            result.rtt = self.network.simulator.now - start_time
            callback(result)

        def _attempt() -> None:
            attempt_id = state["attempt"]

            def _respond(result: RpcResult) -> None:
                def _complete():
                    # Late responses from a timed-out attempt are dropped.
                    if state["attempt"] == attempt_id:
                        _finish(result)

                self.network.deliver(
                    self.node.name, src, _complete, size_bytes=response_bytes
                )

            def _handle() -> None:
                if self.down:
                    # Crashed server: the request is lost; the caller's
                    # timeout is the only signal.
                    return
                self.requests_served += 1
                handler = self._handlers.get(method)
                if handler is None:
                    _respond(
                        RpcResult(error=RpcError(f"unknown method {method!r}"))
                    )
                    return

                def _execute():
                    if self.down:
                        return
                    try:
                        value = handler(payload)
                        _respond(RpcResult(value=value))
                    except Exception as exc:  # noqa: BLE001 - fault isolation
                        _respond(RpcResult(error=RpcError(str(exc))))

                if self.cost_fn is not None:
                    now = self.network.simulator.now
                    cost = max(0.0, float(self.cost_fn(method, payload)))
                    start = max(self._busy_until, now)
                    self._busy_until = start + cost
                    self.busy_seconds += cost
                    self.network.simulator.schedule(
                        self._busy_until - now, _execute
                    )
                elif self.service_time is not None:
                    delay = self.service_time.sample(self.network._rng)
                    self.network.simulator.schedule(delay, _execute)
                else:
                    _execute()

            self.network.deliver(
                src, self.node.name, _handle, size_bytes=request_bytes
            )

            if timeout is not None:

                def _on_timeout():
                    if state["done"] or state["attempt"] != attempt_id:
                        return
                    state["attempt"] += 1
                    if state["attempt"] <= retries:
                        _attempt()
                    else:
                        _finish(
                            RpcResult(
                                error=RpcError(
                                    f"call to {method!r} timed out after "
                                    f"{retries + 1} attempt(s)"
                                )
                            )
                        )

                self.network.simulator.schedule(timeout, _on_timeout)

        _attempt()
