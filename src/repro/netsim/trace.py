"""Event recording and counters for experiments.

:class:`TraceRecorder` accumulates timestamped events and named samples;
:class:`Counter` is a simple named tally.  Benches pull percentile
summaries out of recorders via :mod:`repro.metrics.stats`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List

import numpy as np

__all__ = ["TraceRecorder", "Counter", "TraceEvent"]


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    time: float
    name: str
    attrs: dict


class Counter:
    """Named monotonic tallies."""

    def __init__(self):
        self._counts: Dict[str, int] = defaultdict(int)

    def increment(self, name: str, by: int = 1) -> None:
        if by < 0:
            raise ValueError("counters only go up")
        self._counts[name] += by

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def as_dict(self) -> Dict[str, int]:
        return dict(self._counts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({dict(self._counts)!r})"


class TraceRecorder:
    """Accumulates events and scalar samples during a simulation."""

    def __init__(self):
        self.events: List[TraceEvent] = []
        self._samples: Dict[str, List[float]] = defaultdict(list)
        self.counters = Counter()

    def record(self, time: float, name: str, **attrs: Any) -> None:
        self.events.append(TraceEvent(time=time, name=name, attrs=attrs))

    def sample(self, name: str, value: float) -> None:
        self._samples[name].append(float(value))

    def samples(self, name: str) -> np.ndarray:
        return np.asarray(self._samples.get(name, []))

    def sample_names(self) -> List[str]:
        return sorted(self._samples)

    def events_named(self, name: str) -> List[TraceEvent]:
        return [e for e in self.events if e.name == name]

    def summary(self, name: str) -> Dict[str, float]:
        """Percentile summary of a sample series."""
        values = self.samples(name)
        if values.size == 0:
            return {"count": 0}
        return {
            "count": int(values.size),
            "mean": float(values.mean()),
            "p50": float(np.percentile(values, 50)),
            "p90": float(np.percentile(values, 90)),
            "p99": float(np.percentile(values, 99)),
            "max": float(values.max()),
        }
