"""Discrete-event network simulation substrate.

The paper's bootstrap-phase claims (sections 4.2-4.4) are about latency
budgets and request loads across browsers, proxies and ledgers.  This
package provides the simulator those experiments run on:

* :mod:`repro.netsim.simulator` -- event loop, clocks.
* :mod:`repro.netsim.rand` -- named, seeded RNG streams.
* :mod:`repro.netsim.latency` -- latency distributions (constant,
  uniform, lognormal, empirical percentile tables) with presets for
  DNS-like resolver latencies [12, 26].
* :mod:`repro.netsim.node` / :mod:`repro.netsim.link` -- topology.
* :mod:`repro.netsim.transport` -- asynchronous request/response RPC.
* :mod:`repro.netsim.trace` -- event recording and counters.

Every IRS component takes a :class:`Clock` so identical code runs
in-process (tests, prototype bench) and inside the simulator
(latency/load benches).
"""

from repro.netsim.simulator import (
    Simulator,
    Clock,
    SimClock,
    ManualClock,
    SkewedClock,
)
from repro.netsim.rand import RngRegistry
from repro.netsim.latency import (
    LatencyModel,
    ConstantLatency,
    UniformLatency,
    LogNormalLatency,
    EmpiricalLatency,
    dns_like_latency,
    lan_latency,
    wan_latency,
)
from repro.netsim.node import Node
from repro.netsim.link import Link, Network
from repro.netsim.transport import RpcEndpoint, RpcError
from repro.netsim.trace import TraceRecorder, Counter

__all__ = [
    "Simulator",
    "Clock",
    "SimClock",
    "ManualClock",
    "SkewedClock",
    "RngRegistry",
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "LogNormalLatency",
    "EmpiricalLatency",
    "dns_like_latency",
    "lan_latency",
    "wan_latency",
    "Node",
    "Link",
    "Network",
    "RpcEndpoint",
    "RpcError",
    "TraceRecorder",
    "Counter",
]
