"""Links and the network fabric.

A :class:`Link` joins two nodes with a one-way latency model per
direction (symmetric by default) and optional bandwidth, used to model
transfer time for sized payloads.  :class:`Network` is the fabric: it
owns links, resolves routes (direct links only -- the IRS topology is a
star around proxies/ledgers, no multi-hop routing needed), and delivers
messages by scheduling simulator events.

Beyond latency, a link is the fault-injection surface for the chaos
harness (:mod:`repro.chaos`): every message may independently be lost
(``loss_probability``), duplicated (``duplicate_probability`` — the
copy travels with its own sampled delay), or reordered
(``reorder_probability`` adds up to ``reorder_delay`` seconds, pushing
the message behind later traffic), and a ``severed`` link drops
everything — the primitive partitions are built from.  All fault coins
are drawn from the network's RNG stream only when the corresponding
probability is non-zero, so a fault-free run consumes the identical
random sequence it always did.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Optional, Tuple

import numpy as np

from repro.netsim.latency import LatencyModel
from repro.netsim.node import Node
from repro.netsim.simulator import Simulator

__all__ = ["Link", "Network", "NetworkError"]


class NetworkError(Exception):
    """Raised on unknown nodes or missing links."""


class Link:
    """A bidirectional link between two named nodes.

    Parameters
    ----------
    latency:
        One-way delay model applied to every message.
    bandwidth_bps:
        Optional bandwidth in bits/second; adds ``size_bytes * 8 /
        bandwidth`` of serialization delay for sized messages.
    """

    def __init__(
        self,
        a: str,
        b: str,
        latency: LatencyModel,
        bandwidth_bps: Optional[float] = None,
        loss_probability: float = 0.0,
    ):
        if a == b:
            raise NetworkError("links must join distinct nodes")
        if bandwidth_bps is not None and bandwidth_bps <= 0:
            raise NetworkError("bandwidth must be positive")
        self.a, self.b = a, b
        self.latency = latency
        self.bandwidth_bps = bandwidth_bps
        self.loss_probability = 0.0
        self.duplicate_probability = 0.0
        self.reorder_probability = 0.0
        self.reorder_delay = 0.01
        self.severed = False
        self.set_faults(loss=loss_probability)
        self.messages_carried = 0
        self.messages_dropped = 0
        self.messages_severed = 0
        self.messages_duplicated = 0
        self.messages_reordered = 0
        self.bytes_carried = 0

    def set_faults(
        self,
        loss: Optional[float] = None,
        duplicate: Optional[float] = None,
        reorder: Optional[float] = None,
        reorder_delay: Optional[float] = None,
    ) -> None:
        """(Re)configure this link's per-message fault probabilities.

        ``None`` leaves a knob unchanged, so fault profiles can be
        applied and lifted incrementally by the chaos controller.
        """
        for name, value in (
            ("loss", loss), ("duplicate", duplicate), ("reorder", reorder)
        ):
            if value is not None and not 0.0 <= value < 1.0:
                raise NetworkError(f"{name} probability must be in [0, 1)")
        if reorder_delay is not None and reorder_delay < 0:
            raise NetworkError("reorder delay cannot be negative")
        if loss is not None:
            self.loss_probability = float(loss)
        if duplicate is not None:
            self.duplicate_probability = float(duplicate)
        if reorder is not None:
            self.reorder_probability = float(reorder)
        if reorder_delay is not None:
            self.reorder_delay = float(reorder_delay)

    def sever(self) -> None:
        """Cut the link: every message is dropped until :meth:`heal`."""
        self.severed = True

    def heal(self) -> None:
        self.severed = False

    def transfer_delay(self, rng: np.random.Generator, size_bytes: int = 0) -> float:
        delay = self.latency.sample(rng)
        if self.bandwidth_bps is not None and size_bytes > 0:
            delay += size_bytes * 8.0 / self.bandwidth_bps
        return delay

    def endpoints(self) -> Tuple[str, str]:
        return (self.a, self.b)


class Network:
    """The message fabric joining nodes with links."""

    def __init__(self, simulator: Simulator, rng: np.random.Generator):
        self.simulator = simulator
        self._rng = rng
        self._nodes: Dict[str, Node] = {}
        self._links: Dict[frozenset, Link] = {}

    # -- topology ---------------------------------------------------------------

    def add_node(self, node: Node) -> Node:
        if node.name in self._nodes:
            raise NetworkError(f"duplicate node name {node.name!r}")
        self._nodes[node.name] = node
        return node

    def node(self, name: str) -> Node:
        try:
            return self._nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def connect(
        self,
        a: str,
        b: str,
        latency: LatencyModel,
        bandwidth_bps: Optional[float] = None,
        loss_probability: float = 0.0,
    ) -> Link:
        for name in (a, b):
            if name not in self._nodes:
                raise NetworkError(f"unknown node {name!r}")
        key = frozenset((a, b))
        if key in self._links:
            raise NetworkError(f"link {a!r}<->{b!r} already exists")
        link = Link(a, b, latency, bandwidth_bps, loss_probability)
        self._links[key] = link
        return link

    def link_between(self, a: str, b: str) -> Link:
        try:
            return self._links[frozenset((a, b))]
        except KeyError:
            raise NetworkError(f"no link between {a!r} and {b!r}") from None

    def links(self) -> Iterator[Link]:
        """All links, in creation order (deterministic)."""
        return iter(self._links.values())

    def node_names(self) -> list:
        return list(self._nodes)

    # -- delivery -----------------------------------------------------------------

    # -- analysis ------------------------------------------------------------------

    def to_networkx(self):
        """The topology as a ``networkx.Graph`` for analysis.

        Nodes carry no attributes; edges carry ``latency_mean_s``,
        ``bandwidth_bps``, ``loss_probability`` and the live traffic
        counters, so standard graph tooling (connectivity, shortest
        latency paths, cut sets) applies directly.
        """
        import networkx as nx

        graph = nx.Graph()
        graph.add_nodes_from(self._nodes)
        for link in self._links.values():
            graph.add_edge(
                link.a,
                link.b,
                latency_mean_s=link.latency.mean(),
                bandwidth_bps=link.bandwidth_bps,
                loss_probability=link.loss_probability,
                messages_carried=link.messages_carried,
                bytes_carried=link.bytes_carried,
            )
        return graph

    def star(
        self,
        center: str,
        leaves: list,
        latency: LatencyModel,
        bandwidth_bps: Optional[float] = None,
    ) -> list:
        """Connect ``center`` to every leaf — the IRS bootstrap shape
        (browsers around a proxy; proxies around ledgers)."""
        return [
            self.connect(center, leaf, latency, bandwidth_bps) for leaf in leaves
        ]

    def deliver(
        self,
        src: str,
        dst: str,
        handler: Callable,
        *args,
        size_bytes: int = 0,
    ) -> Optional[float]:
        """Schedule ``handler(*args)`` at ``dst`` after link delay.

        Returns the sampled delay, or None when the link dropped the
        message (``handler`` then never runs — loss is silent, as on a
        real network; recovery is the transport layer's job).  A severed
        link drops everything; duplication schedules a second,
        independently delayed arrival; reordering adds extra delay so
        the message can land behind later traffic.
        """
        link = self.link_between(src, dst)
        self._nodes[src].messages_sent += 1
        if link.severed:
            link.messages_severed += 1
            return None
        if link.loss_probability > 0.0 and self._rng.uniform() < link.loss_probability:
            link.messages_dropped += 1
            return None
        delay = link.transfer_delay(self._rng, size_bytes)
        if (
            link.reorder_probability > 0.0
            and self._rng.uniform() < link.reorder_probability
        ):
            delay += self._rng.uniform(0.0, link.reorder_delay)
            link.messages_reordered += 1
        link.messages_carried += 1
        link.bytes_carried += size_bytes

        def _arrive():
            self._nodes[dst].messages_received += 1
            handler(*args)

        self.simulator.schedule(delay, _arrive)
        if (
            link.duplicate_probability > 0.0
            and self._rng.uniform() < link.duplicate_probability
        ):
            link.messages_duplicated += 1
            link.messages_carried += 1
            self.simulator.schedule(
                link.transfer_delay(self._rng, size_bytes), _arrive
            )
        return delay
