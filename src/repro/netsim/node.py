"""Simulation nodes.

A :class:`Node` is a named participant (browser, proxy, ledger,
aggregator) attached to a simulator.  Service logic lives in RPC
handlers registered on the node's endpoint (:mod:`repro.netsim.transport`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.netsim.simulator import Simulator

__all__ = ["Node"]


class Node:
    """A named simulation participant.

    Subclasses (or composition) add behaviour; the base class carries
    identity, the simulator handle, and simple send/receive counters.
    """

    def __init__(self, name: str, simulator: "Simulator"):
        if not name:
            raise ValueError("node name must be non-empty")
        self.name = name
        self.simulator = simulator
        self.messages_sent = 0
        self.messages_received = 0

    @property
    def now(self) -> float:
        return self.simulator.now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Node({self.name!r})"
