"""Event loop and clock abstractions.

The :class:`Simulator` is a classic discrete-event loop: a priority
queue of (time, sequence, callback) entries.  Sequence numbers break
ties so same-time events run in schedule order, keeping runs
deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Optional, Protocol

__all__ = [
    "Simulator",
    "Clock",
    "SimClock",
    "ManualClock",
    "SkewedClock",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised on invalid scheduling (e.g. negative delays)."""


class Clock(Protocol):
    """Anything that can report the current time in seconds."""

    def now(self) -> float:  # pragma: no cover - protocol
        ...


class ManualClock:
    """A clock tests advance by hand."""

    __slots__ = ("_time",)

    def __init__(self, start: float = 0.0):
        self._time = float(start)

    def now(self) -> float:
        return self._time

    def advance(self, delta: float) -> None:
        if delta < 0:
            raise SimulationError("cannot move a clock backwards")
        self._time += delta


class Simulator:
    """Discrete-event simulator.

    Usage::

        sim = Simulator()
        sim.schedule(0.5, handler, arg1, arg2)
        sim.run()            # until queue is empty
        sim.run(until=10.0)  # or until a deadline
    """

    __slots__ = ("_time", "_queue", "_sequence", "_events_processed")

    def __init__(self):
        self._time = 0.0
        self._queue: list[tuple[float, int, Callable, tuple]] = []
        self._sequence = 0
        self._events_processed = 0

    @property
    def now(self) -> float:
        return self._time

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def clock(self) -> "SimClock":
        return SimClock(self)

    def schedule(self, delay: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` after ``delay`` seconds of sim time."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._sequence += 1
        heapq.heappush(
            self._queue, (self._time + delay, self._sequence, callback, args)
        )

    def schedule_at(self, when: float, callback: Callable, *args: Any) -> None:
        """Run ``callback(*args)`` at absolute sim time ``when``."""
        if when < self._time:
            raise SimulationError(
                f"cannot schedule at {when}, current time is {self._time}"
            )
        self.schedule(when - self._time, callback, *args)

    def run(self, until: Optional[float] = None, max_events: int = 10_000_000) -> None:
        """Process events until the queue drains or ``until`` is reached.

        ``max_events`` guards against runaway self-rescheduling loops.
        """
        processed = 0
        while self._queue:
            when, _, callback, args = self._queue[0]
            if until is not None and when > until:
                self._time = until
                return
            heapq.heappop(self._queue)
            self._time = when
            callback(*args)
            self._events_processed += 1
            processed += 1
            if processed >= max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; runaway schedule loop?"
                )
        if until is not None and until > self._time:
            self._time = until

    def step(self) -> bool:
        """Process a single event; returns False when the queue is empty."""
        if not self._queue:
            return False
        when, _, callback, args = heapq.heappop(self._queue)
        self._time = when
        callback(*args)
        self._events_processed += 1
        return True


class SimClock:
    """A :class:`Clock` view of a simulator."""

    __slots__ = ("_simulator",)

    def __init__(self, simulator: Simulator):
        self._simulator = simulator

    def now(self) -> float:
        return self._simulator.now


class SkewedClock:
    """A per-node clock offset from a shared base clock.

    Models drifted node clocks for the chaos harness: the node *thinks*
    it is ``base() + offset``.  The offset is mutable, so a chaos plan
    can skew and re-sync a node mid-run; correctness invariants must
    not depend on any node's local reading (the cluster's LWW is on an
    epoch counter, not wall time — this clock exists to prove that).
    """

    __slots__ = ("_base", "offset")

    def __init__(self, base: Callable[[], float], offset: float = 0.0):
        self._base = base
        self.offset = float(offset)

    def now(self) -> float:
        return self._base() + self.offset
