"""Named, seeded RNG streams.

Every source of randomness in an experiment draws from a stream obtained
by name from one :class:`RngRegistry`, so (a) the whole experiment is
reproducible from a single seed and (b) adding randomness to one
component does not perturb another component's stream.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np

__all__ = ["RngRegistry"]


class RngRegistry:
    """Hands out independent ``numpy.random.Generator`` streams by name.

    Streams are derived from the root seed and the stream name via
    SHA-256, so the mapping is stable across runs and insertion orders.
    """

    def __init__(self, seed: int = 0):
        self._seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the stream for ``name``."""
        if name not in self._streams:
            material = f"{self._seed}:{name}".encode("utf-8")
            digest = hashlib.sha256(material).digest()
            child_seed = int.from_bytes(digest[:8], "big")
            self._streams[name] = np.random.default_rng(child_seed)
        return self._streams[name]

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose streams are independent of the parent's."""
        material = f"{self._seed}/fork:{name}".encode("utf-8")
        digest = hashlib.sha256(material).digest()
        return RngRegistry(seed=int.from_bytes(digest[:8], "big"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngRegistry(seed={self._seed}, streams={sorted(self._streams)})"
