"""Hashing helpers shared across the IRS implementation.

All persistent identifiers and signatures in the system are bound to
SHA-256 digests.  To make signatures over structured records well
defined, this module also provides a small canonical encoding
(:func:`canonical_encode`) that maps nested Python structures of
primitives to deterministic bytes, independent of dict insertion order.
"""

from __future__ import annotations

import hashlib
from typing import Any

__all__ = [
    "sha256_bytes",
    "sha256_hex",
    "sha256_int",
    "canonical_encode",
    "hash_struct",
    "hmac_sha256",
]


def sha256_bytes(data: bytes) -> bytes:
    """Return the 32-byte SHA-256 digest of ``data``."""
    return hashlib.sha256(data).digest()


def sha256_hex(data: bytes) -> str:
    """Return the SHA-256 digest of ``data`` as a 64-char hex string."""
    return hashlib.sha256(data).hexdigest()


def sha256_int(data: bytes) -> int:
    """Return the SHA-256 digest of ``data`` as a big-endian integer.

    This is the form consumed by the RSA sign/verify primitive, which
    operates on integers modulo ``n``.
    """
    return int.from_bytes(sha256_bytes(data), "big")


def hmac_sha256(key: bytes, data: bytes) -> bytes:
    """Return the HMAC-SHA256 tag of ``data`` under ``key``."""
    import hmac

    return hmac.new(key, data, hashlib.sha256).digest()


def canonical_encode(value: Any) -> bytes:
    """Encode a nested structure of primitives into deterministic bytes.

    Supported types: ``None``, ``bool``, ``int``, ``float``, ``str``,
    ``bytes``, and lists/tuples/dicts of those.  Dict keys must be
    strings and are sorted, so two dicts with the same contents encode
    identically regardless of insertion order.

    The encoding is injective over the supported domain: every value is
    tagged with a one-byte type marker and length-prefixed, so distinct
    structures never collide.
    """
    out = bytearray()
    _encode_into(value, out)
    return bytes(out)


def _encode_into(value: Any, out: bytearray) -> None:
    if value is None:
        out += b"N"
    elif isinstance(value, bool):
        # bool must precede int: bool is a subclass of int.
        out += b"T" if value else b"F"
    elif isinstance(value, int):
        body = str(value).encode("ascii")
        out += b"I" + len(body).to_bytes(4, "big") + body
    elif isinstance(value, float):
        body = repr(value).encode("ascii")
        out += b"D" + len(body).to_bytes(4, "big") + body
    elif isinstance(value, str):
        body = value.encode("utf-8")
        out += b"S" + len(body).to_bytes(4, "big") + body
    elif isinstance(value, bytes):
        out += b"B" + len(value).to_bytes(4, "big") + value
    elif isinstance(value, (list, tuple)):
        out += b"L" + len(value).to_bytes(4, "big")
        for item in value:
            _encode_into(item, out)
    elif isinstance(value, dict):
        keys = sorted(value)
        for key in keys:
            if not isinstance(key, str):
                raise TypeError(f"dict keys must be str, got {type(key).__name__}")
        out += b"M" + len(keys).to_bytes(4, "big")
        for key in keys:
            _encode_into(key, out)
            _encode_into(value[key], out)
    else:
        raise TypeError(f"cannot canonically encode {type(value).__name__}")


def hash_struct(value: Any) -> bytes:
    """Return the SHA-256 digest of the canonical encoding of ``value``."""
    return sha256_bytes(canonical_encode(value))
