"""Key pairs and signatures as used throughout the IRS.

The paper's camera software "generates a unique key pair for the photo,
hashes the photo, and then encrypts the hash with the private key"
(section 3.2).  In modern terms that is a signature over the photo hash,
and this module provides exactly that object model:

* :class:`KeyPair` -- generated per photo (or per ledger / timestamp
  authority); can sign bytes or canonical structures.
* :class:`PublicKey` -- the verification half stored in ledger records.
* :class:`Signature` -- a detached signature carrying its signer's
  fingerprint, convenient for audit trails.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

import numpy as np

from repro.crypto import rsa
from repro.crypto.hashing import canonical_encode, sha256_int

__all__ = ["KeyPair", "PublicKey", "Signature", "SignatureError"]


class SignatureError(Exception):
    """Raised when a signature fails verification where one is required."""


@dataclass(frozen=True)
class Signature:
    """A detached signature over a SHA-256 digest.

    Attributes
    ----------
    value:
        The raw RSA signature integer.
    signer_fingerprint:
        Fingerprint of the public key expected to verify this signature;
        purely advisory (verification uses the actual key).
    """

    value: int
    signer_fingerprint: str

    def to_dict(self) -> dict:
        return {"value": self.value, "signer": self.signer_fingerprint}

    @staticmethod
    def from_dict(data: dict) -> "Signature":
        return Signature(value=data["value"], signer_fingerprint=data["signer"])


@dataclass(frozen=True)
class PublicKey:
    """Verification half of a key pair."""

    _key: rsa.RsaPublicKey

    @property
    def fingerprint(self) -> str:
        return self._key.fingerprint()

    @property
    def bits(self) -> int:
        return self._key.bits

    def verify(self, message: bytes, signature: Signature) -> bool:
        """Return True iff ``signature`` is valid for ``message``."""
        return self._key.verify_int(sha256_int(message), signature.value)

    def verify_batch(
        self, items: Sequence[Tuple[bytes, Signature]]
    ) -> List[bool]:
        """Per-item verdicts for many ``(message, signature)`` pairs.

        Entry ``i`` equals ``self.verify(*items[i])``; uses the RSA
        product screen (:meth:`rsa.RsaPublicKey.verify_batch_int`) so a
        ledger validating a batch of claim records pays ~two modular
        multiplications per signature instead of a full exponentiation.
        """
        return self._key.verify_batch_int(
            [(sha256_int(message), sig.value) for message, sig in items]
        )

    def verify_struct(self, struct: Any, signature: Signature) -> bool:
        """Verify a signature over the canonical encoding of ``struct``."""
        return self.verify(canonical_encode(struct), signature)

    def require_valid(self, message: bytes, signature: Signature) -> None:
        """Raise :class:`SignatureError` unless the signature verifies."""
        if not self.verify(message, signature):
            raise SignatureError(
                f"signature by {signature.signer_fingerprint} failed to verify "
                f"against key {self.fingerprint}"
            )

    def to_dict(self) -> dict:
        return {"n": self._key.n, "e": self._key.e}

    @staticmethod
    def from_dict(data: dict) -> "PublicKey":
        return PublicKey(rsa.RsaPublicKey(n=data["n"], e=data["e"]))


class KeyPair:
    """A signing key pair (per photo, per ledger, or per authority).

    Create with :meth:`generate`; the private half never leaves this
    object.  The paper's ownership proof -- demonstrating possession of
    the private key matching a ledger record's public key -- is realized
    by :meth:`sign` / :meth:`sign_struct` over a ledger-chosen challenge.
    """

    def __init__(self, private_key: rsa.RsaPrivateKey):
        self._private = private_key
        self._public = PublicKey(private_key.public)

    @classmethod
    def generate(
        cls, bits: int = 512, rng: Optional[np.random.Generator] = None
    ) -> "KeyPair":
        """Generate a fresh key pair (seeded when ``rng`` is given)."""
        return cls(rsa.generate_keypair(bits=bits, rng=rng))

    @property
    def public(self) -> PublicKey:
        return self._public

    @property
    def fingerprint(self) -> str:
        return self._public.fingerprint

    def sign(self, message: bytes) -> Signature:
        """Sign raw bytes (hashed internally with SHA-256)."""
        value = self._private.sign_int(sha256_int(message))
        return Signature(value=value, signer_fingerprint=self.fingerprint)

    def sign_struct(self, struct: Any) -> Signature:
        """Sign the canonical encoding of a nested structure."""
        return self.sign(canonical_encode(struct))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"KeyPair(fingerprint={self.fingerprint}, bits={self._public.bits})"
