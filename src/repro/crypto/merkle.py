"""Merkle transparency log for tamper-evident ledgers.

Section 5 of the paper worries about ledgers "answering queries
incorrectly" and suggests cryptographic proofs plus reputational
auditing.  A standard remedy (as in Certificate Transparency) is an
append-only Merkle log: the ledger publishes a signed root after every
batch of claims/revocations, and auditors verify

* *inclusion proofs* -- a given record is in the log, and
* *consistency proofs* -- a newer root extends an older one without
  rewriting history.

This module implements an RFC 6962-style Merkle tree over arbitrary
byte leaves, including both proof types, used by
:mod:`repro.ledger.probes` for honesty auditing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.crypto.hashing import sha256_bytes

__all__ = ["MerkleLog", "MerkleProof", "MerkleConsistencyError"]

# Domain-separation prefixes, per RFC 6962.
_LEAF_PREFIX = b"\x00"
_NODE_PREFIX = b"\x01"


class MerkleConsistencyError(Exception):
    """Raised when a consistency check between two roots fails."""


def _leaf_hash(data: bytes) -> bytes:
    return sha256_bytes(_LEAF_PREFIX + data)


def _node_hash(left: bytes, right: bytes) -> bytes:
    return sha256_bytes(_NODE_PREFIX + left + right)


def _root_of(hashes: Sequence[bytes]) -> bytes:
    """Root of an RFC 6962 tree over pre-hashed leaves."""
    n = len(hashes)
    if n == 0:
        return sha256_bytes(b"")
    if n == 1:
        return hashes[0]
    k = _largest_power_of_two_below(n)
    return _node_hash(_root_of(hashes[:k]), _root_of(hashes[k:]))


def _largest_power_of_two_below(n: int) -> int:
    """Largest power of two strictly less than ``n`` (n >= 2)."""
    k = 1
    while k * 2 < n:
        k *= 2
    return k


@dataclass(frozen=True)
class MerkleProof:
    """An inclusion proof: ``leaf_index`` is in a tree of ``tree_size``."""

    leaf_index: int
    tree_size: int
    path: tuple  # tuple of (sibling_hash, is_right_sibling)

    def verify(self, leaf_data: bytes, root: bytes) -> bool:
        """Return True iff ``leaf_data`` at our index hashes up to ``root``."""
        if not 0 <= self.leaf_index < self.tree_size:
            return False
        node = _leaf_hash(leaf_data)
        for sibling, sibling_is_right in self.path:
            if sibling_is_right:
                node = _node_hash(node, sibling)
            else:
                node = _node_hash(sibling, node)
        return node == root


@dataclass
class MerkleLog:
    """Append-only Merkle log over byte-string entries.

    The log keeps all leaves in memory (ledger records are small) and
    recomputes subtree hashes on demand with memoisation keyed by
    (start, end) ranges.
    """

    _leaves: List[bytes] = field(default_factory=list)
    _leaf_hashes: List[bytes] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self._leaves)

    @property
    def size(self) -> int:
        return len(self._leaves)

    def append(self, data: bytes) -> int:
        """Append an entry; returns its leaf index."""
        self._leaves.append(data)
        self._leaf_hashes.append(_leaf_hash(data))
        return len(self._leaves) - 1

    def entry(self, index: int) -> bytes:
        return self._leaves[index]

    def root(self, tree_size: int | None = None) -> bytes:
        """Root over the first ``tree_size`` leaves (default: all)."""
        if tree_size is None:
            tree_size = len(self._leaves)
        if not 0 <= tree_size <= len(self._leaves):
            raise ValueError("tree_size out of range")
        return _root_of(self._leaf_hashes[:tree_size])

    def inclusion_proof(self, index: int, tree_size: int | None = None) -> MerkleProof:
        """Proof that leaf ``index`` is included in the first ``tree_size``."""
        if tree_size is None:
            tree_size = len(self._leaves)
        if not 0 <= index < tree_size <= len(self._leaves):
            raise ValueError("index/tree_size out of range")
        path: list = []
        self._build_path(self._leaf_hashes[:tree_size], index, path)
        return MerkleProof(leaf_index=index, tree_size=tree_size, path=tuple(path))

    def _build_path(self, hashes: Sequence[bytes], index: int, path: list) -> bytes:
        """Recursively compute root while collecting the sibling path."""
        n = len(hashes)
        if n == 1:
            return hashes[0]
        k = _largest_power_of_two_below(n)
        if index < k:
            left = self._build_path(hashes[:k], index, path)
            right = _root_of(hashes[k:])
            path.append((right, True))
        else:
            left = _root_of(hashes[:k])
            right = self._build_path(hashes[k:], index - k, path)
            path.append((left, False))
        return _node_hash(left, right)

    def check_consistency(self, old_size: int, old_root: bytes) -> None:
        """Verify the current log extends the log that had ``old_root``.

        Raises :class:`MerkleConsistencyError` when the recorded prefix
        no longer hashes to ``old_root`` (i.e. history was rewritten).

        This recomputes the prefix root directly from retained leaves;
        a production system would use RFC 6962 consistency proofs so
        auditors need not hold all leaves, but the trust property
        exercised by the tests is the same.
        """
        if not 0 <= old_size <= len(self._leaves):
            raise MerkleConsistencyError(
                f"old size {old_size} exceeds current size {len(self._leaves)}"
            )
        if self.root(old_size) != old_root:
            raise MerkleConsistencyError(
                f"log prefix of size {old_size} does not match the previously "
                "observed root: history was rewritten"
            )
