"""Pure-Python RSA: key generation, raw sign/verify.

The offline environment provides no compiled cryptography package, so
the reproduction implements textbook RSA with deterministic padding
(PKCS#1 v1.5-style, type 01) over SHA-256 digests.  This is sufficient
for the protocol logic the paper needs -- per-photo key pairs whose
private halves prove ownership -- while keeping everything auditable.

Security notes (deliberate, documented trade-offs of a simulation):

* Default modulus size is 512 bits so test suites stay fast.  Pass
  ``bits=2048`` for realistic keys; nothing else changes.
* Primality testing is Miller-Rabin with 40 rounds (error probability
  below 2**-80 for random candidates), preceded by trial division by
  small primes.
* Randomness comes from a caller-supplied ``numpy.random.Generator`` so
  experiments are reproducible, or from ``secrets`` when none is given.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

__all__ = ["RsaPrivateKey", "RsaPublicKey", "generate_keypair"]

# Small primes for fast trial division before Miller-Rabin.
_SMALL_PRIMES: tuple[int, ...] = tuple(
    p
    for p in range(3, 1000, 2)
    if all(p % q for q in range(3, int(p**0.5) + 1, 2))
)

_MILLER_RABIN_ROUNDS = 40
_DEFAULT_PUBLIC_EXPONENT = 65537


def _rand_bits(nbits: int, rng: Optional[np.random.Generator]) -> int:
    """Return a random integer with exactly ``nbits`` bits (MSB set)."""
    if nbits < 2:
        raise ValueError("need at least 2 bits")
    if rng is None:
        value = secrets.randbits(nbits)
    else:
        # Draw bytes from the seeded generator for reproducibility.
        nbytes = (nbits + 7) // 8
        raw = rng.integers(0, 256, size=nbytes, dtype=np.uint8).tobytes()
        value = int.from_bytes(raw, "big") >> (nbytes * 8 - nbits)
    return value | (1 << (nbits - 1)) | 1  # force top bit and oddness


def _rand_below(bound: int, rng: Optional[np.random.Generator]) -> int:
    """Return a uniform random integer in [2, bound)."""
    if rng is None:
        return 2 + secrets.randbelow(bound - 2)
    nbits = bound.bit_length()
    while True:
        nbytes = (nbits + 7) // 8
        raw = rng.integers(0, 256, size=nbytes, dtype=np.uint8).tobytes()
        candidate = int.from_bytes(raw, "big") >> (nbytes * 8 - nbits)
        if 2 <= candidate < bound:
            return candidate


def is_probable_prime(n: int, rng: Optional[np.random.Generator] = None) -> bool:
    """Miller-Rabin primality test with trial division pre-filter."""
    if n < 2:
        return False
    if n in (2, 3):
        return True
    if n % 2 == 0:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    # Write n - 1 = d * 2**r with d odd.
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(_MILLER_RABIN_ROUNDS):
        a = _rand_below(n - 1, rng)
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


def _generate_prime(nbits: int, rng: Optional[np.random.Generator]) -> int:
    """Generate a random prime with exactly ``nbits`` bits."""
    while True:
        candidate = _rand_bits(nbits, rng)
        if is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA public key ``(n, e)``.

    ``verify`` checks a raw signature integer against a digest integer.
    Higher-level byte handling lives in :mod:`repro.crypto.signatures`.
    """

    n: int
    e: int

    @property
    def bits(self) -> int:
        return self.n.bit_length()

    def verify_int(self, digest: int, signature: int) -> bool:
        """Return True iff ``signature`` opens to the padded ``digest``."""
        if not 0 < signature < self.n:
            return False
        recovered = pow(signature, self.e, self.n)
        return recovered == _pad_digest(digest, self.n)

    def verify_batch_int(
        self, pairs: Sequence[Tuple[int, int]]
    ) -> List[bool]:
        """Per-pair verdicts for many ``(digest, signature)`` pairs.

        Entry ``i`` equals ``self.verify_int(*pairs[i])`` (the scalar
        method is the reference oracle).  The fast path is a *product
        screen*: since ``(prod s_i)^e == prod (s_i^e) (mod n)``, one
        modular exponentiation checks the whole batch against the
        product of the padded digests — two modular multiplications per
        signature amortized instead of a full ``pow`` each.  On screen
        failure the batch splits in half recursively, so ``k`` bad
        signatures cost ``O(k log(len/k))`` extra screens.

        Caveat (why this stays a *screen*, not a proof): adversarially
        crafted bad pairs can cancel inside the product.  The batch is
        bitwise-equal to the scalar path for honestly-random corruption,
        which is the failure model the replay suites exercise; code
        gating trust on a single signature should call ``verify_int``.
        """
        pairs = list(pairs)
        results = [False] * len(pairs)
        in_range = [
            (index, digest, signature)
            for index, (digest, signature) in enumerate(pairs)
            if 0 < signature < self.n
        ]
        self._verify_split(in_range, results)
        return results

    def _screen(self, items: Sequence[Tuple[int, int, int]]) -> bool:
        """One-modexp product check over ``(index, digest, signature)``."""
        sig_prod = 1
        pad_prod = 1
        for _, digest, signature in items:
            sig_prod = sig_prod * signature % self.n
            pad_prod = pad_prod * _pad_digest(digest, self.n) % self.n
        return pow(sig_prod, self.e, self.n) == pad_prod

    def _verify_split(
        self, items: List[Tuple[int, int, int]], results: List[bool]
    ) -> None:
        """Binary-split recursion isolating failures under the screen."""
        if not items:
            return
        if self._screen(items):
            for index, _, _ in items:
                results[index] = True
            return
        if len(items) == 1:
            # A single-element screen *is* verify_int: s^e == pad(d).
            return
        mid = len(items) // 2
        self._verify_split(items[:mid], results)
        self._verify_split(items[mid:], results)

    def fingerprint(self) -> str:
        """Short stable identifier for this key (hex SHA-256 prefix)."""
        import hashlib

        material = self.n.to_bytes((self.bits + 7) // 8, "big")
        material += self.e.to_bytes(8, "big")
        return hashlib.sha256(material).hexdigest()[:16]


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA private key with CRT components for faster signing."""

    n: int
    e: int
    d: int
    p: int
    q: int

    @property
    def public(self) -> RsaPublicKey:
        return RsaPublicKey(n=self.n, e=self.e)

    def sign_int(self, digest: int) -> int:
        """Sign a digest integer, returning the raw signature integer."""
        m = _pad_digest(digest, self.n)
        # CRT: compute m^d mod p and mod q, then recombine.
        dp = self.d % (self.p - 1)
        dq = self.d % (self.q - 1)
        qinv = pow(self.q, -1, self.p)
        sp = pow(m % self.p, dp, self.p)
        sq = pow(m % self.q, dq, self.q)
        h = (qinv * (sp - sq)) % self.p
        return (sq + h * self.q) % self.n


def _pad_digest(digest: int, n: int) -> int:
    """Deterministic PKCS#1 v1.5-style padding of a digest into Z_n.

    Layout (big-endian): ``0x00 0x01 FF..FF 0x00 || digest`` sized to one
    byte less than the modulus, so the padded value is always < n.
    """
    nbytes = (n.bit_length() + 7) // 8 - 1
    digest_bytes = digest.to_bytes(32, "big")
    pad_len = nbytes - 3 - len(digest_bytes)
    if pad_len < 1:
        raise ValueError("modulus too small for SHA-256 padding")
    padded = b"\x00\x01" + b"\xff" * pad_len + b"\x00" + digest_bytes
    return int.from_bytes(padded, "big")


def generate_keypair(
    bits: int = 512, rng: Optional[np.random.Generator] = None
) -> RsaPrivateKey:
    """Generate an RSA key pair with an ``bits``-bit modulus.

    Parameters
    ----------
    bits:
        Modulus size.  Must be at least 384 so SHA-256 padding fits.
    rng:
        Optional seeded generator for reproducible keys.  When omitted,
        the system CSPRNG is used.
    """
    if bits < 384:
        raise ValueError("modulus must be at least 384 bits to carry SHA-256")
    e = _DEFAULT_PUBLIC_EXPONENT
    half = bits // 2
    while True:
        p = _generate_prime(half, rng)
        q = _generate_prime(bits - half, rng)
        if p == q:
            continue
        n = p * q
        if n.bit_length() != bits:
            continue
        phi = (p - 1) * (q - 1)
        try:
            d = pow(e, -1, phi)
        except ValueError:
            continue  # e not invertible mod phi; rare, retry
        return RsaPrivateKey(n=n, e=e, d=d, p=p, q=q)
