"""Privacy-preserving payment tokens for ledger claims.

Section 3.2: "a privacy-focused ledger could use a payment system that
intentionally makes such an association difficult even if their
database is leaked (e.g., a payment system where an owner buys tokens
which are exchanged with other users in a mixing market before being
used to pay for claims)."

This module implements that sketch:

* :class:`TokenIssuer` sells bearer tokens.  Each token is an opaque
  serial signed by the issuer; the issuer records *which account bought
  which serial* (that is exactly the leak the mixing market exists to
  break).
* :class:`MixingMarket` lets holders swap tokens in rounds.  After
  enough rounds, the purchase record no longer predicts who *spends*
  a serial.
* Spending is double-spend-protected: the issuer remembers redeemed
  serials.

The privacy bench measures linkage probability (can the issuer's leaked
database connect a spent token back to its buyer?) as a function of
mixing rounds and market size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.crypto.signatures import KeyPair, Signature

__all__ = ["PaymentToken", "TokenIssuer", "MixingMarket", "TokenError"]


class TokenError(Exception):
    """Raised on invalid or double-spent tokens."""


@dataclass(frozen=True)
class PaymentToken:
    """A bearer token: issuer-signed serial, redeemable once."""

    serial: int
    issuer_fingerprint: str
    signature: Signature

    def payload(self) -> dict:
        return {"serial": self.serial, "issuer": self.issuer_fingerprint}


class TokenIssuer:
    """Sells and redeems payment tokens, keeping a purchase ledger.

    The purchase ledger (`purchases`) models the worst case the paper
    worries about: the issuer's database leaks, exposing who bought
    which serial.  The anonymity question is whether that record links
    buyers to *spends*.
    """

    def __init__(self, keypair: Optional[KeyPair] = None):
        self._keypair = keypair or KeyPair.generate()
        self._next_serial = 1
        self.purchases: Dict[int, str] = {}  # serial -> buyer account id
        self._redeemed: set[int] = set()

    @property
    def fingerprint(self) -> str:
        return self._keypair.fingerprint

    def sell(self, buyer_account: str) -> PaymentToken:
        """Sell one token to ``buyer_account``; the sale is recorded."""
        serial = self._next_serial
        self._next_serial += 1
        self.purchases[serial] = buyer_account
        payload = {"serial": serial, "issuer": self.fingerprint}
        return PaymentToken(
            serial=serial,
            issuer_fingerprint=self.fingerprint,
            signature=self._keypair.sign_struct(payload),
        )

    def redeem(self, token: PaymentToken) -> None:
        """Redeem a token; raises :class:`TokenError` if invalid or reused."""
        if token.issuer_fingerprint != self.fingerprint:
            raise TokenError("token from a different issuer")
        if not self._keypair.public.verify_struct(token.payload(), token.signature):
            raise TokenError("token signature invalid")
        if token.serial in self._redeemed:
            raise TokenError(f"token serial {token.serial} already spent")
        self._redeemed.add(token.serial)

    def is_redeemed(self, serial: int) -> bool:
        return serial in self._redeemed


class MixingMarket:
    """Swap tokens among holders to break buyer/spender linkage.

    Each :meth:`mix_round` applies a uniform random permutation cycle
    over all deposited tokens (a derangement-free shuffle is fine: the
    adversary's linkage probability is what the bench measures, and a
    fixed point simply means one participant kept their token that
    round).
    """

    def __init__(self, rng: Optional[np.random.Generator] = None):
        self._rng = rng or np.random.default_rng(0)
        self._holdings: Dict[str, List[PaymentToken]] = {}

    def deposit(self, account: str, token: PaymentToken) -> None:
        self._holdings.setdefault(account, []).append(token)

    def withdraw_all(self, account: str) -> List[PaymentToken]:
        return self._holdings.pop(account, [])

    @property
    def participants(self) -> List[str]:
        return sorted(self._holdings)

    def mix_round(self) -> None:
        """One round: every deposited token moves to a random holder."""
        accounts = sorted(self._holdings)
        pool: List[PaymentToken] = []
        counts: List[int] = []
        for account in accounts:
            tokens = self._holdings[account]
            pool.extend(tokens)
            counts.append(len(tokens))
            self._holdings[account] = []
        order = self._rng.permutation(len(pool))
        shuffled = [pool[i] for i in order]
        cursor = 0
        for account, count in zip(accounts, counts):
            self._holdings[account] = shuffled[cursor : cursor + count]
            cursor += count

    def mix(self, rounds: int) -> None:
        """Run several mixing rounds."""
        for _ in range(rounds):
            self.mix_round()

    def linkage_probability(self, issuer: TokenIssuer) -> float:
        """Fraction of tokens still held by their original buyer.

        This is the adversary's success rate when it guesses that the
        current holder of a serial is whoever the (leaked) purchase
        ledger says bought it.
        """
        total = 0
        linked = 0
        for account, tokens in self._holdings.items():
            for token in tokens:
                total += 1
                if issuer.purchases.get(token.serial) == account:
                    linked += 1
        return linked / total if total else 0.0
