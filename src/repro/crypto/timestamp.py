"""RFC 3161-style authenticated timestamps.

Ledger claim records carry "an authenticated timestamp (as in [1])"
(paper section 3.2, citing RFC 3161).  The timestamp is what makes the
appeals process decidable: when two parties claim the same photo, the
earlier authenticated timestamp identifies the original owner.

:class:`TimestampAuthority` signs (digest, time, serial) triples.  It is
deliberately independent of any ledger: a ledger *requests* timestamps
from a TSA whose key its verifiers trust, so a malicious ledger cannot
backdate claims (section 5, "Malicious Ledgers?").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.crypto.signatures import KeyPair, PublicKey, Signature

__all__ = ["TimestampAuthority", "TimestampToken", "TimestampError"]


class TimestampError(Exception):
    """Raised on invalid timestamp tokens."""


@dataclass(frozen=True)
class TimestampToken:
    """A signed statement that ``digest`` existed at ``time``.

    ``serial`` is a strictly increasing per-authority counter, so tokens
    from one TSA are totally ordered even at equal times.
    """

    digest: bytes
    time: float
    serial: int
    authority_fingerprint: str
    signature: Signature

    def payload(self) -> dict:
        return {
            "digest": self.digest,
            "time": self.time,
            "serial": self.serial,
            "authority": self.authority_fingerprint,
        }

    def verify(self, authority_key: PublicKey) -> bool:
        """Return True iff this token was signed by ``authority_key``."""
        return authority_key.verify_struct(self.payload(), self.signature)

    def to_dict(self) -> dict:
        """JSON-able form (digest hex-encoded) for event-log payloads."""
        return {
            "digest": self.digest.hex(),
            "time": self.time,
            "serial": self.serial,
            "authority": self.authority_fingerprint,
            "signature": self.signature.to_dict(),
        }

    @staticmethod
    def from_dict(data: dict) -> "TimestampToken":
        return TimestampToken(
            digest=bytes.fromhex(data["digest"]),
            time=data["time"],
            serial=data["serial"],
            authority_fingerprint=data["authority"],
            signature=Signature.from_dict(data["signature"]),
        )

    def precedes(self, other: "TimestampToken") -> bool:
        """Total order on tokens: earlier time wins, serial breaks ties.

        Only meaningful for tokens from the same authority; cross-TSA
        comparisons fall back to time alone.
        """
        if self.authority_fingerprint == other.authority_fingerprint:
            return (self.time, self.serial) < (other.time, other.serial)
        return self.time < other.time


class TimestampAuthority:
    """Issues authenticated timestamps over digests.

    Parameters
    ----------
    keypair:
        Signing key.  Generated automatically when omitted.
    clock:
        Zero-argument callable returning the current time.  Defaults to
        a monotonic logical clock starting at 0.0 so in-process tests
        are deterministic; the network simulator passes its own clock.
    """

    def __init__(
        self,
        keypair: Optional[KeyPair] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self._keypair = keypair or KeyPair.generate()
        self._serial = 0
        self._logical_time = 0.0
        self._clock = clock

    @property
    def public_key(self) -> PublicKey:
        return self._keypair.public

    @property
    def fingerprint(self) -> str:
        return self._keypair.fingerprint

    def _now(self) -> float:
        if self._clock is not None:
            return self._clock()
        # Logical clock: strictly increasing, deterministic.
        self._logical_time += 1.0
        return self._logical_time

    def issue(self, digest: bytes) -> TimestampToken:
        """Issue a signed timestamp token over ``digest``."""
        if not isinstance(digest, bytes) or len(digest) == 0:
            raise TimestampError("digest must be non-empty bytes")
        self._serial += 1
        token_time = self._now()
        payload = {
            "digest": digest,
            "time": token_time,
            "serial": self._serial,
            "authority": self.fingerprint,
        }
        signature = self._keypair.sign_struct(payload)
        return TimestampToken(
            digest=digest,
            time=token_time,
            serial=self._serial,
            authority_fingerprint=self.fingerprint,
            signature=signature,
        )

    def verify(self, token: TimestampToken) -> bool:
        """Verify one of this authority's own tokens."""
        if token.authority_fingerprint != self.fingerprint:
            return False
        return token.verify(self.public_key)
