"""Ledger hosting economics (section 4.4).

"If every labeled photo must be looked up before being displayed, the
load on ledgers could easily become enormous.  This could make it
prohibitively expensive to host a suitably scalable ledger in this
bootstrap phase."

This module turns that worry into arithmetic: a serving-cost model
mapping bootstrap-phase scale (users, views/day, labeled fraction) to
ledger query rates and monthly infrastructure cost, with and without
the filter/cache offload.  The constants are deliberately conservative
cloud-ish figures and are parameters, not truths; what the model
reproduces is the *shape* — naive lookup costs scale into numbers no
volunteer first-mover could pay, and the section 4.4 machinery brings
them back to hobby scale.

Used by experiment E15.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ServingCostModel", "BootstrapScale", "CostBreakdown"]


@dataclass
class BootstrapScale:
    """How big the bootstrap deployment has grown.

    Attributes
    ----------
    irs_users:
        Browsers with IRS enabled.
    photo_views_per_user_day:
        Images rendered per user per day (feeds are image-heavy).
    labeled_fraction:
        Fraction of viewed images carrying IRS labels (grows with
        adoption).
    claimed_photos:
        Photos registered across all ledgers (sets filter size).
    revoked_fraction:
        Fraction of *claimed* photos currently revoked (sets filter
        contents under the revoked-set reading).
    """

    irs_users: float
    photo_views_per_user_day: float = 200.0
    labeled_fraction: float = 0.1
    claimed_photos: float = 1e9
    revoked_fraction: float = 0.6

    def labeled_views_per_second(self) -> float:
        per_day = (
            self.irs_users * self.photo_views_per_user_day * self.labeled_fraction
        )
        return per_day / 86_400.0


@dataclass
class CostBreakdown:
    """Monthly cost decomposition (USD-ish units; shapes, not truths)."""

    query_rate_per_s: float
    servers: int
    server_cost: float
    egress_cost: float
    filter_hosting_cost: float

    @property
    def total(self) -> float:
        return self.server_cost + self.egress_cost + self.filter_hosting_cost


@dataclass
class ServingCostModel:
    """Maps query load to infrastructure cost.

    Attributes
    ----------
    queries_per_server_s:
        Signed-status queries one server sustains.  Every answer
        carries a fresh signature (~1 ms for 2048-bit RSA per core), so
        a 16-core box realistically serves low thousands of signed
        answers per second once request handling is included.
    server_month_cost:
        Monthly cost of one server.
    egress_cost_per_gb / response_bytes:
        Bandwidth pricing and signed-answer size.
    filter_bits_per_key:
        Published-filter geometry (8 bits/key = the paper's 2%).
    filter_egress_downloads_month:
        Full-filter downloads served per month (new proxies joining);
        delta traffic is negligible next to this (experiment E6).
    """

    queries_per_server_s: float = 1_500.0
    server_month_cost: float = 200.0
    egress_cost_per_gb: float = 0.05
    response_bytes: int = 512
    filter_bits_per_key: float = 8.0
    filter_egress_downloads_month: float = 200.0

    # -- pieces ------------------------------------------------------------

    def filter_size_bytes(self, scale: BootstrapScale) -> float:
        revoked = scale.claimed_photos * scale.revoked_fraction
        return revoked * self.filter_bits_per_key / 8.0

    #: Provisioning headroom over the mean rate.  The default matches
    #: the diurnal peak-to-mean of consumer photo traffic (see
    #: :class:`repro.workload.diurnal.DiurnalProfile`, ~1.6x) plus
    #: burst margin.
    peak_provision_factor: float = 3.0

    def monthly_cost(
        self,
        scale: BootstrapScale,
        load_reduction: float = 1.0,
        publish_filters: bool = False,
    ) -> CostBreakdown:
        """Cost of serving the bootstrap at ``scale``.

        ``load_reduction`` is the factor achieved by proxy filters and
        caches (1.0 = the naive every-view-queries design).
        """
        if load_reduction < 1.0:
            raise ValueError("load reduction cannot be below 1")
        query_rate = scale.labeled_views_per_second() / load_reduction
        servers = max(
            1,
            int(
                -(
                    -query_rate
                    * self.peak_provision_factor
                    // self.queries_per_server_s
                )
            ),
        )
        server_cost = servers * self.server_month_cost
        monthly_queries = query_rate * 86_400 * 30
        egress_gb = monthly_queries * self.response_bytes / 1e9
        egress_cost = egress_gb * self.egress_cost_per_gb
        filter_cost = 0.0
        if publish_filters:
            filter_gb = self.filter_size_bytes(scale) / 1e9
            filter_cost = (
                filter_gb
                * self.filter_egress_downloads_month
                * self.egress_cost_per_gb
            )
        return CostBreakdown(
            query_rate_per_s=query_rate,
            servers=servers,
            server_cost=server_cost,
            egress_cost=egress_cost,
            filter_hosting_cost=filter_cost,
        )

    def offload_ratio(
        self, scale: BootstrapScale, load_reduction: float
    ) -> float:
        """Total-cost ratio naive / filtered — what the filter buys."""
        naive = self.monthly_cost(scale, load_reduction=1.0).total
        filtered = self.monthly_cost(
            scale, load_reduction=load_reduction, publish_filters=True
        ).total
        return naive / filtered if filtered > 0 else float("inf")
