"""Bloom filter export with versioned snapshots and hourly deltas.

Section 4.4: "Each ledger would produce a Bloom filter of their claimed
photos (it is in a ledger's best interest to provide such Bloom filters
as they reduce their load) ... updated regularly (perhaps hourly), and
transferred with a delta encoding such that the update traffic will be
low."

One reading subtlety: the paper says "claimed photos" but its stated
query-skipping logic ("if the photo does not hit in the filter, it is
definitely not revoked and no actual ledger query need be performed")
only works when the filter contains the *revoked* subset -- every
labeled photo is by definition claimed, so a claimed-set filter would
hit on every labeled view.  The exporter therefore defaults to the
revoked set and offers the claimed set as an option for completeness;
EXPERIMENTS.md documents the interpretation.

A revoked-set filter is not monotone (owners unrevoke photos), so the
exporter rebuilds from scratch each period and the delta layer handles
both set and cleared bits (XOR semantics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Literal, Optional

from repro.filters.bloom import BloomFilter
from repro.filters.delta import FilterDelta, encode_delta
from repro.ledger.ledger import Ledger

__all__ = ["FilterExporter", "FilterSnapshot", "coordinated_exporters"]

FilterContents = Literal["revoked", "claimed"]


@dataclass
class FilterSnapshot:
    """One published filter version."""

    version: int
    filter: BloomFilter
    published_at: float
    num_keys: int


class FilterExporter:
    """Builds and versions a ledger's published filter.

    All exporters participating in one proxy's OR-merge must share
    ``nbits``, ``num_hashes`` and ``salt`` (Bloom filters only OR when
    geometry matches); deployments coordinate these via the registry.
    """

    def __init__(
        self,
        ledger: Ledger,
        nbits: int,
        num_hashes: int,
        salt: bytes = b"irs",
        contents: FilterContents = "revoked",
    ):
        self.ledger = ledger
        self.nbits = int(nbits)
        self.num_hashes = int(num_hashes)
        self.salt = salt
        self.contents: FilterContents = contents
        self._snapshots: List[FilterSnapshot] = []

    @property
    def current(self) -> Optional[FilterSnapshot]:
        return self._snapshots[-1] if self._snapshots else None

    @property
    def versions(self) -> List[int]:
        return [snap.version for snap in self._snapshots]

    def _build(self) -> tuple[BloomFilter, int]:
        built = BloomFilter(self.nbits, self.num_hashes, self.salt)
        count = 0
        records = (
            self.ledger.store.revoked_records()
            if self.contents == "revoked"
            else self.ledger.store.records()
        )
        for record in records:
            built.add(record.identifier.to_compact())
            count += 1
        return built, count

    def publish(self, now: Optional[float] = None) -> FilterSnapshot:
        """Rebuild from current ledger state and publish a new version."""
        built, count = self._build()
        version = (self._snapshots[-1].version + 1) if self._snapshots else 1
        snapshot = FilterSnapshot(
            version=version,
            filter=built,
            published_at=now if now is not None else self.ledger.now(),
            num_keys=count,
        )
        self._snapshots.append(snapshot)
        return snapshot

    def delta_between(self, from_version: int, to_version: int) -> FilterDelta:
        """Delta a subscriber at ``from_version`` applies to reach
        ``to_version``."""
        old = self._snapshot(from_version)
        new = self._snapshot(to_version)
        return encode_delta(old.filter, new.filter, from_version, to_version)

    def latest_delta_for(self, subscriber_version: int) -> Optional[FilterDelta]:
        """Delta from the subscriber's version to the newest, or None if
        the subscriber is current."""
        current = self.current
        if current is None:
            raise ValueError("no filter has been published yet")
        if subscriber_version == current.version:
            return None
        return self.delta_between(subscriber_version, current.version)

    def _snapshot(self, version: int) -> FilterSnapshot:
        for snap in self._snapshots:
            if snap.version == version:
                return snap
        raise KeyError(f"no snapshot with version {version}")

    def prune(self, keep_latest: int = 24) -> None:
        """Drop old snapshots (a day of hourly versions by default)."""
        if keep_latest < 1:
            raise ValueError("must keep at least one snapshot")
        self._snapshots = self._snapshots[-keep_latest:]


def coordinated_exporters(
    registry,
    expected_keys: int,
    target_fpr: float = 0.02,
    salt: bytes = b"irs",
    contents: FilterContents = "revoked",
    publish: bool = True,
) -> List[FilterExporter]:
    """One exporter per registered ledger, with shared filter geometry.

    Proxies OR all ledgers' filters together (section 4.4), which
    requires identical (nbits, k, salt) across ledgers; in a real
    deployment the registry would publish these constants.  This
    helper sizes the shared geometry for ``expected_keys`` total
    filter-resident photos at ``target_fpr`` and returns one exporter
    per ledger (optionally having published a first snapshot).
    """
    from repro.filters.sizing import bloom_bits_for_fpr, bloom_optimal_hashes

    if expected_keys < 1:
        raise ValueError("expected_keys must be positive")
    nbits = bloom_bits_for_fpr(expected_keys, target_fpr)
    num_hashes = bloom_optimal_hashes(nbits, expected_keys)
    exporters = []
    for ledger in registry:
        exporter = FilterExporter(
            ledger, nbits=nbits, num_hashes=num_hashes, salt=salt, contents=contents
        )
        if publish:
            exporter.publish()
        exporters.append(exporter)
    return exporters
