"""Owner-side honesty probes.

Section 5, "Malicious Ledgers?": "the automated software that claims
photos on behalf of owners could periodically send probes to ledgers to
ensure that they are being answered correctly."

:class:`HonestyProber` maintains canary claims whose true state it
controls, flips them at random, and checks that the ledger's signed
status answers match.  It also audits the ledger's Merkle transparency
log for history rewrites.  Signed wrong answers are retained as
portable evidence (the reputational mechanism the paper leans on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.core.identifiers import PhotoIdentifier
from repro.crypto.hashing import sha256_hex
from repro.crypto.merkle import MerkleConsistencyError
from repro.crypto.signatures import KeyPair
from repro.ledger.ledger import Ledger
from repro.ledger.proofs import StatusProof

__all__ = ["HonestyProber", "ProbeReport", "ProbeViolation"]


@dataclass(frozen=True)
class ProbeViolation:
    """One detected misbehaviour, with evidence where available."""

    kind: str  # 'wrong_status' | 'bad_signature' | 'history_rewrite' | 'refused'
    identifier: Optional[str]
    detail: str
    evidence: Optional[StatusProof] = None


@dataclass
class ProbeReport:
    """Outcome of a probe round."""

    probes_sent: int = 0
    violations: List[ProbeViolation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.violations


@dataclass
class _Canary:
    identifier: PhotoIdentifier
    keypair: KeyPair
    expected_revoked: bool


class HonestyProber:
    """Maintains canaries on a ledger and audits its answers."""

    def __init__(self, ledger: Ledger, rng: Optional[np.random.Generator] = None):
        self.ledger = ledger
        self._rng = rng or np.random.default_rng(0)
        self._canaries: List[_Canary] = []
        self._last_merkle_size = 0
        self._last_merkle_root: Optional[bytes] = None

    @property
    def num_canaries(self) -> int:
        return len(self._canaries)

    def plant_canaries(self, count: int) -> None:
        """Claim ``count`` synthetic canary photos on the ledger."""
        for i in range(count):
            keypair = KeyPair.generate(bits=512, rng=self._rng)
            content_hash = sha256_hex(
                f"canary:{self.ledger.ledger_id}:{len(self._canaries)}:{i}".encode()
            )
            signature = keypair.sign(content_hash.encode("utf-8"))
            record = self.ledger.claim(content_hash, signature, keypair.public)
            self._canaries.append(
                _Canary(
                    identifier=record.identifier,
                    keypair=keypair,
                    expected_revoked=False,
                )
            )

    def _toggle(self, canary: _Canary) -> None:
        """Flip a canary's revocation state through the normal protocol."""
        nonce = self.ledger.make_challenge(canary.identifier)
        action = "unrevoke" if canary.expected_revoked else "revoke"
        payload = Ledger.ownership_payload(action, canary.identifier, nonce)
        signature = canary.keypair.sign_struct(payload)
        if canary.expected_revoked:
            self.ledger.unrevoke(canary.identifier, nonce, signature)
        else:
            self.ledger.revoke(canary.identifier, nonce, signature)
        canary.expected_revoked = not canary.expected_revoked

    def run_round(self, toggle_probability: float = 0.5) -> ProbeReport:
        """One probe round: randomly toggle canaries, then audit all.

        Returns a report listing every detected violation.
        """
        report = ProbeReport()
        for canary in self._canaries:
            if self._rng.random() < toggle_probability:
                try:
                    self._toggle(canary)
                except Exception as exc:  # noqa: BLE001 - misbehaviour is data
                    report.violations.append(
                        ProbeViolation(
                            kind="refused",
                            identifier=canary.identifier.to_string(),
                            detail=f"ledger refused a valid state change: {exc}",
                        )
                    )
        for canary in self._canaries:
            report.probes_sent += 1
            proof = self.ledger.status(canary.identifier)
            if not proof.verify(self.ledger.public_key):
                report.violations.append(
                    ProbeViolation(
                        kind="bad_signature",
                        identifier=canary.identifier.to_string(),
                        detail="status proof failed signature verification",
                        evidence=proof,
                    )
                )
                continue
            if proof.revoked != canary.expected_revoked:
                report.violations.append(
                    ProbeViolation(
                        kind="wrong_status",
                        identifier=canary.identifier.to_string(),
                        detail=(
                            f"ledger reports revoked={proof.revoked}, "
                            f"expected {canary.expected_revoked}"
                        ),
                        evidence=proof,
                    )
                )
        self._audit_merkle(report)
        return report

    def _audit_merkle(self, report: ProbeReport) -> None:
        merkle = self.ledger.store.merkle
        if self._last_merkle_root is not None:
            try:
                merkle.check_consistency(self._last_merkle_size, self._last_merkle_root)
            except MerkleConsistencyError as exc:
                report.violations.append(
                    ProbeViolation(
                        kind="history_rewrite",
                        identifier=None,
                        detail=str(exc),
                    )
                )
        self._last_merkle_size = merkle.size
        self._last_merkle_root = merkle.root()
