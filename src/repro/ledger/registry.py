"""The ledger registry: "we expect there will be several commercial
ledgers ... and together they constitute a database of all registered
photos in IRS" (section 3.1).

The registry maps ledger ids (and the 4-byte compact tags used in
watermark payloads) to ledger instances, and resolves identifiers to
full records.  Browsers, proxies and aggregators hold a registry rather
than individual ledger handles.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.core.errors import LedgerUnavailableError
from repro.core.identifiers import PhotoIdentifier, ledger_tag
from repro.ledger.ledger import Ledger
from repro.ledger.proofs import StatusProof

__all__ = ["LedgerRegistry"]


class LedgerRegistry:
    """Directory of all participating ledgers."""

    def __init__(self):
        self._by_id: Dict[str, Ledger] = {}
        self._by_tag: Dict[bytes, Ledger] = {}

    def add(self, ledger: Ledger) -> Ledger:
        if ledger.ledger_id in self._by_id:
            raise ValueError(f"ledger {ledger.ledger_id!r} already registered")
        tag = ledger_tag(ledger.ledger_id)
        if tag in self._by_tag:
            # A 4-byte tag collision between distinct ledger ids: the
            # compact encoding cannot distinguish them.  Astronomically
            # unlikely in practice; refuse loudly rather than misroute.
            raise ValueError(
                f"ledger tag collision between {ledger.ledger_id!r} and "
                f"{self._by_tag[tag].ledger_id!r}"
            )
        self._by_id[ledger.ledger_id] = ledger
        self._by_tag[tag] = ledger
        return ledger

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Ledger]:
        for ledger_id in sorted(self._by_id):
            yield self._by_id[ledger_id]

    def ledgers(self) -> List[Ledger]:
        return list(self)

    def get(self, ledger_id: str) -> Optional[Ledger]:
        return self._by_id.get(ledger_id)

    def require(self, ledger_id: str) -> Ledger:
        ledger = self._by_id.get(ledger_id)
        if ledger is None:
            raise LedgerUnavailableError(f"no ledger registered as {ledger_id!r}")
        return ledger

    # -- identifier resolution ----------------------------------------------------

    def resolve(self, identifier: PhotoIdentifier) -> Ledger:
        """Ledger hosting ``identifier``."""
        return self.require(identifier.ledger_id)

    def resolve_compact(self, compact: bytes) -> PhotoIdentifier:
        """Recover a full identifier from its 12-byte compact form.

        Used when only the watermark survived (metadata stripped).
        """
        tag, serial = PhotoIdentifier.tag_and_serial_from_compact(compact)
        ledger = self._by_tag.get(tag)
        if ledger is None:
            raise LedgerUnavailableError(
                f"no registered ledger matches tag {tag.hex()}"
            )
        return PhotoIdentifier(ledger_id=ledger.ledger_id, serial=serial)

    # -- convenience -----------------------------------------------------------------

    def status(self, identifier: PhotoIdentifier) -> StatusProof:
        """Route a status query to the hosting ledger."""
        return self.resolve(identifier).status(identifier)

    def total_status_queries(self) -> int:
        """Aggregate hot-path load across all ledgers (bench metric)."""
        return sum(ledger.status_queries_served for ledger in self)
