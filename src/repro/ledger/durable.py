"""A simulated disk for the event log: WAL segments plus snapshots.

:class:`DurableStore` is the pluggable durability layer a
:class:`~repro.cluster.shard.ClusterShard` journals through.  It is
in-memory (the whole reproduction runs inside a deterministic
simulation) but byte-faithful to how a real write-ahead log fails:

* **Frames.**  Every event is one length-prefixed frame — a 4-byte
  big-endian length, the event's canonical JSON, and an 8-byte blake2b
  tag over those bytes.  A torn write leaves a frame shorter than its
  header promises; a bit flip breaks the tag; both are *detected*, not
  silently replayed.
* **Segments.**  Frames append to the current segment; a segment seals
  after ``segment_size`` events.  Each segment remembers the sequence
  number of its first event, so recovery can seek straight to the
  segment containing the snapshot anchor instead of scanning history.
* **Snapshots.**  A snapshot is the canonical JSON of the materialized
  records map, *chain-anchored*: it names the event ``(seq, hash)`` it
  captures, and carries a blake2b checksum over its body.  Recovery
  loads the newest snapshot whose checksum verifies and replays only
  the log tail past its anchor.

The fault-injection surface (:meth:`tear_final_record`,
:meth:`corrupt_random_byte`, :meth:`corrupt_latest_snapshot`,
:meth:`wipe`) is what the storage chaos in :mod:`repro.chaos` drives;
every injector reports whether it actually landed so the consistency
checker can demand detection only for faults that exist.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ledger.events import LedgerEvent, event_to_dict
from repro.ledger.records import ClaimRecord

__all__ = ["DurableStore", "Snapshot", "encode_frame", "snapshot_body"]

#: blake2b tag length guarding each frame and snapshot body.
_TAG_BYTES = 8
_LEN_BYTES = 4


def _tag(data: bytes) -> bytes:
    return hashlib.blake2b(data, digest_size=_TAG_BYTES).digest()


def _canonical_json(value: dict) -> bytes:
    return json.dumps(value, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


def encode_frame(event: LedgerEvent) -> bytes:
    """One WAL frame: length + canonical JSON + blake2b tag."""
    body = _canonical_json(event_to_dict(event))
    return len(body).to_bytes(_LEN_BYTES, "big") + body + _tag(body)


def snapshot_body(
    records: Dict[int, ClaimRecord],
    next_serial: int,
    anchor_seq: int,
    anchor_hash: bytes,
) -> dict:
    """The JSON-able snapshot payload (records in serial order)."""
    return {
        "anchor_seq": anchor_seq,
        "anchor_hash": anchor_hash.hex(),
        "next_serial": next_serial,
        "records": [
            records[serial].to_payload() for serial in sorted(records)
        ],
    }


@dataclass
class Snapshot:
    """One stored snapshot: anchored body bytes plus its checksum."""

    anchor_seq: int
    body: bytes
    checksum: bytes

    @property
    def valid(self) -> bool:
        return _tag(self.body) == self.checksum


@dataclass
class _Segment:
    """One WAL segment: first event seq + raw frame bytes."""

    first_seq: int
    data: bytearray = field(default_factory=bytearray)
    events: int = 0


class DurableStore:
    """The simulated disk: append-only segments plus snapshots."""

    def __init__(self, segment_size: int = 256, max_snapshots: int = 2):
        if segment_size < 1:
            raise ValueError("segment size must be at least 1")
        self.segment_size = int(segment_size)
        self.max_snapshots = int(max_snapshots)
        self._segments: List[_Segment] = []
        self._snapshots: List[Snapshot] = []
        self.events_written = 0
        self.snapshots_written = 0

    # -- writing -------------------------------------------------------------------

    def append_event(self, event: LedgerEvent) -> None:
        segment = self._segments[-1] if self._segments else None
        if segment is None or segment.events >= self.segment_size:
            segment = _Segment(first_seq=event.seq)
            self._segments.append(segment)
        segment.data += encode_frame(event)
        segment.events += 1
        self.events_written += 1

    def write_snapshot(
        self,
        records: Dict[int, ClaimRecord],
        next_serial: int,
        anchor_seq: int,
        anchor_hash: bytes,
    ) -> None:
        """Persist a chain-anchored snapshot; oldest are pruned."""
        body = _canonical_json(
            snapshot_body(records, next_serial, anchor_seq, anchor_hash)
        )
        self._snapshots.append(
            Snapshot(anchor_seq=anchor_seq, body=body, checksum=_tag(body))
        )
        if len(self._snapshots) > self.max_snapshots:
            del self._snapshots[: len(self._snapshots) - self.max_snapshots]
        self.snapshots_written += 1

    # -- reading -------------------------------------------------------------------

    @property
    def segments(self) -> List[bytes]:
        """Raw segment bytes, oldest first (read-only copies)."""
        return [bytes(segment.data) for segment in self._segments]

    @property
    def snapshots(self) -> List[Snapshot]:
        return list(self._snapshots)

    def latest_valid_snapshot(self) -> Tuple[Optional[dict], List[str]]:
        """Newest checksum-valid snapshot body, plus detection evidence.

        Returns ``(parsed body | None, evidence)``; every invalid
        snapshot skipped on the way down is reported as
        ``snapshot_corrupt`` evidence.
        """
        evidence: List[str] = []
        for snapshot in reversed(self._snapshots):
            if not snapshot.valid:
                evidence.append("snapshot_corrupt")
                continue
            try:
                return json.loads(snapshot.body.decode("utf-8")), evidence
            except (UnicodeDecodeError, json.JSONDecodeError):
                # A body that passes its checksum but does not parse was
                # written corrupt — same verdict as a checksum failure.
                evidence.append("snapshot_corrupt")
        return None, evidence

    def scan_segments_from(self, anchor_seq: int) -> Tuple[int, List[bytes]]:
        """Segments that may hold events past ``anchor_seq``.

        Returns ``(index of the first scanned segment, raw bytes)`` —
        the last segment whose first event is at or before
        ``anchor_seq + 1``, and everything after it.
        """
        start = 0
        for index, segment in enumerate(self._segments):
            if segment.first_seq <= anchor_seq + 1:
                start = index
        return start, [
            bytes(segment.data) for segment in self._segments[start:]
        ]

    # -- recovery truncation ---------------------------------------------------------

    def truncate_after(
        self, segment_index: int, offset: int, head_seq: int
    ) -> int:
        """Drop the unprovable suffix past the last verified frame.

        ``segment_index``/``offset`` name the byte position just after
        the last frame recovery could verify; everything beyond it —
        torn, corrupted, or chain-broken — is discarded so the log on
        disk is exactly the history the restarted shard vouches for.
        Snapshots anchored past the new head (or failing their
        checksum) are dropped too.  Returns the number of bytes shed.
        """
        if not self._segments:
            return 0
        shed = 0
        segment_index = min(segment_index, len(self._segments) - 1)
        keep = self._segments[segment_index]
        offset = min(offset, len(keep.data))
        shed += len(keep.data) - offset
        del keep.data[offset:]
        keep.events = _count_frames(bytes(keep.data))
        for segment in self._segments[segment_index + 1 :]:
            shed += len(segment.data)
        del self._segments[segment_index + 1 :]
        if keep.events == 0 and len(self._segments) > 1:
            self._segments.pop()
        self._snapshots = [
            snapshot
            for snapshot in self._snapshots
            if snapshot.valid and snapshot.anchor_seq <= head_seq
        ]
        return shed

    # -- fault injection ---------------------------------------------------------------

    def tear_final_record(self) -> bool:
        """Cut the last frame short — a write interrupted mid-flush."""
        for segment in reversed(self._segments):
            if segment.data:
                cut = min(len(segment.data) - 1, _TAG_BYTES + 1)
                del segment.data[len(segment.data) - cut :]
                return True
        return False

    def corrupt_random_byte(self, rng) -> bool:
        """Flip one byte in the newest non-empty segment."""
        for segment in reversed(self._segments):
            if segment.data:
                position = int(rng.integers(0, len(segment.data)))
                segment.data[position] ^= 0xFF
                return True
        return False

    def corrupt_latest_snapshot(self) -> bool:
        """Damage the newest snapshot — a partial snapshot write."""
        for snapshot in reversed(self._snapshots):
            if snapshot.body:
                body = bytearray(snapshot.body)
                body[len(body) // 2] ^= 0xFF
                snapshot.body = bytes(body)
                return True
        return False

    def wipe(self) -> int:
        """Lose the disk entirely; returns events lost."""
        lost = self.events_written
        self._segments.clear()
        self._snapshots.clear()
        self.events_written = 0
        return lost

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DurableStore(events={self.events_written}, "
            f"segments={len(self._segments)}, "
            f"snapshots={len(self._snapshots)})"
        )


def _count_frames(data: bytes) -> int:
    """Frames fully present in ``data`` (used after truncation)."""
    count, position = 0, 0
    while position + _LEN_BYTES <= len(data):
        length = int.from_bytes(data[position : position + _LEN_BYTES], "big")
        end = position + _LEN_BYTES + length + _TAG_BYTES
        if end > len(data):
            break
        count += 1
        position = end
    return count
