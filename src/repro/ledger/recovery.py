"""Crash recovery: snapshot + verified tail replay with evidence.

:func:`recover_store` is the restart path a shard runs against its
:class:`~repro.ledger.durable.DurableStore`.  It loads the newest
checksum-valid snapshot, scans the WAL segments from the snapshot's
anchor, verifies every frame tag and every chain link, and replays the
proven tail onto the snapshot's records.  The scan stops at the first
frame it cannot vouch for and names what it saw:

``torn_record``
    the final frame is shorter than its length header promises;
``corrupted_segment``
    a frame's blake2b tag (or its JSON body) does not verify;
``truncated_segment``
    verified frames skip sequence numbers — a middle of the log is gone;
``chain_broken``
    a frame decodes but its hash chain does not re-derive;
``snapshot_corrupt``
    a snapshot failed its checksum and was skipped.

Everything past the stop point is *unprovable* and is excluded from the
recovered state; the shard then truncates the disk to the verified
prefix and leans on peer backfill (hinted handoff + anti-entropy) for
the lost suffix.  The report carries both the recovered records and the
raw inputs (snapshot base, tail events) so callers can independently
re-replay and compare — the ``recovered state == replayed log``
invariant the consistency checker enforces.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto.hashing import hash_struct
from repro.ledger.durable import DurableStore, _LEN_BYTES, _TAG_BYTES, _tag
from repro.ledger.events import (
    GENESIS_HASH,
    LedgerEvent,
    chain_hash,
    event_from_dict,
    replay,
)
from repro.ledger.records import ClaimRecord

__all__ = ["RecoveryReport", "recover_store", "records_digest"]


def records_digest(records: Dict[int, ClaimRecord]) -> str:
    """Hex digest of a records map's full content, serial-ordered."""
    return hash_struct(
        {"records": [records[serial].to_payload() for serial in sorted(records)]}
    ).hex()


@dataclass
class RecoveryReport:
    """What a restart could prove from its local disk."""

    records: Dict[int, ClaimRecord] = field(default_factory=dict)
    next_serial: int = 1
    anchor_seq: int = 0
    head_seq: int = 0
    head_hash: bytes = GENESIS_HASH
    tail_events: List[LedgerEvent] = field(default_factory=list)
    snapshot_records: Dict[int, ClaimRecord] = field(default_factory=dict)
    evidence: Tuple[str, ...] = ()
    #: (segment index, byte offset) just past the last verified frame.
    truncation: Optional[Tuple[int, int]] = None

    #: Evidence kinds that mean the WAL scan stopped early — everything
    #: past the stop point was shed, so acknowledged writes may be
    #: missing locally and peer backfill is required.
    DESTRUCTIVE_EVIDENCE = frozenset(
        {"torn_record", "corrupted_segment", "truncated_segment",
         "chain_broken"}
    )

    @property
    def clean(self) -> bool:
        return not self.evidence

    @property
    def suffix_lost(self) -> bool:
        """True when the log scan shed suffix (vs. snapshot-only damage)."""
        return bool(self.DESTRUCTIVE_EVIDENCE.intersection(self.evidence))

    def counts(self) -> Dict[str, int]:
        return {
            "records": len(self.records),
            "tail_events": len(self.tail_events),
            "snapshot_records": len(self.snapshot_records),
            "evidence": len(self.evidence),
        }


def _load_snapshot(
    store: DurableStore,
) -> Tuple[Dict[int, ClaimRecord], int, int, bytes, List[str]]:
    """Newest valid snapshot as (records, next_serial, seq, hash, evidence)."""
    body, evidence = store.latest_valid_snapshot()
    if body is None:
        return {}, 1, 0, GENESIS_HASH, evidence
    records: Dict[int, ClaimRecord] = {}
    for payload in body["records"]:
        record = ClaimRecord.from_payload(payload)
        records[record.identifier.serial] = record
    return (
        records,
        body["next_serial"],
        body["anchor_seq"],
        bytes.fromhex(body["anchor_hash"]),
        evidence,
    )


def _scan_tail(
    store: DurableStore, anchor_seq: int, anchor_hash: bytes
) -> Tuple[List[LedgerEvent], List[str], Tuple[int, int]]:
    """Decode and verify frames past ``anchor_seq``.

    Returns ``(tail events, evidence, truncation position)``.  The scan
    verifies every frame tag in the scanned region — including frames
    at or before the anchor, which are skipped from replay but still
    extend the verified prefix — and stops at the first failure.
    """
    start_index, segments = store.scan_segments_from(anchor_seq)
    tail: List[LedgerEvent] = []
    evidence: List[str] = []
    head_seq, head_hash = anchor_seq, anchor_hash
    truncation = (start_index, 0)
    for local_index, data in enumerate(segments):
        position = 0
        while position < len(data):
            frame_end = None
            if position + _LEN_BYTES <= len(data):
                length = int.from_bytes(
                    data[position : position + _LEN_BYTES], "big"
                )
                frame_end = position + _LEN_BYTES + length + _TAG_BYTES
            if frame_end is None or frame_end > len(data):
                evidence.append("torn_record")
                return tail, evidence, truncation
            body = data[position + _LEN_BYTES : frame_end - _TAG_BYTES]
            if _tag(body) != data[frame_end - _TAG_BYTES : frame_end]:
                evidence.append("corrupted_segment")
                return tail, evidence, truncation
            try:
                event = event_from_dict(json.loads(body.decode("utf-8")))
            except (
                UnicodeDecodeError,
                json.JSONDecodeError,
                KeyError,
                ValueError,
            ):
                evidence.append("corrupted_segment")
                return tail, evidence, truncation
            if event.seq > head_seq:
                if event.seq != head_seq + 1:
                    evidence.append("truncated_segment")
                    return tail, evidence, truncation
                if event.prev_hash != head_hash or chain_hash(
                    head_hash, event.body()
                ) != event.chain_hash:
                    evidence.append("chain_broken")
                    return tail, evidence, truncation
                tail.append(event)
                head_seq, head_hash = event.seq, event.chain_hash
            position = frame_end
            truncation = (start_index + local_index, position)
    return tail, evidence, truncation


def recover_store(
    store: DurableStore, use_snapshots: bool = True
) -> RecoveryReport:
    """Rebuild ledger state from a (possibly damaged) durable store.

    With ``use_snapshots=False`` the whole log is scanned and replayed
    from genesis — slower, but it verifies every frame on disk; the
    perf suite uses it as the snapshot path's baseline and property
    tests use it to prove corruption anywhere in the log is caught.
    """
    if use_snapshots:
        base, next_serial, anchor_seq, anchor_hash, snap_evidence = (
            _load_snapshot(store)
        )
    else:
        base, next_serial, anchor_seq, anchor_hash, snap_evidence = (
            {},
            1,
            0,
            GENESIS_HASH,
            [],
        )
    tail, scan_evidence, truncation = _scan_tail(
        store, anchor_seq, anchor_hash
    )
    records = replay(tail, base=base)
    # Reconstruct the serial allocator: a claim minted through the
    # allocator carries exactly the serial the allocator would hand out
    # next, so replaying those in order replays the allocator too
    # (content-derived serials are 63-bit and never collide with it).
    for event in tail:
        if event.serial == next_serial and "record" in event.payload:
            next_serial += 1
    head_hash = tail[-1].chain_hash if tail else anchor_hash
    head_seq = tail[-1].seq if tail else anchor_seq
    return RecoveryReport(
        records=records,
        next_serial=next_serial,
        anchor_seq=anchor_seq,
        head_seq=head_seq,
        head_hash=head_hash,
        tail_events=tail,
        snapshot_records=base,
        evidence=tuple(snap_evidence) + tuple(scan_evidence),
        truncation=truncation,
    )
