"""Ledger claim records.

Per section 3.2, a claim record stores "the encrypted hash, the public
key, an authenticated timestamp (as in [1]), and a Boolean 'revoked'
flag".  We add a *permanently revoked* state, which the appeals process
uses for fraudulently re-claimed copies ("they then mark it as
permanently revoked").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.core.identifiers import PhotoIdentifier
from repro.crypto.hashing import hash_struct
from repro.crypto.signatures import PublicKey, Signature
from repro.crypto.timestamp import TimestampToken

__all__ = ["ClaimRecord", "RevocationState", "claim_digest"]


class RevocationState(enum.Enum):
    """Lifecycle of a claim's revocation flag."""

    NOT_REVOKED = "not_revoked"
    REVOKED = "revoked"
    PERMANENTLY_REVOKED = "permanently_revoked"

    @property
    def is_revoked(self) -> bool:
        return self is not RevocationState.NOT_REVOKED


def claim_digest(content_hash: str, public_key: PublicKey) -> bytes:
    """The digest a claim's authenticated timestamp binds.

    Binding both the content hash and the public key ensures the
    timestamp proves *this key pair* claimed *this content* at that
    time -- the fact the appeals process adjudicates on.
    """
    return hash_struct({"content_hash": content_hash, "public_key": public_key.to_dict()})


@dataclass
class ClaimRecord:
    """One photo's entry in a ledger.

    Attributes
    ----------
    identifier:
        The (ledger, serial) identifier handed back to the owner.
    content_hash:
        Hex SHA-256 of the photo pixels at claim time.
    content_signature:
        The owner's signature over the content hash ("the hash ...
        encrypted with the private key").
    public_key:
        Verification key for ownership proofs.
    timestamp:
        Authenticated timestamp over :func:`claim_digest`.
    state:
        Revocation state; ``REVOKED`` can be undone by the owner,
        ``PERMANENTLY_REVOKED`` (set by appeals) cannot.
    custodial:
        True when an aggregator claimed the photo in a custodial role
        (section 3.2: unlabeled uploads may be claimed by the site so
        they can later be revoked).
    """

    identifier: PhotoIdentifier
    content_hash: str
    content_signature: Signature
    public_key: PublicKey
    timestamp: TimestampToken
    state: RevocationState = RevocationState.NOT_REVOKED
    custodial: bool = False
    revocation_epoch: int = field(default=0)

    @property
    def is_revoked(self) -> bool:
        return self.state.is_revoked

    def to_payload(self) -> dict:
        """JSON-able form for event-log payloads and snapshots.

        Every field round-trips through :meth:`from_payload`; bytes are
        hex-encoded so the same structure feeds both the canonical
        encoder (chain hashes) and ``json.dumps`` (snapshots).
        """
        return {
            "identifier": self.identifier.to_string(),
            "content_hash": self.content_hash,
            "content_signature": self.content_signature.to_dict(),
            "public_key": self.public_key.to_dict(),
            "timestamp": self.timestamp.to_dict(),
            "state": self.state.value,
            "custodial": self.custodial,
            "epoch": self.revocation_epoch,
        }

    @staticmethod
    def from_payload(data: dict) -> "ClaimRecord":
        return ClaimRecord(
            identifier=PhotoIdentifier.from_string(data["identifier"]),
            content_hash=data["content_hash"],
            content_signature=Signature.from_dict(data["content_signature"]),
            public_key=PublicKey.from_dict(data["public_key"]),
            timestamp=TimestampToken.from_dict(data["timestamp"]),
            state=RevocationState(data["state"]),
            custodial=data["custodial"],
            revocation_epoch=data["epoch"],
        )

    def to_leaf_bytes(self) -> bytes:
        """Canonical bytes for the Merkle transparency log."""
        return hash_struct(
            {
                "identifier": self.identifier.to_string(),
                "content_hash": self.content_hash,
                "public_key": self.public_key.to_dict(),
                "timestamp_time": self.timestamp.time,
                "timestamp_serial": self.timestamp.serial,
            }
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ClaimRecord({self.identifier}, state={self.state.value}, "
            f"custodial={self.custodial})"
        )
