"""Signed revocation-status proofs.

Two uses in the paper:

* validators/aggregators receive a signed, dated statement of a photo's
  status so downstream parties can verify freshness ("it includes in
  metadata cryptographic proof that it has recently verified the
  non-revoked status of the photo", section 3.2);
* honesty probes compare a ledger's signed answers against known state
  (section 5) -- a signed wrong answer is portable evidence of
  misbehaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.signatures import PublicKey, Signature

__all__ = ["StatusProof"]


@dataclass(frozen=True)
class StatusProof:
    """A ledger-signed statement: "photo X was (not) revoked at time T"."""

    identifier: str  # string form of the PhotoIdentifier
    revoked: bool
    permanently_revoked: bool
    checked_at: float
    ledger_fingerprint: str
    signature: Signature

    def payload(self) -> dict:
        return {
            "identifier": self.identifier,
            "revoked": self.revoked,
            "permanent": self.permanently_revoked,
            "checked_at": self.checked_at,
            "ledger": self.ledger_fingerprint,
        }

    def verify(self, ledger_key: PublicKey) -> bool:
        """True iff this proof was signed by ``ledger_key``."""
        return ledger_key.verify_struct(self.payload(), self.signature)

    def is_fresh(self, now: float, max_age: float) -> bool:
        """True iff the proof is no older than ``max_age`` seconds."""
        return now - self.checked_at <= max_age

    # -- wire encoding (travels in photo metadata, section 3.2) -----------

    def to_wire(self) -> str:
        """Compact string form for an ``irs:`` metadata field."""
        return ":".join(
            [
                self.identifier.replace(":", "|"),
                "1" if self.revoked else "0",
                "1" if self.permanently_revoked else "0",
                repr(self.checked_at),
                self.ledger_fingerprint,
                str(self.signature.value),
                self.signature.signer_fingerprint,
            ]
        )

    @staticmethod
    def from_wire(text: str) -> "StatusProof":
        """Inverse of :meth:`to_wire`; raises ValueError on malformed input."""
        parts = text.split(":")
        if len(parts) != 7:
            raise ValueError("malformed freshness proof")
        identifier, revoked, permanent, checked_at, ledger, sig_value, signer = parts
        return StatusProof(
            identifier=identifier.replace("|", ":"),
            revoked=revoked == "1",
            permanently_revoked=permanent == "1",
            checked_at=float(checked_at),
            ledger_fingerprint=ledger,
            signature=Signature(
                value=int(sig_value), signer_fingerprint=signer
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "revoked" if self.revoked else "not-revoked"
        return f"StatusProof({self.identifier}, {state}, at={self.checked_at})"
