"""Ledger persistence: event-sourced record store plus operation log.

The records map is a *materialized view* of an append-only,
hash-chained event log (:mod:`repro.ledger.events`): every mutation —
storing a record, flipping its revocation state — seals a typed event
onto the chain before the view changes, and replaying the log from
genesis reproduces the map exactly.  A journal callback lets a durable
layer (:mod:`repro.ledger.durable`) persist each event as it is
sealed; :meth:`restore` is the inverse, installing crash-recovered
state and resuming the chain from the verified head.

The legacy operation log (mirrored into a Merkle tree so auditors can
verify history is never rewritten — section 5, malicious ledgers) is
kept alongside: it records *operations* at ledger granularity, while
the event log records *state transitions* at replica granularity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, Optional

from repro.crypto.hashing import hash_struct
from repro.crypto.merkle import MerkleLog
from repro.ledger.events import EventLog, LedgerEvent
from repro.ledger.records import ClaimRecord, RevocationState

__all__ = ["LedgerStore", "LoggedOperation"]


@dataclass(frozen=True)
class LoggedOperation:
    """One entry in the append-only operation log."""

    kind: str  # 'claim' | 'revoke' | 'unrevoke' | 'permanent_revoke'
    serial: int
    time: float

    def to_leaf_bytes(self) -> bytes:
        return hash_struct({"kind": self.kind, "serial": self.serial, "time": self.time})


class LedgerStore:
    """Records, serial allocation, event chain, operation log."""

    def __init__(self):
        self._records: Dict[int, ClaimRecord] = {}
        self._next_serial = 1
        self._operations: list[LoggedOperation] = []
        self._merkle = MerkleLog()
        self._events = EventLog()
        self._journal: Optional[Callable[[LedgerEvent], None]] = None

    # -- serials ---------------------------------------------------------------

    def allocate_serial(self) -> int:
        serial = self._next_serial
        self._next_serial += 1
        return serial

    @property
    def next_serial(self) -> int:
        """The allocator's next value (snapshotted for recovery)."""
        return self._next_serial

    # -- event chain -------------------------------------------------------------

    @property
    def events(self) -> EventLog:
        """The hash-chained event log this store materializes."""
        return self._events

    def attach_journal(
        self, journal: Optional[Callable[[LedgerEvent], None]]
    ) -> None:
        """Install a callback invoked with every sealed event.

        The durable layer uses this to write each event to disk before
        the in-memory view advances past it.
        """
        self._journal = journal

    def _seal(
        self, kind: str, serial: int, time: float, payload: dict
    ) -> LedgerEvent:
        """Append to the chain and journal the sealed event.

        Called *after* the materialized view has been mutated, so a
        journal that snapshots sees state consistent with the event's
        sequence number.
        """
        event = self._events.append(kind, serial, time, payload)
        if self._journal is not None:
            self._journal(event)
        return event

    # -- records ---------------------------------------------------------------

    def put(
        self, record: ClaimRecord, time: float = 0.0, kind: str = "claim"
    ) -> None:
        """Store a new record, sealing a full-record event."""
        serial = record.identifier.serial
        if serial in self._records:
            raise KeyError(f"serial {serial} already present")
        self._records[serial] = record
        self._seal(kind, serial, time, {"record": record.to_payload()})

    def apply_flip(
        self,
        serial: int,
        state: RevocationState,
        epoch: int,
        kind: str,
        time: float,
    ) -> None:
        """Flip an existing record's revocation state, sealing an event."""
        record = self._records.get(serial)
        if record is None:
            raise KeyError(f"serial {serial} not present")
        record.state = state
        record.revocation_epoch = epoch
        self._seal(kind, serial, time, {"state": state.value, "epoch": epoch})

    def get(self, serial: int) -> Optional[ClaimRecord]:
        return self._records.get(serial)

    def __contains__(self, serial: int) -> bool:
        return serial in self._records

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> Iterator[ClaimRecord]:
        """All records in serial order."""
        for serial in sorted(self._records):
            yield self._records[serial]

    def records_map(self) -> Dict[int, ClaimRecord]:
        """Shallow copy of the materialized view (serial -> record)."""
        return dict(self._records)

    def wipe(self) -> int:
        """Lose everything — a crash that takes the disk with it.

        Records, operation log, Merkle mirror and event chain all reset
        (they are one node's local state; peers keep theirs).  The
        serial allocator is preserved so a restarted single-node ledger
        cannot re-mint identifiers.  Returns the number of records lost.
        """
        lost = len(self._records)
        self._records.clear()
        self._operations.clear()
        self._merkle = MerkleLog()
        self._events = EventLog()
        return lost

    def restore(
        self,
        records: Dict[int, ClaimRecord],
        next_serial: int,
        head_seq: int,
        head_hash: bytes,
    ) -> None:
        """Install crash-recovered state and resume the event chain.

        The records are adopted as-is (no events are sealed — they were
        already sealed before the crash); the chain resumes from the
        verified head so post-recovery mutations extend the proven
        history.  The operation log restarts empty: it is an audit log
        of what *this process* performed, not recovered state.
        """
        self._records = dict(records)
        self._next_serial = max(self._next_serial, next_serial)
        self._operations.clear()
        self._merkle = MerkleLog()
        self._events = EventLog(anchor_seq=head_seq, anchor_hash=head_hash)

    def revoked_records(self) -> Iterator[ClaimRecord]:
        for record in self.records():
            if record.is_revoked:
                yield record

    # -- operation log -----------------------------------------------------------

    def log_operation(self, kind: str, serial: int, time: float) -> int:
        """Append to the operation log; returns the log index."""
        op = LoggedOperation(kind=kind, serial=serial, time=time)
        self._operations.append(op)
        return self._merkle.append(op.to_leaf_bytes())

    @property
    def operations(self) -> list[LoggedOperation]:
        return list(self._operations)

    @property
    def merkle(self) -> MerkleLog:
        return self._merkle

    def counts(self) -> Dict[str, int]:
        """Record-state tallies, for monitoring and benches."""
        total = len(self._records)
        revoked = sum(1 for r in self._records.values() if r.is_revoked)
        custodial = sum(1 for r in self._records.values() if r.custodial)
        return {
            "total": total,
            "revoked": revoked,
            "not_revoked": total - revoked,
            "custodial": custodial,
            "operations": len(self._operations),
            "events": self._events.head_seq,
        }
