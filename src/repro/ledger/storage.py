"""Ledger persistence: record store plus append-only operation log.

The store is in-memory (the reproduction has no durability requirement)
but structured the way a durable implementation would be: a primary
records map, a monotonically increasing serial allocator, and an
append-only operation log mirrored into a Merkle tree so auditors can
verify that history is never rewritten (section 5, malicious ledgers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional

from repro.crypto.hashing import hash_struct
from repro.crypto.merkle import MerkleLog
from repro.ledger.records import ClaimRecord

__all__ = ["LedgerStore", "LoggedOperation"]


@dataclass(frozen=True)
class LoggedOperation:
    """One entry in the append-only operation log."""

    kind: str  # 'claim' | 'revoke' | 'unrevoke' | 'permanent_revoke'
    serial: int
    time: float

    def to_leaf_bytes(self) -> bytes:
        return hash_struct({"kind": self.kind, "serial": self.serial, "time": self.time})


class LedgerStore:
    """Records, serial allocation, operation log, Merkle mirror."""

    def __init__(self):
        self._records: Dict[int, ClaimRecord] = {}
        self._next_serial = 1
        self._operations: list[LoggedOperation] = []
        self._merkle = MerkleLog()

    # -- serials ---------------------------------------------------------------

    def allocate_serial(self) -> int:
        serial = self._next_serial
        self._next_serial += 1
        return serial

    # -- records ---------------------------------------------------------------

    def put(self, record: ClaimRecord) -> None:
        serial = record.identifier.serial
        if serial in self._records:
            raise KeyError(f"serial {serial} already present")
        self._records[serial] = record

    def get(self, serial: int) -> Optional[ClaimRecord]:
        return self._records.get(serial)

    def __contains__(self, serial: int) -> bool:
        return serial in self._records

    def __len__(self) -> int:
        return len(self._records)

    def records(self) -> Iterator[ClaimRecord]:
        """All records in serial order."""
        for serial in sorted(self._records):
            yield self._records[serial]

    def wipe(self) -> int:
        """Lose everything — a crash that takes the disk with it.

        Records, operation log and Merkle mirror all reset (they are
        one node's local state; peers keep theirs).  The serial
        allocator is preserved so a restarted single-node ledger cannot
        re-mint identifiers.  Returns the number of records lost.
        """
        lost = len(self._records)
        self._records.clear()
        self._operations.clear()
        self._merkle = MerkleLog()
        return lost

    def revoked_records(self) -> Iterator[ClaimRecord]:
        for record in self.records():
            if record.is_revoked:
                yield record

    # -- operation log -----------------------------------------------------------

    def log_operation(self, kind: str, serial: int, time: float) -> int:
        """Append to the operation log; returns the log index."""
        op = LoggedOperation(kind=kind, serial=serial, time=time)
        self._operations.append(op)
        return self._merkle.append(op.to_leaf_bytes())

    @property
    def operations(self) -> list[LoggedOperation]:
        return list(self._operations)

    @property
    def merkle(self) -> MerkleLog:
        return self._merkle

    def counts(self) -> Dict[str, int]:
        """Record-state tallies, for monitoring and benches."""
        total = len(self._records)
        revoked = sum(1 for r in self._records.values() if r.is_revoked)
        custodial = sum(1 for r in self._records.values() if r.custodial)
        return {
            "total": total,
            "revoked": revoked,
            "not_revoked": total - revoked,
            "custodial": custodial,
            "operations": len(self._operations),
        }
