"""The appeals process (sections 3.2 and 5).

When someone re-claims a copy of a revoked photo to circumvent
revocation, "the original owner presents the ledger with the original
photo and a signed timestamp of the original claim, along with the
copied version of the photo.  The ledger then compares the original
with the copy, using robust hashing (as in PhotoDNA) and/or human
inspection.  If they believe that the copy is derived from the original
photo, they then mark it as permanently revoked."

Adjudication checks, in order:

1. *Standing*: the appellant proves possession of the original claim's
   private key (challenge-response), and the presented timestamp token
   verifies under a trusted timestamp authority and binds (original
   content hash, original public key).
2. *Priority*: the original's authenticated timestamp strictly precedes
   the copy's claim timestamp.
3. *Derivation*: robust-hash distance between the presented original
   photo and the copy's photo is at or below threshold; when it falls
   in an uncertainty band, an optional human-inspection oracle decides.

The decision is "fairly heavyweight, but it does not rely on vague
judgements about whether the picture is harmful, only whether it is
derived from the original photo."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.errors import AppealError
from repro.core.identifiers import PhotoIdentifier
from repro.crypto.signatures import PublicKey, Signature
from repro.crypto.timestamp import TimestampAuthority, TimestampToken
from repro.ledger.ledger import Ledger
from repro.ledger.records import claim_digest
from repro.media.image import Photo
from repro.media.perceptual import DEFAULT_MATCH_THRESHOLD, robust_hash

__all__ = ["AppealsProcess", "Appeal", "AppealDecision", "AppealVerdict"]


class AppealVerdict(enum.Enum):
    UPHELD = "upheld"  # copy permanently revoked
    REJECTED = "rejected"


@dataclass(frozen=True)
class Appeal:
    """Everything the original owner presents.

    Attributes
    ----------
    original_photo:
        The original photo itself (Goal #1(iii) is about *revocation*
        not requiring content disclosure; appeals are the explicitly
        heavyweight path and do present content).
    original_content_hash / original_public_key / original_timestamp:
        The claim material of the original, verifiable against the
        timestamp authority without trusting the original's ledger.
    ownership_nonce / ownership_signature:
        Challenge-response proof that the appellant holds the
        original's private key (nonce issued by the adjudicating
        ledger via :meth:`AppealsProcess.make_challenge`).
    copy_identifier:
        The allegedly-derived claim on the adjudicating ledger.
    copy_photo:
        The copied photo as found in the wild.
    """

    original_photo: Photo
    original_content_hash: str
    original_public_key: PublicKey
    original_timestamp: TimestampToken
    ownership_nonce: bytes
    ownership_signature: Signature
    copy_identifier: PhotoIdentifier
    copy_photo: Photo


@dataclass(frozen=True)
class AppealDecision:
    verdict: AppealVerdict
    reason: str
    robust_distance: Optional[float] = None
    used_human_inspection: bool = False

    @property
    def upheld(self) -> bool:
        return self.verdict is AppealVerdict.UPHELD


class AppealsProcess:
    """Adjudicates appeals for one ledger.

    Parameters
    ----------
    ledger:
        The ledger hosting the allegedly fraudulent copy claims.
    trusted_authorities:
        Timestamp authorities whose tokens are accepted for priority.
    match_threshold:
        Robust-hash distance at or below which the copy is considered
        derived without human help.
    uncertainty_band:
        Distances in (threshold, threshold + band] go to the human
        oracle when one is configured (otherwise they are rejected:
        false positives here would let anyone revoke stranger photos).
    human_oracle:
        Optional callable ``(original, copy) -> bool`` standing in for
        human inspection.
    """

    def __init__(
        self,
        ledger: Ledger,
        trusted_authorities: list[TimestampAuthority],
        match_threshold: float = DEFAULT_MATCH_THRESHOLD,
        uncertainty_band: float = 0.10,
        human_oracle: Optional[Callable[[Photo, Photo], bool]] = None,
    ):
        if not trusted_authorities:
            raise ValueError("need at least one trusted timestamp authority")
        self.ledger = ledger
        self._authorities = {a.fingerprint: a for a in trusted_authorities}
        self.match_threshold = float(match_threshold)
        self.uncertainty_band = float(uncertainty_band)
        self.human_oracle = human_oracle
        self.appeals_heard = 0

    def make_challenge(self) -> bytes:
        """Nonce for the appellant's ownership proof."""
        import secrets

        nonce = secrets.token_bytes(16)
        self._pending_nonces.add(nonce)
        return nonce

    # Pending nonces live on the instance; created lazily so dataclass-
    # free construction stays simple.
    @property
    def _pending_nonces(self) -> set:
        if not hasattr(self, "_nonces"):
            self._nonces: set = set()
        return self._nonces

    @staticmethod
    def ownership_payload(nonce: bytes, content_hash: str) -> dict:
        return {"action": "appeal", "nonce": nonce, "content_hash": content_hash}

    def adjudicate(self, appeal: Appeal) -> AppealDecision:
        """Hear an appeal; upholding permanently revokes the copy."""
        self.appeals_heard += 1

        # 1a. Standing: appellant controls the original's private key.
        if appeal.ownership_nonce not in self._pending_nonces:
            raise AppealError("ownership nonce was not issued by this process")
        self._pending_nonces.discard(appeal.ownership_nonce)
        payload = self.ownership_payload(
            appeal.ownership_nonce, appeal.original_content_hash
        )
        if not appeal.original_public_key.verify_struct(
            payload, appeal.ownership_signature
        ):
            return AppealDecision(
                AppealVerdict.REJECTED,
                "appellant failed to prove possession of the original's key",
            )

        # 1b. The presented original photo matches the claimed hash.
        if appeal.original_photo.content_hash() != appeal.original_content_hash:
            return AppealDecision(
                AppealVerdict.REJECTED,
                "presented photo does not match the original content hash",
            )

        # 1c. The timestamp token verifies and binds (hash, key).
        authority = self._authorities.get(
            appeal.original_timestamp.authority_fingerprint
        )
        if authority is None:
            return AppealDecision(
                AppealVerdict.REJECTED,
                "original timestamp is from an untrusted authority",
            )
        if not appeal.original_timestamp.verify(authority.public_key):
            return AppealDecision(
                AppealVerdict.REJECTED, "original timestamp signature invalid"
            )
        expected_digest = claim_digest(
            appeal.original_content_hash, appeal.original_public_key
        )
        if appeal.original_timestamp.digest != expected_digest:
            return AppealDecision(
                AppealVerdict.REJECTED,
                "original timestamp does not bind the presented claim material",
            )

        # 2. Priority: original claim strictly precedes the copy's.
        copy_record = self.ledger.record(appeal.copy_identifier)
        if copy_record is None:
            raise AppealError(
                f"no record {appeal.copy_identifier} on ledger "
                f"{self.ledger.ledger_id!r}"
            )
        if not appeal.original_timestamp.precedes(copy_record.timestamp):
            return AppealDecision(
                AppealVerdict.REJECTED,
                "original claim does not predate the copy's claim",
            )

        # 3. Derivation: robust hash, escalating to human inspection.
        distance = robust_hash(appeal.original_photo).distance(
            robust_hash(appeal.copy_photo)
        )
        if distance <= self.match_threshold:
            derived = True
            used_human = False
        elif (
            distance <= self.match_threshold + self.uncertainty_band
            and self.human_oracle is not None
        ):
            derived = bool(self.human_oracle(appeal.original_photo, appeal.copy_photo))
            used_human = True
        else:
            derived = False
            used_human = False
        if not derived:
            return AppealDecision(
                AppealVerdict.REJECTED,
                "copy not judged to be derived from the original",
                robust_distance=distance,
                used_human_inspection=used_human,
            )

        self.ledger.permanently_revoke(appeal.copy_identifier)
        return AppealDecision(
            AppealVerdict.UPHELD,
            "copy derived from earlier-claimed original; permanently revoked",
            robust_distance=distance,
            used_human_inspection=used_human,
        )
