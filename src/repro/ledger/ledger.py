"""The ledger: claim, revoke, unrevoke, status.

Implements the section 3.2 protocol:

* **Claiming**: the owner presents the photo's content hash, its
  signature under the photo's private key ("the hash ... encrypted with
  the private key"), and the public key.  The ledger obtains an
  authenticated timestamp over a digest binding (content hash, public
  key) from a timestamp authority, stores the record, and returns the
  identifier.  Optionally a payment token is redeemed -- ledgers are
  commercial services.
* **Revoking/unrevoking**: a challenge-response ownership proof.  The
  ledger issues a nonce; the owner signs (action, identifier, nonce)
  with the photo's private key; the ledger verifies with the stored
  public key and flips the flag.  No owner identity is ever involved
  (Goal #1(iv)).
* **Status**: signed :class:`~repro.ledger.proofs.StatusProof`
  statements, counted so experiments can measure ledger load.

The class is wire-agnostic: in-process callers invoke methods directly;
the network simulator wraps them in RPC handlers.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.core.errors import ClaimError, RevocationError
from repro.core.identifiers import PhotoIdentifier
from repro.crypto.signatures import KeyPair, PublicKey, Signature
from repro.crypto.timestamp import TimestampAuthority
from repro.crypto.tokens import PaymentToken, TokenError, TokenIssuer
from repro.ledger.proofs import StatusProof
from repro.ledger.records import ClaimRecord, RevocationState, claim_digest
from repro.ledger.storage import LedgerStore

__all__ = ["Ledger", "LedgerConfig"]


@dataclass
class LedgerConfig:
    """Ledger policy knobs.

    Attributes
    ----------
    require_payment:
        When True, claims must carry a valid, unspent payment token.
    allow_revocation:
        Human-rights archive ledgers (section 5, censorship discussion)
        set this False: claims are permanent records that can never be
        revoked, so coercion cannot disappear evidence.
    challenge_ttl:
        Seconds a revocation challenge stays valid.
    require_provenance:
        When True, claims must carry a verifiable C2PA-style provenance
        manifest whose final content hash matches the claimed hash
        (section 3.1: C2PA infrastructure "could be extended to act as
        a more broadly used ledger").  Raises the bar against
        re-claiming stolen copies: the thief has no capture-rooted
        chain for the pixels.
    """

    require_payment: bool = False
    allow_revocation: bool = True
    challenge_ttl: float = 300.0
    require_provenance: bool = False


class Ledger:
    """One commercial ledger service."""

    def __init__(
        self,
        ledger_id: str,
        timestamp_authority: TimestampAuthority,
        keypair: Optional[KeyPair] = None,
        clock: Optional[Callable[[], float]] = None,
        config: Optional[LedgerConfig] = None,
        token_issuer: Optional[TokenIssuer] = None,
    ):
        if not ledger_id or ":" in ledger_id or "|" in ledger_id:
            raise ValueError(
                "ledger id must be non-empty and contain neither ':' nor '|'"
            )
        self.ledger_id = ledger_id
        self._tsa = timestamp_authority
        self._keypair = keypair or KeyPair.generate()
        self._clock = clock
        self._logical_time = 0.0
        self.config = config or LedgerConfig()
        self._token_issuer = token_issuer
        self.store = LedgerStore()
        self._challenges: Dict[tuple[int, bytes], float] = {}
        # Load counters, read by the E5 bench.
        self.claims_served = 0
        self.status_queries_served = 0
        self.revocations_served = 0

    # -- time -------------------------------------------------------------------

    def now(self) -> float:
        if self._clock is not None:
            return self._clock()
        self._logical_time += 1.0
        return self._logical_time

    # -- identity -----------------------------------------------------------------

    @property
    def public_key(self) -> PublicKey:
        return self._keypair.public

    @property
    def fingerprint(self) -> str:
        return self._keypair.fingerprint

    @property
    def timestamp_authority(self) -> TimestampAuthority:
        return self._tsa

    # -- claiming -----------------------------------------------------------------

    def claim(
        self,
        content_hash: str,
        content_signature: Signature,
        public_key: PublicKey,
        payment: Optional[PaymentToken] = None,
        custodial: bool = False,
        initially_revoked: bool = False,
        provenance=None,
        serial: Optional[int] = None,
        timestamp=None,
    ) -> ClaimRecord:
        """Enter a photo into the ledger; returns the stored record.

        ``initially_revoked`` supports the section 4.4 usage pattern
        where "many photos will be automatically registered and revoked"
        at creation, with owners unrevoking the ones they share.

        ``provenance`` is an optional
        :class:`repro.media.provenance.ProvenanceManifest`; mandatory
        (and verified) when the ledger's config sets
        ``require_provenance``.

        ``serial`` and ``timestamp`` support replicated deployments
        (:mod:`repro.cluster`): every replica of a claim must store a
        byte-identical record, so the coordinator picks the serial
        (content-derived) and fetches one TSA token, then hands both to
        each replica instead of letting them allocate/fetch their own.
        A provided timestamp must verify under this ledger's TSA and
        bind the claimed (content hash, public key) digest.
        """
        if not public_key.verify(content_hash.encode("utf-8"), content_signature):
            raise ClaimError(
                "content signature does not verify under the presented key"
            )
        if self.config.require_provenance:
            self._verify_provenance(content_hash, provenance)
        if self.config.require_payment:
            if payment is None:
                raise ClaimError("this ledger requires payment for claims")
            if self._token_issuer is None:
                raise ClaimError("ledger misconfigured: no token issuer")
            try:
                self._token_issuer.redeem(payment)
            except TokenError as exc:
                raise ClaimError(f"payment rejected: {exc}") from exc
        if serial is None:
            serial = self.store.allocate_serial()
        elif serial in self.store:
            raise ClaimError(f"serial {serial} is already claimed")
        identifier = PhotoIdentifier(ledger_id=self.ledger_id, serial=serial)
        digest = claim_digest(content_hash, public_key)
        if timestamp is None:
            timestamp = self._tsa.issue(digest)
        elif timestamp.digest != digest or not self._tsa.verify(timestamp):
            raise ClaimError(
                "provided timestamp does not authenticate this claim"
            )
        state = (
            RevocationState.REVOKED
            if initially_revoked
            else RevocationState.NOT_REVOKED
        )
        record = ClaimRecord(
            identifier=identifier,
            content_hash=content_hash,
            content_signature=content_signature,
            public_key=public_key,
            timestamp=timestamp,
            state=state,
            custodial=custodial,
        )
        claim_time = self.now()
        self.store.put(record, time=claim_time)
        self.store.log_operation("claim", serial, claim_time)
        if initially_revoked:
            self.store.log_operation("revoke", serial, self.now())
        self.claims_served += 1
        return record

    def _verify_provenance(self, content_hash: str, provenance) -> None:
        """Provenance gate: intact capture-rooted chain ending at the
        claimed content hash."""
        from repro.media.provenance import ProvenanceError

        if provenance is None:
            raise ClaimError("this ledger requires a provenance manifest")
        try:
            provenance.verify_chain()
        except ProvenanceError as exc:
            raise ClaimError(f"provenance chain invalid: {exc}") from exc
        if (
            not provenance.assertions
            or provenance.assertions[-1].content_hash != content_hash
        ):
            raise ClaimError(
                "provenance chain does not terminate at the claimed content"
            )

    # -- ownership challenges ----------------------------------------------------------

    def make_challenge(self, identifier: PhotoIdentifier) -> bytes:
        """Issue a nonce the owner must sign to prove ownership."""
        record = self._require_record(identifier)
        nonce = secrets.token_bytes(16)
        self._challenges[(record.identifier.serial, nonce)] = self.now()
        return nonce

    def _consume_challenge(self, serial: int, nonce: bytes) -> None:
        key = (serial, nonce)
        issued_at = self._challenges.pop(key, None)
        if issued_at is None:
            raise RevocationError("unknown or already-used challenge nonce")
        if self.now() - issued_at > self.config.challenge_ttl:
            raise RevocationError("challenge expired")

    @staticmethod
    def ownership_payload(
        action: str, identifier: PhotoIdentifier, nonce: bytes
    ) -> dict:
        """The structure an owner signs to authorize ``action``.

        Exposed so owner toolkits and ledgers agree on the encoding.
        """
        return {
            "action": action,
            "identifier": identifier.to_string(),
            "nonce": nonce,
        }

    def _verify_ownership(
        self,
        action: str,
        record: ClaimRecord,
        nonce: bytes,
        signature: Signature,
    ) -> None:
        self._consume_challenge(record.identifier.serial, nonce)
        payload = self.ownership_payload(action, record.identifier, nonce)
        if not record.public_key.verify_struct(payload, signature):
            raise RevocationError(
                f"ownership proof for {action} failed signature verification"
            )

    # -- revocation ------------------------------------------------------------------

    def revoke(
        self, identifier: PhotoIdentifier, nonce: bytes, signature: Signature
    ) -> ClaimRecord:
        """Mark a photo revoked after verifying ownership."""
        record = self._require_record(identifier)
        if not self.config.allow_revocation:
            raise RevocationError(
                f"ledger {self.ledger_id!r} is a permanent archive; "
                "revocation is disabled by policy"
            )
        self._verify_ownership("revoke", record, nonce, signature)
        if record.state is RevocationState.PERMANENTLY_REVOKED:
            raise RevocationError("photo is permanently revoked")
        if record.state is RevocationState.NOT_REVOKED:
            flip_time = self.now()
            self.store.apply_flip(
                identifier.serial,
                RevocationState.REVOKED,
                record.revocation_epoch + 1,
                "revoke",
                flip_time,
            )
            self.store.log_operation("revoke", identifier.serial, flip_time)
        self.revocations_served += 1
        return record

    def unrevoke(
        self, identifier: PhotoIdentifier, nonce: bytes, signature: Signature
    ) -> ClaimRecord:
        """Clear the revoked flag after verifying ownership."""
        record = self._require_record(identifier)
        if not self.config.allow_revocation:
            raise RevocationError(
                f"ledger {self.ledger_id!r} is a permanent archive; "
                "its records never change revocation state"
            )
        self._verify_ownership("unrevoke", record, nonce, signature)
        if record.state is RevocationState.PERMANENTLY_REVOKED:
            raise RevocationError(
                "photo was permanently revoked by the appeals process"
            )
        if record.state is RevocationState.REVOKED:
            flip_time = self.now()
            self.store.apply_flip(
                identifier.serial,
                RevocationState.NOT_REVOKED,
                record.revocation_epoch + 1,
                "unrevoke",
                flip_time,
            )
            self.store.log_operation("unrevoke", identifier.serial, flip_time)
        self.revocations_served += 1
        return record

    def permanently_revoke(self, identifier: PhotoIdentifier) -> ClaimRecord:
        """Appeals-process outcome: irreversible revocation of a copy."""
        record = self._require_record(identifier)
        flip_time = self.now()
        self.store.apply_flip(
            identifier.serial,
            RevocationState.PERMANENTLY_REVOKED,
            record.revocation_epoch + 1,
            "permanent_revoke",
            flip_time,
        )
        self.store.log_operation(
            "permanent_revoke", identifier.serial, flip_time
        )
        return record

    # -- status -----------------------------------------------------------------------

    def status(self, identifier: PhotoIdentifier) -> StatusProof:
        """Signed revocation status; the hot-path query of section 4."""
        record = self._require_record(identifier)
        self.status_queries_served += 1
        return self._sign_status(record)

    def status_batch(self, identifiers) -> list:
        """Signed statuses for many identifiers in one request.

        The aggregator recheck path (section 3.2's "periodically
        rechecks") sweeps thousands of photos at once; batching
        amortizes the request overhead.  Each answer is individually
        signed (so proofs stay independently verifiable and cacheable)
        and each counts toward the load counters.
        """
        return [self.status(identifier) for identifier in identifiers]

    def _sign_status(self, record: ClaimRecord) -> StatusProof:
        checked_at = self.now()
        payload = {
            "identifier": record.identifier.to_string(),
            "revoked": record.is_revoked,
            "permanent": record.state is RevocationState.PERMANENTLY_REVOKED,
            "checked_at": checked_at,
            "ledger": self.fingerprint,
        }
        return StatusProof(
            identifier=record.identifier.to_string(),
            revoked=record.is_revoked,
            permanently_revoked=record.state is RevocationState.PERMANENTLY_REVOKED,
            checked_at=checked_at,
            ledger_fingerprint=self.fingerprint,
            signature=self._keypair.sign_struct(payload),
        )

    # -- lookup -------------------------------------------------------------------------

    def record(self, identifier: PhotoIdentifier) -> Optional[ClaimRecord]:
        if identifier.ledger_id != self.ledger_id:
            return None
        return self.store.get(identifier.serial)

    def _require_record(self, identifier: PhotoIdentifier) -> ClaimRecord:
        record = self.record(identifier)
        if record is None:
            raise RevocationError(
                f"no record for {identifier} on ledger {self.ledger_id!r}"
            )
        return record

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Ledger({self.ledger_id!r}, records={len(self.store)})"
