"""Ledgers: "timestamped databases of photos" (section 3.1).

A ledger supports the four IRS operations on its side of the wire:

* **claim** -- record (encrypted hash, public key, authenticated
  timestamp, revoked flag), return a unique identifier;
* **revoke/unrevoke** -- flip the flag after a challenge-response
  ownership proof;
* **status** -- signed (non-)revocation statements used by validators
  and aggregators;
* plus the supporting machinery the paper describes: Bloom filter
  export with hourly deltas (section 4.4), the appeals process for
  fraudulently re-claimed copies (sections 3.2 and 5), a Merkle
  transparency log, and owner-side honesty probes (section 5).
"""

from repro.ledger.records import ClaimRecord, RevocationState
from repro.ledger.storage import LedgerStore
from repro.ledger.events import EventLog, LedgerEvent, EventLogError
from repro.ledger.durable import DurableStore
from repro.ledger.recovery import RecoveryReport, recover_store
from repro.ledger.ledger import Ledger, LedgerConfig
from repro.ledger.registry import LedgerRegistry
from repro.ledger.proofs import StatusProof
from repro.ledger.export import FilterExporter, FilterSnapshot, coordinated_exporters
from repro.ledger.economics import ServingCostModel, BootstrapScale
from repro.ledger.appeals import AppealsProcess, Appeal, AppealDecision
from repro.ledger.probes import HonestyProber, ProbeReport

__all__ = [
    "ClaimRecord",
    "RevocationState",
    "LedgerStore",
    "EventLog",
    "LedgerEvent",
    "EventLogError",
    "DurableStore",
    "RecoveryReport",
    "recover_store",
    "Ledger",
    "LedgerConfig",
    "LedgerRegistry",
    "StatusProof",
    "FilterExporter",
    "FilterSnapshot",
    "coordinated_exporters",
    "ServingCostModel",
    "BootstrapScale",
    "AppealsProcess",
    "Appeal",
    "AppealDecision",
    "HonestyProber",
    "ProbeReport",
]
