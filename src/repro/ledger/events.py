"""The append-only, hash-chained ledger event log.

Every state transition a ledger performs — claiming a record, flipping
its revocation flag, adopting a peer's newer state — is recorded as a
typed :class:`LedgerEvent` with a sequence number and a blake2b chain
hash over the event's canonical encoding.  Current ledger state is a
*materialized view* of this log: :func:`replay` rebuilds the records
map from any prefix, and the chain hash makes every prefix
self-authenticating — an auditor holding the head hash can verify the
entire history, and a recovery path can prove exactly which suffix of
a damaged log is still trustworthy.

Two event payload shapes exist:

* **full-record** events (``claim``, ``install``) carry the complete
  :meth:`~repro.ledger.records.ClaimRecord.to_payload` under a
  ``"record"`` key — replay upserts the record;
* **flip** events (``revoke``, ``unrevoke``, ``permanent_revoke``,
  ``apply_state``, ``install``-updates) carry ``{"state", "epoch"}`` —
  replay mutates the existing record.

Payloads are JSON-able by construction (bytes are hex-encoded at the
record layer), so the same structure feeds the canonical encoder for
chain hashes and ``json.dumps`` for durable frames and snapshots.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.crypto.hashing import canonical_encode
from repro.ledger.records import ClaimRecord, RevocationState

__all__ = [
    "GENESIS_HASH",
    "EventLog",
    "EventLogError",
    "LedgerEvent",
    "chain_hash",
    "event_to_dict",
    "event_from_dict",
    "replay",
    "verify_events",
]

#: The anchor every chain starts from (no predecessor to hash).
GENESIS_HASH = hashlib.blake2b(
    b"repro-ledger-eventlog-genesis", digest_size=32
).digest()

#: Event kinds that carry a full record payload (replay upserts).
FULL_RECORD_KINDS = frozenset({"claim", "install"})

#: Event kinds that carry a ``{"state", "epoch"}`` flip payload.
FLIP_KINDS = frozenset(
    {"revoke", "unrevoke", "permanent_revoke", "apply_state", "install"}
)


class EventLogError(Exception):
    """Raised on chain breaks, malformed events, or unreplayable logs."""


@dataclass(frozen=True)
class LedgerEvent:
    """One link in the hash chain.

    Attributes
    ----------
    seq:
        1-based position in the log; contiguous by construction.
    kind:
        Event type (see module docstring for the payload contract).
    serial:
        The claim record the event concerns.
    time:
        Ledger-local time of the mutation (injected clock; informative,
        but hashed so history cannot be silently re-dated).
    payload:
        JSON-able event body (full record or flip).
    prev_hash:
        Chain hash of the predecessor (:data:`GENESIS_HASH` for seq 1).
    chain_hash:
        blake2b over ``prev_hash + canonical_encode(body)``.
    """

    seq: int
    kind: str
    serial: int
    time: float
    payload: dict
    prev_hash: bytes
    chain_hash: bytes

    def body(self) -> dict:
        """The hashed portion: everything but the chain fields."""
        return {
            "seq": self.seq,
            "kind": self.kind,
            "serial": self.serial,
            "time": self.time,
            "payload": self.payload,
        }


def chain_hash(prev_hash: bytes, body: dict) -> bytes:
    """blake2b link: predecessor hash + canonical body bytes."""
    return hashlib.blake2b(
        prev_hash + canonical_encode(body), digest_size=32
    ).digest()


def event_to_dict(event: LedgerEvent) -> dict:
    """JSON-able form for durable frames (hashes hex-encoded)."""
    body = event.body()
    body["prev_hash"] = event.prev_hash.hex()
    body["chain_hash"] = event.chain_hash.hex()
    return body


def event_from_dict(data: dict) -> LedgerEvent:
    return LedgerEvent(
        seq=data["seq"],
        kind=data["kind"],
        serial=data["serial"],
        time=data["time"],
        payload=data["payload"],
        prev_hash=bytes.fromhex(data["prev_hash"]),
        chain_hash=bytes.fromhex(data["chain_hash"]),
    )


class EventLog:
    """An append-only chain of :class:`LedgerEvent` values.

    The log may be *resumed* from an anchor — a recovery installs the
    verified head ``(seq, hash)`` and continues appending without
    holding the whole history in memory (the durable store keeps it).
    """

    def __init__(
        self, anchor_seq: int = 0, anchor_hash: bytes = GENESIS_HASH
    ):
        self._anchor_seq = int(anchor_seq)
        self._anchor_hash = anchor_hash
        self._events: List[LedgerEvent] = []
        self._head_seq = self._anchor_seq
        self._head_hash = anchor_hash

    # -- appending ---------------------------------------------------------------

    def append(
        self, kind: str, serial: int, time: float, payload: dict
    ) -> LedgerEvent:
        """Seal one event onto the chain and return it.

        Inputs are normalized to plain JSON types before hashing:
        numpy scalars (e.g. ``np.float64`` simulation times) are float
        subclasses whose ``repr`` differs from the plain float's, so
        hashing them raw would seal a chain hash that no longer
        re-derives after a JSON round-trip through the durable store.
        """
        seq = self._head_seq + 1
        serial = int(serial)
        time = float(time)
        payload = json.loads(json.dumps(payload))
        body = {
            "seq": seq,
            "kind": kind,
            "serial": serial,
            "time": time,
            "payload": payload,
        }
        event = LedgerEvent(
            seq=seq,
            kind=kind,
            serial=serial,
            time=time,
            payload=payload,
            prev_hash=self._head_hash,
            chain_hash=chain_hash(self._head_hash, body),
        )
        self._events.append(event)
        self._head_seq = seq
        self._head_hash = event.chain_hash
        return event

    # -- inspection ---------------------------------------------------------------

    @property
    def head_seq(self) -> int:
        return self._head_seq

    @property
    def head_hash(self) -> bytes:
        return self._head_hash

    @property
    def anchor_seq(self) -> int:
        return self._anchor_seq

    @property
    def events(self) -> List[LedgerEvent]:
        """Events appended since the anchor (the in-memory window)."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    # -- verification -------------------------------------------------------------

    def verify_chain(self) -> bytes:
        """Re-derive every hash in the window; returns the head hash.

        Raises :class:`EventLogError` at the first broken link — a
        gapped sequence number, a mismatched predecessor hash, or a
        chain hash that does not re-derive from the event body.
        """
        return verify_events(
            self._events, self._anchor_seq, self._anchor_hash
        )


def verify_events(
    events: Iterable[LedgerEvent], anchor_seq: int, anchor_hash: bytes
) -> bytes:
    """Verify a contiguous event run against its anchor; head hash out."""
    head_seq, head_hash = anchor_seq, anchor_hash
    for event in events:
        if event.seq != head_seq + 1:
            raise EventLogError(
                f"sequence gap: expected {head_seq + 1}, got {event.seq}"
            )
        if event.prev_hash != head_hash:
            raise EventLogError(
                f"chain break at seq {event.seq}: predecessor hash mismatch"
            )
        derived = chain_hash(head_hash, event.body())
        if derived != event.chain_hash:
            raise EventLogError(
                f"chain break at seq {event.seq}: hash does not re-derive"
            )
        head_seq, head_hash = event.seq, event.chain_hash
    return head_hash


def replay(
    events: Iterable[LedgerEvent],
    base: Optional[Dict[int, ClaimRecord]] = None,
) -> Dict[int, ClaimRecord]:
    """Materialize the records map from ``base`` plus ``events``.

    ``base`` (a snapshot's state) is never mutated; records are copied
    on first touch so replay is a pure function of its inputs.
    """
    records: Dict[int, ClaimRecord] = {}
    if base:
        for serial, record in base.items():
            records[serial] = ClaimRecord.from_payload(record.to_payload())
    for event in events:
        payload = event.payload
        if "record" in payload:
            records[event.serial] = ClaimRecord.from_payload(
                payload["record"]
            )
            continue
        record = records.get(event.serial)
        if record is None:
            raise EventLogError(
                f"{event.kind} event at seq {event.seq} flips unknown "
                f"serial {event.serial}"
            )
        record.state = RevocationState(payload["state"])
        record.revocation_epoch = payload["epoch"]
    return records
