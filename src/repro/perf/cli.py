"""``python -m repro perf``: run the hot-path suite, write or gate.

Two modes:

* default — measure the suite, print the table, write the canonical
  report to ``--output`` (``BENCH_hotpaths.json`` at the repo root;
  commit the file to record the trajectory);
* ``--check`` — measure, then compare against the committed baseline
  with the tolerance band (ratios and checksums only — absolute
  numbers never gate); exit 1 on any failure.  This is the CI job.

``--slowdown-ns`` busy-waits inside every fast-path call; the
regression tests use it to prove the gate actually trips.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro.analysis.engine import repo_root

__all__ = ["add_perf_arguments", "run_perf"]

_DEFAULT_REPORT = "BENCH_hotpaths.json"


def add_perf_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--check", action="store_true",
        help="compare against the committed baseline instead of writing; "
        "exit 1 on regression (the CI gate)",
    )
    parser.add_argument(
        "--output", metavar="PATH", default=None,
        help=f"report path (default {_DEFAULT_REPORT} at the repo root)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="baseline to --check against (default: the --output path)",
    )
    parser.add_argument(
        "--seed", type=int, default=2022,
        help="workload seed; identical seeds rebuild identical workloads "
        "(default 2022)",
    )
    parser.add_argument(
        "--warmup", type=int, default=2,
        help="untimed calls per side before measuring (default 2)",
    )
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timed calls per side (default 5)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="fraction of the committed speedup still accepted "
        "(default 0.25; floors in the suite always apply)",
    )
    parser.add_argument(
        "--slowdown-ns", type=int, default=0, metavar="NS",
        help="busy-wait injected into every fast-path call "
        "(regression-gate self-test hook)",
    )


def _render_table(cases: dict) -> str:
    lines = [
        f"{'case':<26} {'kind':<7} {'ops':>6} {'ops/sec':>12} "
        f"{'p50 ns/op':>10} {'speedup':>8} {'floor':>6}"
    ]
    for name in sorted(cases):
        entry = cases[name]
        fast = entry["timing"]["fast"]
        speedup = entry["timing"].get("speedup")
        lines.append(
            f"{name:<26} {entry['kind']:<7} {entry['ops']:>6} "
            f"{fast['ops_per_sec']:>12,.0f} {fast['p50_ns_per_op']:>10,.0f} "
            + (f"{speedup:>7.2f}x" if speedup is not None else f"{'—':>8}")
            + f" {entry['min_speedup']:>5.1f}x"
        )
    return "\n".join(lines)


def run_perf(args: argparse.Namespace) -> int:
    from repro.perf.harness import run_suite
    from repro.perf.report import (
        build_report,
        canonical_json,
        compare_to_baseline,
    )
    from repro.perf.suite import default_suite

    root = repo_root()
    output = Path(args.output) if args.output else root / _DEFAULT_REPORT
    cases = run_suite(
        default_suite(),
        seed=args.seed,
        warmup=args.warmup,
        repeats=args.repeats,
        slowdown_ns=args.slowdown_ns,
    )
    report = build_report(
        cases, seed=args.seed, warmup=args.warmup, repeats=args.repeats
    )
    print(_render_table(cases))
    if args.check:
        baseline_path = Path(args.baseline) if args.baseline else output
        if not baseline_path.exists():
            print(f"perf: no baseline at {baseline_path}; run "
                  "`python -m repro perf` and commit the report first")
            return 1
        with open(baseline_path, "r", encoding="utf-8") as fh:
            baseline = json.load(fh)
        failures = compare_to_baseline(
            report, baseline, tolerance=args.tolerance
        )
        if failures:
            print(f"\nperf: {len(failures)} gate failure(s) "
                  f"vs {baseline_path.name}:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print(f"\nperf: all {len(cases)} case(s) within the tolerance band "
              f"of {baseline_path.name}")
        return 0
    with open(output, "w", encoding="utf-8") as fh:
        fh.write(canonical_json(report))
    print(f"\nperf: report written to {output}")
    return 0
