"""Seeded workload builders shared by the perf harness and the benches.

Every builder is a pure function of its seed, so the harness, the
pytest benchmarks and the CLI demos can all say "the E17 burst" or
"4096 probe keys" and mean the same bytes.  ``burst_indices`` in
particular is the query-index stream the E17 scale-out bench and the
``quorum_round`` perf case both drive — one definition, identical RNG
draws, comparable results.
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = [
    "burst_indices",
    "member_keys",
    "probe_keys",
    "signature_blobs",
]


def burst_indices(seed: int, population_size: int, queries: int) -> np.ndarray:
    """The population indices a status-check burst queries, in order."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, population_size, size=queries)


def member_keys(seed: int, count: int, nbytes: int = 12) -> List[bytes]:
    """``count`` distinct pseudo-random keys (compact-identifier shaped)."""
    rng = np.random.default_rng(seed)
    raw = rng.integers(0, 256, size=(count, nbytes), dtype=np.uint8)
    # Prefix with the row index so keys are distinct by construction.
    return [
        index.to_bytes(4, "big") + row.tobytes()
        for index, row in enumerate(raw)
    ]


def probe_keys(
    members: List[bytes], seed: int, count: int, hit_fraction: float = 0.5
) -> List[bytes]:
    """A probe stream mixing present keys with guaranteed-absent ones.

    Hits are drawn (with repetition) from ``members``; misses carry a
    ``b"__miss__"`` prefix no member key has, so the expected verdicts
    are exact, not probabilistic.
    """
    rng = np.random.default_rng(seed)
    hits = rng.random(size=count) < hit_fraction
    choices = rng.integers(0, len(members), size=count)
    return [
        members[int(choice)] if hit else b"__miss__" + int(i).to_bytes(8, "big")
        for i, (hit, choice) in enumerate(zip(hits, choices))
    ]


def signature_blobs(seed: int, count: int, nbytes: int = 64) -> List[bytes]:
    """``count`` random packed perceptual-signature payloads."""
    rng = np.random.default_rng(seed)
    raw = rng.integers(0, 256, size=(count, nbytes), dtype=np.uint8)
    return [row.tobytes() for row in raw]
