"""The measurement protocol: warmup, repeats, percentiles, allocations.

One :class:`BenchCase` describes one hot path.  *Paired* cases carry
both the vectorized fast path and its scalar reference oracle; the
harness times both, computes the speedup, and — before reporting any
number — asserts the two produce checksum-identical results.  A fast
path that drifts from its oracle is a correctness bug, and the harness
treats it as one (raises, rather than reporting a tainted speedup).

Protocol per side:

1. ``warmup`` untimed calls (JIT-free Python still benefits: branch
   caches, page faults, numpy internals);
2. ``repeats`` timed calls; per-op p50/p99 come from the per-call
   distribution, ops/sec from the median call;
3. one extra call under ``tracemalloc`` for the allocation peak —
   separate, because tracing skews timing by an order of magnitude.

Wall-clock access is confined to :mod:`repro.perf.timing`.
"""

from __future__ import annotations

import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.perf.timing import busy_wait_ns, monotonic_ns

__all__ = ["BenchCase", "PerfError", "run_case", "run_suite"]


class PerfError(Exception):
    """Raised when a case is mis-specified or an oracle disagrees."""


@dataclass(frozen=True)
class BenchCase:
    """One measured hot path.

    Attributes
    ----------
    name:
        Stable case id (the key in ``BENCH_hotpaths.json``).
    description:
        One line for the report table.
    setup:
        ``setup(seed) -> state``; everything random derives from the
        seed, so checksums are reproducible across runs and machines.
    fast:
        ``fast(state) -> result``; the vectorized path under test.
    ops:
        ``ops(state) -> int``; logical operations per call (keys
        probed, signatures verified …), the denominator for per-op
        latency.
    checksum:
        ``checksum(state, result) -> str``; a deterministic digest of
        the *result*, used both as the paired equal-results lock and as
        the cross-run/cross-machine identity check in ``--check``.
    baseline:
        Optional scalar oracle ``baseline(state) -> result``; present
        on paired cases.
    min_speedup:
        Floor the fast path must clear over the oracle on any machine
        (paired cases only).  The CI gate takes the max of this floor
        and the committed baseline's speedup scaled by the tolerance.
    """

    name: str
    description: str
    setup: Callable[[int], Any]
    fast: Callable[[Any], Any]
    ops: Callable[[Any], int]
    checksum: Callable[[Any, Any], str]
    baseline: Optional[Callable[[Any], Any]] = None
    min_speedup: float = 1.0


def _measure(
    fn: Callable[[Any], Any],
    state: Any,
    ops: int,
    warmup: int,
    repeats: int,
    slowdown_ns: int = 0,
) -> tuple[Dict[str, float], Any]:
    """Time ``fn(state)`` and return (timing dict, last result)."""
    result: Any = None
    for _ in range(warmup):
        result = fn(state)
    samples_ns: List[int] = []
    for _ in range(repeats):
        started = monotonic_ns()
        result = fn(state)
        if slowdown_ns:
            busy_wait_ns(slowdown_ns)
        samples_ns.append(monotonic_ns() - started)
    samples = np.array(samples_ns, dtype=np.float64)
    median_call_ns = float(np.percentile(samples, 50))
    per_op = samples / float(max(ops, 1))
    tracemalloc.start()
    fn(state)
    _, alloc_peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    timing = {
        "ops_per_sec": float(max(ops, 1)) / (median_call_ns / 1e9),
        "p50_ns_per_op": float(np.percentile(per_op, 50)),
        "p99_ns_per_op": float(np.percentile(per_op, 99)),
        "median_call_ms": median_call_ns / 1e6,
        "alloc_peak_bytes": int(alloc_peak),
    }
    return timing, result


def run_case(
    case: BenchCase,
    seed: int,
    warmup: int,
    repeats: int,
    slowdown_ns: int = 0,
) -> Dict[str, Any]:
    """Measure one case; returns its report entry.

    ``slowdown_ns`` injects a busy-wait into every *fast-path* call —
    the hook the regression-gate self-test uses to fake a slowdown
    without touching product code.
    """
    if warmup < 0 or repeats < 1:
        raise PerfError("need warmup >= 0 and repeats >= 1")
    state = case.setup(seed)
    ops = int(case.ops(state))
    if ops < 1:
        raise PerfError(f"case {case.name!r} reports {ops} ops")
    fast_timing, fast_result = _measure(
        case.fast, state, ops, warmup, repeats, slowdown_ns=slowdown_ns
    )
    digest = case.checksum(state, fast_result)
    entry: Dict[str, Any] = {
        "kind": "paired" if case.baseline is not None else "single",
        "description": case.description,
        "ops": ops,
        "checksum": digest,
        "min_speedup": float(case.min_speedup),
        "timing": {"fast": fast_timing},
    }
    if case.baseline is not None:
        base_timing, base_result = _measure(
            case.baseline, state, ops, warmup, repeats
        )
        base_digest = case.checksum(state, base_result)
        if base_digest != digest:
            raise PerfError(
                f"case {case.name!r}: fast path and scalar oracle disagree "
                f"(fast {digest[:16]}, oracle {base_digest[:16]})"
            )
        entry["timing"]["baseline"] = base_timing
        entry["timing"]["speedup"] = (
            fast_timing["ops_per_sec"] / base_timing["ops_per_sec"]
        )
    return entry


def run_suite(
    cases: Sequence[BenchCase],
    seed: int,
    warmup: int,
    repeats: int,
    slowdown_ns: int = 0,
) -> Dict[str, Dict[str, Any]]:
    """Measure every case; returns ``{case name: entry}``."""
    names = [case.name for case in cases]
    if len(set(names)) != len(names):
        raise PerfError(f"duplicate case names in suite: {sorted(names)}")
    return {
        case.name: run_case(
            case, seed, warmup, repeats, slowdown_ns=slowdown_ns
        )
        for case in cases
    }
