"""The hot-path case registry: what ``python -m repro perf`` measures.

Every paired case pits a vectorized fast path against the scalar
reference oracle it must equal (the differential tests in
``tests/perf/test_vectorized_vs_scalar.py`` hold the same pairs equal
under hypothesis-generated workloads; here the harness additionally
locks each run's results by checksum before reporting a speedup).

``min_speedup`` floors are deliberately far below the measured
speedups — they are the "vectorization still exists on the slowest
supported machine" line, not the trajectory; the committed baseline's
speedup scaled by the tolerance supplies the tighter band.  See
docs/perf.md for the case table and the re-baselining procedure.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List

import numpy as np

from repro.perf.harness import BenchCase
from repro.perf.workloads import (
    burst_indices,
    member_keys,
    probe_keys,
    signature_blobs,
)

__all__ = ["default_suite"]


def _digest(parts: List[bytes]) -> str:
    h = hashlib.sha256()
    for part in parts:
        h.update(part)
    return h.hexdigest()


def _bool_digest(values: Any) -> str:
    return _digest([np.asarray(values, dtype=bool).tobytes()])


# -- membership filters -----------------------------------------------------


def _bloom_setup(seed: int) -> Dict[str, Any]:
    from repro.filters.bloom import BloomFilter

    members = member_keys(seed, 8192)
    bloom = BloomFilter.for_capacity(len(members), 0.01)
    bloom.add_many(members)
    return {"filter": bloom, "probes": probe_keys(members, seed + 1, 4096)}


def _xor_setup(seed: int) -> Dict[str, Any]:
    from repro.filters.xor_filter import XorFilter

    members = member_keys(seed, 4096)
    return {
        "filter": XorFilter.build(members, seed=1),
        "probes": probe_keys(members, seed + 1, 4096),
    }


def _fuse_setup(seed: int) -> Dict[str, Any]:
    from repro.filters.binary_fuse import BinaryFuseFilter

    members = member_keys(seed, 4096)
    return {
        "filter": BinaryFuseFilter.build(members, seed=1),
        "probes": probe_keys(members, seed + 1, 4096),
    }


def _membership_fast(state: Dict[str, Any]) -> np.ndarray:
    return state["filter"].query_many(state["probes"])


def _membership_oracle(state: Dict[str, Any]) -> List[bool]:
    flt = state["filter"]
    return [key in flt for key in state["probes"]]


def _membership_ops(state: Dict[str, Any]) -> int:
    return len(state["probes"])


def _membership_checksum(state: Dict[str, Any], result: Any) -> str:
    return _bool_digest(result)


# -- perceptual-hash distance ------------------------------------------------


def _hamming_setup(seed: int) -> Dict[str, Any]:
    from repro.media.perceptual import RobustHash, pack_signatures

    hashes = [RobustHash(bits=blob) for blob in signature_blobs(seed, 2048)]
    return {
        "query": RobustHash(bits=signature_blobs(seed + 1, 1)[0]),
        "hashes": hashes,
        "packed": pack_signatures(hashes),
    }


def _hamming_fast(state: Dict[str, Any]) -> np.ndarray:
    from repro.media.perceptual import hamming_many

    return hamming_many(state["query"], state["packed"])


def _hamming_oracle(state: Dict[str, Any]) -> List[float]:
    query = state["query"]
    return [query.distance(other) for other in state["hashes"]]


def _hamming_checksum(state: Dict[str, Any], result: Any) -> str:
    # Distances are multiples of 1/512; scale to exact bit counts so
    # the digest never hinges on float formatting.
    counts = np.rint(np.asarray(result, dtype=np.float64) * 512).astype(np.int64)
    return _digest([counts.tobytes()])


# -- consistent-hash ring placement ------------------------------------------


_RING_COUNT = 3


def _ring_setup(seed: int) -> Dict[str, Any]:
    from repro.cluster.ring import HashRing

    ring = HashRing([f"shard-{i}" for i in range(8)])
    ring.replicas(b"warm", _RING_COUNT)  # build the lookup tables
    return {"ring": ring, "keys": member_keys(seed, 2048)}


def _ring_fast(state: Dict[str, Any]) -> List[List[str]]:
    return state["ring"].replicas_many(state["keys"], _RING_COUNT)


def _ring_oracle(state: Dict[str, Any]) -> List[List[str]]:
    ring = state["ring"]
    return [ring._replicas_walk(key, _RING_COUNT) for key in state["keys"]]


def _ring_checksum(state: Dict[str, Any], result: Any) -> str:
    return _digest(
        ["|".join(row).encode("utf-8") + b"\n" for row in result]
    )


# -- batch signature verification --------------------------------------------


def _signature_setup(seed: int) -> Dict[str, Any]:
    from repro.crypto.signatures import KeyPair

    keypair = KeyPair.generate(bits=512, rng=np.random.default_rng(seed))
    messages = [b"perf-msg-%d" % i for i in range(64)]
    items = [(message, keypair.sign(message)) for message in messages]
    return {"public": keypair.public, "items": items}


def _signature_fast(state: Dict[str, Any]) -> List[bool]:
    return state["public"].verify_batch(state["items"])


def _signature_oracle(state: Dict[str, Any]) -> List[bool]:
    public = state["public"]
    return [public.verify(message, sig) for message, sig in state["items"]]


def _signature_ops(state: Dict[str, Any]) -> int:
    return len(state["items"])


# -- E17-shaped quorum round ---------------------------------------------------


def _quorum_setup(seed: int) -> Dict[str, Any]:
    from repro.cluster.frontend import ClusterConfig
    from repro.cluster.simnet import SimulatedCluster

    cluster = SimulatedCluster(
        4, config=ClusterConfig(replication_factor=1), seed=seed
    )
    population = cluster.seed_population(256, revoked_fraction=0.3)
    indices = burst_indices(seed, population.size, 192)
    return {
        "cluster": cluster,
        "identifiers": [population.identifiers[int(i)] for i in indices],
    }


def _quorum_round(state: Dict[str, Any]) -> List[bool]:
    cluster = state["cluster"]
    sim = cluster.simulator
    identifiers = state["identifiers"]
    verdicts: List[Any] = [None] * len(identifiers)

    def _record(index: int, answer: Any) -> None:
        verdicts[index] = answer.revoked

    sim.schedule(
        0.0,
        cluster.frontend.status_many_async,
        identifiers,
        _record,
    )
    sim.run()
    if any(verdict is None for verdict in verdicts):
        raise RuntimeError("quorum round left unanswered queries")
    return verdicts


def _quorum_ops(state: Dict[str, Any]) -> int:
    return len(state["identifiers"])


def _quorum_checksum(state: Dict[str, Any], result: Any) -> str:
    return _bool_digest(result)


# -- event-sourced ledger: append, verify, recover ----------------------------


_EVENT_COUNT = 2048


def _event_payloads(seed: int, count: int) -> List[Dict[str, Any]]:
    rng = np.random.default_rng(seed)
    states = ("revoked", "valid")
    return [
        {"state": states[int(rng.integers(0, 2))], "epoch": index + 1}
        for index in range(count)
    ]


def _event_append_setup(seed: int) -> Dict[str, Any]:
    return {"payloads": _event_payloads(seed, _EVENT_COUNT)}


def _event_append_run(state: Dict[str, Any]) -> str:
    from repro.ledger.events import EventLog

    log = EventLog()
    for index, payload in enumerate(state["payloads"]):
        log.append("apply_state", index + 1, float(index), payload)
    return log.head_hash.hex()


def _chain_verify_setup(seed: int) -> Dict[str, Any]:
    from repro.ledger.events import EventLog

    log = EventLog()
    for index, payload in enumerate(_event_payloads(seed, _EVENT_COUNT)):
        log.append("apply_state", index + 1, float(index), payload)
    return {"events": log.events}


def _chain_verify_run(state: Dict[str, Any]) -> str:
    from repro.ledger.events import GENESIS_HASH, verify_events

    return verify_events(state["events"], 0, GENESIS_HASH).hex()


def _recovery_setup(seed: int) -> Dict[str, Any]:
    """A durable store with a long flip history and fresh snapshots.

    200 real claims then 3000 state flips, snapshotting every 1024
    events — the shape where snapshot-anchored recovery pays: the
    snapshot path replays only the post-anchor tail while the genesis
    path re-verifies and replays the whole log.
    """
    from repro.crypto.hashing import sha256_hex
    from repro.crypto.signatures import KeyPair
    from repro.crypto.timestamp import TimestampAuthority
    from repro.ledger.durable import DurableStore
    from repro.ledger.ledger import Ledger
    from repro.ledger.records import RevocationState

    rng = np.random.default_rng(seed)
    owner = KeyPair.generate(bits=512, rng=rng)
    tsa = TimestampAuthority(
        keypair=KeyPair.generate(bits=512, rng=rng)
    )
    ledger = Ledger("perf", tsa, keypair=owner)
    store = ledger.store
    disk = DurableStore()
    appended = [0]

    def journal(event) -> None:
        disk.append_event(event)
        appended[0] += 1
        if appended[0] % 1024 == 0:
            disk.write_snapshot(
                store.records_map(),
                store.next_serial,
                store.events.head_seq,
                store.events.head_hash,
            )

    store.attach_journal(journal)
    serials = []
    for index in range(200):
        content_hash = sha256_hex(b"perf:recover:%d" % index)
        record = ledger.claim(
            content_hash,
            owner.sign(content_hash.encode("utf-8")),
            owner.public,
        )
        serials.append(record.identifier.serial)
    for index in range(3000):
        serial = serials[index % len(serials)]
        record = store.get(serial)
        flipped = (
            RevocationState.NOT_REVOKED
            if record.state is RevocationState.REVOKED
            else RevocationState.REVOKED
        )
        store.apply_flip(
            serial,
            flipped,
            record.revocation_epoch + 1,
            "apply_state",
            float(index),
        )
    return {"disk": disk, "events": store.events.head_seq}


def _recovery_fast(state: Dict[str, Any]) -> Any:
    from repro.ledger.recovery import recover_store

    return recover_store(state["disk"])


def _recovery_baseline(state: Dict[str, Any]) -> Any:
    from repro.ledger.recovery import recover_store

    return recover_store(state["disk"], use_snapshots=False)


def _recovery_checksum(state: Dict[str, Any], result: Any) -> str:
    from repro.ledger.recovery import records_digest

    if result.evidence:
        raise RuntimeError(
            f"recovery found evidence on a clean disk: {result.evidence}"
        )
    return f"{result.head_seq}:{records_digest(result.records)}"


def default_suite() -> List[BenchCase]:
    """The committed hot-path cases, in report order."""
    return [
        BenchCase(
            name="bloom_batch_membership",
            description="BloomFilter.query_many vs per-key __contains__",
            setup=_bloom_setup,
            fast=_membership_fast,
            baseline=_membership_oracle,
            ops=_membership_ops,
            checksum=_membership_checksum,
            min_speedup=5.0,
        ),
        BenchCase(
            name="xor_batch_membership",
            description="XorFilter.query_many vs per-key __contains__",
            setup=_xor_setup,
            fast=_membership_fast,
            baseline=_membership_oracle,
            ops=_membership_ops,
            checksum=_membership_checksum,
            min_speedup=1.5,
        ),
        BenchCase(
            name="fuse_batch_membership",
            description="BinaryFuseFilter.query_many vs per-key __contains__",
            setup=_fuse_setup,
            fast=_membership_fast,
            baseline=_membership_oracle,
            ops=_membership_ops,
            checksum=_membership_checksum,
            min_speedup=1.5,
        ),
        BenchCase(
            name="hamming_distance",
            description="hamming_many popcount table vs RobustHash.distance",
            setup=_hamming_setup,
            fast=_hamming_fast,
            baseline=_hamming_oracle,
            ops=lambda state: len(state["hashes"]),
            checksum=_hamming_checksum,
            min_speedup=5.0,
        ),
        BenchCase(
            name="ring_lookup",
            description="HashRing.replicas_many table vs clockwise walk",
            setup=_ring_setup,
            fast=_ring_fast,
            baseline=_ring_oracle,
            ops=lambda state: len(state["keys"]),
            checksum=_ring_checksum,
            min_speedup=1.5,
        ),
        BenchCase(
            name="signature_verify_batch",
            description="RSA product-screen batch verify vs per-item verify",
            setup=_signature_setup,
            fast=_signature_fast,
            baseline=_signature_oracle,
            ops=_signature_ops,
            checksum=lambda state, result: _bool_digest(result),
            min_speedup=1.5,
        ),
        BenchCase(
            name="quorum_round",
            description="E17-shaped netsim status burst through the frontend",
            setup=_quorum_setup,
            fast=_quorum_round,
            ops=_quorum_ops,
            checksum=_quorum_checksum,
        ),
        BenchCase(
            name="event_append",
            description="hash-chained EventLog.append throughput",
            setup=_event_append_setup,
            fast=_event_append_run,
            ops=lambda state: len(state["payloads"]),
            checksum=lambda state, result: result,
        ),
        BenchCase(
            name="chain_verify",
            description="full chain re-derivation over the event window",
            setup=_chain_verify_setup,
            fast=_chain_verify_run,
            ops=lambda state: len(state["events"]),
            checksum=lambda state, result: result,
        ),
        BenchCase(
            name="snapshot_replay",
            description="snapshot-anchored recovery vs full-log replay",
            setup=_recovery_setup,
            fast=_recovery_fast,
            baseline=_recovery_baseline,
            ops=lambda state: state["events"],
            checksum=_recovery_checksum,
            min_speedup=1.5,
        ),
    ]
