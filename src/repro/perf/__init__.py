"""Deterministic microbenchmark harness for the repository's hot paths.

The reproduction's performance story is part of its claims: the
batching frontend (E17), the proxy filter pre-check (E6) and the
aggregator hash scan (E12) all assume the vectorized fast paths really
are faster than their scalar reference oracles.  This package pins that
assumption the same way the chaos checker pins consistency:

* :mod:`repro.perf.workloads` — seeded workload builders shared with
  the pytest benches, so the harness and E17 measure the same bytes;
* :mod:`repro.perf.harness` — the warmup/repeat measurement protocol
  (ops/sec, p50/p99 per-op latency, tracemalloc allocation peak), with
  an equal-results lock: a paired case aborts if the fast path and its
  scalar oracle disagree;
* :mod:`repro.perf.report` — canonical-JSON reports
  (``BENCH_hotpaths.json`` at the repo root) and the tolerance-band
  comparison CI gates on;
* :mod:`repro.perf.suite` — the hot-path case registry;
* :mod:`repro.perf.timing` — the *only* module in ``src/repro`` allowed
  to read the host clock (see ``allow_wall_clock`` in pyproject.toml).

Timing numbers are machine-dependent and therefore informational; the
CI gate compares *speedup ratios* (fast vs oracle on the same machine,
same run), which transfer across hosts.  See docs/perf.md.
"""

from repro.perf.harness import BenchCase, PerfError, run_case, run_suite
from repro.perf.report import (
    REPORT_SCHEMA,
    build_report,
    canonical_json,
    compare_to_baseline,
    strip_timing,
    validate_report,
)
from repro.perf.suite import default_suite

__all__ = [
    "BenchCase",
    "PerfError",
    "REPORT_SCHEMA",
    "build_report",
    "canonical_json",
    "compare_to_baseline",
    "default_suite",
    "run_case",
    "run_suite",
    "strip_timing",
    "validate_report",
]
