"""Perf report format: canonical JSON, validation, baseline comparison.

``BENCH_hotpaths.json`` is a regression artifact like the lint baseline
or a span export: canonical bytes (sorted keys, fixed indent, trailing
newline) so diffs are meaningful, and a schema the determinism tests
validate by hand — no external JSON-schema dependency.

The comparison policy (docs/perf.md spells it out for operators):

* **absolute numbers are informational.**  ops/sec and latency depend
  on the host; committing them records a trajectory, not a contract.
* **ratios gate.**  A paired case's speedup (fast vs oracle, same
  machine, same run) transfers across hosts, so ``--check`` requires
  ``current_speedup >= max(min_speedup, baseline_speedup * tolerance)``
  — the floor catches "vectorization silently gone", the scaled band
  catches creeping erosion.
* **checksums lock identity.**  Same seed must mean the same workload
  and the same results everywhere; a checksum mismatch is a
  correctness failure, not a perf regression.
"""

from __future__ import annotations

import copy
import json
import platform
import sys
from typing import Any, Dict, List

import numpy as np

__all__ = [
    "REPORT_SCHEMA",
    "build_report",
    "canonical_json",
    "compare_to_baseline",
    "strip_timing",
    "validate_report",
]

REPORT_SCHEMA = "repro-perf/1"

#: keys every per-side timing dict must carry.
_TIMING_KEYS = frozenset(
    {
        "ops_per_sec",
        "p50_ns_per_op",
        "p99_ns_per_op",
        "median_call_ms",
        "alloc_peak_bytes",
    }
)


def build_report(
    cases: Dict[str, Dict[str, Any]],
    seed: int,
    warmup: int,
    repeats: int,
) -> Dict[str, Any]:
    """Assemble the full report document around measured case entries."""
    return {
        "schema": REPORT_SCHEMA,
        "config": {"seed": seed, "warmup": warmup, "repeats": repeats},
        "host": {
            "python": platform.python_version(),
            "implementation": sys.implementation.name,
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
        "cases": cases,
    }


def canonical_json(report: Dict[str, Any]) -> str:
    """The one true byte encoding of a report."""
    return json.dumps(report, sort_keys=True, indent=2) + "\n"


def strip_timing(report: Dict[str, Any]) -> Dict[str, Any]:
    """The deterministic projection of a report.

    Drops the ``host`` block and every case's ``timing`` subtree —
    everything left (schema, config, case ids, kinds, ops, checksums,
    floors) must be byte-identical across same-seed runs on any
    machine; the determinism tests assert exactly that.
    """
    stripped = copy.deepcopy(report)
    stripped.pop("host", None)
    for entry in stripped.get("cases", {}).values():
        if isinstance(entry, dict):
            entry.pop("timing", None)
    return stripped


def validate_report(report: Any) -> List[str]:
    """Structural validation; returns a list of problems (empty = valid)."""
    problems: List[str] = []
    if not isinstance(report, dict):
        return ["report is not a JSON object"]
    if report.get("schema") != REPORT_SCHEMA:
        problems.append(
            f"schema is {report.get('schema')!r}, expected {REPORT_SCHEMA!r}"
        )
    config = report.get("config")
    if not isinstance(config, dict):
        problems.append("missing config object")
    else:
        for key in ("seed", "warmup", "repeats"):
            if not isinstance(config.get(key), int):
                problems.append(f"config.{key} missing or not an integer")
    cases = report.get("cases")
    if not isinstance(cases, dict) or not cases:
        problems.append("cases must be a non-empty object")
        return problems
    for name in sorted(cases):
        entry = cases[name]
        where = f"cases.{name}"
        if not isinstance(entry, dict):
            problems.append(f"{where} is not an object")
            continue
        kind = entry.get("kind")
        if kind not in ("paired", "single"):
            problems.append(f"{where}.kind is {kind!r}")
        if not isinstance(entry.get("ops"), int) or entry.get("ops", 0) < 1:
            problems.append(f"{where}.ops missing or not a positive integer")
        if not isinstance(entry.get("checksum"), str):
            problems.append(f"{where}.checksum missing")
        if not isinstance(entry.get("min_speedup"), (int, float)):
            problems.append(f"{where}.min_speedup missing")
        timing = entry.get("timing")
        if not isinstance(timing, dict):
            problems.append(f"{where}.timing missing")
            continue
        sides = ["fast"] + (["baseline"] if kind == "paired" else [])
        for side in sides:
            side_timing = timing.get(side)
            if not isinstance(side_timing, dict):
                problems.append(f"{where}.timing.{side} missing")
                continue
            missing = _TIMING_KEYS - set(side_timing)
            if missing:
                problems.append(
                    f"{where}.timing.{side} lacks {sorted(missing)}"
                )
        if kind == "paired" and not isinstance(
            timing.get("speedup"), (int, float)
        ):
            problems.append(f"{where}.timing.speedup missing")
    return problems


def compare_to_baseline(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.25,
) -> List[str]:
    """The CI gate: machine-independent checks of ``current`` vs committed.

    ``tolerance`` scales the committed speedup into the acceptance
    band: with 0.25, a case committed at 20x still passes anywhere
    above ``max(min_speedup, 5x)``.  Returns human-readable failures
    (empty = pass).
    """
    if not 0 < tolerance <= 1:
        raise ValueError("tolerance must be in (0, 1]")
    failures: List[str] = []
    for report, label in ((current, "current"), (baseline, "baseline")):
        for problem in validate_report(report):
            failures.append(f"invalid {label} report: {problem}")
    if failures:
        return failures
    current_cases = current["cases"]
    baseline_cases = baseline["cases"]
    for name in sorted(set(baseline_cases) - set(current_cases)):
        failures.append(f"{name}: present in baseline but not measured")
    for name in sorted(set(current_cases) - set(baseline_cases)):
        failures.append(
            f"{name}: measured but absent from the baseline "
            "(re-baseline to admit new cases)"
        )
    for name in sorted(set(current_cases) & set(baseline_cases)):
        cur, base = current_cases[name], baseline_cases[name]
        if cur["kind"] != base["kind"]:
            failures.append(
                f"{name}: kind changed {base['kind']} -> {cur['kind']}"
            )
            continue
        if cur["ops"] != base["ops"]:
            failures.append(
                f"{name}: workload size changed {base['ops']} -> {cur['ops']}"
            )
        if cur["checksum"] != base["checksum"]:
            failures.append(
                f"{name}: result checksum changed "
                f"{base['checksum'][:16]} -> {cur['checksum'][:16]} "
                "(correctness drift, not a perf regression)"
            )
        if cur["kind"] != "paired":
            continue
        gate = max(
            float(base["min_speedup"]),
            float(base["timing"]["speedup"]) * tolerance,
        )
        speedup = float(cur["timing"]["speedup"])
        if speedup < gate:
            failures.append(
                f"{name}: speedup {speedup:.2f}x below gate {gate:.2f}x "
                f"(committed {float(base['timing']['speedup']):.2f}x, "
                f"floor {float(base['min_speedup']):.2f}x, "
                f"tolerance {tolerance:.2f})"
            )
    return failures
