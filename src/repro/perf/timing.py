"""The one place in ``src/repro`` that reads the host clock.

Everything else in the package runs on injected simulation time — the
``no-wall-clock`` lint rule enforces that — but a microbenchmark
harness exists precisely to measure wall time, so this module is the
single audited exemption (``allow_wall_clock`` in pyproject.toml lists
exactly this file).  Keeping the exemption to one two-function module
means a grep for real-time leaks still has one obvious place to look.
"""

from __future__ import annotations

import time

__all__ = ["monotonic_ns", "busy_wait_ns"]


def monotonic_ns() -> int:
    """Current monotonic time in nanoseconds (highest resolution clock)."""
    return time.perf_counter_ns()


def busy_wait_ns(duration_ns: int) -> None:
    """Spin for ``duration_ns`` nanoseconds of wall time.

    The regression-gate self-test injects this into a fast path to
    fake a slowdown; spinning (rather than sleeping) keeps the stall
    visible to ``perf_counter_ns`` at microsecond scale.
    """
    if duration_ns <= 0:
        return
    deadline = time.perf_counter_ns() + duration_ns
    while time.perf_counter_ns() < deadline:
        pass
