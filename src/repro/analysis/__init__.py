"""repro.analysis: AST-based determinism & contract linter.

A dependency-free static analysis layer that enforces the repo's
simulation invariants at review time instead of debug time:

* all time comes from the injected sim clock (**no-wall-clock**),
* all randomness is seeded (**no-unseeded-random**),
* nothing bakes set-iteration order into results
  (**no-iteration-order-hazard**),
* the nullable ``obs=`` handle stays a guarded, write-only side
  channel (**obs-purity**),
* every RPC threads an explicit time budget (**deadline-discipline**),
* failures are never silently swallowed (**no-silent-except**).

Entry points: ``python -m repro lint`` and ``tools/lint.py`` (CI).
Library surface: :func:`lint_paths` plus the dataclasses below.
"""

from repro.analysis.baseline import Baseline, load_baseline, write_baseline
from repro.analysis.engine import LintConfig, LintResult, lint_paths, repo_root
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, all_rules, rule
from repro.analysis.report import findings_to_jsonl, render_table
from repro.analysis.suppress import Suppression, parse_suppressions

__all__ = [
    "Baseline",
    "Finding",
    "LintConfig",
    "LintResult",
    "Rule",
    "Suppression",
    "all_rules",
    "findings_to_jsonl",
    "lint_paths",
    "load_baseline",
    "parse_suppressions",
    "render_table",
    "repo_root",
    "rule",
    "write_baseline",
]
