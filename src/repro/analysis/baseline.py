"""Grandfathered findings: a committed JSON baseline.

A baseline lets the strict CI gate land before every historical
finding is fixed: findings recorded in the baseline are reported as
*baselined* (visible, non-fatal) while anything new fails the gate.
The goal state — and this repository's committed state — is an empty
baseline.

Matching is by ``(path, rule, message)`` multiset, deliberately
ignoring line numbers so unrelated edits above a grandfathered finding
don't resurrect it.  Two identical findings in one file consume two
baseline entries: fixing one of them shrinks the debt, adding a third
fails the gate.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Iterable, List, Tuple

from repro.analysis.findings import Finding

__all__ = ["Baseline", "load_baseline", "write_baseline"]

_VERSION = 1


class Baseline:
    """The committed debt ledger, consumed finding by finding."""

    def __init__(self, findings: Iterable[Finding] = ()):
        self.entries: List[Finding] = sorted(findings, key=Finding.sort_key)

    @staticmethod
    def _key(finding: Finding) -> Tuple[str, str, str]:
        return (finding.path, finding.rule, finding.message)

    def split(
        self, findings: Iterable[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Partition ``findings`` into ``(new, baselined)``.

        Each baseline entry absorbs at most one current finding.
        """
        budget = Counter(self._key(entry) for entry in self.entries)
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in sorted(findings, key=Finding.sort_key):
            key = self._key(finding)
            if budget[key] > 0:
                budget[key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        return new, baselined

    def __len__(self) -> int:
        return len(self.entries)


def load_baseline(path: Path) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return Baseline()
    data = json.loads(path.read_text(encoding="utf-8"))
    if data.get("version") != _VERSION:
        raise ValueError(
            f"{path}: unsupported baseline version {data.get('version')!r}"
        )
    findings = [
        Finding(
            path=entry["path"],
            line=int(entry.get("line", 0)),
            col=int(entry.get("col", 0)),
            rule=entry["rule"],
            message=entry["message"],
        )
        for entry in data.get("findings", [])
    ]
    return Baseline(findings)


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Write the canonical baseline form (sorted, stable bytes)."""
    ordered = sorted(findings, key=Finding.sort_key)
    payload = {
        "version": _VERSION,
        "findings": [finding.to_dict() for finding in ordered],
    }
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
