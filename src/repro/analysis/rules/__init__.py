"""Rule registration: importing this package registers every rule.

Import order here *is* registry order *is* a tiebreak in report
ordering — keep it alphabetical by module and do not import rules
conditionally.  ``tools/check_docs.py`` regex-scans this package for
``@rule("...")`` decorations and cross-checks the id set against
``docs/lint.md``, so a rule that is not imported here is a docs-drift
failure, not a silent no-op.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.registry import (
    INVALID_SUPPRESSION,
    PARSE_ERROR,
    rule,
)

# Engine-emitted pseudo-rules: registered so the id list is complete
# (docs drift, `--select` validation), but their checks are no-ops —
# the engine raises these findings itself.


@rule(
    PARSE_ERROR,
    "a file that does not parse cannot be checked; strict mode fails it",
)
def _parse_error(module, config) -> Iterator:
    return iter(())


@rule(
    INVALID_SUPPRESSION,
    "a malformed or reason-less suppression directive (repro-lint allow "
    "comment) is reported instead of honored",
)
def _invalid_suppression(module, config) -> Iterator:
    return iter(())


from repro.analysis.rules import deadlines  # noqa: E402,F401
from repro.analysis.rules import excepts  # noqa: E402,F401
from repro.analysis.rules import obs_purity  # noqa: E402,F401
from repro.analysis.rules import ordering  # noqa: E402,F401
from repro.analysis.rules import randomness  # noqa: E402,F401
from repro.analysis.rules import wallclock  # noqa: E402,F401
