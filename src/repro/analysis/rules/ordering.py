"""no-iteration-order-hazard: sets must be sorted before ordering matters.

CPython set iteration order depends on hash values, and string hashes
are randomized per process (``PYTHONHASHSEED``) — iterating a set into
a list, a joined string, or a report row is the classic "passes on my
machine, flaky in CI" nondeterminism.  Dicts are insertion-ordered on
every Python this repo supports, so plain dict iteration is exempt;
the hazard this rule hunts is *sets* (and expressions derived from
sets) flowing into order-sensitive output without ``sorted(...)``.

Static certainty over coverage: the rule only flags expressions it can
*prove* are sets — literals, comprehensions, ``set(...)`` /
``frozenset(...)`` calls, set operators over those, and local names
bound exclusively to such expressions.  Consumption is order-sensitive
when the set feeds a list/tuple/enumerate conversion, a join, an
ordered comprehension, or a ``for`` loop whose body appends, yields,
or writes.  Order-insensitive reducers (``sum``, ``len``, ``min``,
``max``, ``any``, ``all``, ``set``, ``sorted`` itself) never flag.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.analysis.findings import Finding
from repro.analysis.registry import rule

RULE_ID = "no-iteration-order-hazard"

#: consuming calls where input order is irrelevant (or restored).
ORDER_INSENSITIVE = frozenset(
    {
        "sorted",
        "set",
        "frozenset",
        "sum",
        "len",
        "min",
        "max",
        "any",
        "all",
        "Counter",
        "iter",  # order decided by the eventual consumer, not here
    }
)

#: ordered-output conversions of an iterable argument.
ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "reversed"})

_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
_SET_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference", "copy"}
)

#: loop-body accumulation that bakes iteration order into output.
_ORDERED_SINK_METHODS = frozenset(
    {"append", "extend", "insert", "appendleft", "write", "writelines"}
)


def _scope_of(module, node: ast.AST) -> ast.AST:
    for ancestor in module.ancestors(node):
        if isinstance(
            ancestor, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.Module)
        ):
            return ancestor
    return module.tree


def _certain_set_names(module) -> Dict[ast.AST, Set[str]]:
    """Per-scope names provably bound only to set expressions.

    Iterated to a fixpoint (bounded) so ``s = set(x); t = s | other``
    resolves ``t`` once ``s`` is known.
    """
    scopes: Dict[ast.AST, Dict[str, bool]] = {}

    def note(scope: ast.AST, name: str, is_set: bool) -> None:
        entry = scopes.setdefault(scope, {})
        entry[name] = entry.get(name, True) and is_set

    for _ in range(3):
        current = {
            scope: {n for n, ok in entry.items() if ok}
            for scope, entry in scopes.items()
        }
        scopes = {}
        for node in ast.walk(module.tree):
            scope = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name):
                    scope = _scope_of(module, node)
                    note(
                        scope,
                        target.id,
                        _is_set_expr(module, node.value, current.get(scope, set())),
                    )
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                if node.value is not None:
                    scope = _scope_of(module, node)
                    note(
                        scope,
                        node.target.id,
                        _is_set_expr(module, node.value, current.get(scope, set())),
                    )
            elif isinstance(node, ast.AugAssign) and isinstance(
                node.target, ast.Name
            ):
                if not isinstance(node.op, _SET_OPS):
                    note(_scope_of(module, node), node.target.id, False)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                for name_node in ast.walk(node.target):
                    if isinstance(name_node, ast.Name):
                        note(_scope_of(module, node), name_node.id, False)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = node.args
                for arg in (
                    args.posonlyargs + args.args + args.kwonlyargs
                ):
                    note(node, arg.arg, False)
            elif isinstance(node, ast.comprehension):
                for name_node in ast.walk(node.target):
                    if isinstance(name_node, ast.Name):
                        note(_scope_of(module, node.iter), name_node.id, False)
        if {
            scope: {n for n, ok in entry.items() if ok}
            for scope, entry in scopes.items()
        } == current:
            break
    return {
        scope: {n for n, ok in entry.items() if ok}
        for scope, entry in scopes.items()
    }


def _is_set_expr(module, node: ast.AST, set_names: Set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in (
            "set",
            "frozenset",
        ):
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
        ):
            return _is_set_expr(module, node.func.value, set_names)
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_OPS):
        return _is_set_expr(module, node.left, set_names) and _is_set_expr(
            module, node.right, set_names
        )
    if isinstance(node, ast.Name):
        return node.id in set_names
    return False


def _consumer_call_name(module, node: ast.AST) -> Optional[str]:
    """Name of the call directly consuming ``node`` as an argument."""
    parent = module.parent(node)
    if isinstance(parent, ast.Call) and node in parent.args:
        if isinstance(parent.func, ast.Name):
            return parent.func.id
        if isinstance(parent.func, ast.Attribute):
            return parent.func.attr
    return None


def _loop_bakes_order(node: ast.For) -> bool:
    for child in ast.walk(node):
        if isinstance(child, (ast.Yield, ast.YieldFrom)):
            return True
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Attribute)
            and child.func.attr in _ORDERED_SINK_METHODS
        ):
            return True
    return False


def _finding(module, node: ast.AST, what: str) -> Finding:
    return Finding(
        path=module.rel,
        line=node.lineno,
        col=node.col_offset,
        rule=RULE_ID,
        message=(
            f"{what} iterates a set in nondeterministic order; "
            "wrap it in sorted(...)"
        ),
    )


@rule(
    RULE_ID,
    "iterating a set into ordered output (list/join/report rows) without "
    "sorted() makes the output depend on hash randomization",
)
def check(module, config) -> Iterator[Finding]:
    set_names = _certain_set_names(module)

    def is_set(node: ast.AST) -> bool:
        scope = _scope_of(module, node)
        return _is_set_expr(module, node, set_names.get(scope, set()))

    for node in ast.walk(module.tree):
        if isinstance(node, ast.For) and is_set(node.iter):
            if _loop_bakes_order(node):
                yield _finding(module, node.iter, "a for loop")
        elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
            for generator in node.generators:
                if not is_set(generator.iter):
                    continue
                consumer = _consumer_call_name(module, node)
                if consumer in ORDER_INSENSITIVE:
                    continue
                kind = (
                    "a list comprehension"
                    if isinstance(node, ast.ListComp)
                    else "a dict comprehension"
                    if isinstance(node, ast.DictComp)
                    else "a generator expression"
                )
                yield _finding(module, generator.iter, kind)
        elif isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr
                if isinstance(func, ast.Attribute)
                else None
            )
            if name in ORDER_SENSITIVE_CALLS and node.args:
                if is_set(node.args[0]):
                    consumer = _consumer_call_name(module, node)
                    if consumer not in ORDER_INSENSITIVE:
                        yield _finding(module, node.args[0], f"{name}(...)")
            elif (
                name == "join"
                and isinstance(func, ast.Attribute)
                and node.args
                and is_set(node.args[0])
            ):
                yield _finding(module, node.args[0], "str.join")
        elif isinstance(node, ast.Starred) and is_set(node.value):
            parent = module.parent(node)
            if isinstance(parent, (ast.List, ast.Tuple)):
                yield _finding(module, node.value, "unpacking into a sequence")
