"""deadline-discipline: every RPC carries an explicit time budget.

The resilience layer (PR 3) made deadlines first-class: a request's
remaining budget propagates into batched RPC timeouts so a sub-call
can never outlive the request it serves.  That property only holds if
*every* RPC call site threads a ``timeout=``/``deadline=`` keyword —
one bare ``transport.invoke(...)`` and a dead replica can stall its
caller for the transport's worst-case default, or forever on a
transport without one.

The rule fires in the subsystems that speak RPC (``cluster/``,
``proxy/``, ``browser/`` path segments) on calls to the RPC surface
(``.invoke(...)``, ``.call(...)``) that pass neither keyword.  A
``**kwargs`` splat is accepted: the budget is threaded dynamically and
a static check cannot see inside it.  Passing ``timeout=None``
explicitly is also accepted — it is a visible decision to ride the
transport default, which is the reviewable act this rule exists to
force.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import rule

RULE_ID = "deadline-discipline"

_BUDGET_KEYWORDS = frozenset({"timeout", "deadline"})


def _has_budget(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg is None:  # **kwargs splat
            return True
        if keyword.arg in _BUDGET_KEYWORDS:
            return True
    return False


@rule(
    RULE_ID,
    "RPC call sites in cluster/proxy/browser must thread an explicit "
    "timeout= or deadline= keyword so no call can outlive its request",
)
def check(module, config) -> Iterator[Finding]:
    if not any(part in config.rpc_dirs for part in module.rel_parts):
        return
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in config.rpc_methods:
            continue
        if _has_budget(node):
            continue
        yield Finding(
            path=module.rel,
            line=node.lineno,
            col=node.col_offset,
            rule=RULE_ID,
            message=(
                f"RPC call .{func.attr}(...) without a timeout=/deadline= "
                "keyword; thread the caller's budget (or timeout=None to "
                "explicitly ride the transport default)"
            ),
        )
