"""obs-purity: observability is nullable and must stay side-channel.

The ``obs=`` hook threaded through extension → proxy → frontend →
shards is ``None`` unless a run opts into instrumentation, and E20's
"0.00% sim-time overhead" claim depends on two invariants:

1. **Guarded** — every call on a nullable handle (``self.obs`` /
   ``obs``) happens under a ``None`` check: an enclosing
   ``if ... obs ...:`` test, an ``obs and obs.f()`` short-circuit, or
   an earlier ``if ... obs is None: return`` in the same block chain.
2. **Pure** — the *value* of an obs call must never steer the program:
   not in an ``if``/``while``/ternary test, a comparison, a boolean
   expression, an ``assert``, a ``return``, or an argument to
   non-observability code.  Storing a span handle (``span =
   obs.start(...)``) is allowed — ending a span requires keeping it —
   and feeding one obs call's value to another *syntactic* obs chain
   (``obs.histogram(name).observe(obs.now())``) stays inside the side
   channel.  The analysis is lexical: an obs value passed to a call on
   a plain variable is flagged even if that variable happens to hold
   an obs object — keep the chain visible.

Modules under an ``obs`` path segment are exempt: the layer itself
constructs the handle and is definitionally non-null there.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding
from repro.analysis.registry import rule
from repro.analysis.source import block_terminates

RULE_ID = "obs-purity"


def _is_handle(node: ast.AST) -> bool:
    if isinstance(node, ast.Name) and node.id == "obs":
        return True
    return (
        isinstance(node, ast.Attribute)
        and node.attr == "obs"
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    )


def _contains_handle(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    return any(_is_handle(child) for child in ast.walk(node))


def _is_obs_chain(node: ast.AST) -> bool:
    """Does this call's function chain bottom out at an obs handle?

    True for ``self.obs.counter(...)`` and for calls chained off one,
    e.g. ``self.obs.histogram(...).observe(...)``.
    """
    while True:
        if not isinstance(node, ast.Call):
            return False
        func = node.func
        if not isinstance(func, ast.Attribute):
            return False
        if _is_handle(func.value):
            return True
        node = func.value


def _obs_calls(tree: ast.Module) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and _is_handle(node.func.value)
        ):
            yield node


def _in_subtree(node: ast.AST, root: Optional[ast.AST]) -> bool:
    if root is None:
        return False
    return any(child is node for child in ast.walk(root))


def _is_guarded(module, call: ast.Call) -> bool:
    # lexical guards: an enclosing test that mentions the handle.
    for ancestor in module.ancestors(call):
        if isinstance(ancestor, (ast.If, ast.IfExp)):
            if _contains_handle(ancestor.test) and not _in_subtree(
                call, ancestor.test
            ):
                return True
        elif isinstance(ancestor, ast.BoolOp):
            try:
                index = next(
                    i
                    for i, value in enumerate(ancestor.values)
                    if _in_subtree(call, value)
                )
            except StopIteration:
                index = len(ancestor.values)
            if any(_contains_handle(v) for v in ancestor.values[:index]):
                return True
        elif isinstance(ancestor, ast.While):
            if _contains_handle(ancestor.test) and not _in_subtree(
                call, ancestor.test
            ):
                return True
    # early-return guards: `if ... obs is None: return` earlier in an
    # enclosing block (scanning stops at the function boundary).
    for stmt in module.preceding_siblings(call):
        if (
            isinstance(stmt, ast.If)
            and _contains_handle(stmt.test)
            and block_terminates(stmt.body)
        ):
            return True
    return False


#: ancestors through which an obs value may NOT flow.
_FLOW_VIOLATIONS = (
    ast.Assert,
    ast.Return,
    ast.Raise,
    ast.Compare,
)


def _flow_violation(module, call: ast.Call) -> Optional[str]:
    """Does this obs call's value leak into control flow or logic?"""
    child: ast.AST = call
    for ancestor in module.ancestors(call):
        if isinstance(ancestor, ast.Call):
            if _is_obs_chain(ancestor):
                return None  # value stays inside the obs side channel
            if child is ancestor.func:
                # `self.obs.counter(...).inc()` — the chained method
                # IS the obs call's consumer; keep climbing.
                child = ancestor
                continue
            return "is passed into non-observability code"
        if isinstance(ancestor, _FLOW_VIOLATIONS):
            return f"flows into a {type(ancestor).__name__.lower()}"
        if isinstance(ancestor, (ast.If, ast.While, ast.IfExp)):
            if _in_subtree(call, ancestor.test):
                return "gates control flow"
            return None
        if isinstance(ancestor, ast.BoolOp):
            # `obs and obs.f()` guard idiom is fine; an obs call as the
            # *first* operand (or with no guard before it) is logic.
            index = next(
                (
                    i
                    for i, value in enumerate(ancestor.values)
                    if _in_subtree(call, value)
                ),
                0,
            )
            if index == 0 or not any(
                _contains_handle(v) for v in ancestor.values[:index]
            ):
                return "participates in boolean logic"
            child = ancestor
            continue
        if isinstance(ancestor, ast.UnaryOp) and isinstance(
            ancestor.op, ast.Not
        ):
            return "participates in boolean logic"
        if isinstance(ancestor, ast.stmt):
            return None  # Expr / Assign / With / ... — allowed sinks
        child = ancestor
    return None


@rule(
    RULE_ID,
    "calls on the nullable obs= handle must be None-guarded, and their "
    "values must never steer control flow or escape into program state",
)
def check(module, config) -> Iterator[Finding]:
    if any(part in config.obs_exempt_segments for part in module.rel_parts):
        return
    for call in _obs_calls(module.tree):
        name = f"{ast.unparse(call.func)}(...)" if hasattr(ast, "unparse") else "obs call"
        if not _is_guarded(module, call):
            yield Finding(
                path=module.rel,
                line=call.lineno,
                col=call.col_offset,
                rule=RULE_ID,
                message=(
                    f"unguarded {name}: the obs handle is nullable; "
                    "wrap in `if ... obs is not None:`"
                ),
            )
        violation = _flow_violation(module, call)
        if violation is not None:
            yield Finding(
                path=module.rel,
                line=call.lineno,
                col=call.col_offset,
                rule=RULE_ID,
                message=(
                    f"observability value from {name} {violation}; "
                    "obs must stay a write-only side channel"
                ),
            )
