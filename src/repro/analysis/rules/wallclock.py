"""no-wall-clock: all time must come from the injected sim clock.

Every latency, timeout, and timestamp in this reproduction is
simulation time; a single ``time.time()`` on a hot path silently turns
a deterministic experiment into a flaky one (E18's chaos verdicts and
E20's byte-identical span exports both assume the substrate never
reads the host clock).  The rule flags *references*, not just calls:
``clock=time.monotonic`` as a default argument is exactly the bug.

String literals and docstrings cannot trip this rule — the check is
AST-based and never looks inside constants.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import rule

RULE_ID = "no-wall-clock"

#: time-module attributes that read (or block on) the host clock.
BANNED_TIME = frozenset(
    {
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "sleep",
        "localtime",
        "gmtime",
        "ctime",
    }
)

#: fully-resolved datetime constructors that read the host clock.
BANNED_DATETIME = frozenset(
    {
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


def _is_banned(canonical: str) -> bool:
    if canonical in BANNED_DATETIME:
        return True
    module, _, attr = canonical.rpartition(".")
    return module == "time" and attr in BANNED_TIME


@rule(
    RULE_ID,
    "wall-clock reads (time.time/monotonic/perf_counter, datetime.now) "
    "break sim-time determinism; inject the simulation clock",
)
def check(module, config) -> Iterator[Finding]:
    for pattern in config.allow_wall_clock:
        if fnmatch(module.rel, pattern):
            return
    flagged_lines = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                canonical = f"{node.module}.{alias.name}"
                if _is_banned(canonical):
                    yield Finding(
                        path=module.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        rule=RULE_ID,
                        message=(
                            f"imports wall-clock function {canonical}; "
                            "take a clock callable instead"
                        ),
                    )
        elif isinstance(node, ast.Attribute):
            canonical = module.imports.resolve(node)
            if canonical is not None and _is_banned(canonical):
                # one finding per (line, target): `time.time()` is a
                # Call wrapping the same Attribute, not two findings.
                key = (node.lineno, canonical)
                if key in flagged_lines:
                    continue
                flagged_lines.add(key)
                yield Finding(
                    path=module.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=RULE_ID,
                    message=(
                        f"wall-clock access {canonical}; all time must "
                        "come from the injected simulation clock"
                    ),
                )
