"""no-silent-except: failures are data, never silence.

This codebase deliberately converts failures into values — RPC errors
become ``RpcResult.error``, shard misbehaviour becomes probe evidence,
chaos violations become checker verdicts.  A bare ``except:`` or an
``except Exception: pass`` is the opposite: it discards the evidence,
catches ``KeyboardInterrupt``/cancellation (bare form), and leaves the
consistency checker blind to the very fault it exists to catch.

Flagged:

* ``except:`` — always, regardless of body (it swallows
  ``SystemExit`` and ``KeyboardInterrupt`` too).
* ``except Exception:`` / ``except BaseException:`` whose body does
  nothing (only ``pass`` / ``...``) — broad catch *and* no handling.

A broad catch with a real body (logging, converting to an error reply,
re-raising) is fine; a *narrow* ``except SomeError: pass`` is fine
too — the type documents exactly what is being ignored.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.findings import Finding
from repro.analysis.registry import rule

RULE_ID = "no-silent-except"

_BROAD = frozenset({"Exception", "BaseException"})


def _is_broad(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id in _BROAD
    if isinstance(node, ast.Attribute):  # builtins.Exception
        return node.attr in _BROAD
    if isinstance(node, ast.Tuple):
        return any(_is_broad(element) for element in node.elts)
    return False


def _body_is_silent(body) -> bool:
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
            continue  # docstring or `...`
        return False
    return True


@rule(
    RULE_ID,
    "bare except: and except Exception: pass swallow failures the "
    "checker and probes exist to observe; narrow the type or handle it",
)
def check(module, config) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield Finding(
                path=module.rel,
                line=node.lineno,
                col=node.col_offset,
                rule=RULE_ID,
                message=(
                    "bare except: catches KeyboardInterrupt/SystemExit "
                    "and hides the failure; name the exception type"
                ),
            )
        elif _is_broad(node.type) and _body_is_silent(node.body):
            yield Finding(
                path=module.rel,
                line=node.lineno,
                col=node.col_offset,
                rule=RULE_ID,
                message=(
                    "except Exception with an empty body silently discards "
                    "the failure; narrow the type or record the error"
                ),
            )
