"""no-unseeded-random: randomness must flow from explicit seeds.

Two failure modes, both invisible at run time until a rerun disagrees:

* **Process-global streams** — module-level ``random.*`` and the
  legacy ``numpy.random.*`` functions share hidden global state, so
  any import-order or call-order change reshuffles every consumer.
* **Entropy-seeded generators** — ``np.random.default_rng()`` (no
  argument) pulls OS entropy; two runs can never be compared.

The fix is always the same shape: construct ``np.random.default_rng(
seed)`` / ``random.Random(seed)`` at the boundary and pass the
generator down (see ``repro.netsim.rand.RngRegistry`` for the
per-subsystem stream pattern).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analysis.findings import Finding
from repro.analysis.registry import rule

RULE_ID = "no-unseeded-random"

#: numpy.random names that are fine *when called with a seed argument*.
SEEDABLE_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "RandomState",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)

#: stdlib random names that are fine when seeded explicitly.
STDLIB_CONSTRUCTORS = frozenset({"Random"})


def _call_parent(module, node: ast.AST) -> Optional[ast.Call]:
    parent = module.parent(node)
    if isinstance(parent, ast.Call) and parent.func is node:
        return parent
    return None


def _unseeded(call: ast.Call) -> bool:
    return not call.args and not call.keywords


@rule(
    RULE_ID,
    "module-level random.* / numpy.random.* and default_rng() without a "
    "seed draw from hidden global state or OS entropy; pass seeded "
    "generators explicitly",
)
def check(module, config) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                if (
                    node.module == "random"
                    and alias.name not in STDLIB_CONSTRUCTORS
                ):
                    yield Finding(
                        path=module.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        rule=RULE_ID,
                        message=(
                            f"imports random.{alias.name}: module-level "
                            "random functions share process-global state; "
                            "use a seeded random.Random instance"
                        ),
                    )
            continue
        if not isinstance(node, ast.Attribute):
            continue
        canonical = module.imports.resolve(node)
        if canonical is None:
            continue
        head, _, attr = canonical.rpartition(".")
        if head == "random":
            if attr in STDLIB_CONSTRUCTORS:
                call = _call_parent(module, node)
                if call is not None and _unseeded(call):
                    yield Finding(
                        path=module.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        rule=RULE_ID,
                        message=(
                            "random.Random() without a seed argument is "
                            "entropy-seeded; pass an explicit seed"
                        ),
                    )
            else:
                yield Finding(
                    path=module.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=RULE_ID,
                    message=(
                        f"random.{attr} uses the process-global stream; "
                        "use a seeded random.Random instance"
                    ),
                )
        elif head == "numpy.random":
            if attr in SEEDABLE_CONSTRUCTORS:
                call = _call_parent(module, node)
                if call is not None and _unseeded(call):
                    yield Finding(
                        path=module.rel,
                        line=node.lineno,
                        col=node.col_offset,
                        rule=RULE_ID,
                        message=(
                            f"numpy.random.{attr}() without an explicit "
                            "seed is entropy-seeded and unreproducible"
                        ),
                    )
            else:
                yield Finding(
                    path=module.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=RULE_ID,
                    message=(
                        f"legacy numpy.random.{attr} mutates the global "
                        "stream; use np.random.default_rng(seed)"
                    ),
                )
    # `from numpy.random import default_rng` binds a bare name; calls
    # through it are Name nodes, not Attributes, so they need their
    # own pass:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call) or not isinstance(
            node.func, ast.Name
        ):
            continue
        canonical = module.imports.resolve(node.func)
        if canonical is None:
            continue
        head, _, attr = canonical.rpartition(".")
        if head == "numpy.random" and attr in SEEDABLE_CONSTRUCTORS:
            if _unseeded(node):
                yield Finding(
                    path=module.rel,
                    line=node.lineno,
                    col=node.col_offset,
                    rule=RULE_ID,
                    message=(
                        f"numpy.random.{attr}() without an explicit seed "
                        "is entropy-seeded and unreproducible"
                    ),
                )
        elif canonical == "random.Random" and _unseeded(node):
            yield Finding(
                path=module.rel,
                line=node.lineno,
                col=node.col_offset,
                rule=RULE_ID,
                message=(
                    "random.Random() without a seed argument is "
                    "entropy-seeded; pass an explicit seed"
                ),
            )
